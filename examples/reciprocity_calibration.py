#!/usr/bin/env python3
"""Reciprocity-based downlink channel estimation (paper §8b, Fig. 16).

IAC's APs never ask clients to feed back downlink channel estimates.
Instead each AP measures the *uplink* channel from client acks and infers
the downlink channel through reciprocity.  Raw reciprocity is broken by
the transmit/receive hardware chains, so a one-time calibration solves
Eq. 8 for two diagonal matrices:

    (H_down)^T = C_client_rx @ H_up @ C_ap_tx

The calibration depends only on the hardware, so it keeps working as the
client moves.  This script demonstrates the full workflow and reproduces
the Fig. 16 experiment: calibrate once, move the client five times, and
measure the fractional error of the predicted downlink channel.

Run:  python examples/reciprocity_calibration.py
"""

import numpy as np

from repro.phy.channel import (
    RadioHardware,
    ReciprocityCalibrator,
    fractional_error,
    observed_downlink,
    observed_uplink,
    rayleigh_channel,
)
from repro.experiments import run_experiment

rng = np.random.default_rng(16)

# --------------------------------------------------------------------- #
# 1. One client-AP pair, step by step.
# --------------------------------------------------------------------- #
client_hw = RadioHardware.random(2, rng)
ap_hw = RadioHardware.random(2, rng)
h_air = rayleigh_channel(2, 2, rng)

h_up = observed_uplink(h_air, client_hw, ap_hw)
h_down = observed_downlink(h_air, client_hw, ap_hw)
naive_error = fractional_error(h_down, h_up.T)
print(f"Naive reciprocity (transpose only): fractional error {naive_error:.3f}")

calibrator = ReciprocityCalibrator()
calibrator.calibrate(h_up, h_down)
print("Calibrated from one paired measurement (Eq. 8).")

print("\nClient moves; AP predicts each new downlink from uplink alone:")
for move in range(5):
    h_air = rayleigh_channel(2, 2, rng)  # new position, same hardware
    predicted = calibrator.downlink_from_uplink(
        observed_uplink(h_air, client_hw, ap_hw)
    )
    true_down = observed_downlink(h_air, client_hw, ap_hw)
    print(f"  move {move + 1}: fractional error "
          f"{fractional_error(true_down, predicted):.2e}")

# --------------------------------------------------------------------- #
# 2. The Fig. 16 experiment via the scenario registry: 17 client-AP
#    pairs, noisy measurements, 5 moves each (parallel trials).
# --------------------------------------------------------------------- #
print("\n=== Fig. 16: 17 client-AP pairs with noisy estimation ===")
result = run_experiment("fig16", n_trials=17, seed=0, workers=4)
errors = result.metric("error")
for i, err in enumerate(errors, 1):
    bar = "#" * int(err * 100)
    print(f"  client {i:2d}: {err:.3f} {bar}")
print(f"\nmean fractional error: {np.mean(errors):.3f} "
      f"(paper: roughly 0.05-0.2 across clients)")
