#!/usr/bin/env python3
"""Testing the paper's §6c conjecture: alignment per OFDM subcarrier.

The paper could only run flat (narrowband) channels on USRP1 hardware and
*conjectured* that on wider, frequency-selective channels "one can still
do the alignment separately in each OFDM subcarrier without trying to
synchronize the transmitters", with even a single band-wide alignment
staying acceptable on moderately selective channels.

This script builds multi-tap channels at increasing delay spread and
compares, over a 64-bin OFDM grid:

* per-subcarrier alignment (solve Eq. 2 on each bin's H(f)), and
* a single flat alignment computed at the band centre.

Run:  python examples/ofdm_subcarrier_alignment.py
"""

import functools

import numpy as np

from repro.core.alignment import solve_uplink_three_packets
from repro.core.ofdm_alignment import conjecture_experiment
from repro.phy.channel.selective import MultiTapChannel, exponential_pdp

N_FFT = 64

print("delay   coherence   per-subcarrier   band-wide    flat/per-sc")
print("spread  (bins)      rate [b/s/Hz]    flat rate    ratio")
for spread in (0.0, 0.5, 1.0, 2.0, 4.0):
    rng = np.random.default_rng(int(spread * 10) + 6)
    pdp = exponential_pdp(8, spread)
    selective = {
        (client, ap): MultiTapChannel.random(2, 2, pdp, rng)
        for client in (0, 1)
        for ap in (0, 1)
    }
    solver = functools.partial(solve_uplink_three_packets, rng=rng, n_candidates=2)
    results = conjecture_experiment(
        selective, solver, n_fft=N_FFT, n_bins=12, noise_power=1e-3
    )
    per_sc = results["per_subcarrier"].total_rate
    flat = results["flat_approximation"].total_rate
    coherence = selective[(0, 0)].coherence_bandwidth_bins(N_FFT)
    print(
        f"{spread:5.1f}   {coherence:9d}   {per_sc:14.2f}   {flat:9.2f}    {flat / per_sc:6.2f}"
    )

print(
    "\nPer-subcarrier alignment holds the rate at any delay spread; the\n"
    "band-wide flat approximation degrades as the channel decorrelates\n"
    "across the band, but stays acceptable for moderate spreads --\n"
    "exactly the behaviour §6c conjectures."
)
