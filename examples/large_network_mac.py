#!/usr/bin/env python3
"""A busy conference-room WLAN: concurrency algorithms and fairness.

Reproduces the paper's §10.3 scenario: 17 backlogged clients, 3 APs, and
the leader AP choosing which clients transmit together each slot.  Three
group-selection algorithms are compared against 802.11-MIMO:

* brute force  -- max throughput, starves weak-channel clients;
* FIFO         -- fair, but throughput-oblivious;
* best-of-two  -- IAC's choice: power-of-two-choices + fairness credits.

The script prints per-algorithm mean gains and a textual CDF (the
analogue of Fig. 15), plus the PCF-layer control overhead (§7.1(e)).

Run:  python examples/large_network_mac.py
"""

import numpy as np

from repro.experiments import ExperimentRunner, gain_cdf_from_record
from repro.mac.concurrency import FifoGrouping
from repro.mac.pcf import PCFConfig, PCFCoordinator
from repro.mac.queueing import TransmissionQueue
from repro.sim.experiment import GroupRateCache
from repro.sim.metrics import format_cdf_table

runner = ExperimentRunner()  # lazily builds the paper's 20-node testbed
testbed = runner.testbed

# --------------------------------------------------------------------- #
# Fig. 15: per-client gain CDFs of the three concurrency algorithms,
# through the scenario registry (one registered scenario, three runs).
# --------------------------------------------------------------------- #
print("=== Downlink, 17 clients, 3 APs, 400 slots ===")
cdfs = []
for algorithm in ("brute", "fifo", "best2"):
    result = runner.run(
        "fig15",
        n_trials=1,
        seed=5,
        params={"algorithm": algorithm, "direction": "downlink", "n_slots": 400},
    )
    cdf = gain_cdf_from_record(result.records[0], label=f"{algorithm}/downlink")
    cdfs.append(cdf)
    print(
        f"  {algorithm:>6s}: mean gain {cdf.mean_gain:4.2f}x, "
        f"worst client {cdf.min_gain:4.2f}x, "
        f"{cdf.fraction_below(1.0) * 100:3.0f}% of clients below 1x"
    )

print("\nPer-client gain CDF (textual Fig. 15):")
print(format_cdf_table(cdfs, n_rows=8))

# --------------------------------------------------------------------- #
# The PCF protocol layer: serve the same population through the full
# beacon / DATA+Poll / ack machinery and measure control overhead.
# --------------------------------------------------------------------- #
print("\n=== PCF protocol run (overhead accounting, §7.1(e)) ===")
rng = np.random.default_rng(3)
nodes = testbed.pick_nodes(20, rng)
aps, clients = nodes[:3], nodes[3:]
cache = GroupRateCache(testbed, aps, "downlink", rng)


def transmit(direction, group):
    _, per_client = cache.evaluate(group)
    # Rate (bit/s/Hz) to an SNR-like dB figure for the loss threshold.
    return {cid: 10 * np.log10(2**rate - 1 + 1e-9) for cid, rate in per_client.items()}


coordinator = PCFCoordinator(
    downlink=TransmissionQueue(),
    uplink=TransmissionQueue(),
    selector=FifoGrouping(group_size=3),
    evaluate=cache.total_rate,
    transmit=transmit,
    config=PCFConfig(payload_bytes=1440),
)
for _round in range(20):
    for client in clients:
        coordinator.enqueue_downlink(client)
    coordinator.run_round()

stats = coordinator.stats
print(f"  packets delivered : {stats.packets_delivered}")
print(f"  packets lost      : {stats.packets_lost}")
print(f"  payload bytes     : {stats.payload_bytes_delivered}")
print(f"  metadata bytes    : {stats.metadata_bytes}")
print(f"  ack+beacon bytes  : {stats.ack_bytes + stats.beacon_bytes}")
print(f"  control overhead  : {stats.overhead_fraction() * 100:.2f}% "
      f"(paper: 1-2% for 1440-byte packets)")
