#!/usr/bin/env python3
"""Dynamic WLAN workloads and parameter sweeps.

The paper evaluates a *saturated* WLAN: every client always has a packet
queued.  This walkthrough opens the dynamic regimes layered on top of
``repro.sim.wlan``:

1. **finite load** -- Poisson arrivals at a fraction of the 3-packet/slot
   service capacity; latency and idling appear;
2. **bursty sources** -- ON/OFF arrivals at the same mean load queue much
   worse than Poisson (burstiness, not volume, drives delay);
3. **churn and mobility** -- clients leave (backlog purged) and re-join
   (channels re-sounded), movers decorrelate their channels and pay a
   staleness tax;
4. **sweeps** -- ``run_sweep`` fans a load x clients grid across workers
   with per-cell RNG streams and a resumable cell cache (the CLI twin is
   ``repro sweep load_latency --grid load=0.2,0.5,0.9``).

Run:  python examples/dynamic_traffic.py
"""

from repro.experiments import run_sweep
from repro.sim.wlan import WLANConfig, WLANSimulation

# --------------------------------------------------------------------- #
# 1. Finite load: the saturated sim, starved.
# --------------------------------------------------------------------- #
print("=== Poisson arrivals: load changes everything ===")
print(f"{'load':>5} {'latency':>8} {'queue':>6} {'idle':>5} {'rate':>6}")
for load in (0.2, 0.6, 0.95):
    config = WLANConfig(
        n_clients=8, rho=1.0, seed=42,
        traffic="poisson",
        traffic_params={"rate_per_client": load * 3 / 8},
    )
    stats = WLANSimulation(config).run(300)
    print(
        f"{load:5.2f} {stats.mean_latency_slots:8.2f} "
        f"{stats.mean_queue_depth:6.1f} {stats.idle_fraction:5.0%} "
        f"{stats.total_rate:6.2f}"
    )

# --------------------------------------------------------------------- #
# 2. Same mean load, bursty arrivals: the queue feels the bursts.
# --------------------------------------------------------------------- #
print("\n=== Burstiness at equal mean load (0.6) ===")
for name, params in (
    ("poisson", {"rate_per_client": 0.6 * 3 / 8}),
    ("bursty", {"rate_on": 0.6 * 3 / 8 / 0.25, "p_on": 0.05, "p_off": 0.15}),
):
    config = WLANConfig(
        n_clients=8, rho=1.0, seed=42, traffic=name, traffic_params=params
    )
    stats = WLANSimulation(config).run(300)
    print(
        f"  {name:<8} latency {stats.mean_latency_slots:6.2f} slots, "
        f"max queue {stats.max_queue_depth:3d}, "
        f"Jain {stats.jain_fairness:.2f}"
    )

# --------------------------------------------------------------------- #
# 3. Churn + mobility: association traffic and stale estimates.
# --------------------------------------------------------------------- #
print("\n=== Churn and mobility (saturated demand) ===")
config = WLANConfig(
    n_clients=8, rho=0.998, seed=7,
    churn_params={"p_leave": 0.05, "p_join": 0.2, "min_active": 3},
    mobility_params={"rho_static": 0.998, "rho_moving": 0.95,
                     "p_start": 0.05, "p_stop": 0.15},
)
sim = WLANSimulation(config)
stats = sim.run(200)
print(
    f"  {stats.joins} joins / {stats.leaves} leaves, "
    f"{stats.dropped_packets} packets purged, "
    f"{stats.drift_reports} drift reports, "
    f"staleness {stats.mean_staleness_loss_db:.2f} dB/slot"
)
print(f"  active clients at the end: {sim.active_clients}")
print("  first events:", [
    f"t{e.slot}:{e.kind}({e.client})" for e in stats.events[:5]
])

# --------------------------------------------------------------------- #
# 4. A sweep: load x clients, parallel cells, deterministic table.
# --------------------------------------------------------------------- #
print("\n=== repro sweep, as a library call ===")
result = run_sweep(
    "load_latency",
    {"load": [0.3, 0.9], "n_clients": [6, 10]},
    params={"n_slots": 150},
    n_trials=2,
    workers=4,
)
print(result.table(["mean_latency_slots", "idle_fraction", "total_rate"]))
print("(cells are seeded by identity hash: any worker count, same table)")
