#!/usr/bin/env python3
"""Beyond the WLAN: clustered ad-hoc networks and mobile clients.

Part 1 -- the paper's closing scenario (§11, Fig. 17): a two-cluster mesh
where fast intra-cluster links play the Ethernet's role, letting IAC lift
the slow inter-cluster bottleneck.

Part 2 -- client mobility: the full WLAN simulation (association, ack-
driven channel tracking, drift reports to the leader, best-of-two
scheduling) on Gauss-Markov fading channels, showing why the §7.1(c)/§8a
tracking machinery exists.

Run:  python examples/clustered_and_mobility.py
"""

import numpy as np

from repro.sim.clustered import ClusteredConfig, ClusteredNetwork
from repro.sim.plotting import ascii_bars
from repro.sim.wlan import WLANConfig, WLANSimulation

# --------------------------------------------------------------------- #
# Part 1: clustered ad-hoc networks.
# --------------------------------------------------------------------- #
print("=== Fig. 17: clustered MIMO ad-hoc networks ===")
print("intra-cluster links ~30 dB, inter-cluster bottleneck ~8 dB\n")
gains = []
for seed in range(6):
    net = ClusteredNetwork(ClusteredConfig(nodes_per_cluster=3, seed=seed))
    dot11 = net.flow_throughput("dot11")
    iac = net.flow_throughput("iac")
    gains.append(iac / dot11)
    print(
        f"  topology {seed}: bottleneck {dot11:5.2f} -> {iac:5.2f} b/s/Hz "
        f"(gain {iac / dot11:.2f}x)"
    )
print(f"\n  mean gain {np.mean(gains):.2f}x "
      "(paper: 'IAC can double the throughput of the bottleneck links')")

# --------------------------------------------------------------------- #
# Part 2: mobility and channel tracking.
# --------------------------------------------------------------------- #
print("\n=== Channel tracking under mobility (Gauss-Markov fading) ===")
results = {}
for label, rho, track in (
    ("static, tracked", 1.0, True),
    ("mobile, tracked", 0.97, True),
    ("mobile, no tracking", 0.97, False),
):
    sim = WLANSimulation(WLANConfig(n_clients=8, rho=rho, seed=9))
    stats = sim.run(80, track=track)
    results[label] = stats
    print(
        f"  {label:<20s}: {stats.total_rate:6.2f} b/s/Hz, "
        f"{stats.drift_reports:4d} drift reports, "
        f"{stats.update_bytes:6d} update bytes on the wire"
    )

print()
print(ascii_bars(list(results), [s.total_rate for s in results.values()], unit=" b/s/Hz"))
print(
    "\nTracking from client acks (paper §8a) plus drift reports to the\n"
    "leader (§7.1(c)) recovers most of the rate that stale channel\n"
    "estimates would otherwise cost a moving network."
)
