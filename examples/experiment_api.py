#!/usr/bin/env python3
"""The unified scenario/experiment API: registry, runner, JSON results.

Everything the per-figure scripts do flows through three pieces:

1. the **registry** -- every paper figure is a registered ``Scenario``
   with a normalised trial callable, default parameters and tags;
2. the **runner** -- ``ExperimentRunner``/``run_experiment`` execute
   trials on independent RNG streams, in parallel (``workers=N``) with
   bit-identical results for any worker count;
3. **structured results** -- ``ExperimentResult`` serialises to JSON and
   back, so sweeps can be archived and compared offline.

The same machinery accepts new scenarios: the last section registers a
custom one and runs it with the stock runner.

Run:  python examples/experiment_api.py
"""

import numpy as np

from repro.experiments import (
    ExperimentResult,
    list_scenarios,
    register_scenario,
    run_experiment,
    scenarios_by_tag,
    unregister_scenario,
)

# --------------------------------------------------------------------- #
# 1. Discover scenarios through the registry.
# --------------------------------------------------------------------- #
print("=== Registered scenarios ===")
for s in list_scenarios():
    print(f"  {s.name:<8} {s.figure:<9} paper: {s.paper:<40} tags: {', '.join(s.tags)}")
print("scatter-tagged:", [s.name for s in scenarios_by_tag("scatter")])

# --------------------------------------------------------------------- #
# 2. Run one: Fig. 13a with 4 workers.  Worker count never changes the
#    numbers -- every trial draws from its own spawned RNG stream.
# --------------------------------------------------------------------- #
print("\n=== Fig. 13a, 12 trials, 4 workers ===")
serial = run_experiment("fig13a", n_trials=12, seed=7, workers=1)
parallel = run_experiment("fig13a", n_trials=12, seed=7, workers=4)
assert serial.records == parallel.records, "parallelism changed the results!"
print(f"  mean gain {parallel.mean_gain:.2f}x (paper: ~1.8x); "
      "workers=1 and workers=4 agree bit-for-bit")

# --------------------------------------------------------------------- #
# 3. Structured results survive a JSON round trip unchanged.
# --------------------------------------------------------------------- #
text = parallel.to_json()
restored = ExperimentResult.from_json(text)
assert restored == parallel
summary = restored.summary()["gain"]
print(f"  JSON round trip ok ({len(text)} bytes); "
      f"gain mean={summary['mean']:.2f} min={summary['min']:.2f} "
      f"max={summary['max']:.2f}")

# --------------------------------------------------------------------- #
# 4. Register a custom scenario and run it with the stock runner.  The
#    trial sees a TrialContext (testbed, per-trial rng, params) and
#    returns flat metrics.
# --------------------------------------------------------------------- #


@register_scenario(
    "snr-spread",
    figure="custom",
    description="per-pair SNR spread of the synthetic testbed",
    paper="8-22 dB by construction",
    default_params={"n_samples": 30},
    default_trials=5,
    tags=("custom",),
)
def snr_spread_trial(ctx):
    gains = []
    for _ in range(int(ctx.params["n_samples"])):
        a, b = ctx.testbed.pick_nodes(2, ctx.rng)
        gains.append(ctx.testbed.pair_gain_db(a, b))
    return {"min_db": np.min(gains), "max_db": np.max(gains)}


result = run_experiment("snr-spread", seed=1)
print("\n=== Custom scenario ===")
print(f"  snr-spread over {result.n_trials} trials: "
      f"{result.metric('min_db').min():.1f}-{result.metric('max_db').max():.1f} dB "
      "(testbed draws 8-22 dB)")
unregister_scenario("snr-spread")  # leave the registry as we found it
