#!/usr/bin/env python3
"""Downlink IAC: clients decode alone, so alignment does all the work.

On the downlink the receivers are clients that cannot cancel for each
other over a wire (paper §4d).  Every client must therefore see all its
*undesired* packets collapsed onto one spatial direction, leaving its own
packet decodable by orthogonal projection.

Part 1 runs the 2-antenna construction (3 APs deliver 3 packets, Eqs. 5-7).
Part 2 runs the general M-antenna construction behind Lemma 5.1: with
M = 3 antennas, two APs deliver 2M - 2 = 4 packets to two clients (Fig. 7).

Run:  python examples/downlink_alignment.py
"""

import numpy as np

from repro import (
    ChannelSet,
    decode_rate_level,
    solve_downlink_general,
    solve_downlink_three_packets,
)
from repro.core.dof import downlink_max_packets
from repro.phy.channel import rayleigh_channel
from repro.utils.linalg import align_error

rng = np.random.default_rng(7)

# --------------------------------------------------------------------- #
# Part 1: M = 2.  Three APs, three clients, three concurrent packets.
# --------------------------------------------------------------------- #
print("=== M = 2: three concurrent downlink packets (Eqs. 5-7) ===")
aps, clients = (0, 1, 2), (0, 1, 2)
channels = ChannelSet({(a, c): rayleigh_channel(2, 2, rng) for a in aps for c in clients})
solution = solve_downlink_three_packets(channels, aps=aps, clients=clients, rng=rng)

for client in clients:
    undesired = [p.packet_id for p in solution.packets if p.rx != client]
    dirs = [solution.received_direction(channels, pid, client) for pid in undesired]
    print(
        f"  client {client}: undesired packets {undesired} alignment residual "
        f"{align_error(dirs[0], dirs[1]):.2e}"
    )

report = decode_rate_level(solution, channels, noise_power=1e-3)
print("  per-client SINR:", {
    r.packet_id: f"{10 * np.log10(r.sinr):.1f} dB" for r in report.results
})
print(f"  sum rate: {report.total_rate:.2f} bit/s/Hz "
      f"(vs at most 2 packets without IAC)")

# --------------------------------------------------------------------- #
# Part 2: M = 3.  Lemma 5.1 says max(2M-2, floor(3M/2)) = 4 packets.
# --------------------------------------------------------------------- #
print("\n=== M = 3: the general Lemma-5.1 construction (Fig. 7) ===")
m = 3
print(f"  Lemma 5.1: downlink_max_packets({m}) = {downlink_max_packets(m)}")
aps3 = (0, 1)           # M - 1 APs
clients3 = (10, 11)     # two clients
channels3 = ChannelSet(
    {(a, k): rayleigh_channel(m, m, rng) for a in aps3 for k in clients3}
)
solution3 = solve_downlink_general(channels3, aps=aps3, clients=clients3, rng=rng)
print(f"  packets delivered concurrently: {len(solution3.packets)}")

for k in clients3:
    undesired = [p.packet_id for p in solution3.packets if p.rx != k]
    dirs = [solution3.received_direction(channels3, pid, k) for pid in undesired]
    print(
        f"  client {k}: packets {undesired} aligned with residual "
        f"{align_error(dirs[0], dirs[1]):.2e}"
    )

report3 = decode_rate_level(solution3, channels3, noise_power=1e-3)
print("  per-packet SINR:", {
    r.packet_id: f"{10 * np.log10(r.sinr):.1f} dB" for r in report3.results
})
print(f"  sum rate: {report3.total_rate:.2f} bit/s/Hz with 3-antenna nodes")
