#!/usr/bin/env python3
"""Four concurrent uplink packets: the Fig. 5 construction, end to end.

Three 2-antenna clients upload four packets to three 2-antenna APs.  The
encoding vectors solve Eqs. 3-4 (the eigenvector solution of footnote 4):

* packets 1, 2 and 3 arrive *aligned on a single line* at AP 0, which
  therefore decodes packet 0 and ships it over the Ethernet;
* packets 2 and 3 arrive aligned at AP 1, which cancels packet 0 and
  decodes packet 1;
* AP 2 cancels packets 0 and 1 and zero-forces packets 2 and 3.

The script verifies each geometric claim numerically, then runs the full
signal-level pipeline with QPSK + the 802.11 convolutional code and
unsynchronised transmitters.

Run:  python examples/uplink_four_packets.py
"""

import numpy as np

from repro import (
    ChannelSet,
    Packet,
    SignalConfig,
    decode_rate_level,
    run_session,
    solve_uplink_four_packets,
)
from repro.phy.channel import rayleigh_channel
from repro.utils.linalg import align_error

rng = np.random.default_rng(42)

clients, aps = (0, 1, 2), (0, 1, 2)
channels = ChannelSet(
    {(c, a): rayleigh_channel(2, 2, rng) for c in clients for a in aps}
)
solution = solve_uplink_four_packets(channels, clients=clients, aps=aps, rng=rng)

# ---- verify the alignment geometry (Eqs. 3 and 4) --------------------- #
d = lambda pid, ap: solution.received_direction(channels, pid, ap)
print("Alignment residuals (0 = perfectly aligned):")
print(f"  at AP0, packets 1~2: {align_error(d(1, 0), d(2, 0)):.2e}")
print(f"  at AP0, packets 2~3: {align_error(d(2, 0), d(3, 0)):.2e}")
print(f"  at AP1, packets 2~3: {align_error(d(2, 1), d(3, 1)):.2e}")
print(f"  at AP2, packets 2~3: {align_error(d(2, 2), d(3, 2)):.2e}  (NOT aligned -- by design)")

# ---- rate level -------------------------------------------------------- #
report = decode_rate_level(solution, channels, noise_power=1e-3)
print("\nPer-packet SINR (dB):")
for result in report.results:
    print(
        f"  packet {result.packet_id} at AP {result.rx}: "
        f"{10 * np.log10(result.sinr):5.1f} dB"
    )
print(f"Sum rate: {report.total_rate:.2f} bit/s/Hz for FOUR packets on 2-antenna hardware")

# ---- signal level: QPSK + convolutional FEC, no synchronisation ------- #
payloads = {i: Packet.random(rng, 300, src=solution.packet(i).tx, seq=i) for i in range(4)}
config = SignalConfig(
    modulation="qpsk",
    fec="conv",
    noise_power=1e-3,
    cfo_spread=5e-5,
    max_timing_offset=16,   # transmitters are not symbol-synchronised (§6c)
    estimate_channels=True,
)
session = run_session(solution, channels, payloads, config, rng=rng)
print("\nSignal-level delivery:")
for outcome in session.outcomes:
    print(
        f"  packet {outcome.packet_id}: "
        f"{'ok' if outcome.delivered else 'LOST'} "
        f"(SNR {outcome.snr_db:5.1f} dB, {outcome.cancelled} cancelled first)"
    )
print(f"Ethernet bytes: {session.ethernet_bytes} "
      f"({len(session.decoded)} decoded packets shared between APs)")
assert session.delivery_count == 4
