#!/usr/bin/env python3
"""Quickstart: three concurrent uplink packets with 2-antenna nodes.

This is the paper's motivating example (Fig. 2 / Fig. 4b): two 2-antenna
clients upload three packets at once to two Ethernet-connected 2-antenna
APs -- one more packet than either AP could decode alone.

The script runs the scenario twice:

1. at *rate level* -- solve the alignment equations and compute each
   packet's post-projection SINR and the achievable sum rate (Eq. 9);
2. at *signal level* -- push real bits through modulation, the fading
   channel with carrier frequency offsets, projection, cancellation over
   the simulated Ethernet, demodulation and CRC checks.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ChannelSet,
    Packet,
    SignalConfig,
    decode_rate_level,
    run_session,
    solve_uplink_three_packets,
)
from repro.phy.channel import rayleigh_channel

rng = np.random.default_rng(2009)

# --------------------------------------------------------------------- #
# 1. The wireless environment: independent Rayleigh channels between the
#    two clients (nodes 0, 1) and the two APs (also indexed 0, 1).
# --------------------------------------------------------------------- #
channels = ChannelSet(
    {(client, ap): rayleigh_channel(2, 2, rng) for client in (0, 1) for ap in (0, 1)}
)

# --------------------------------------------------------------------- #
# 2. Solve the alignment: client 0 sends packets 0 and 1, client 1 sends
#    packet 2, with packets 1 and 2 aligned at AP 0 (Eq. 2).
# --------------------------------------------------------------------- #
solution = solve_uplink_three_packets(channels, rng=rng)
print("Decode schedule (earlier stages are cancelled for later ones):")
for stage in solution.schedule:
    print(f"  AP {stage.rx} decodes packets {list(stage.packet_ids)}")

# --------------------------------------------------------------------- #
# 3. Rate level: per-packet SINR and the paper's rate metric.
# --------------------------------------------------------------------- #
report = decode_rate_level(solution, channels, noise_power=1e-3)
print("\nRate-level results (noise power 1e-3):")
for result in report.results:
    print(
        f"  packet {result.packet_id}: SINR {10 * np.log10(result.sinr):5.1f} dB "
        f"at AP {result.rx} after cancelling {result.cancelled} packet(s)"
    )
print(f"  sum rate: {report.total_rate:.2f} bit/s/Hz for 3 concurrent packets")

# --------------------------------------------------------------------- #
# 4. Signal level: real bits, CFOs, channel estimation, CRC checks.
# --------------------------------------------------------------------- #
payloads = {i: Packet.random(rng, 400, src=i, seq=i) for i in range(3)}
config = SignalConfig(
    modulation="bpsk",
    noise_power=1e-3,
    cfo_spread=1e-4,          # distinct oscillator offsets per node (§6a)
    estimate_channels=True,   # least-squares estimates, not genie channels
)
session = run_session(solution, channels, payloads, config, rng=rng)

print("\nSignal-level results:")
for outcome in session.outcomes:
    status = "delivered" if outcome.delivered else "LOST"
    print(
        f"  packet {outcome.packet_id}: {status}, measured SNR "
        f"{outcome.snr_db:5.1f} dB (cancelled {outcome.cancelled} first)"
    )
print(f"  Ethernet bytes for cancellation: {session.ethernet_bytes}")
assert session.all_delivered, "expected all three packets to decode"
print("\nThree packets decoded with two 2-antenna APs -- more than the")
print("antennas-per-AP limit of point-to-point MIMO.")
