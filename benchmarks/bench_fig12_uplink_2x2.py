"""Figure 12: 2-client / 2-AP uplink scatter (paper §10.1).

Paper result: IAC transmits 3 concurrent packets vs 802.11-MIMO's
alternating 2, for an average transfer-rate gain of ~1.5x, with baseline
rates spanning roughly 4-13 b/s/Hz.
"""

import numpy as np

from repro.experiments import run_experiment, scatter_result

N_TRIALS = 60


def _experiment(testbed):
    return run_experiment(
        "fig12", n_trials=N_TRIALS, seed=12, testbed=testbed, workers=4
    )


def test_fig12_uplink_2x2(benchmark, testbed, record):
    result = benchmark.pedantic(_experiment, args=(testbed,), rounds=1, iterations=1)
    scatter = scatter_result(result)

    record("Fig. 12 (2x2 uplink)", "mean gain", "1.5x", f"{result.mean_gain:.2f}x")
    dot11 = result.metric("dot11")
    record(
        "Fig. 12 (2x2 uplink)",
        "baseline rate range",
        "4-13 b/s/Hz",
        f"{dot11.min():.1f}-{dot11.max():.1f}",
    )

    # Scatter series (the figure's points).
    print("\n  802.11 rate   IAC rate   gain")
    for p in sorted(scatter.points, key=lambda p: p.dot11)[:: max(1, N_TRIALS // 15)]:
        print(f"  {p.dot11:10.2f} {p.iac:10.2f} {p.gain:6.2f}")

    # Shape assertions: IAC wins on average by roughly the paper's factor.
    assert 1.2 < result.mean_gain < 1.8
    # Variance exists (channel-similarity effect, §10.1) but most points win.
    assert np.mean(result.metric("gain") > 1.0) > 0.8
