"""Figure 15: per-client gain CDFs of the concurrency algorithms (§10.3).

Paper results (17 clients, 3 APs, 1000 slots, infinite demand):

* uplink mean gains  : brute 2.32x, FIFO 1.9x, best-of-two 2.08x
* downlink mean gains: brute 1.58x, FIFO 1.23x, best-of-two 1.52x
* brute force is significantly unfair (some clients below 1x);
* best-of-two has the best fairness-throughput tradeoff and no client
  suffers a notable rate reduction.
"""

import pytest

from repro.experiments import ExperimentRunner, gain_cdf_from_record
from repro.sim.metrics import format_cdf_table

N_SLOTS = 400
SEED = 2
PAPER_MEANS = {
    ("uplink", "brute"): 2.32,
    ("uplink", "fifo"): 1.9,
    ("uplink", "best2"): 2.08,
    ("downlink", "brute"): 1.58,
    ("downlink", "fifo"): 1.23,
    ("downlink", "best2"): 1.52,
}


def _run_all(testbed, direction):
    runner = ExperimentRunner(testbed)
    cdfs = {}
    for alg in ("brute", "fifo", "best2"):
        result = runner.run(
            "fig15",
            n_trials=1,
            seed=SEED,
            params={"algorithm": alg, "direction": direction, "n_slots": N_SLOTS},
        )
        cdfs[alg] = gain_cdf_from_record(
            result.records[0], label=f"{alg}/{direction}"
        )
    return cdfs


@pytest.mark.parametrize("direction", ["uplink", "downlink"])
def test_fig15_concurrency(benchmark, testbed, record, direction):
    cdfs = benchmark.pedantic(_run_all, args=(testbed, direction), rounds=1, iterations=1)

    for alg, cdf in cdfs.items():
        record(
            f"Fig. 15 ({direction})",
            f"{alg} mean gain",
            f"{PAPER_MEANS[(direction, alg)]}x",
            f"{cdf.mean_gain:.2f}x",
        )
    record(
        f"Fig. 15 ({direction})",
        "best2 worst client",
        ">= ~1x",
        f"{cdfs['best2'].min_gain:.2f}x",
    )
    print("\n" + format_cdf_table(list(cdfs.values()), n_rows=8))

    # Shape assertions from the paper's findings:
    # 1. every algorithm provides a significant average gain;
    for cdf in cdfs.values():
        assert cdf.mean_gain > 1.1
    # 2. brute force maximises mean throughput ...
    assert cdfs["brute"].mean_gain >= cdfs["best2"].mean_gain >= 0.9 * cdfs["fifo"].mean_gain
    # 3. ... but is unfair: its worst client drops below its 802.11 rate
    #    (in Fig. 15b a large fraction of clients do);
    assert cdfs["brute"].min_gain < 1.0
    if direction == "downlink":
        assert cdfs["brute"].fraction_below(1.0) > 0.15
    # ... while best-of-two never notably hurts anyone;
    assert cdfs["best2"].fraction_below(0.95) == 0.0
    # 4. best-of-two's worst client is far better off than brute force's.
    assert cdfs["best2"].min_gain > cdfs["brute"].min_gain
