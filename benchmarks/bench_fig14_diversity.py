"""Figure 14: single client, two APs -- IAC's diversity gain (paper §10.2).

Paper result: even with one active client (no multiplexing gain possible)
IAC gains ~1.2x by choosing among antenna combinations across both APs;
the relative gain is largest at low SNR.
"""

import numpy as np

from repro.sim.experiment import diversity_trial, run_scatter

N_TRIALS = 60


def _experiment(testbed):
    return run_scatter(
        diversity_trial, testbed, n_trials=N_TRIALS, n_clients=1, n_aps=2,
        seed=14, label="fig14",
    )


def test_fig14_diversity(benchmark, testbed, record):
    scatter = benchmark.pedantic(_experiment, args=(testbed,), rounds=1, iterations=1)

    record("Fig. 14 (1 client)", "mean gain", "1.2x", f"{scatter.mean_gain:.2f}x")

    dot11 = np.array([p.dot11 for p in scatter.points])
    gains = scatter.gains
    low = gains[dot11 <= np.median(dot11)]
    high = gains[dot11 > np.median(dot11)]
    record(
        "Fig. 14 (1 client)",
        "low-SNR vs high-SNR gain",
        "larger at low",
        f"{low.mean():.2f} vs {high.mean():.2f}",
    )

    print("\n  802.11 rate   IAC rate   gain")
    for p in sorted(scatter.points, key=lambda p: p.dot11)[:: max(1, N_TRIALS // 12)]:
        print(f"  {p.dot11:10.2f} {p.iac:10.2f} {p.gain:6.2f}")

    assert 1.02 < scatter.mean_gain < 1.5
    # IAC's options include the baseline's, so no point loses.
    assert gains.min() >= 1.0 - 1e-12
    # Diversity is "particularly beneficial at low rates".
    assert low.mean() >= high.mean()
