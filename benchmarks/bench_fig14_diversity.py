"""Figure 14: single client, two APs -- IAC's diversity gain (paper §10.2).

Paper result: even with one active client (no multiplexing gain possible)
IAC gains ~1.2x by choosing among antenna combinations across both APs;
the relative gain is largest at low SNR.
"""

import numpy as np

from repro.experiments import run_experiment, scatter_result

N_TRIALS = 60


def _experiment(testbed):
    return run_experiment(
        "fig14", n_trials=N_TRIALS, seed=14, testbed=testbed, workers=4
    )


def test_fig14_diversity(benchmark, testbed, record):
    result = benchmark.pedantic(_experiment, args=(testbed,), rounds=1, iterations=1)
    scatter = scatter_result(result)

    record("Fig. 14 (1 client)", "mean gain", "1.2x", f"{result.mean_gain:.2f}x")

    dot11 = result.metric("dot11")
    gains = result.metric("gain")
    low = gains[dot11 <= np.median(dot11)]
    high = gains[dot11 > np.median(dot11)]
    record(
        "Fig. 14 (1 client)",
        "low-SNR vs high-SNR gain",
        "larger at low",
        f"{low.mean():.2f} vs {high.mean():.2f}",
    )

    print("\n  802.11 rate   IAC rate   gain")
    for p in sorted(scatter.points, key=lambda p: p.dot11)[:: max(1, N_TRIALS // 12)]:
        print(f"  {p.dot11:10.2f} {p.iac:10.2f} {p.gain:6.2f}")

    assert 1.02 < result.mean_gain < 1.5
    # IAC's options include the baseline's, so no point loses.
    assert gains.min() >= 1.0 - 1e-12
    # Diversity is "particularly beneficial at low rates".
    assert low.mean() >= high.mean()
