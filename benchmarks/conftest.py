"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints a ``paper vs measured`` comparison.  Run with::

    pytest benchmarks/ --benchmark-only -s

(the ``-s`` keeps the comparison tables visible).  Results are also
accumulated and printed at the end of the session.
"""

import pytest

from repro.sim.testbed import Testbed, TestbedConfig

_RESULTS = []


@pytest.fixture(scope="session")
def testbed():
    """The 20-node, 2-antenna testbed of the paper's Fig. 11."""
    return Testbed(TestbedConfig(n_nodes=20, seed=2009))


@pytest.fixture
def record():
    """Record one (experiment, metric, paper value, measured value) row."""

    def _record(experiment: str, metric: str, paper, measured):
        _RESULTS.append((experiment, metric, paper, measured))
        print(f"\n[{experiment}] {metric}: paper={paper}  measured={measured}")

    return _record


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    lines = ["", "=" * 74, "PAPER vs MEASURED (all benchmarks)", "=" * 74]
    lines.append(f"{'experiment':<24} {'metric':<26} {'paper':>10} {'measured':>10}")
    for experiment, metric, paper, measured in _RESULTS:
        lines.append(f"{experiment:<24} {metric:<26} {str(paper):>10} {str(measured):>10}")
    print("\n".join(lines))
