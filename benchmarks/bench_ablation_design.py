"""Ablations of the design choices called out in DESIGN.md §5.

1. Free-vector optimisation: the alignment equations leave some encoding
   vectors free; scoring a handful of candidates (as the leader AP can,
   §7.2) vs the paper's bare random draw.
2. Receiver: max-SINR (MMSE) vs literal orthogonal projection under
   channel-estimation error (§8a: "slight inaccuracy ... only means the
   interference is not fully eliminated").
3. Cancellation residual: how stale channel estimates at the cancelling
   AP erode the later-stage packets.
"""

import numpy as np

from repro.core.alignment import solve_uplink_three_packets
from repro.core.decoder import decode_rate_level
from repro.sim.testbed import Testbed, TestbedConfig
from repro.utils.rng import spawn_rngs

N_TRIALS = 40
NOISE = 1.0  # testbed convention: pair gains are average SNRs


def _trials(testbed, **solver_kwargs):
    rates = []
    for rng in spawn_rngs(99, N_TRIALS):
        nodes = testbed.pick_nodes(4, rng)
        chans = testbed.channel_set(nodes[:2], nodes[2:])
        sol = solve_uplink_three_packets(
            chans, clients=nodes[:2], aps=nodes[2:], rng=rng, **solver_kwargs
        )
        rates.append(decode_rate_level(sol, chans, NOISE).total_rate)
    return float(np.mean(rates))


def test_ablation_free_vector_choice(benchmark, testbed, record):
    tuned = benchmark.pedantic(
        _trials, args=(testbed,), kwargs=dict(n_candidates=8), rounds=1, iterations=1
    )
    bare = _trials(testbed, n_candidates=1, optimize_free=False)
    record(
        "Ablation: free vectors",
        "tuned vs random rate",
        "tuned wins",
        f"{tuned:.2f} vs {bare:.2f} b/s/Hz",
    )
    assert tuned > bare


def test_ablation_receiver_under_estimation_error(benchmark, testbed, record):
    """Max-SINR degrades gracefully with noisy channel estimates; strict
    projection is more brittle."""
    def run():
        deltas = {"max_sinr": [], "projection": []}
        for rng in spawn_rngs(7, N_TRIALS):
            nodes = testbed.pick_nodes(4, rng)
            chans = testbed.channel_set(nodes[:2], nodes[2:])
            sol = solve_uplink_three_packets(chans, clients=nodes[:2], aps=nodes[2:], rng=rng)
            noisy = chans.perturbed(0.05, rng)
            for receiver in deltas:
                clean = decode_rate_level(sol, chans, NOISE, receiver=receiver).total_rate
                dirty = decode_rate_level(
                    sol, chans, NOISE, receiver=receiver, estimated_channels=noisy
                ).total_rate
                deltas[receiver].append(clean - dirty)
        return deltas

    deltas = benchmark.pedantic(run, rounds=1, iterations=1)
    loss_mmse = float(np.mean(deltas["max_sinr"]))
    loss_proj = float(np.mean(deltas["projection"]))
    record(
        "Ablation: receiver",
        "rate loss @5% est. error",
        "mmse <= proj",
        f"{loss_mmse:.2f} vs {loss_proj:.2f} b/s/Hz",
    )
    assert loss_mmse <= loss_proj + 0.25


def test_ablation_cancellation_residual(benchmark, testbed, record):
    """Sweep the residual left by imperfect cancellation (amplitude
    fraction) and show the graceful degradation the paper asserts."""
    residuals = [0.0, 0.03, 0.1, 0.3]

    def run():
        means = []
        for residual in residuals:
            rates = []
            for rng in spawn_rngs(11, N_TRIALS // 2):
                nodes = testbed.pick_nodes(4, rng)
                chans = testbed.channel_set(nodes[:2], nodes[2:])
                sol = solve_uplink_three_packets(
                    chans, clients=nodes[:2], aps=nodes[2:], rng=rng
                )
                rates.append(
                    decode_rate_level(
                        sol, chans, NOISE, cancellation_residual=residual
                    ).total_rate
                )
            means.append(float(np.mean(rates)))
        return means

    means = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n  residual   mean rate")
    for residual, rate in zip(residuals, means):
        print(f"  {residual:8.2f}   {rate:.2f} b/s/Hz")
    record(
        "Ablation: cancellation",
        "rate @0 vs @0.1 residual",
        "graceful",
        f"{means[0]:.2f} vs {means[2]:.2f} b/s/Hz",
    )
    # Monotone degradation, and small residuals cost little.
    assert all(a >= b - 1e-9 for a, b in zip(means, means[1:]))
    assert means[1] > 0.9 * means[0]
