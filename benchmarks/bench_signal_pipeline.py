"""Performance of the sample-level pipeline (the GNU-Radio analogue).

Not a paper figure: these are engineering benchmarks of the library
itself -- how fast the full modulate/mix/project/cancel/demodulate chain
runs, and that the §6 impairments do not change delivery.
"""

import numpy as np
import pytest

from repro.core import ChannelSet, SignalConfig, run_session, solve_uplink_three_packets
from repro.phy.channel.model import rayleigh_channel
from repro.phy.packet import Packet


@pytest.fixture(scope="module")
def scene():
    rng = np.random.default_rng(77)
    chans = ChannelSet(
        {(c, a): rayleigh_channel(2, 2, rng) for c in (0, 1) for a in (0, 1)}
    )
    solution = solve_uplink_three_packets(chans, rng=rng)
    payloads = {i: Packet.random(rng, 200, src=i, seq=i) for i in range(3)}
    return solution, chans, payloads


@pytest.mark.parametrize("modulation", ["bpsk", "qpsk", "qam16"])
def test_pipeline_throughput(benchmark, scene, modulation):
    solution, chans, payloads = scene
    config = SignalConfig(modulation=modulation, noise_power=1e-4)

    def run():
        return run_session(solution, chans, payloads, config, rng=np.random.default_rng(1))

    report = benchmark(run)
    assert report.all_delivered


def test_pipeline_with_full_impairments(benchmark, scene):
    solution, chans, payloads = scene
    config = SignalConfig(
        modulation="qpsk",
        fec="conv",
        noise_power=1e-3,
        cfo_spread=5e-5,
        max_timing_offset=16,
        estimate_channels=True,
    )

    def run():
        return run_session(solution, chans, payloads, config, rng=np.random.default_rng(2))

    report = benchmark(run)
    assert report.all_delivered


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_pipeline_engines(benchmark, scene, engine):
    """Fast (block tracker + batched Viterbi) vs scalar reference engine;
    ``repro bench`` records the same comparison in BENCH_signal.json."""
    solution, chans, payloads = scene
    config = SignalConfig(
        modulation="bpsk",
        fec="conv",
        noise_power=1e-3,
        cfo_spread=5e-5,
        max_timing_offset=16,
        engine=engine,
    )

    def run():
        return run_session(solution, chans, payloads, config, rng=np.random.default_rng(3))

    report = benchmark(run)
    assert report.all_delivered
