"""Integration benchmark: the full IAC WLAN under mobility.

Not a single paper figure but the paper's §7/§8 machinery working
together: association, ack-driven channel tracking with drift reports to
the leader, best-of-two scheduling, and rate-level IAC decoding against
*true* (moving) channels while the leader plans with its (tracked,
slightly stale) estimates.

Claims verified:

* in a static environment the tracked system matches the genie-static
  bound and sends no drift reports after association (§8a: "in static
  environments the channel ... can be easily tracked");
* under mobility, tracking recovers most of the rate lost to staleness
  ("slight inaccuracy ... only means that the interference is not fully
  eliminated; as long as most interference is eliminated, the loss in
  throughput stays negligible").
"""

import numpy as np

from repro.sim.wlan import WLANConfig, WLANSimulation

N_SLOTS = 80


def _run(rho, track, seed=9):
    sim = WLANSimulation(WLANConfig(n_clients=8, rho=rho, seed=seed))
    return sim.run(N_SLOTS, track=track)


def test_wlan_integration(benchmark, record):
    results = benchmark.pedantic(
        lambda: {
            "static": _run(rho=1.0, track=True),
            "mobile_tracked": _run(rho=0.97, track=True),
            "mobile_stale": _run(rho=0.97, track=False),
        },
        rounds=1,
        iterations=1,
    )

    static = results["static"].total_rate
    tracked = results["mobile_tracked"].total_rate
    stale = results["mobile_stale"].total_rate
    record(
        "WLAN integration",
        "static / tracked / stale rate",
        "static >= tracked > stale",
        f"{static:.1f} / {tracked:.1f} / {stale:.1f} b/s/Hz",
    )
    record(
        "WLAN integration",
        "drift reports (static)",
        "0 after assoc.",
        results["static"].drift_reports,
    )
    record(
        "WLAN integration",
        "drift reports (mobile)",
        "> 0",
        results["mobile_tracked"].drift_reports,
    )

    print("\n                   total rate   drift reports   update bytes")
    for name, stats in results.items():
        print(
            f"  {name:<16s} {stats.total_rate:11.2f}   {stats.drift_reports:13d}"
            f"   {stats.update_bytes:12d}"
        )

    assert results["static"].drift_reports == 0
    assert results["mobile_tracked"].drift_reports > 0
    assert tracked > stale  # tracking earns its keep
    # Tracking recovers a meaningful share of the mobility loss.
    if static > stale:
        recovered = (tracked - stale) / (static - stale)
        record("WLAN integration", "staleness loss recovered", "most", f"{recovered:.0%}")
