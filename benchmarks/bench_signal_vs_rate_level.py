"""Cross-validation: the signal-level pipeline vs the rate-level model.

DESIGN.md commits to two evaluation paths that must agree: the fast
rate-level decoder used by the large sweeps, and the sample-accurate
pipeline that validates the §6 practicality claims.  This benchmark runs
a miniature Fig.-12 experiment through *both* and compares the measured
gains -- if they diverge, the cheap path's conclusions would be suspect.
"""

import numpy as np

from repro.baselines.dot11_mimo import best_ap_link
from repro.core import SignalConfig, decode_rate_level, run_session, solve_uplink_three_packets
from repro.phy.packet import Packet
from repro.utils.rng import spawn_rngs

N_TRIALS = 8
PAYLOAD = 150


def _trial(testbed, rng):
    nodes = testbed.pick_nodes(4, rng)
    clients, aps = nodes[:2], nodes[2:]
    chans = testbed.channel_set(clients, aps)
    noise = testbed.noise_power

    dot11 = float(
        np.mean([best_ap_link(chans, c, aps, noise).rate for c in clients])
    )
    solution = solve_uplink_three_packets(
        chans, clients=tuple(clients), aps=tuple(aps), rng=rng
    )
    rate_level = decode_rate_level(solution, chans, noise).total_rate

    payloads = {
        pid: Packet.random(rng, PAYLOAD, src=solution.packet(pid).tx, seq=pid)
        for pid in (0, 1, 2)
    }
    session = run_session(
        solution,
        chans,
        payloads,
        SignalConfig(noise_power=noise, fec="conv", modulation="qpsk"),
        rng=rng,
    )
    return dot11, rate_level, session.total_rate, session.delivery_count


def _sweep(testbed):
    return [_trial(testbed, rng) for rng in spawn_rngs(88, N_TRIALS)]


def test_signal_level_agrees_with_rate_level(benchmark, testbed, record):
    rows = benchmark.pedantic(_sweep, args=(testbed,), rounds=1, iterations=1)

    dot11 = np.array([r[0] for r in rows])
    rate_level = np.array([r[1] for r in rows])
    signal_level = np.array([r[2] for r in rows])
    delivered = sum(r[3] for r in rows)

    gain_rate = float(np.mean(rate_level) / np.mean(dot11))
    gain_signal = float(np.mean(signal_level) / np.mean(dot11))
    record(
        "Signal vs rate level",
        "Fig.-12 gain (both paths)",
        "agree",
        f"rate {gain_rate:.2f}x, signal {gain_signal:.2f}x",
    )
    record(
        "Signal vs rate level",
        "packets delivered",
        f"{3 * N_TRIALS}",
        f"{delivered}",
    )
    print("\n  trial   802.11   rate-level   signal-level")
    for i, (d, rl, sl, _n) in enumerate(rows):
        print(f"  {i:5d}   {d:6.2f}   {rl:10.2f}   {sl:12.2f}")

    # The sample pipeline delivers (noise 1.0 on unit-ish gains is the
    # testbed's operating point; FEC covers the weak packets).
    assert delivered >= int(0.8 * 3 * N_TRIALS)
    # Implementation loss bounded: the signal-level gain keeps the win and
    # stays within ~35% of the rate-level prediction.
    assert gain_signal > 1.0
    assert abs(gain_signal - gain_rate) / gain_rate < 0.35
