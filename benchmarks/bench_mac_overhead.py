"""MAC metadata overhead (paper §7.1(e)).

Paper claim: the leader AP's per-group broadcast (client ids plus
encoding/decoding vectors, Fig. 10) costs "a few bytes per client-AP
pair"; with 1440-byte packets the metadata overhead is 1-2%, far below
IAC's 1.5-2x throughput gain.
"""

import numpy as np

from repro.mac.concurrency import FifoGrouping
from repro.mac.frames import DataPollMetadata, GroupEntry
from repro.mac.pcf import PCFConfig, PCFCoordinator
from repro.mac.queueing import TransmissionQueue


def _metadata(n_clients: int, n_antennas: int = 2) -> DataPollMetadata:
    entries = tuple(
        GroupEntry(
            client_id=i,
            ap_id=i % 3,
            encoding=(0j,) * n_antennas,
            decoding=(0j,) * n_antennas,
        )
        for i in range(n_clients)
    )
    return DataPollMetadata(frame_id=1, n_aps=3, entries=entries)


def _protocol_run(n_rounds: int = 50, n_clients: int = 9) -> PCFCoordinator:
    coord = PCFCoordinator(
        downlink=TransmissionQueue(),
        uplink=TransmissionQueue(),
        selector=FifoGrouping(group_size=3),
        evaluate=lambda group: float(len(group)),
        transmit=lambda direction, group: {cid: 20.0 for cid in group},
        config=PCFConfig(payload_bytes=1440),
    )
    for _ in range(n_rounds):
        for c in range(n_clients):
            coord.enqueue_downlink(c)
            coord.enqueue_uplink(c)
        coord.run_round()
    return coord


def test_metadata_overhead_static(benchmark, record):
    """Static frame accounting, exactly the paper's 1440-byte case."""
    meta = benchmark.pedantic(_metadata, args=(3,), rounds=1, iterations=1)
    overhead = meta.metadata_overhead(payload_bytes=1440)
    record("§7.1(e) overhead", "metadata / payload", "1-2%", f"{overhead * 100:.2f}%")
    assert 0.005 <= overhead <= 0.025

    print("\n  group size   metadata bytes   overhead@1440B")
    for k in (1, 2, 3, 4, 6):
        m = _metadata(k)
        print(f"  {k:10d}   {m.nbytes():14d}   {m.metadata_overhead(1440) * 100:8.2f}%")


def test_metadata_overhead_protocol(benchmark, record):
    """The same claim measured through the live PCF machinery."""
    coord = benchmark.pedantic(_protocol_run, rounds=1, iterations=1)
    stats = coord.stats
    metadata_fraction = stats.metadata_bytes / stats.payload_bytes_delivered
    record(
        "§7.1(e) overhead",
        "protocol-run metadata",
        "1-2%",
        f"{metadata_fraction * 100:.2f}%",
    )
    total_control = stats.overhead_fraction()
    record(
        "§7.1(e) overhead",
        "all control (acks+beacons)",
        "few %",
        f"{total_control * 100:.2f}%",
    )
    assert metadata_fraction < 0.025
    assert total_control < 0.06
