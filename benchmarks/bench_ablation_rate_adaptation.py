"""Rate adaptation: IAC's gain through a real MCS staircase (§10(f)).

The paper justifies its achievable-rate metric by noting GNU-Radio lacks
rate adaptation: "in an actual wireless product, the higher SNR system
would use better modulation and coding schemes to achieve a higher
throughput".  Having built rate adaptation (:mod:`repro.phy.mimo.mcs`),
this benchmark replays the Fig. 12 experiment with *discrete* MCS-based
throughput instead of Eq. 9 -- confirming IAC's gain is not an artefact
of the continuous log2(1+SNR) metric.
"""

import numpy as np

from repro.baselines.dot11_mimo import best_ap_link
from repro.core.alignment import solve_uplink_three_packets
from repro.core.decoder import decode_rate_level
from repro.phy.mimo.eigenmode import eigenmode_link
from repro.phy.mimo.mcs import effective_throughput
from repro.utils.rng import spawn_rngs

N_TRIALS = 40


def _mcs_rate_from_snrs(snrs_linear) -> float:
    return float(
        sum(effective_throughput(10 * np.log10(max(s, 1e-12))) for s in snrs_linear)
    )


def _trial(testbed, rng):
    nodes = testbed.pick_nodes(4, rng)
    clients, aps = nodes[:2], nodes[2:]
    chans = testbed.channel_set(clients, aps)
    noise = testbed.noise_power

    # 802.11-MIMO: per-client eigenmode stream SNRs -> MCS staircase.
    dot11_rates = []
    for c in clients:
        link = best_ap_link(chans, c, aps, noise)
        dot11_rates.append(_mcs_rate_from_snrs(link.modes.stream_snrs()))
    dot11 = float(np.mean(dot11_rates))

    # IAC: per-packet post-projection SINRs -> the same staircase.
    iac_rates = []
    for first in range(2):
        ordered = (clients[first], clients[1 - first])
        solution = solve_uplink_three_packets(chans, clients=ordered, aps=tuple(aps), rng=rng)
        report = decode_rate_level(solution, chans, noise)
        iac_rates.append(_mcs_rate_from_snrs(report.sinrs.values()))
    iac = float(np.mean(iac_rates))
    return dot11, iac


def _sweep(testbed):
    pairs = [_trial(testbed, rng) for rng in spawn_rngs(121, N_TRIALS)]
    dot11 = np.array([p[0] for p in pairs])
    iac = np.array([p[1] for p in pairs])
    return dot11, iac


def test_rate_adaptation_preserves_gain(benchmark, testbed, record):
    dot11, iac = benchmark.pedantic(_sweep, args=(testbed,), rounds=1, iterations=1)
    keep = dot11 > 0
    gain = float(np.mean(iac[keep]) / np.mean(dot11[keep]))
    record(
        "Rate adaptation",
        "Fig.-12 gain via MCS staircase",
        "~1.5x (Eq. 9: 1.38x)",
        f"{gain:.2f}x",
    )
    print("\n  mean 802.11 MCS throughput:", round(float(np.mean(dot11)), 2), "b/s/Hz")
    print("  mean IAC    MCS throughput:", round(float(np.mean(iac)), 2), "b/s/Hz")
    # The discrete staircase must preserve the multiplexing win.
    assert gain > 1.2
