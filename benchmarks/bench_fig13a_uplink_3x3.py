"""Figure 13a: 3-client / 3-AP uplink scatter (paper §10.1).

Paper result: four concurrent packets via the eigenvector alignment of
Eqs. 3-4; average transfer-rate gain ~1.8x over 802.11-MIMO, at both low
and high SNRs.
"""

import numpy as np

from repro.experiments import run_experiment, scatter_result

N_TRIALS = 40


def _experiment(testbed):
    return run_experiment(
        "fig13a", n_trials=N_TRIALS, seed=131, testbed=testbed, workers=4
    )


def test_fig13a_uplink_3x3(benchmark, testbed, record):
    result = benchmark.pedantic(_experiment, args=(testbed,), rounds=1, iterations=1)
    scatter = scatter_result(result)

    record("Fig. 13a (3x3 uplink)", "mean gain", "1.8x", f"{result.mean_gain:.2f}x")

    print("\n  802.11 rate   IAC rate   gain")
    for p in sorted(scatter.points, key=lambda p: p.dot11)[:: max(1, N_TRIALS // 12)]:
        print(f"  {p.dot11:10.2f} {p.iac:10.2f} {p.gain:6.2f}")

    assert 1.4 < result.mean_gain < 2.2

    # "These gains are achieved at both low and high rates": split the
    # points at the median baseline rate and require a gain on both sides.
    dot11 = result.metric("dot11")
    gains = result.metric("gain")
    low = gains[dot11 <= np.median(dot11)]
    high = gains[dot11 > np.median(dot11)]
    assert low.mean() > 1.2 and high.mean() > 1.2
