"""Figure 16: channel reciprocity accuracy (paper §10.4).

Paper result: across 17 client-AP pairs (each measured at 5 locations
after calibration), the fractional error of reciprocity-based downlink
estimates stays small -- roughly 0.05-0.2 -- even though the client moved
between calibration and use.
"""

import numpy as np

from repro.sim.experiment import reciprocity_experiment


def _experiment(testbed):
    return reciprocity_experiment(testbed, n_pairs=17, n_moves=5, seed=16)


def test_fig16_reciprocity(benchmark, testbed, record):
    errors = benchmark.pedantic(_experiment, args=(testbed,), rounds=1, iterations=1)

    record(
        "Fig. 16 (reciprocity)",
        "fractional error range",
        "~0.05-0.2",
        f"{min(errors):.3f}-{max(errors):.3f}",
    )
    record("Fig. 16 (reciprocity)", "mean error", "~0.1", f"{np.mean(errors):.3f}")

    print("\n  client   fractional error")
    for i, err in enumerate(errors, 1):
        print(f"  {i:6d}   {err:.3f} {'#' * int(err * 100)}")

    # Shape: errors are small for every client and never catastrophic.
    assert max(errors) < 0.3
    assert np.mean(errors) < 0.2
    assert min(errors) > 0.0
