"""Figure 16: channel reciprocity accuracy (paper §10.4).

Paper result: across 17 client-AP pairs (each measured at 5 locations
after calibration), the fractional error of reciprocity-based downlink
estimates stays small -- roughly 0.05-0.2 -- even though the client moved
between calibration and use.
"""

import numpy as np

from repro.experiments import run_experiment


def _experiment(testbed):
    return run_experiment("fig16", n_trials=17, seed=16, testbed=testbed, workers=4)


def test_fig16_reciprocity(benchmark, testbed, record):
    result = benchmark.pedantic(_experiment, args=(testbed,), rounds=1, iterations=1)
    errors = result.metric("error")

    record(
        "Fig. 16 (reciprocity)",
        "fractional error range",
        "~0.05-0.2",
        f"{errors.min():.3f}-{errors.max():.3f}",
    )
    record("Fig. 16 (reciprocity)", "mean error", "~0.1", f"{errors.mean():.3f}")

    print("\n  client   fractional error")
    for i, err in enumerate(errors, 1):
        print(f"  {i:6d}   {err:.3f} {'#' * int(err * 100)}")

    # Shape: errors are small for every client and never catastrophic.
    assert errors.max() < 0.3
    assert np.mean(errors) < 0.2
    assert errors.min() > 0.0
