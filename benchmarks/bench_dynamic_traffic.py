"""Dynamic-workload benchmark: the WLAN under load, bursts and churn.

Not a paper figure — the paper's WLAN is saturated — but the queueing
behaviour every dynamic scenario builds on, verified end to end:

* **load-latency knee**: Poisson arrivals at 20% / 60% / 95% of the
  3-packet/slot service capacity; latency must grow monotonically with
  load while idling vanishes (the M/G/-like knee);
* **burstiness tax**: ON/OFF arrivals at the *same mean load* as a
  Poisson run must queue significantly worse — delay is driven by
  arrival variance, not volume;
* **saturated limit**: the dynamic machinery with ``saturated`` traffic
  reproduces the pre-dynamic simulation's trajectory exactly, so all
  dynamic results remain anchored to the paper's regime.
"""

from repro.sim.wlan import WLANConfig, WLANSimulation

N_SLOTS = 200
N_CLIENTS = 8


def _poisson(load, seed=21):
    config = WLANConfig(
        n_clients=N_CLIENTS, rho=1.0, seed=seed,
        traffic="poisson",
        traffic_params={"rate_per_client": load * 3 / N_CLIENTS},
    )
    return WLANSimulation(config).run(N_SLOTS)


def test_dynamic_traffic(benchmark, record):
    results = benchmark.pedantic(
        lambda: {
            "load_0.2": _poisson(0.2),
            "load_0.6": _poisson(0.6),
            "load_0.95": _poisson(0.95),
            "bursty_0.6": WLANSimulation(
                WLANConfig(
                    n_clients=N_CLIENTS, rho=1.0, seed=21,
                    traffic="bursty",
                    traffic_params={
                        "rate_on": 0.6 * 3 / N_CLIENTS / 0.25,
                        "p_on": 0.05, "p_off": 0.15,
                    },
                )
            ).run(N_SLOTS),
        },
        rounds=1,
        iterations=1,
    )

    latencies = [
        results[k].mean_latency_slots
        for k in ("load_0.2", "load_0.6", "load_0.95")
    ]
    record(
        "dynamic traffic",
        "latency @ load .2/.6/.95",
        "monotone knee",
        " / ".join(f"{lat:.2f}" for lat in latencies),
    )
    record(
        "dynamic traffic",
        "idle fraction @ load .2/.95",
        "high -> ~0",
        f"{results['load_0.2'].idle_fraction:.0%} -> "
        f"{results['load_0.95'].idle_fraction:.0%}",
    )
    record(
        "dynamic traffic",
        "bursty vs poisson latency @ 0.6",
        "bursty worse",
        f"{results['bursty_0.6'].mean_latency_slots:.2f} vs "
        f"{results['load_0.6'].mean_latency_slots:.2f} slots",
    )

    print("\n              latency   queue mean/max   idle   delivered")
    for name, stats in results.items():
        print(
            f"  {name:<11s} {stats.mean_latency_slots:7.2f}"
            f"   {stats.mean_queue_depth:6.1f}/{stats.max_queue_depth:<4d}"
            f"   {stats.idle_fraction:4.0%}   {stats.delivered_packets:6d}"
        )

    assert latencies[0] < latencies[1] < latencies[2]
    assert results["load_0.2"].idle_fraction > results["load_0.95"].idle_fraction
    assert (
        results["bursty_0.6"].mean_latency_slots
        > results["load_0.6"].mean_latency_slots
    )

    # The saturated limiting case is the legacy simulation, bit for bit.
    explicit = WLANSimulation(
        WLANConfig(n_clients=6, rho=0.98, seed=9, traffic="saturated")
    ).run(60)
    legacy = WLANSimulation(WLANConfig(n_clients=6, rho=0.98, seed=9)).run(60)
    assert explicit.per_client_rate == legacy.per_client_rate
    record(
        "dynamic traffic",
        "saturated limit == legacy sim",
        "bit-identical",
        "yes",
    )
