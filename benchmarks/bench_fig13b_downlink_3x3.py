"""Figure 13b: 3-client / 3-AP downlink scatter (paper §10.1).

Paper result: three concurrent downlink packets via Eqs. 5-7 (clients
decode independently); average gain ~1.4x, lower than the uplink's 1.8x
because the downlink cannot use wired cancellation.
"""

from repro.experiments import run_experiment, scatter_result

N_TRIALS = 40


def _experiment(testbed):
    return run_experiment(
        "fig13b", n_trials=N_TRIALS, seed=132, testbed=testbed, workers=4
    )


def test_fig13b_downlink_3x3(benchmark, testbed, record):
    result = benchmark.pedantic(_experiment, args=(testbed,), rounds=1, iterations=1)
    scatter = scatter_result(result)

    record("Fig. 13b (3x3 downlink)", "mean gain", "1.4x", f"{result.mean_gain:.2f}x")

    print("\n  802.11 rate   IAC rate   gain")
    for p in sorted(scatter.points, key=lambda p: p.dot11)[:: max(1, N_TRIALS // 12)]:
        print(f"  {p.dot11:10.2f} {p.iac:10.2f} {p.gain:6.2f}")

    assert 1.1 < result.mean_gain < 1.7

    # Ordering across the two halves of Fig. 13: uplink gain > downlink gain.
    uplink = run_experiment("fig13a", n_trials=N_TRIALS, seed=132, testbed=testbed)
    record(
        "Fig. 13 ordering",
        "uplink gain > downlink",
        "1.8 > 1.4",
        f"{uplink.mean_gain:.2f} > {result.mean_gain:.2f}",
    )
    assert uplink.mean_gain > result.mean_gain
