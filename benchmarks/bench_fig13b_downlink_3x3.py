"""Figure 13b: 3-client / 3-AP downlink scatter (paper §10.1).

Paper result: three concurrent downlink packets via Eqs. 5-7 (clients
decode independently); average gain ~1.4x, lower than the uplink's 1.8x
because the downlink cannot use wired cancellation.
"""

import numpy as np

from repro.sim.experiment import downlink_3x3_trial, run_scatter, uplink_3x3_trial

N_TRIALS = 40


def _experiment(testbed):
    return run_scatter(
        downlink_3x3_trial, testbed, n_trials=N_TRIALS, n_clients=3, n_aps=3,
        seed=132, label="fig13b",
    )


def test_fig13b_downlink_3x3(benchmark, testbed, record):
    scatter = benchmark.pedantic(_experiment, args=(testbed,), rounds=1, iterations=1)

    record("Fig. 13b (3x3 downlink)", "mean gain", "1.4x", f"{scatter.mean_gain:.2f}x")

    print("\n  802.11 rate   IAC rate   gain")
    for p in sorted(scatter.points, key=lambda p: p.dot11)[:: max(1, N_TRIALS // 12)]:
        print(f"  {p.dot11:10.2f} {p.iac:10.2f} {p.gain:6.2f}")

    assert 1.1 < scatter.mean_gain < 1.7

    # Ordering across the two halves of Fig. 13: uplink gain > downlink gain.
    uplink = run_scatter(
        uplink_3x3_trial, testbed, n_trials=N_TRIALS, n_clients=3, n_aps=3, seed=132
    )
    record(
        "Fig. 13 ordering",
        "uplink gain > downlink",
        "1.8 > 1.4",
        f"{uplink.mean_gain:.2f} > {scatter.mean_gain:.2f}",
    )
    assert uplink.mean_gain > scatter.mean_gain
