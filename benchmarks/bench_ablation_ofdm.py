"""The §6c conjecture: per-subcarrier alignment on selective channels.

The paper conjectures that on non-flat channels "one can still do the
alignment separately in each OFDM subcarrier without trying to synchronize
the transmitters", and that for moderate channel widths even a single
band-wide alignment stays acceptable because "nearby subcarriers typically
have similar frequency response".  The authors could not test this on
USRP1 hardware; this benchmark tests it in simulation.

Sweep: RMS delay spread from 0 (flat) to 4 samples over a 64-bin OFDM
grid; compare the band rate of per-subcarrier alignment vs a single flat
alignment computed at the band centre.

The experiment itself is the registered ``ofdm_subcarrier`` scenario
(:mod:`repro.experiments.ofdm_scenarios`) — this benchmark and
``repro sweep ofdm_subcarrier --grid delay_spread=0,0.5,1,2,4`` drive
the identical code path through the experiment runner.
"""

from repro.experiments import ExperimentRunner

DELAY_SPREADS = [0.0, 0.5, 1.0, 2.0, 4.0]
N_FFT = 64
N_BINS = 12
NOISE = 1e-3


def _run_sweep():
    runner = ExperimentRunner()
    rows = []
    for spread in DELAY_SPREADS:
        result = runner.run(
            "ofdm_subcarrier",
            n_trials=1,
            seed=int(spread * 10) + 63,
            params={
                "delay_spread": spread,
                "n_fft": N_FFT,
                "n_bins": N_BINS,
                "noise_power": NOISE,
            },
        )
        m = result.records[0].metrics
        rows.append(
            (
                spread,
                int(m["coherence_bins"]),
                m["per_subcarrier_rate"],
                m["flat_rate"],
            )
        )
    return rows


def test_ofdm_subcarrier_alignment_conjecture(benchmark, record):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    print("\n  delay spread  coherence(bins)  per-subcarrier  flat-approx  ratio")
    for spread, coherence, per_sc, flat in rows:
        ratio = flat / per_sc
        print(
            f"  {spread:12.1f}  {coherence:15d}  {per_sc:14.2f}  {flat:11.2f}  {ratio:5.2f}"
        )

    flat_ratio_at_0 = rows[0][3] / rows[0][2]
    flat_ratio_at_max = rows[-1][3] / rows[-1][2]
    record(
        "§6c conjecture",
        "per-subcarrier holds rate",
        "yes",
        f"{rows[-1][2]:.1f} b/s/Hz at spread {DELAY_SPREADS[-1]}",
    )
    record(
        "§6c conjecture",
        "flat approx degrades",
        "with dispersion",
        f"ratio {flat_ratio_at_0:.2f} -> {flat_ratio_at_max:.2f}",
    )

    per_sc_rates = [r[2] for r in rows]
    # Per-subcarrier alignment is insensitive to delay spread ...
    assert min(per_sc_rates) > 0.7 * max(per_sc_rates)
    # ... while the band-wide flat approximation decays with dispersion ...
    assert flat_ratio_at_max < flat_ratio_at_0 - 0.1
    # ... but stays acceptable for moderate spreads (the paper's wording).
    moderate_ratio = rows[1][3] / rows[1][2]
    assert moderate_ratio > 0.7
