"""The §6c conjecture: per-subcarrier alignment on selective channels.

The paper conjectures that on non-flat channels "one can still do the
alignment separately in each OFDM subcarrier without trying to synchronize
the transmitters", and that for moderate channel widths even a single
band-wide alignment stays acceptable because "nearby subcarriers typically
have similar frequency response".  The authors could not test this on
USRP1 hardware; this benchmark tests it in simulation.

Sweep: RMS delay spread from 0 (flat) to 4 samples over a 64-bin OFDM
grid; compare the band rate of per-subcarrier alignment vs a single flat
alignment computed at the band centre.
"""

import functools

import numpy as np

from repro.core.alignment import solve_uplink_three_packets
from repro.core.ofdm_alignment import conjecture_experiment
from repro.phy.channel.selective import MultiTapChannel, exponential_pdp

DELAY_SPREADS = [0.0, 0.5, 1.0, 2.0, 4.0]
N_FFT = 64
N_BINS = 12
NOISE = 1e-3


def _run_sweep():
    rows = []
    for spread in DELAY_SPREADS:
        rng = np.random.default_rng(int(spread * 10) + 63)
        pdp = exponential_pdp(8, spread)
        selective = {
            (c, a): MultiTapChannel.random(2, 2, pdp, rng)
            for c in (0, 1)
            for a in (0, 1)
        }
        solver = functools.partial(solve_uplink_three_packets, rng=rng, n_candidates=2)
        results = conjecture_experiment(
            selective, solver, n_fft=N_FFT, n_bins=N_BINS, noise_power=NOISE
        )
        coherence = selective[(0, 0)].coherence_bandwidth_bins(N_FFT)
        rows.append(
            (
                spread,
                coherence,
                results["per_subcarrier"].total_rate,
                results["flat_approximation"].total_rate,
            )
        )
    return rows


def test_ofdm_subcarrier_alignment_conjecture(benchmark, record):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    print("\n  delay spread  coherence(bins)  per-subcarrier  flat-approx  ratio")
    for spread, coherence, per_sc, flat in rows:
        ratio = flat / per_sc
        print(
            f"  {spread:12.1f}  {coherence:15d}  {per_sc:14.2f}  {flat:11.2f}  {ratio:5.2f}"
        )

    flat_ratio_at_0 = rows[0][3] / rows[0][2]
    flat_ratio_at_max = rows[-1][3] / rows[-1][2]
    record(
        "§6c conjecture",
        "per-subcarrier holds rate",
        "yes",
        f"{rows[-1][2]:.1f} b/s/Hz at spread {DELAY_SPREADS[-1]}",
    )
    record(
        "§6c conjecture",
        "flat approx degrades",
        "with dispersion",
        f"ratio {flat_ratio_at_0:.2f} -> {flat_ratio_at_max:.2f}",
    )

    per_sc_rates = [r[2] for r in rows]
    # Per-subcarrier alignment is insensitive to delay spread ...
    assert min(per_sc_rates) > 0.7 * max(per_sc_rates)
    # ... while the band-wide flat approximation decays with dispersion ...
    assert flat_ratio_at_max < flat_ratio_at_0 - 0.1
    # ... but stays acceptable for moderate spreads (the paper's wording).
    moderate_ratio = rows[1][3] / rows[1][2]
    assert moderate_ratio > 0.7
