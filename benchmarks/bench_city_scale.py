"""City-scale benchmark: clients simulated per second vs worker count.

Not a paper figure — the paper's testbed is one interference
neighbourhood — but the §11 conjecture taken to deployment scale: a
grid of cells, each a full ``WLANSimulation`` with its own elected
leader, coupled only by slot-barrier boundary interference
(:mod:`repro.sim.multicell`).  Measured here:

* **throughput vs workers**: client-slots simulated per wall second at
  1, 2 and 4 shard processes.  The sharded executor is real process
  parallelism, so the scaling is honest to the host: it climbs with
  worker count on multi-core machines and *inverts* on a single-core
  one (forks and pipes cost, spare cores pay) — which is why the
  recorded ``cpu_count`` travels with the numbers;
* **worker-count bit-identity**: whatever the wall clock does, every
  worker count must produce the same ``MultiCellStats.digest()`` — the
  subsystem's correctness contract, asserted here and in CI;
* **boundary-interference tax**: the coupled city must deliver less
  than the same city with its coupling zeroed, and the gap must come
  with non-zero recorded edge floors.
"""

import os

from repro.sim.multicell import MultiCellConfig, MultiCellSimulation

N_CELLS = 16
CLIENTS_PER_CELL = 8
N_SLOTS = 40
WORKER_COUNTS = (1, 2, 4)


def _config(**overrides):
    defaults = dict(
        n_cells=N_CELLS,
        clients_per_cell=CLIENTS_PER_CELL,
        barrier_slots=10,
        seed=21,
    )
    defaults.update(overrides)
    return MultiCellConfig(**defaults)


def test_city_scale(benchmark, record):
    import time

    config = _config()

    def run_all():
        results = {}
        for workers in WORKER_COUNTS:
            start = time.perf_counter()
            stats = MultiCellSimulation(config).run(N_SLOTS, workers=workers)
            seconds = time.perf_counter() - start
            results[workers] = (stats, seconds)
        quiet = MultiCellSimulation(_config(interference_radius=0.5)).run(
            N_SLOTS
        )
        return results, quiet

    results, quiet = benchmark.pedantic(run_all, rounds=1, iterations=1)

    n_client_slots = config.n_clients * N_SLOTS
    rates = {
        w: n_client_slots / seconds for w, (_, seconds) in results.items()
    }
    record(
        "city scale",
        "client-slots/s @ 1/2/4 workers",
        f"scales with {os.cpu_count()} cpu(s)",
        " / ".join(f"{rates[w]:.0f}" for w in WORKER_COUNTS),
    )

    digests = {w: stats.digest() for w, (stats, _) in results.items()}
    assert len(set(digests.values())) == 1
    record("city scale", "bit-identical across workers", "yes", "yes")

    coupled = results[1][0]
    record(
        "city scale",
        "network rate coupled vs quiet",
        "coupled lower",
        f"{coupled.network_rate:.1f} vs {quiet.network_rate:.1f} b/s/Hz",
    )
    print(
        f"\n  {config.n_cells} cells x {config.clients_per_cell} clients, "
        f"{N_SLOTS} slots: Jain {coupled.jain_fairness:.2f}, "
        f"edge floor mean/max {coupled.mean_interference_floor:.3f}/"
        f"{coupled.max_interference_floor:.3f}"
    )
    assert coupled.max_interference_floor > 0.0
    assert quiet.max_interference_floor == 0.0
    assert coupled.network_rate < quiet.network_rate
