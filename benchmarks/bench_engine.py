"""Engine benchmark: batched group evaluation vs the scalar reference.

The batched engine (:mod:`repro.engine`) must (a) produce the same WLAN
trajectory as the scalar reference path and (b) be meaningfully faster on
the selector-probe hot path — the PR that introduced it targets >= 3x on
``run(200)`` at 12 clients (see ``BENCH_wlan.json`` for the recorded
acceptance run; this harness uses a smaller workload to stay quick).
"""

import time

import numpy as np

from repro.sim.wlan import WLANConfig, WLANSimulation

N_SLOTS = 60
N_CLIENTS = 10


def _run(engine, seed=11):
    sim = WLANSimulation(
        WLANConfig(n_clients=N_CLIENTS, rho=0.99, seed=seed, engine=engine)
    )
    start = time.perf_counter()
    stats = sim.run(N_SLOTS)
    return stats, time.perf_counter() - start, sim


def test_engine_speedup(benchmark, record):
    results = benchmark.pedantic(
        lambda: {engine: _run(engine) for engine in ("scalar", "batched")},
        rounds=1,
        iterations=1,
    )
    scalar_stats, scalar_s, _ = results["scalar"]
    batched_stats, batched_s, sim = results["batched"]

    speedup = scalar_s / batched_s
    info = sim.evaluator.cache_info()
    record(
        "engine",
        f"run({N_SLOTS}) @ {N_CLIENTS} clients",
        ">= 3x on run(200)@12",
        f"{speedup:.2f}x ({scalar_s*1e3:.0f} -> {batched_s*1e3:.0f} ms)",
    )
    record(
        "engine",
        "memoisation hit rate",
        "> 0",
        f"{info['hits']}/{info['hits'] + info['misses']}",
    )

    # Numerical equivalence: identical trajectories, identical stats.
    assert batched_stats.drift_reports == scalar_stats.drift_reports
    for client, rate in scalar_stats.per_client_rate.items():
        assert np.isclose(batched_stats.per_client_rate[client], rate, rtol=1e-9)
    assert speedup > 1.5  # loose floor; the acceptance run is in BENCH_wlan.json
