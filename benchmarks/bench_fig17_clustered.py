"""Figure 17: clustered MIMO ad-hoc networks (paper §11).

Paper conjecture: clustered networks are bottlenecked by slow inter-
cluster links; a cluster's nodes can play the role of IAC's AP set using
their fast intra-cluster links as the "Ethernet", and "IAC can double the
throughput of the inter-cluster bottleneck links".
"""

import numpy as np

from repro.sim.clustered import ClusteredConfig, ClusteredNetwork

N_TOPOLOGIES = 10


def _sweep():
    gains = []
    rows = []
    for seed in range(N_TOPOLOGIES):
        net = ClusteredNetwork(ClusteredConfig(nodes_per_cluster=3, seed=seed))
        dot11 = net.flow_throughput("dot11")
        iac = net.flow_throughput("iac")
        rows.append((seed, dot11, iac, iac / dot11))
        gains.append(iac / dot11)
    return rows, gains


def test_fig17_clustered_networks(benchmark, record):
    rows, gains = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print("\n  topology   802.11 flow   IAC flow   gain")
    for seed, dot11, iac, gain in rows:
        print(f"  {seed:8d}   {dot11:11.2f}   {iac:8.2f}   {gain:4.2f}")

    record(
        "Fig. 17 (clustered)",
        "bottleneck flow gain",
        "up to ~2x",
        f"mean {np.mean(gains):.2f}x, max {np.max(gains):.2f}x",
    )

    # Every topology benefits; the average gain is substantial.
    assert min(gains) > 1.0
    assert 1.2 < np.mean(gains) < 2.2
