"""Figure 17: clustered MIMO ad-hoc networks (paper §11).

Paper conjecture: clustered networks are bottlenecked by slow inter-
cluster links; a cluster's nodes can play the role of IAC's AP set using
their fast intra-cluster links as the "Ethernet", and "IAC can double the
throughput of the inter-cluster bottleneck links".
"""

import numpy as np

from repro.experiments import run_experiment

N_TOPOLOGIES = 10


def _sweep():
    return run_experiment("fig17", n_trials=N_TOPOLOGIES, workers=4)


def test_fig17_clustered_networks(benchmark, record):
    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    gains = result.metric("gain")

    print("\n  topology   802.11 flow   IAC flow   gain")
    for r in result.records:
        m = r.metrics
        print(
            f"  {int(m['topology_seed']):8d}   {m['dot11_flow']:11.2f}   "
            f"{m['iac_flow']:8.2f}   {m['gain']:4.2f}"
        )

    record(
        "Fig. 17 (clustered)",
        "bottleneck flow gain",
        "up to ~2x",
        f"mean {gains.mean():.2f}x, max {gains.max():.2f}x",
    )

    # Every topology benefits; the average gain is substantial.
    assert gains.min() > 1.0
    assert 1.2 < gains.mean() < 2.2
