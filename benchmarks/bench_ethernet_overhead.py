"""Ethernet overhead: IAC vs virtual MIMO (paper §2(a), §7.1(d)).

Paper claims:

* virtual MIMO must ship raw signal samples -- "to jointly decode three
  APs with four antennas each, one needs to send 6 Gb/s on the Ethernet";
* IAC ships *decoded packets*, so "the Ethernet traffic remains
  comparable to the wireless throughput" -- each decoded packet crosses
  the hub once (§7.1(d)).
"""

import numpy as np

from repro.core import ChannelSet, SignalConfig, run_session, solve_uplink_three_packets
from repro.net.ethernet import EthernetHub, HubFrame, virtual_mimo_sample_bytes
from repro.phy.channel.model import rayleigh_channel
from repro.phy.packet import Packet


def test_virtual_mimo_vs_iac_bytes(benchmark, record):
    """Reproduce the 6 Gb/s headline and the per-packet comparison."""
    # The paper's example: 3 APs, 4 antennas, 20 MHz -> 40 Msamples/s.
    per_second = benchmark.pedantic(
        virtual_mimo_sample_bytes,
        kwargs=dict(n_aps=3, n_antennas=4, n_samples=40_000_000),
        rounds=1, iterations=1,
    )
    record("§2(a) Ethernet", "virtual-MIMO rate", "6 Gb/s", f"{per_second * 8 / 1e9:.1f} Gb/s")
    assert 3.0 < per_second * 8 / 1e9 < 12.0

    # Per delivered 1500-byte packet (BPSK: 12000 samples), 2 APs 2 antennas:
    vm = virtual_mimo_sample_bytes(n_aps=2, n_antennas=2, n_samples=12_000)
    iac = 1500
    record("§2(a) Ethernet", "bytes/packet ratio VM:IAC", ">>1", f"{vm / iac:.0f}:1")
    assert vm / iac > 20


def _signal_session():
    rng = np.random.default_rng(3)
    chans = ChannelSet(
        {(c, a): rayleigh_channel(2, 2, rng) for c in (0, 1) for a in (0, 1)}
    )
    solution = solve_uplink_three_packets(chans, rng=rng)
    payloads = {i: Packet.random(rng, 1500, src=i, seq=i) for i in range(3)}
    return run_session(solution, chans, payloads, SignalConfig(noise_power=1e-4), rng=rng)


def test_iac_ethernet_comparable_to_wireless(benchmark, record):
    """Measured on the signal-level pipeline: one wire crossing per
    decoded packet needed by a later stage."""
    report = benchmark.pedantic(_signal_session, rounds=1, iterations=1)
    wireless_payload = 3 * 1500
    ratio = report.ethernet_bytes / wireless_payload
    record(
        "§7.1(d) Ethernet",
        "wire bytes / wireless bytes",
        "<= ~1",
        f"{ratio:.2f}",
    )
    assert report.all_delivered
    assert ratio <= 1.0  # only packet 0 crosses the wire in this topology


def test_hub_broadcast_counts_once(benchmark, record):
    """§7.1(d): with a hub, 'every packet is transmitted once and there
    is no extra overhead' regardless of the number of listening APs."""
    def run():
        totals = []
        for n_aps in (2, 3, 6):
            hub = EthernetHub()
            for port in range(n_aps):
                hub.attach(port)
            hub.broadcast(HubFrame(src_port=0, payload_bytes=1500))
            totals.append(hub.total_bytes)
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert totals == [1500, 1500, 1500]
    record("§7.1(d) Ethernet", "hub bytes per packet", "1500", "1500 (any #APs)")
