"""Lemmas 5.1 / 5.2: the multiplexing-gain table (paper §5).

The paper proves that with M antennas per node IAC delivers 2M uplink
packets (3 APs) and max(2M-2, floor(3M/2)) downlink packets (M-1 APs for
M > 2).  This benchmark regenerates the table constructively: for each M
it builds the alignment solution, verifies every packet decodes at high
SNR, and estimates the multiplexing gain from the rate-vs-SNR slope
(C(SNR) = d log SNR + o(log SNR), §1.1).
"""

import numpy as np
import pytest

from repro.core.decoder import decode_rate_level
from repro.core.dof import downlink_max_packets, uplink_max_packets
from repro.core.general import solve_downlink_general, solve_uplink_general
from repro.core.plans import ChannelSet
from repro.phy.channel.model import rayleigh_channel
from repro.phy.mimo.capacity import multiplexing_slope


def _uplink_solution(m, rng):
    n_clients = 3 if m == 2 else m
    clients = list(range(n_clients))
    aps = list(range(100, 103))
    chans = ChannelSet(
        {(c, a): rayleigh_channel(m, m, rng) for c in clients for a in aps}
    )
    # Tight tolerance: residual leakage floors the post-projection SINR,
    # which would flatten the high-SNR slope this benchmark measures.
    solution = solve_uplink_general(
        chans, clients=clients, aps=aps, rng=rng, max_iterations=1500, tolerance=1e-12
    )
    return solution, chans


def _downlink_solution(m, rng):
    if m == 2:
        aps, clients = [0, 1, 2], [10, 11, 12]
    else:
        aps, clients = list(range(m - 1)), [10, 11]
    chans = ChannelSet(
        {(a, k): rayleigh_channel(m, m, rng) for a in aps for k in clients}
    )
    return solve_downlink_general(chans, aps=aps, clients=clients, rng=rng), chans


def _measured_dof(solution, chans):
    """Multiplexing gain from the high-SNR slope of the rate curve."""
    snrs_db = np.array([30.0, 40.0, 50.0])
    rates = [
        decode_rate_level(solution, chans, noise_power=10 ** (-s / 10)).total_rate
        for s in snrs_db
    ]
    return multiplexing_slope(snrs_db, rates)


@pytest.mark.parametrize("m", [2, 3, 4])
def test_lemma_52_uplink(benchmark, record, m):
    rng = np.random.default_rng(520 + m)
    solution, chans = benchmark.pedantic(
        _uplink_solution, args=(m, rng), rounds=1, iterations=1
    )
    expected = uplink_max_packets(m)
    record(f"Lemma 5.2 (M={m})", "uplink packets", expected, len(solution.packets))
    assert len(solution.packets) == expected

    report = decode_rate_level(solution, chans, noise_power=1e-9)
    assert report.min_sinr > 1e3  # every packet decodable

    dof = _measured_dof(solution, chans)
    record(f"Lemma 5.2 (M={m})", "measured DoF slope", expected, f"{dof:.2f}")
    assert dof > expected - 1.0  # slope within one stream of the lemma


@pytest.mark.parametrize("m", [2, 3, 4, 5])
def test_lemma_51_downlink(benchmark, record, m):
    rng = np.random.default_rng(510 + m)
    solution, chans = benchmark.pedantic(
        _downlink_solution, args=(m, rng), rounds=1, iterations=1
    )
    expected = downlink_max_packets(m)
    record(f"Lemma 5.1 (M={m})", "downlink packets", expected, len(solution.packets))
    assert len(solution.packets) == expected

    report = decode_rate_level(solution, chans, noise_power=1e-9)
    assert report.min_sinr > 1e3

    dof = _measured_dof(solution, chans)
    record(f"Lemma 5.1 (M={m})", "measured DoF slope", expected, f"{dof:.2f}")
    assert dof > expected - 1.0
