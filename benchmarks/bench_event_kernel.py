"""Event-kernel benchmark: idle-slot skipping vs the columnar slot loop.

Not a paper figure — the paper's evaluation saturates its testbed — but
the regime its dynamic-traffic discussion (§9) implies: mostly-idle
cells where a slot-synchronous simulator burns its budget on slots
where nothing happens.  ``engine="event"`` (:mod:`repro.sim.events`)
jumps between wake-up points instead, under the repo's bit-identity
contract.  Measured here:

* **speedup vs offered load**: the same (seed, config) timed under
  ``engine="columnar"`` and ``engine="event"`` at a sparse and a busy
  offered load — the gap collapses as the idle fraction does, which is
  the honest shape (the acceptance curve is ``BENCH_events.json``;
  this harness uses a smaller workload to stay quick);
* **bit-identity**: every timed pair must land on the same
  ``WLANStats.digest()`` — the skipping machinery is only allowed to
  move time, never numbers;
* **skip accounting**: ``processed + skipped == n_slots``, with
  skipping dominating at the sparse point.
"""

import time

from repro.sim.wlan import WLANConfig, WLANSimulation

N_SLOTS = 1200
N_CLIENTS = 24
N_APS = 3
#: Offered load = expected network-wide arrivals per slot.
SPARSE_LOAD = 0.002
BUSY_LOAD = 0.3


def _config(engine, load):
    return WLANConfig(
        n_aps=N_APS,
        n_clients=N_CLIENTS,
        n_antennas=2,
        rho=0.9995,
        mean_gain_db=15.0,
        algorithm="best2",
        ack_period=1,
        seed=11,
        engine=engine,
        traffic="poisson",
        traffic_params={"rate_per_client": load * N_APS / N_CLIENTS},
    )


def _run(engine, load):
    sim = WLANSimulation(_config(engine, load))
    start = time.perf_counter()
    stats = sim.run(N_SLOTS)
    return stats, time.perf_counter() - start, sim


def test_event_kernel_speedup(benchmark, record):
    results = benchmark.pedantic(
        lambda: {
            (engine, load): _run(engine, load)
            for load in (SPARSE_LOAD, BUSY_LOAD)
            for engine in ("columnar", "event")
        },
        rounds=1,
        iterations=1,
    )

    for load, label in ((SPARSE_LOAD, "sparse"), (BUSY_LOAD, "busy")):
        col_stats, col_s, _ = results[("columnar", load)]
        ev_stats, ev_s, ev_sim = results[("event", load)]

        # Bit-identity: the kernel may only move time, never numbers.
        assert ev_stats.digest() == col_stats.digest()

        summary = ev_sim.last_event_summary
        processed = summary["processed_slots"]
        skipped = summary["skipped_slots"]
        assert processed + skipped == N_SLOTS

        speedup = col_s / ev_s
        record(
            "event-kernel",
            f"{label} load {load:g} speedup",
            ">= 5x low-load acceptance",
            f"{speedup:.2f}x ({col_s*1e3:.0f} -> {ev_s*1e3:.0f} ms)",
        )
        record(
            "event-kernel",
            f"{label} busy slots/s",
            "n/a",
            f"{processed / ev_s:.0f} ({processed}/{N_SLOTS} woken)",
        )

    sparse_summary = results[("event", SPARSE_LOAD)][2].last_event_summary
    assert sparse_summary["skipped_slots"] > N_SLOTS // 2

    sparse_speedup = (
        results[("columnar", SPARSE_LOAD)][1]
        / results[("event", SPARSE_LOAD)][1]
    )
    # Loose floor; the acceptance run is in BENCH_events.json.
    assert sparse_speedup > 1.5
