"""Setuptools shim.

Project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools cannot
build PEP 660 editable wheels (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Reproduction of 'Interference Alignment and Cancellation' (SIGCOMM 2009)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
