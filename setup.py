"""Setuptools packaging — deliberately the single source of metadata.

There is no ``pyproject.toml`` on purpose: its presence routes pip onto
the PEP 517/660 build path, which needs the ``wheel`` package and (with
build isolation) network access — both unavailable in the offline
environments this repo targets.  Plain ``setup.py`` keeps two working
install paths: ``pip install -e .`` where pip can build editable wheels,
and ``python setup.py develop`` everywhere else.  Both install the
``repro`` console script the README relies on.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Reproduction of 'Interference Alignment and Cancellation' (SIGCOMM 2009)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
