"""Declarative scenario registry.

A :class:`Scenario` is everything the harness needs to reproduce one of
the paper's experiments: a name, the figure it corresponds to, the
paper's reference result, a trial callable with the *normalised*
signature ``trial(ctx: TrialContext) -> Mapping[str, float]``, and the
default parameters / trial count.  Scenarios register themselves with
:func:`register_scenario`; the CLI, the runner, the benchmarks and any
future sweep harness all discover them through :func:`get_scenario` /
:func:`list_scenarios` instead of hand-wired dispatch tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.sim.testbed import Testbed

#: A trial returns a flat mapping of metric name -> value.
Metrics = Mapping[str, float]


@dataclass(frozen=True)
class TrialContext:
    """Everything a single trial may depend on.

    ``rng`` is a per-trial stream spawned from the experiment seed, so a
    trial's draws are independent of execution order and worker count.
    ``params`` is the scenario's default parameters merged with caller
    overrides (read-only).  ``seed`` is the *experiment-level* seed —
    trials that must coordinate across the whole run (e.g. sampling
    without replacement by index) can derive a shared stream from it.
    """

    testbed: Testbed
    rng: np.random.Generator
    index: int
    params: Mapping[str, Any]
    seed: int = 0


#: Renders an ExperimentResult for humans; ``quiet`` suppresses plots.
Formatter = Callable[..., str]

#: Maps a merged parameter map to its *effective* form: knobs that are
#: inert under the current configuration (e.g. a Poisson rate while the
#: traffic model is saturated) are dropped, so two configurations that
#: compute identical numbers share one identity.  Consumed by the sweep
#: engine when deriving cell keys/seeds.
Canonicalizer = Callable[[Mapping[str, Any]], Mapping[str, Any]]


@dataclass(frozen=True)
class Scenario:
    """A registered, reproducible experiment."""

    name: str
    figure: str
    description: str
    #: The paper's reference result, e.g. ``"1.5x"`` or ``"~0.05-0.2"``.
    paper: str
    trial: Callable[[TrialContext], Metrics]
    default_params: Mapping[str, Any] = field(default_factory=dict)
    default_trials: int = 25
    tags: Tuple[str, ...] = ()
    #: Optional human-readable renderer: ``formatter(result, quiet=False)``.
    formatter: Optional[Formatter] = None
    #: Optional parameter canonicalizer (see :data:`Canonicalizer`).
    canonicalize: Optional[Canonicalizer] = None
    #: Optional cross-trial stacked implementation.  Must return exactly
    #: what ``[trial(ctx) for ctx in contexts]`` returns — bit-identically
    #: — it exists purely to share work across trials on one worker (e.g.
    #: pooling every trial's alignment solves into one stacked
    #: ``np.linalg`` pass, see :func:`repro.sim.columnar.run_stacked`).
    #: The implementation decides per call whether stacking applies and
    #: falls back to the plain per-trial loop when it does not.
    stacked_trials: Optional[
        Callable[[Sequence["TrialContext"]], List[Metrics]]
    ] = None

    def canonical_params(self, params: Mapping[str, Any]) -> Mapping[str, Any]:
        """``params`` with configuration-inert knobs stripped (identity
        when the scenario declares no canonicalizer)."""
        return params if self.canonicalize is None else self.canonicalize(params)


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(
    name: str,
    *,
    figure: str,
    description: str,
    paper: str,
    default_params: Optional[Mapping[str, Any]] = None,
    default_trials: int = 25,
    tags: Tuple[str, ...] = (),
    formatter: Optional[Formatter] = None,
    canonicalize: Optional[Canonicalizer] = None,
) -> Callable[[Callable[[TrialContext], Metrics]], Callable[[TrialContext], Metrics]]:
    """Decorator: register the decorated trial callable as ``name``.

    The callable is returned unchanged so it stays directly importable
    and testable.  Registering a duplicate name raises ``ValueError``.
    """

    def decorator(trial: Callable[[TrialContext], Metrics]):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = Scenario(
            name=name,
            figure=figure,
            description=description,
            paper=paper,
            trial=trial,
            default_params=MappingProxyType(dict(default_params or {})),
            default_trials=default_trials,
            tags=tuple(tags),
            formatter=formatter,
            canonicalize=canonicalize,
        )
        return trial

    return decorator


def register_stacked(name: str):
    """Decorator: attach a cross-trial stacked implementation to ``name``.

    The scenario must already be registered; the decorated callable
    replaces its ``stacked_trials`` field and is returned unchanged (so
    it stays importable and directly testable against the per-trial
    loop).
    """

    def decorator(fn):
        scenario = get_scenario(name)
        _REGISTRY[name] = replace(scenario, stacked_trials=fn)
        return fn

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove a scenario (used by tests registering throwaway entries)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name; ``KeyError`` lists what exists."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def list_scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def scenarios_by_tag(tag: str) -> List[Scenario]:
    """Scenarios carrying ``tag`` (e.g. ``"scatter"``, ``"uplink"``)."""
    return [s for s in list_scenarios() if tag in s.tags]
