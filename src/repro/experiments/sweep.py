"""Parameter-grid sweeps over registered scenarios, resumable and exact.

``run_sweep`` fans the cartesian product of a parameter grid (e.g.
``load x n_clients x algorithm``) across a worker pool, one registered
scenario run per **cell**:

* **Per-cell RNG streams** — each cell's experiment seed is derived by
  hashing the cell's full identity (scenario, sweep seed, trial count,
  merged parameters), so a cell computes the same numbers whether it is
  the first of a fresh sweep, the last straggler of a resumed one, or
  running on any of N workers — and regardless of what *other* cells
  are in the grid.
* **Memoised cells** — every completed cell is appended to a JSON cache
  file (atomic rewrite, so an interrupt can lose at most the in-flight
  cells).  Re-running the same sweep skips cached cells; the resumed
  table is bit-identical to an uninterrupted run.  Cells are keyed by
  the same identity hash, so enlarging the grid reuses the overlap.
* **Structured output** — the sweep returns a :class:`SweepResult`
  table (one row per cell, in grid order) that serialises to JSON and
  renders as an aligned text table.

The CLI surface is ``python -m repro sweep SCENARIO --grid k=v1,v2,...``;
see ``EXPERIMENTS.md`` for the cache schema and examples.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.registry import Scenario, get_scenario
from repro.experiments.results import ExperimentResult, jsonify
from repro.experiments.runner import (
    DEFAULT_TESTBED_NODES,
    DEFAULT_TESTBED_SEED,
    ExperimentRunner,
)
from repro.experiments.store import CorruptStore, ResultStore, StoreSchemaTooNew

SWEEP_SCHEMA_VERSION = 1

#: Grid spec: parameter name -> list of values to sweep.
Grid = Mapping[str, Sequence[Any]]


def grid_cells(grid: Grid) -> List[Dict[str, Any]]:
    """The cartesian product of a grid, in deterministic row order.

    Parameters vary slowest-first in the order given (dict insertion
    order), each parameter's values in their given order — the order
    rows appear in the sweep table.
    """
    if not grid:
        return [{}]
    names = list(grid)
    for name in names:
        if isinstance(grid[name], (str, bytes)):
            raise ValueError(
                f"grid parameter {name!r} must be a list of values, got a "
                f"string — did you forget to split {grid[name]!r}?"
            )
        if not list(grid[name]):
            raise ValueError(f"grid parameter {name!r} has no values")
    return [
        dict(zip(names, values))
        for values in itertools.product(*(list(grid[n]) for n in names))
    ]


def cell_key(
    scenario: str,
    seed: int,
    n_trials: Optional[int],
    params: Mapping[str, Any],
    testbed_seed: int = DEFAULT_TESTBED_SEED,
    testbed_nodes: int = DEFAULT_TESTBED_NODES,
) -> str:
    """Stable identity hash of one sweep cell.

    Everything that determines the cell's numbers goes in: the scenario
    name, the sweep seed, the trial count, the *merged* parameters and
    the runner's effective testbed identity — channel seed and node
    count, read from the attached testbed when one was given — so two
    sweeps over different testbeds may share a cache file without
    serving each other's numbers.  The key doubles as the cache key and
    the source of the cell's RNG seed, so results are independent of
    grid shape and execution order.
    """
    identity = json.dumps(
        {
            "scenario": scenario,
            "seed": int(seed),
            "n_trials": n_trials,
            "params": jsonify(dict(params)),
            "testbed_seed": int(testbed_seed),
            "testbed_nodes": int(testbed_nodes),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]


def cell_seed(key: str) -> int:
    """The cell's experiment seed, derived from its identity hash."""
    return int.from_bytes(bytes.fromhex(key)[:8], "big") % (2**63)


@dataclass(frozen=True)
class SweepCell:
    """One completed cell: its swept parameters and summary statistics."""

    #: The swept (grid) parameters only — the table's row label.
    params: Dict[str, Any]
    key: str
    seed: int
    n_trials: int
    #: Per-metric ``{mean, min, max, std}`` across the cell's trials.
    summary: Dict[str, Dict[str, float]]
    #: The scenario's headline gain, when it defines one.
    mean_gain: Optional[float] = None

    def metric_mean(self, name: str) -> float:
        return self.summary[name]["mean"]

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "params": jsonify(self.params),
            "key": self.key,
            "seed": self.seed,
            "n_trials": self.n_trials,
            "summary": self.summary,
        }
        if self.mean_gain is not None:
            data["mean_gain"] = self.mean_gain
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepCell":
        return cls(
            params=dict(data["params"]),
            key=str(data["key"]),
            seed=int(data["seed"]),
            n_trials=int(data["n_trials"]),
            summary={
                str(m): {str(s): float(v) for s, v in sorted(stats.items())}
                for m, stats in sorted(data["summary"].items())
            },
            mean_gain=(
                float(data["mean_gain"]) if data.get("mean_gain") is not None else None
            ),
        )


@dataclass(frozen=True)
class QuarantinedCell:
    """A grid cell every attempt failed to compute.

    Carries the cell's full identity (so a later run can retry it) plus
    the final error as text.  Quarantined cells are kept out of the
    table *and* the cache: a failure is never memoised, so re-running
    the sweep re-attempts exactly these cells.
    """

    #: The swept (grid) parameters only — which row failed.
    params: Dict[str, Any]
    key: str
    seed: int
    #: ``"ExceptionType: message"`` of the last attempt's failure.
    error: str
    attempts: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "params": jsonify(self.params),
            "key": self.key,
            "seed": self.seed,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuarantinedCell":
        return cls(
            params=dict(data["params"]),
            key=str(data["key"]),
            seed=int(data["seed"]),
            error=str(data["error"]),
            attempts=int(data["attempts"]),
        )


@dataclass
class SweepResult:
    """A finished sweep: one :class:`SweepCell` per grid cell, in grid order."""

    scenario: str
    seed: int
    grid: Dict[str, List[Any]]
    cells: List[SweepCell] = field(default_factory=list)
    #: Cells not executed this run — cache hits plus rows sharing an
    #: earlier row's canonical identity; excluded from equality so
    #: resumed and fresh sweeps compare equal.
    cached_cells: int = field(default=0, compare=False)
    #: Cells whose every attempt failed (``quarantine=True`` only — the
    #: default re-raises the first exhausted failure), in grid order.
    quarantined: List[QuarantinedCell] = field(default_factory=list)

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for cell in self.cells:
            for name in cell.summary:
                if name not in names:
                    names.append(name)
        return names

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SWEEP_SCHEMA_VERSION,
            "sweep": self.scenario,
            "seed": self.seed,
            "grid": jsonify(self.grid),
            "cells": [cell.to_dict() for cell in self.cells],
            "quarantined": [cell.to_dict() for cell in self.quarantined],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        version = data.get("schema_version", SWEEP_SCHEMA_VERSION)
        if version > SWEEP_SCHEMA_VERSION:
            raise ValueError(f"unsupported sweep schema version {version}")
        return cls(
            scenario=str(data["sweep"]),
            seed=int(data["seed"]),
            # Document order *is* the author's axis order (it decides the
            # table's row nesting) — reordering here would be the bug.
            grid={str(k): list(v) for k, v in data["grid"].items()},  # repro-lint: ignore[no-unordered-iteration]
            cells=[SweepCell.from_dict(c) for c in data["cells"]],
            quarantined=[
                QuarantinedCell.from_dict(c) for c in data.get("quarantined", [])
            ],
        )

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "SweepResult":
        return cls.from_dict(json.loads(text))

    # ----------------------------------------------------------------- #

    #: Headline metrics preferred for the default table columns.
    _PREFERRED = (
        "mean_gain",
        "total_rate",
        "mean_latency_slots",
        "jain_fairness",
        "idle_fraction",
        "gain",
        "error",
    )

    def table(self, metrics: Optional[Sequence[str]] = None) -> str:
        """Render the sweep as an aligned text table (one row per cell)."""
        if not self.cells:
            return "(empty sweep)"
        if metrics is None:
            available = self.metric_names()
            metrics = [m for m in self._PREFERRED if m in available][:4]
            if not metrics:
                metrics = available[:4]
        grid_names = list(self.grid)
        header = grid_names + list(metrics)
        rows: List[List[str]] = [header]
        for cell in self.cells:
            row = [str(cell.params.get(n, "")) for n in grid_names]
            for m in metrics:
                if m in cell.summary:
                    row.append(f"{cell.metric_mean(m):.4g}")
                else:
                    row.append("-")
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = ["  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# The cell cache (backed by the JSON-lines result store)
# --------------------------------------------------------------------- #

#: ``kind`` pinned in the store header for sweep-cell caches.
SWEEP_STORE_KIND = "sweep-cells"


class SweepCache:
    """Memoised sweep cells on a :class:`~repro.experiments.store.ResultStore`.

    Each completed cell is one *appended* line in a JSON-lines store —
    O(1) bytes per completed cell instead of the full-file rewrite the
    old JSON-blob cache paid — so an interrupted sweep resumes from its
    last finished cell.  Keys hash the full cell identity, which makes
    the cache safe to share between overlapping grids of the same
    scenario — a key can only ever map to one set of numbers.

    Pre-store caches (the legacy ``{"schema_version", "cells"}`` blob)
    are read transparently and migrated to JSON-lines on the first
    write, so sweeps interrupted before the migration resume
    bit-identically.

    A *corrupt* cache file (mid-file garbage, mangled cells, wrong
    shape) is never fatal: it is renamed aside to ``<path>.corrupt``, a
    single :class:`RuntimeWarning` is emitted, and the sweep rebuilds
    the cache from scratch — losing memoised cells costs recomputation,
    while crashing on them costs the sweep.  (A torn *final* line is
    not even that: the store trims it and keeps every complete cell.)
    A cache written by a *newer* schema still raises: that file is
    healthy, this reader is just too old to be trusted with it.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = os.fspath(path)
        try:
            store = ResultStore(self.path, kind=SWEEP_STORE_KIND)
            cells = {
                str(record["key"]): SweepCell.from_dict(record)
                for record in store.records()
            }
        except StoreSchemaTooNew:
            raise
        except CorruptStore as err:
            self._quarantine_corrupt(err)
            store = ResultStore(self.path, kind=SWEEP_STORE_KIND)
            cells = {}
        except (KeyError, TypeError, ValueError, AttributeError) as err:
            # The store was readable but its records are not sweep cells.
            self._quarantine_corrupt(err)
            store = ResultStore(self.path, kind=SWEEP_STORE_KIND)
            cells = {}
        self._store = store
        self._cells: Dict[str, SweepCell] = cells

    def _quarantine_corrupt(self, err: Exception) -> None:
        """Move the unreadable file aside and start an empty cache."""
        aside = self.path + ".corrupt"
        os.replace(self.path, aside)
        warnings.warn(
            f"sweep cache {self.path} is corrupt "
            f"({type(err).__name__}: {err}); moved it to {aside} and "
            "rebuilding from scratch",
            RuntimeWarning,
            stacklevel=3,
        )

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, key: str) -> Optional[SweepCell]:
        return self._cells.get(key)

    def put(self, cell: SweepCell, flush: bool = True) -> None:
        self._cells[cell.key] = cell
        self._store.put(cell.to_dict(), flush=flush)

    def flush(self) -> None:
        self._store.flush()


# --------------------------------------------------------------------- #
# The sweep runner
# --------------------------------------------------------------------- #


def _relabel(cell: SweepCell, grid_params: Mapping[str, Any]) -> SweepCell:
    """The same numbers under this row's grid label (cache/shared reuse)."""
    return SweepCell(
        params=dict(grid_params),
        key=cell.key,
        seed=cell.seed,
        n_trials=cell.n_trials,
        summary=cell.summary,
        mean_gain=cell.mean_gain,
    )


#: Longest deterministic backoff sleep (seconds) between cell retries.
_BACKOFF_CAP = 2.0


def _run_cell(
    runner: ExperimentRunner,
    scenario: Scenario,
    grid_params: Mapping[str, Any],
    merged_params: Mapping[str, Any],
    key: str,
    n_trials: Optional[int],
) -> SweepCell:
    seed = cell_seed(key)
    # Each cell runs its trials on one worker, which is exactly the path
    # where a scenario's ``stacked_trials`` hook engages: with
    # ``engine="columnar"`` all of a cell's trials share one stacked
    # alignment solve per slot (repro.sim.columnar.run_stacked) while
    # staying bit-identical to the plain per-trial loop.
    result: ExperimentResult = runner.run(
        scenario, n_trials=n_trials, seed=seed, params=merged_params, workers=1
    )
    try:
        mean_gain: Optional[float] = result.mean_gain
    except KeyError:
        mean_gain = None
    return SweepCell(
        params=dict(grid_params),
        key=key,
        seed=seed,
        n_trials=result.n_trials,
        summary=result.summary(),
        mean_gain=mean_gain,
    )


def _run_cell_resilient(
    runner: ExperimentRunner,
    scenario: Scenario,
    grid_params: Mapping[str, Any],
    merged_params: Mapping[str, Any],
    key: str,
    n_trials: Optional[int],
    retries: int,
    backoff: float,
    quarantine: bool,
) -> Union[SweepCell, QuarantinedCell]:
    """One cell with capped-exponential-backoff retries.

    The retry schedule is a pure function of the knobs (attempt ``a``
    sleeps ``min(_BACKOFF_CAP, backoff * 2**(a-1))``) and a retried cell
    reruns the *same* hashed seed — retrying changes when work happens,
    never what it computes.  With ``quarantine`` the exhausted failure
    becomes a :class:`QuarantinedCell`; otherwise it propagates.
    """
    last_error: Optional[Exception] = None
    for attempt in range(retries + 1):
        if attempt and backoff > 0.0:
            time.sleep(min(_BACKOFF_CAP, backoff * 2.0 ** (attempt - 1)))
        try:
            return _run_cell(runner, scenario, grid_params, merged_params, key, n_trials)
        except Exception as err:  # noqa: BLE001 - the boundary that heals
            last_error = err
    if quarantine:
        return QuarantinedCell(
            params=dict(grid_params),
            key=key,
            seed=cell_seed(key),
            error=f"{type(last_error).__name__}: {last_error}",
            attempts=retries + 1,
        )
    raise last_error


def run_sweep(
    scenario: Union[str, Scenario],
    grid: Grid,
    *,
    params: Optional[Mapping[str, Any]] = None,
    n_trials: Optional[int] = None,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[Union[str, os.PathLike, SweepCache]] = None,
    runner: Optional[ExperimentRunner] = None,
    progress: Optional[Callable[[SweepCell, bool], None]] = None,
    retries: int = 0,
    backoff: float = 0.0,
    quarantine: bool = False,
) -> SweepResult:
    """Run ``scenario`` over every cell of ``grid``; return the table.

    ``params`` are fixed overrides applied to every cell (a grid value
    wins on collision).  ``workers`` parallelises across *cells* (each
    cell's trials run sequentially on the cell's own RNG stream, so the
    table is identical for any worker count).  ``cache`` — a path or a
    :class:`SweepCache` — memoises completed cells; a re-run over the
    same (or an overlapping) grid recomputes only the missing cells and
    produces a bit-identical table.  ``progress`` is called once per
    finished cell with ``(cell, from_cache)``.

    A failing cell is re-attempted ``retries`` times, sleeping a capped
    deterministic exponential backoff (``backoff`` seconds doubling up
    to ``_BACKOFF_CAP``) between attempts; a retried cell reuses its
    hashed seed, so retrying never changes the numbers.  Once attempts
    are exhausted the failure propagates — unless ``quarantine`` is set,
    in which case the cell (and any rows sharing its identity) lands in
    ``SweepResult.quarantined`` with the error text while every healthy
    cell still completes, and nothing about the failure enters the cache.
    """
    if not isinstance(scenario, Scenario):
        scenario = get_scenario(scenario)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if backoff < 0.0:
        raise ValueError("backoff must be >= 0")
    # Resolve the trial count before keying: "no --trials" and
    # "--trials <the scenario default>" are the same cell, not two
    # conflicting cache entries with different seeds.
    n_trials = scenario.default_trials if n_trials is None else int(n_trials)
    if runner is None:
        runner = ExperimentRunner()
    store = (
        cache
        if isinstance(cache, (SweepCache, type(None)))
        else SweepCache(cache)
    )

    fixed = dict(params or {})
    # A misspelled axis would otherwise be silently ignored by the trial
    # while still entering the cell identity — every row would differ by
    # pure seed noise dressed up as an effect of the typo'd knob.
    known = set(scenario.default_params)
    unknown = sorted((set(grid) | set(fixed)) - known)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) for scenario {scenario.name!r}: "
            f"{', '.join(unknown)}; known knobs: {', '.join(sorted(known)) or '<none>'}"
        )
    cells = grid_cells(grid)
    jobs: List[Tuple[int, Dict[str, Any], Dict[str, Any], str]] = []
    results: List[Optional[Union[SweepCell, QuarantinedCell]]] = [None] * len(cells)
    #: Rows whose key is already owned by an earlier (primary) row of
    #: this run — e.g. a swept axis the canonicalizer marked inert — get
    #: the primary's numbers instead of a redundant execution.
    shared_rows: Dict[str, List[int]] = {}
    primary_of: Dict[str, int] = {}
    reused = 0
    for i, grid_params in enumerate(cells):
        # The full effective parameter map — scenario defaults included —
        # is the cell's identity: changing a default invalidates cached
        # cells instead of silently resurrecting stale numbers.
        merged = dict(scenario.default_params)
        merged.update(fixed)
        merged.update(grid_params)
        # Identity uses the *canonical* params: knobs the scenario declares
        # inert under this configuration (e.g. a Poisson load while
        # traffic is saturated) don't perturb the seed, so sweeping an
        # inert axis yields identical rows instead of seed noise dressed
        # up as an effect.
        key = cell_key(
            scenario.name, seed, n_trials, scenario.canonical_params(merged),
            runner.testbed_seed, runner.testbed_nodes,
        )
        hit = store.get(key) if store is not None else None
        if hit is not None:
            # Cache rows carry the *merged* identity in their key; the
            # table row label is the current sweep's grid params.
            results[i] = _relabel(hit, grid_params)
            reused += 1
            if progress is not None:
                progress(results[i], True)
        elif key in primary_of:
            shared_rows.setdefault(key, []).append(i)
            reused += 1
        else:
            primary_of[key] = i
            jobs.append((i, grid_params, merged, key))

    def finish(i: int, cell: Union[SweepCell, QuarantinedCell]) -> None:
        results[i] = cell
        if isinstance(cell, QuarantinedCell):
            # A failure is never cached and never reported as progress;
            # rows sharing the identity inherit the quarantine under
            # their own grid label.
            for j in shared_rows.get(cell.key, []):
                results[j] = QuarantinedCell(
                    params=dict(cells[j]),
                    key=cell.key,
                    seed=cell.seed,
                    error=cell.error,
                    attempts=cell.attempts,
                )
            return
        if store is not None:
            store.put(cell)
        if progress is not None:
            progress(cell, False)
        for j in shared_rows.get(cell.key, []):
            results[j] = _relabel(cell, cells[j])
            if progress is not None:
                progress(results[j], True)

    if jobs:
        if workers == 1 or len(jobs) == 1:
            for i, grid_params, merged, key in jobs:
                finish(
                    i,
                    _run_cell_resilient(
                        runner, scenario, grid_params, merged, key, n_trials,
                        retries, backoff, quarantine,
                    ),
                )
        else:
            # Force the runner's lazy testbed once, on this thread —
            # otherwise every pool worker races the None-check and each
            # builds (and mostly discards) a full testbed.
            runner.testbed
            with ThreadPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
                pending = {
                    pool.submit(
                        _run_cell_resilient,
                        runner, scenario, grid_params, merged, key, n_trials,
                        retries, backoff, quarantine,
                    ): i
                    for i, grid_params, merged, key in jobs
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        # finish() runs on the main thread only: one cache
                        # rewrite per completed cell, so an interrupt loses
                        # at most the still-running cells.
                        finish(pending.pop(future), future.result())

    return SweepResult(
        scenario=scenario.name,
        seed=seed,
        # Axis order is caller-chosen and load-bearing (row order of the
        # table); sorting it would silently reshape every sweep.
        grid={name: list(values) for name, values in grid.items()},  # repro-lint: ignore[no-unordered-iteration]
        cells=[cell for cell in results if isinstance(cell, SweepCell)],
        cached_cells=reused,
        quarantined=[cell for cell in results if isinstance(cell, QuarantinedCell)],
    )
