"""Unified scenario/experiment API (the paper's §10-§11 evaluation).

This package replaces the hand-wired per-figure dispatch with one
declarative surface:

* :mod:`repro.experiments.registry` — the :class:`Scenario` dataclass,
  the ``@register_scenario`` decorator and registry queries;
* :mod:`repro.experiments.runner` — :class:`ExperimentRunner` and the
  :func:`run_experiment` convenience wrapper (parallel via
  ``concurrent.futures``, bit-for-bit deterministic for any worker
  count);
* :mod:`repro.experiments.results` — structured
  :class:`TrialRecord`/:class:`ExperimentResult` with JSON round-trip;
* :mod:`repro.experiments.scenarios` — the seven registered figures;
* :mod:`repro.experiments.signal_scenarios` — sample-accurate scatter
  scenarios (``fig12_signal``/``fig13b_signal``) running the vectorized
  signal pipeline per trial;
* :mod:`repro.experiments.dynamic_scenarios` — dynamic-traffic WLAN
  scenarios (``fig15_dynamic``/``load_latency``/``churn_throughput``)
  over the arrival/churn/mobility processes of :mod:`repro.sim.traffic`;
* :mod:`repro.experiments.ofdm_scenarios` — wideband (§6c) scenarios:
  the ``ofdm_subcarrier`` ablation and the full-stack
  ``fig_ofdm_dynamic`` per-subcarrier WLAN regime;
* :mod:`repro.experiments.multicell_scenarios` — the ``city_scale``
  scenario over the sharded multi-cell layer
  (:mod:`repro.sim.multicell`): K interference neighbourhoods with
  per-cell leaders and slot-barrier boundary exchange;
* :mod:`repro.experiments.fault_scenarios` — robustness scenarios
  (``fault_resilience``/``backplane_loss_sweep``) driving the seeded
  fault-injection layer (:mod:`repro.faults`): lossy backplane,
  corrupt/stale CSI, mid-run leader crash, graceful p2p degradation;
* :mod:`repro.experiments.store` — the append-only JSON-lines
  :class:`ResultStore` (schema'd header, keyed records, O(1) appends,
  torn-tail recovery, legacy-blob sniffing) the sweep cache sits on;
* :mod:`repro.experiments.sweep` — the resumable parameter-grid sweep
  engine behind ``python -m repro sweep`` (:func:`run_sweep`,
  per-cell RNG streams, store-backed cell cache,
  :class:`SweepResult` tables).

Quickstart::

    >>> from repro.experiments import run_experiment
    >>> result = run_experiment("fig12", n_trials=4, workers=2)
    >>> round(result.mean_gain, 2) > 1.0
    True
    >>> text = result.to_json()  # archive / diff / plot offline
"""

from repro.experiments.registry import (
    Scenario,
    TrialContext,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
    scenarios_by_tag,
    unregister_scenario,
)
from repro.experiments.results import ExperimentResult, TrialRecord
from repro.experiments.runner import ExperimentRunner, run_experiment
from repro.experiments.store import CorruptStore, ResultStore, StoreSchemaTooNew
from repro.experiments.sweep import (
    QuarantinedCell,
    SweepCache,
    SweepCell,
    SweepResult,
    grid_cells,
    run_sweep,
)

# Importing the scenario definitions populates the registry.
from repro.experiments import scenarios as _scenarios  # noqa: F401
from repro.experiments import signal_scenarios as _signal_scenarios  # noqa: F401
from repro.experiments import dynamic_scenarios as _dynamic_scenarios  # noqa: F401
from repro.experiments import ofdm_scenarios as _ofdm_scenarios  # noqa: F401
from repro.experiments import multicell_scenarios as _multicell_scenarios  # noqa: F401
from repro.experiments import fault_scenarios as _fault_scenarios  # noqa: F401
from repro.experiments.scenarios import gain_cdf_from_record, scatter_result

__all__ = [
    "CorruptStore",
    "ExperimentResult",
    "ExperimentRunner",
    "QuarantinedCell",
    "ResultStore",
    "Scenario",
    "StoreSchemaTooNew",
    "SweepCache",
    "SweepCell",
    "SweepResult",
    "TrialContext",
    "TrialRecord",
    "gain_cdf_from_record",
    "get_scenario",
    "grid_cells",
    "list_scenarios",
    "register_scenario",
    "run_experiment",
    "run_sweep",
    "scatter_result",
    "scenario_names",
    "scenarios_by_tag",
    "unregister_scenario",
]
