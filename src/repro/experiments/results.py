"""Structured, serialisable experiment results.

The legacy runners each returned a bespoke container (``ScatterResult``,
``GainCDF``, a bare list of floats) and the CLI printed them; nothing
machine-readable came out.  This module is the common currency of the
unified experiment API: every scenario trial produces a flat
``{metric-name: float}`` mapping, the runner wraps those into
:class:`TrialRecord` / :class:`ExperimentResult`, and both round-trip
losslessly through JSON so sweeps can be archived, diffed and plotted
offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

SCHEMA_VERSION = 1


def jsonify(value: Any) -> Any:
    """Coerce a parameter/metric structure into JSON-native types.

    Tuples become lists and numpy scalars become Python numbers so that a
    serialise -> deserialise round trip compares equal to the original.
    """
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    return value


@dataclass(frozen=True)
class TrialRecord:
    """One trial's outcome: a flat mapping of metric name to value."""

    index: int
    metrics: Dict[str, float]

    def to_dict(self) -> Dict[str, Any]:
        return {"index": self.index, "metrics": dict(self.metrics)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialRecord":
        return cls(
            index=int(data["index"]),
            metrics={str(k): float(v) for k, v in data["metrics"].items()},
        )


@dataclass
class ExperimentResult:
    """A full experiment: the scenario, its parameters and every trial.

    ``records`` preserve trial order (record ``i`` used the ``i``-th
    spawned RNG stream), so results are identical however many workers
    executed them.
    """

    scenario: str
    figure: str
    seed: int
    n_trials: int
    params: Dict[str, Any] = field(default_factory=dict)
    records: List[TrialRecord] = field(default_factory=list)
    #: Wall-clock seconds the runner spent executing the trials (None when
    #: the result was built by hand); consumed by ``repro bench``.  Kept
    #: out of serialisation and equality so JSON output stays bit-for-bit
    #: identical across runs and worker counts.
    seconds: Optional[float] = field(default=None, compare=False)

    # ----------------------------------------------------------------- #
    # Metric access and summary statistics
    # ----------------------------------------------------------------- #

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for record in self.records:
            for name in record.metrics:
                if name not in names:
                    names.append(name)
        return names

    def metric(self, name: str) -> np.ndarray:
        """Values of one metric across trials (missing entries skipped)."""
        return np.array(
            [r.metrics[name] for r in self.records if name in r.metrics]
        )

    @property
    def mean_gain(self) -> float:
        """The paper's headline number for this experiment.

        Scatter-style scenarios report per-trial ``dot11``/``iac`` rates;
        the headline gain is the ratio of the average rates (matching
        ``ScatterResult.mean_gain`` bit-for-bit).  Other scenarios report
        a ``gain`` or ``mean_gain`` metric directly, which is averaged.
        """
        names = self.metric_names()
        if "dot11" in names and "iac" in names:
            return float(np.mean(self.metric("iac")) / np.mean(self.metric("dot11")))
        for name in ("gain", "mean_gain"):
            if name in names:
                return float(np.mean(self.metric(name)))
        raise KeyError(f"no gain-like metric in {names}")

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-metric mean/min/max/std across trials."""
        out: Dict[str, Dict[str, float]] = {}
        for name in self.metric_names():
            values = self.metric(name)
            out[name] = {
                "mean": float(values.mean()),
                "min": float(values.min()),
                "max": float(values.max()),
                "std": float(values.std()),
            }
        return out

    # ----------------------------------------------------------------- #
    # Serialisation
    # ----------------------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario,
            "figure": self.figure,
            "seed": self.seed,
            "n_trials": self.n_trials,
            "params": jsonify(self.params),
            "records": [r.to_dict() for r in self.records],
            "summary": self.summary(),
        }
        try:
            data["mean_gain"] = self.mean_gain
        except KeyError:
            pass
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version > SCHEMA_VERSION:
            raise ValueError(f"unsupported result schema version {version}")
        return cls(
            scenario=str(data["scenario"]),
            figure=str(data["figure"]),
            seed=int(data["seed"]),
            n_trials=int(data["n_trials"]),
            params=dict(data.get("params", {})),
            records=[TrialRecord.from_dict(r) for r in data.get("records", [])],
        )

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))
