"""The paper's evaluation experiments as registered scenarios (§10-§11).

Importing this module (which ``repro.experiments`` does) populates the
registry with the seven figures:

========  =========================================================
name      experiment
========  =========================================================
fig12     2-client/2-AP uplink scatter (3 concurrent packets)
fig13a    3-client/3-AP uplink scatter (4 concurrent packets)
fig13b    3-client/3-AP downlink scatter (3 concurrent packets)
fig14     1-client/2-AP diversity scatter
fig15     large-network concurrency algorithm, per-client gain CDF
fig16     reciprocity calibration error, one client-AP pair per trial
fig17     clustered ad-hoc network bottleneck throughput
========  =========================================================

Every trial has the normalised signature ``trial(ctx) -> metrics`` and
draws exclusively from ``ctx.rng``, so results are reproducible for any
worker count.  See ``EXPERIMENTS.md`` for parameters and expected gains.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.experiments.registry import (
    TrialContext,
    get_scenario,
    register_scenario,
)
from repro.experiments.results import ExperimentResult, TrialRecord
from repro.sim.clustered import ClusteredConfig, ClusteredNetwork
from repro.sim.experiment import (
    diversity_trial,
    downlink_3x3_trial,
    large_network_experiment,
    reciprocity_pair_trial,
    sample_distinct_pairs,
    uplink_2x2_trial,
    uplink_3x3_trial,
)
from repro.sim.metrics import GainCDF, RatePair, ScatterResult, format_cdf_table
from repro.sim.plotting import ascii_cdf, ascii_scatter

# --------------------------------------------------------------------- #
# Scatter scenarios (Figs. 12-14)
# --------------------------------------------------------------------- #


def scatter_result(result: ExperimentResult) -> ScatterResult:
    """View a scatter-style ExperimentResult as the legacy ScatterResult."""
    return ScatterResult(
        points=[
            RatePair(dot11=r.metrics["dot11"], iac=r.metrics["iac"])
            for r in result.records
        ],
        label=result.scenario,
    )


def _format_scatter(result: ExperimentResult, quiet: bool = False) -> str:
    scenario = get_scenario(result.scenario)
    lines = [
        f"{result.scenario}: {scenario.description}",
        f"  trials        : {result.n_trials}",
    ]
    if not result.records:
        return "\n".join(lines + ["  (no trials)"])
    scatter = scatter_result(result)
    dot11 = np.array([p.dot11 for p in scatter.points])
    lines += [
        f"  mean gain     : {scatter.mean_gain:.2f}x (paper: {scenario.paper})",
        f"  baseline range: {dot11.min():.1f}-{dot11.max():.1f} b/s/Hz",
    ]
    if not quiet:
        lines += ["", ascii_scatter(scatter), "", "  802.11 rate   IAC rate   gain"]
        for p in sorted(scatter.points, key=lambda p: p.dot11):
            lines.append(f"  {p.dot11:10.2f} {p.iac:10.2f} {p.gain:6.2f}")
    return "\n".join(lines)


def _scatter_trial(
    trial_fn: Callable[..., RatePair], ctx: TrialContext
) -> Dict[str, float]:
    """Pick a random disjoint client/AP subset and run one scatter trial.

    RNG use matches the legacy ``run_scatter`` loop exactly, so the new
    path reproduces the old results bit-for-bit for the same seed.
    """
    n_clients = int(ctx.params["n_clients"])
    n_aps = int(ctx.params["n_aps"])
    nodes = ctx.testbed.pick_nodes(n_clients + n_aps, ctx.rng)
    pair = trial_fn(ctx.testbed, nodes[:n_clients], nodes[n_clients:], ctx.rng)
    return {"dot11": pair.dot11, "iac": pair.iac, "gain": pair.gain}


@register_scenario(
    "fig12",
    figure="Fig. 12",
    description="2-client/2-AP uplink",
    paper="1.5x",
    default_params={"n_clients": 2, "n_aps": 2},
    default_trials=40,
    tags=("scatter", "uplink"),
    formatter=_format_scatter,
)
def fig12_trial(ctx: TrialContext) -> Dict[str, float]:
    """Fig. 12: three concurrent uplink packets from two 2-antenna clients."""
    return _scatter_trial(uplink_2x2_trial, ctx)


@register_scenario(
    "fig13a",
    figure="Fig. 13a",
    description="3-client/3-AP uplink",
    paper="1.8x",
    default_params={"n_clients": 3, "n_aps": 3},
    default_trials=40,
    tags=("scatter", "uplink"),
    formatter=_format_scatter,
)
def fig13a_trial(ctx: TrialContext) -> Dict[str, float]:
    """Fig. 13a: four concurrent uplink packets from three clients."""
    return _scatter_trial(uplink_3x3_trial, ctx)


@register_scenario(
    "fig13b",
    figure="Fig. 13b",
    description="3-client/3-AP downlink",
    paper="1.4x",
    default_params={"n_clients": 3, "n_aps": 3},
    default_trials=40,
    tags=("scatter", "downlink"),
    formatter=_format_scatter,
)
def fig13b_trial(ctx: TrialContext) -> Dict[str, float]:
    """Fig. 13b: three concurrent downlink packets to three clients."""
    return _scatter_trial(downlink_3x3_trial, ctx)


@register_scenario(
    "fig14",
    figure="Fig. 14",
    description="1-client/2-AP diversity",
    paper="1.2x",
    default_params={"n_clients": 1, "n_aps": 2},
    default_trials=40,
    tags=("scatter", "downlink", "diversity"),
    formatter=_format_scatter,
)
def fig14_trial(ctx: TrialContext) -> Dict[str, float]:
    """Fig. 14: a single client served by two cooperating APs."""
    return _scatter_trial(diversity_trial, ctx)


# --------------------------------------------------------------------- #
# Large-network concurrency scenario (Fig. 15)
# --------------------------------------------------------------------- #

_CLIENT_GAIN_PREFIX = "client_gain_"


def gain_cdf_from_record(record: TrialRecord, label: str = "") -> GainCDF:
    """Rebuild the per-client gain CDF from a fig15 trial's flat metrics."""
    gains = {
        int(name[len(_CLIENT_GAIN_PREFIX):]): value
        for name, value in record.metrics.items()
        if name.startswith(_CLIENT_GAIN_PREFIX)
    }
    return GainCDF(gains=gains, label=label)


def _format_fig15(result: ExperimentResult, quiet: bool = False) -> str:
    p = result.params
    lines = [
        f"fig15 ({p['direction']}/{p['algorithm']}): "
        f"{p['n_clients']} clients, {p['n_aps']} APs, {p['n_slots']} slots"
    ]
    cdfs = []
    for record in result.records:
        label = f"{p['algorithm']}/{p['direction']}"
        if len(result.records) > 1:
            label += f"#{record.index}"
        cdf = gain_cdf_from_record(record, label=label)
        cdfs.append(cdf)
        lines.append(
            f"  trial {record.index}: mean {cdf.mean_gain:.2f}x, "
            f"worst client {cdf.min_gain:.2f}x, "
            f"below-1x {cdf.fraction_below(1.0) * 100:.0f}%"
        )
    if not quiet and cdfs:
        lines += ["", format_cdf_table(cdfs, n_rows=8), "", ascii_cdf(cdfs)]
    return "\n".join(lines)


@register_scenario(
    "fig15",
    figure="Fig. 15",
    description="concurrency-algorithm per-client gain CDF",
    paper="best2 downlink 1.52x / uplink 2.08x mean gain",
    default_params={
        "algorithm": "best2",
        "direction": "downlink",
        "n_slots": 400,
        "n_clients": 17,
        "n_aps": 3,
        "group_size": 3,
    },
    default_trials=1,
    tags=("mac", "concurrency", "large-network"),
    formatter=_format_fig15,
)
def fig15_trial(ctx: TrialContext) -> Dict[str, float]:
    """Fig. 15: one backlogged-network run of a concurrency algorithm.

    Each trial re-draws the client/AP placement from its own RNG stream,
    so multiple trials sweep placements.  Per-client gains are flattened
    into ``client_gain_<node>`` metrics alongside the aggregates.
    """
    p = ctx.params
    cdf = large_network_experiment(
        ctx.testbed,
        str(p["algorithm"]),
        str(p["direction"]),
        n_slots=int(p["n_slots"]),
        n_clients=int(p["n_clients"]),
        n_aps=int(p["n_aps"]),
        seed=ctx.rng,
        group_size=int(p["group_size"]),
    )
    metrics = {
        "mean_gain": cdf.mean_gain,
        "min_gain": cdf.min_gain,
        "fraction_below_1x": cdf.fraction_below(1.0),
    }
    for client, gain in cdf.gains.items():
        metrics[f"{_CLIENT_GAIN_PREFIX}{client}"] = gain
    return metrics


# --------------------------------------------------------------------- #
# Reciprocity scenario (Fig. 16)
# --------------------------------------------------------------------- #


def _format_fig16(result: ExperimentResult, quiet: bool = False) -> str:
    errors = result.metric("error")
    lines = ["fig16: reciprocity fractional error per client-AP pair"]
    if errors.size == 0:
        return "\n".join(lines + ["  (no trials)"])
    if not quiet:
        for record in result.records:
            err = record.metrics["error"]
            lines.append(
                f"  client {record.index + 1:2d}: {err:.3f} {'#' * int(err * 100)}"
            )
    lines.append(f"  mean {np.mean(errors):.3f} (paper: ~0.05-0.2)")
    return "\n".join(lines)


@register_scenario(
    "fig16",
    figure="Fig. 16",
    description="reciprocity calibration error",
    paper="~0.05-0.2 fractional error",
    default_params={"n_moves": 5, "estimate_snr_db": 25.0},
    default_trials=17,
    tags=("phy", "reciprocity"),
    formatter=_format_fig16,
)
def fig16_trial(ctx: TrialContext) -> Dict[str, float]:
    """Fig. 16: calibrate one client-AP pair, then move the client.

    Trial ``i`` measures the ``i``-th entry of a distinct-ordered-pair
    permutation derived from the *experiment* seed, so no (client, AP)
    combination repeats within a run (the defect the legacy wrap had) —
    trials only wrap once every pair has been measured.
    """
    n = ctx.testbed.n_nodes
    pairs = sample_distinct_pairs(
        n, n * (n - 1), np.random.SeedSequence([0xF16, ctx.seed])
    )
    client_node, ap_node = pairs[ctx.index % len(pairs)]
    error = reciprocity_pair_trial(
        ctx.testbed,
        client_node,
        ap_node,
        n_moves=int(ctx.params["n_moves"]),
        estimate_snr_db=float(ctx.params["estimate_snr_db"]),
        rng=ctx.rng,
    )
    return {"error": error, "client": float(client_node), "ap": float(ap_node)}


# --------------------------------------------------------------------- #
# Clustered ad-hoc scenario (Fig. 17)
# --------------------------------------------------------------------- #


def _format_fig17(result: ExperimentResult, quiet: bool = False) -> str:
    lines = ["fig17: clustered ad-hoc networks (bottleneck inter-cluster links)"]
    if not result.records:
        return "\n".join(lines + ["  (no trials)"])
    if not quiet:
        for r in result.records:
            m = r.metrics
            lines.append(
                f"  topology {int(m['topology_seed'])}: 802.11 {m['dot11_flow']:.2f}, "
                f"IAC {m['iac_flow']:.2f}, gain {m['gain']:.2f}x"
            )
    gains = result.metric("gain")
    lines.append(
        f"  mean gain {np.mean(gains):.2f}x "
        "(paper: 'IAC can double the throughput')"
    )
    return "\n".join(lines)


@register_scenario(
    "fig17",
    figure="Fig. 17",
    description="clustered ad-hoc bottleneck throughput",
    paper="up to ~2x flow gain",
    default_params={"nodes_per_cluster": 3, "topology_seed": None},
    default_trials=8,
    tags=("clustered", "adhoc"),
    formatter=_format_fig17,
)
def fig17_trial(ctx: TrialContext) -> Dict[str, float]:
    """Fig. 17: one clustered topology's 802.11 vs IAC bottleneck flow.

    Topology ``i`` uses seed ``topology_seed + i`` (``topology_seed``
    defaults to 0, matching the legacy CLI's ``range(trials)`` sweep);
    the clustered network draws its own channels, so ``ctx.rng`` is
    unused here.
    """
    base = ctx.params["topology_seed"]
    seed = ctx.index + (0 if base is None else int(base))
    net = ClusteredNetwork(
        ClusteredConfig(
            nodes_per_cluster=int(ctx.params["nodes_per_cluster"]), seed=seed
        )
    )
    dot11 = net.flow_throughput("dot11")
    iac = net.flow_throughput("iac")
    # Named *_flow (not dot11/iac) deliberately: the headline mean_gain
    # for fig17 is the mean of per-topology gains, not a ratio of rate
    # averages across unrelated topologies.
    return {
        "dot11_flow": dot11,
        "iac_flow": iac,
        "gain": iac / dot11,
        "topology_seed": float(seed),
    }


ALL_SCENARIOS: List[str] = [
    "fig12", "fig13a", "fig13b", "fig14", "fig15", "fig16", "fig17",
]
