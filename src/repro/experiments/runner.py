"""Parallel, deterministic experiment execution.

``ExperimentRunner`` turns a registered :class:`~repro.experiments.registry.Scenario`
into an :class:`~repro.experiments.results.ExperimentResult`:

* every trial gets its own RNG stream spawned from the experiment seed
  (``spawn_rngs``), so trial ``i`` computes the same numbers whether it
  runs first, last, or on any of N workers;
* trials execute on a ``concurrent.futures`` thread pool (``workers=1``
  stays a plain loop); numpy's linear algebra releases the GIL, so the
  thousand-trial sweeps scale with cores without any pickling
  constraints on trial callables;
* results come back as structured records in trial order — ``--workers 1``
  and ``--workers 8`` are bit-for-bit identical;
* a scenario may attach a ``stacked_trials`` hook
  (:func:`~repro.experiments.registry.register_stacked`) that runs all
  single-worker trials lock-step and pools their alignment solves into
  one stacked pass (:func:`repro.sim.columnar.run_stacked`); the hook is
  contractually bit-identical to the plain loop, so it is purely a
  throughput optimisation.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from types import MappingProxyType
from typing import Any, Mapping, Optional, Union

from repro.experiments.registry import Scenario, TrialContext, get_scenario
from repro.experiments.results import ExperimentResult, TrialRecord, jsonify
from repro.sim.testbed import Testbed, TestbedConfig
from repro.utils.rng import spawn_rngs

#: Node count / channel seed of the paper's Fig.-11 testbed.
DEFAULT_TESTBED_NODES = 20
DEFAULT_TESTBED_SEED = 2009


class ExperimentRunner:
    """Runs scenarios against one (lazily built) testbed."""

    def __init__(
        self,
        testbed: Optional[Testbed] = None,
        *,
        testbed_seed: int = DEFAULT_TESTBED_SEED,
        n_nodes: int = DEFAULT_TESTBED_NODES,
        workers: int = 1,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._testbed = testbed
        self._testbed_seed = testbed_seed
        self._n_nodes = n_nodes
        self.workers = workers

    @property
    def testbed_seed(self) -> int:
        """The *effective* channel seed: the attached testbed's if one was
        given, else the seed a lazily-built testbed will use.  Part of a
        sweep cell's identity (:mod:`repro.experiments.sweep`)."""
        if self._testbed is not None:
            return self._testbed.config.seed
        return self._testbed_seed

    @property
    def testbed_nodes(self) -> int:
        """The effective node count, by the same rule as :attr:`testbed_seed`."""
        if self._testbed is not None:
            return self._testbed.config.n_nodes
        return self._n_nodes

    @property
    def testbed(self) -> Testbed:
        if self._testbed is None:
            self._testbed = Testbed(
                TestbedConfig(n_nodes=self._n_nodes, seed=self._testbed_seed)
            )
        return self._testbed

    def run(
        self,
        scenario: Union[str, Scenario],
        *,
        n_trials: Optional[int] = None,
        seed: int = 0,
        params: Optional[Mapping[str, Any]] = None,
        workers: Optional[int] = None,
    ) -> ExperimentResult:
        """Execute a scenario and return its structured result."""
        if not isinstance(scenario, Scenario):
            scenario = get_scenario(scenario)
        merged: dict = dict(scenario.default_params)
        merged.update(params or {})
        frozen = MappingProxyType(merged)
        n = scenario.default_trials if n_trials is None else int(n_trials)
        if n < 0:
            raise ValueError("n_trials must be non-negative")

        testbed = self.testbed
        contexts = [
            TrialContext(testbed=testbed, rng=rng, index=i, params=frozen, seed=seed)
            for i, rng in enumerate(spawn_rngs(seed, n))
        ]

        n_workers = self.workers if workers is None else int(workers)
        if n_workers < 1:
            raise ValueError("workers must be >= 1")
        # ExperimentResult.seconds is diagnostic timing the bench suite
        # reads; it never feeds back into any simulated quantity.
        start = time.perf_counter()  # repro-lint: ignore[no-wallclock]
        if n_workers == 1 or n <= 1:
            # Cross-trial stacking only engages on the single-worker path:
            # stacked_trials is contractually bit-identical to the plain
            # loop, so --workers 1 and --workers 8 still agree.
            if scenario.stacked_trials is not None and n > 1:
                outcomes = list(scenario.stacked_trials(contexts))
            else:
                outcomes = [scenario.trial(ctx) for ctx in contexts]
        else:
            with ThreadPoolExecutor(max_workers=min(n_workers, n)) as pool:
                outcomes = list(pool.map(scenario.trial, contexts))
        elapsed = time.perf_counter() - start  # repro-lint: ignore[no-wallclock]

        records = [
            TrialRecord(index=i, metrics={str(k): float(v) for k, v in m.items()})
            for i, m in enumerate(outcomes)
        ]
        return ExperimentResult(
            scenario=scenario.name,
            figure=scenario.figure,
            seed=seed,
            n_trials=n,
            params=jsonify(merged),
            records=records,
            seconds=elapsed,
        )


def run_experiment(
    scenario: Union[str, Scenario],
    *,
    n_trials: Optional[int] = None,
    seed: int = 0,
    params: Optional[Mapping[str, Any]] = None,
    workers: int = 1,
    testbed: Optional[Testbed] = None,
    testbed_seed: int = DEFAULT_TESTBED_SEED,
) -> ExperimentResult:
    """One-shot convenience wrapper: ``run_experiment("fig13a")``.

    Builds a default paper-sized testbed (or uses the one given) and runs
    the named scenario.  See ``EXPERIMENTS.md`` for the scenario list.
    """
    runner = ExperimentRunner(testbed, testbed_seed=testbed_seed, workers=workers)
    return runner.run(scenario, n_trials=n_trials, seed=seed, params=params)
