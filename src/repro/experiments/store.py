"""Append-only JSON-lines result store — O(1) appends, sniffed formats.

The sweep cache used to be one JSON object rewritten in full after every
completed cell — O(cells) bytes per append, quadratic over a sweep.
:class:`ResultStore` replaces the blob with a columnar-friendly
**JSON-lines** file:

* line 1 is a schema'd **header** —
  ``{"format": "repro-result-store", "schema_version": 1, "kind": ...}``;
* every following line is one **record**: a flat JSON object carrying a
  mandatory ``"key"`` field (duplicate keys are allowed; the *last*
  occurrence wins, which is what makes updates append-only too).

Appending a record is one ``write()`` of one line.  A torn final write
(interrupted sweep, full disk) leaves a half-line **tail**, which the
loader trims: every complete, newline-terminated line before it is kept,
and the next append truncates the garbage before writing.  Corruption
anywhere *before* the tail — or an unreadable header — raises
:class:`CorruptStore`, which callers turn into their own quarantine
policy (``SweepCache`` renames the file aside and rebuilds).  A file
written by a **newer** schema raises :class:`ValueError` instead: that
file is healthy, this reader is just too old to be trusted with it.

The loader also **sniffs the legacy format** — the pre-store
``{"schema_version": 1, "cells": {...}}`` object — and serves its cells
transparently, so a sweep interrupted before this store existed resumes
bit-identically; the first append rewrites the file as JSON-lines (the
one remaining full rewrite, paid once per migrated file).

Typed column access: :meth:`ResultStore.column` pulls one dotted-path
field (e.g. ``"summary.total_rate.mean"``) across every record, with an
optional cast — the accessor the bench and sweep tables read columns
through instead of hand-walking nested dicts.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

__all__ = [
    "STORE_FORMAT",
    "STORE_SCHEMA_VERSION",
    "CorruptStore",
    "StoreSchemaTooNew",
    "ResultStore",
]

STORE_FORMAT = "repro-result-store"
STORE_SCHEMA_VERSION = 1


class CorruptStore(Exception):
    """The file is unreadable as either store format (not merely newer)."""


class StoreSchemaTooNew(ValueError):
    """The file is healthy but written by a newer schema than this reader."""


def _parse_legacy(data: Any, path: str) -> Dict[str, Dict[str, Any]]:
    """Records from a pre-store ``{"schema_version", "cells"}`` object."""
    try:
        version = int(data.get("schema_version", STORE_SCHEMA_VERSION))
    except (TypeError, ValueError):
        raise CorruptStore("legacy cache schema_version is not an int") from None
    if version > STORE_SCHEMA_VERSION:
        raise StoreSchemaTooNew(
            f"result store {path} has unsupported schema {version}"
        )
    cells = data.get("cells", {})
    if not isinstance(cells, Mapping):
        raise CorruptStore(
            f"legacy cache 'cells' must be an object, "
            f"got {type(cells).__name__}"
        )
    records: Dict[str, Dict[str, Any]] = {}
    for key, cell in sorted(cells.items()):
        if not isinstance(cell, Mapping):
            raise CorruptStore(f"legacy cell {key!r} is not an object")
        record = dict(cell)
        record.setdefault("key", str(key))
        records[str(key)] = record
    return records


class ResultStore:
    """One JSON-lines file of keyed records; appends are O(1).

    ``kind`` names what the records are (e.g. ``"sweep-cells"``) and is
    pinned in the header — opening a store of a different kind is a
    :class:`ValueError`, not a silent mix of unrelated records.  A
    missing file is an empty store; the header is written with the
    first flushed record.  ``put`` requires every record to carry its
    ``"key"`` and keeps the last record per key.

    Raises :class:`CorruptStore` for an unreadable file (callers decide
    the quarantine policy) and :class:`ValueError` for a healthy file
    this reader is too old for (newer ``schema_version``) or of the
    wrong ``kind``.
    """

    def __init__(self, path: Union[str, os.PathLike], kind: str):
        self.path = os.fspath(path)
        self.kind = str(kind)
        self._records: Dict[str, Dict[str, Any]] = {}
        self._pending: List[Dict[str, Any]] = []
        #: Byte offset after the last valid newline-terminated line;
        #: the next append truncates any torn tail beyond it.
        self._good_size = 0
        #: Set when the file on disk is legacy-format (or has a torn
        #: tail that plain appending can't extend): the next flush
        #: rewrites it atomically as JSON-lines.
        self._needs_rewrite = False
        self._has_header = False
        if os.path.exists(self.path):
            self._load()

    # ------------------------------ load ------------------------------ #

    def _load(self) -> None:
        with open(self.path, "rb") as fh:
            raw = fh.read()
        text = raw.decode("utf-8", errors="replace")
        # Sniff: a whole-file JSON object is either a header-only store
        # or the legacy single-blob cache.
        try:
            whole = json.loads(text)
        except json.JSONDecodeError:
            whole = None
        if whole is not None:
            if not isinstance(whole, Mapping):
                raise CorruptStore(
                    f"store root must be an object, "
                    f"got {type(whole).__name__}"
                )
            if whole.get("format") == STORE_FORMAT:
                self._check_header(whole)
                self._good_size = len(raw)
                self._has_header = True
                return
            self._records = _parse_legacy(whole, self.path)
            self._needs_rewrite = True
            return
        # JSON-lines: header line, then one record per line.  Only
        # newline-terminated lines count; a torn tail is trimmed.
        offset = 0
        header: Optional[Mapping[str, Any]] = None
        for line in text.splitlines(keepends=True):
            if not line.endswith("\n"):
                # A torn tail is only recoverable *after* a valid
                # header; a torn first line is just not a store.
                if header is None:
                    raise CorruptStore("missing store header")
                break  # torn tail: keep everything before it
            stripped = line.strip()
            if header is None:
                try:
                    header = json.loads(stripped)
                except json.JSONDecodeError as err:
                    raise CorruptStore(f"unreadable header: {err}") from None
                if (
                    not isinstance(header, Mapping)
                    or header.get("format") != STORE_FORMAT
                ):
                    raise CorruptStore("header is not a result-store header")
                self._check_header(header)
                offset += len(line.encode("utf-8"))
                continue
            if stripped:
                try:
                    record = json.loads(stripped)
                except json.JSONDecodeError:
                    # A torn write is only ever the *final* line; bad
                    # JSON with complete lines after it is corruption.
                    if offset + len(line.encode("utf-8")) < len(raw):
                        raise CorruptStore(
                            f"corrupt record at byte {offset}"
                        ) from None
                    break
                if not isinstance(record, Mapping) or "key" not in record:
                    raise CorruptStore(
                        f"record at byte {offset} has no 'key'"
                    )
                self._records[str(record["key"])] = dict(record)
            offset += len(line.encode("utf-8"))
        self._good_size = offset
        self._has_header = header is not None

    def _check_header(self, header: Mapping[str, Any]) -> None:
        try:
            version = int(header.get("schema_version", STORE_SCHEMA_VERSION))
        except (TypeError, ValueError):
            raise CorruptStore("header schema_version is not an int") from None
        if version > STORE_SCHEMA_VERSION:
            raise StoreSchemaTooNew(
                f"result store {self.path} has unsupported schema {version}"
            )
        kind = header.get("kind")
        if kind != self.kind:
            raise ValueError(
                f"result store {self.path} holds {kind!r} records, "
                f"expected {self.kind!r}"
            )

    # ----------------------------- access ----------------------------- #

    def __len__(self) -> int:
        return len(self._records)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._records.get(key)

    def keys(self) -> List[str]:
        return list(self._records)

    def records(self) -> List[Dict[str, Any]]:
        """Every record, in first-insertion order (last write per key)."""
        return list(self._records.values())

    def column(
        self, field: str, cast: Optional[Callable[[Any], Any]] = None,
    ) -> List[Any]:
        """One dotted-path field across every record, optionally cast.

        ``column("summary.total_rate.mean", float)`` walks each record
        down the path and applies the cast — the typed accessor tables
        and benches read columns through.
        """
        parts = field.split(".")
        out = []
        for record in self._records.values():
            value: Any = record
            for part in parts:
                value = value[part]
            out.append(cast(value) if cast is not None else value)
        return out

    # ----------------------------- write ------------------------------ #

    def put(self, record: Mapping[str, Any], flush: bool = True) -> None:
        """Append one record (``record["key"]`` required)."""
        if "key" not in record:
            raise ValueError("store records must carry a 'key' field")
        record = dict(record)
        self._records[str(record["key"])] = record
        self._pending.append(record)
        if flush:
            self.flush()

    def _line(self, obj: Mapping[str, Any]) -> str:
        return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"

    def _header_line(self) -> str:
        return self._line({
            "format": STORE_FORMAT,
            "schema_version": STORE_SCHEMA_VERSION,
            "kind": self.kind,
        })

    def flush(self) -> None:
        """Write pending records: one appended line each.

        A legacy-format file is rewritten atomically as JSON-lines the
        first time (temp file + ``os.replace``); from then on every
        flush is a single append, truncating any torn tail first.
        """
        if self._needs_rewrite or not self._has_header:
            self._rewrite()
            return
        if not self._pending:
            return
        payload = "".join(
            self._line(record) for record in self._pending
        ).encode("utf-8")
        with open(self.path, "r+b") as fh:
            fh.truncate(self._good_size)
            fh.seek(self._good_size)
            fh.write(payload)
        self._good_size += len(payload)
        self._pending.clear()

    def _rewrite(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(self._header_line())
                for record in self._records.values():
                    fh.write(self._line(record))
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._good_size = os.path.getsize(self.path)
        self._needs_rewrite = False
        self._has_header = True
        self._pending.clear()
