"""City-scale multi-cell scenario: hundreds of APs, thousands of clients.

``city_scale`` runs the sharded multi-cell simulation
(:mod:`repro.sim.multicell`): ``n_cells`` interference neighbourhoods on
a grid, each with its own elected leader, coupled through slot-barrier
boundary-interference exchange.  It is the §11 clustering conjecture
evaluated at deployment scale — the regime of the Push-and-Track /
cellular-offloading literature — and the scale-out rung of the
ROADMAP's "millions of users" ladder.

The parameter vocabulary is flat and JSON-scalar, so every knob —
including ``n_cells``, ``aps_per_cell``, ``clients_per_cell`` and
``workers`` — can be a ``repro sweep`` grid axis.  ``workers`` is an
*execution* knob: the multi-cell run is bit-identical for any worker
count (each cell's seed is an identity hash and boundary floors are
computed centrally at each barrier), so the canonicalizer strips it
from the sweep identity alongside ``engine``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.experiments.registry import TrialContext, register_scenario
from repro.experiments.results import ExperimentResult
from repro.sim.multicell import MultiCellConfig, MultiCellSimulation


def canonical_city_params(p: Mapping[str, Any]) -> Mapping[str, Any]:
    """Strip knobs that cannot change the computed numbers.

    ``workers`` shards the same deterministic trajectory; ``engine``
    picks between numerically-equivalent evaluators; ``load`` is unread
    under saturated traffic.  None of them may enter a sweep cell's
    identity hash, or sweeping them would present seed noise as effect.
    """
    q = dict(p)
    q.pop("workers", None)
    q.pop("engine", None)
    if str(q.get("traffic", "poisson")) == "saturated":
        q.pop("load", None)
    return q


def build_multicell_config(p: Mapping[str, Any], seed: int) -> MultiCellConfig:
    """A ``MultiCellConfig`` from a flat, JSON-scalar parameter map."""
    return MultiCellConfig(
        n_cells=int(p.get("n_cells", 64)),
        aps_per_cell=int(p.get("aps_per_cell", 3)),
        clients_per_cell=int(p.get("clients_per_cell", 16)),
        n_antennas=int(p.get("n_antennas", 2)),
        rho=float(p.get("rho", 0.998)),
        mean_gain_db=float(p.get("mean_gain_db", 15.0)),
        algorithm=str(p.get("algorithm", "best2")),
        engine=str(p.get("engine", "batched")),
        traffic=str(p.get("traffic", "poisson")),
        load=float(p.get("load", 0.7)),
        coupling_gain_db=float(p.get("coupling_gain_db", -10.0)),
        edge_fraction=float(p.get("edge_fraction", 0.5)),
        barrier_slots=int(p.get("barrier_slots", 20)),
        seed=seed,
    )


_CITY_DEFAULTS = {
    "n_cells": 64,
    "aps_per_cell": 3,
    "clients_per_cell": 16,
    "n_slots": 60,
    "workers": 1,
    "n_antennas": 2,
    "rho": 0.998,
    "mean_gain_db": 15.0,
    "algorithm": "best2",
    "engine": "batched",
    "traffic": "poisson",
    "load": 0.7,
    "coupling_gain_db": -10.0,
    "edge_fraction": 0.5,
    "barrier_slots": 20,
}


def _format_city(result: ExperimentResult, quiet: bool = False) -> str:
    p = result.params
    n_clients = int(p["n_cells"]) * int(p["clients_per_cell"])
    lines = [
        f"city_scale: {p['n_cells']} cells x "
        f"({p['aps_per_cell']} APs + {p['clients_per_cell']} clients) "
        f"= {n_clients} clients, {p['n_slots']} slots, "
        f"{p['workers']} worker(s)"
    ]
    for r in result.records:
        m = r.metrics
        lines.append(
            f"  trial {r.index}: network {m['network_rate']:.1f} b/s/Hz "
            f"({m['mean_cell_rate']:.2f}/cell), Jain {m['jain_fairness']:.2f}, "
            f"latency {m['mean_latency_slots']:.1f} slots, "
            f"edge floor mean/max {m['mean_interference_floor']:.3f}/"
            f"{m['max_interference_floor']:.3f}"
        )
    if result.records:
        lines.append(
            f"  mean network rate {result.metric('network_rate').mean():.1f} "
            f"b/s/Hz over {len(result.records)} trial(s)"
        )
    return "\n".join(lines)


@register_scenario(
    "city_scale",
    figure="§11 at scale",
    description="sharded multi-cell city: K neighbourhoods + boundary exchange",
    paper="per-cell IAC gains persist under cross-cell interference (§11)",
    default_params=_CITY_DEFAULTS,
    default_trials=1,
    tags=("wlan", "multicell", "scale"),
    formatter=_format_city,
    canonicalize=canonical_city_params,
)
def city_scale_trial(ctx: TrialContext) -> Dict[str, float]:
    """One city run: every cell simulated ``n_slots`` slots, merged stats.

    The simulation seed is drawn from the trial's own stream (the
    runner's worker-count-invariance contract); the multi-cell
    ``workers`` knob below it shards *cells* and is itself invariant —
    the same metrics come back for any value.
    """
    p = ctx.params
    sim = MultiCellSimulation(build_multicell_config(p, int(ctx.rng.integers(2**31 - 1))))
    stats = sim.run(int(p["n_slots"]), workers=int(p.get("workers", 1)))
    return {
        "network_rate": stats.network_rate,
        "mean_cell_rate": stats.mean_cell_rate,
        "jain_fairness": stats.jain_fairness,
        "mean_latency_slots": stats.mean_latency_slots,
        "idle_fraction": stats.idle_fraction,
        "delivered": float(stats.delivered_packets),
        "offered": float(stats.offered_packets),
        "dropped": float(stats.dropped_packets),
        "drift_reports": float(stats.drift_reports),
        "mean_interference_floor": stats.mean_interference_floor,
        "max_interference_floor": stats.max_interference_floor,
        "n_clients": float(stats.n_clients),
    }
