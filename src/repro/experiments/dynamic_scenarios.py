"""Dynamic-traffic WLAN scenarios: load, churn and mobility regimes.

The paper's Fig. 15 evaluates the concurrency algorithms under a
*saturated*, fixed-population downlink.  These scenarios run the full
WLAN integration sim (:mod:`repro.sim.wlan`) under the dynamic
workloads of :mod:`repro.sim.traffic` instead:

``fig15_dynamic``
    The Fig.-15 setup (17 clients, 3 APs, a concurrency algorithm)
    with a pluggable arrival process, churn and mobility.  With its
    defaults (``traffic="saturated"``, no churn, no mobility) it *is*
    the saturated experiment — the per-client rates are bit-identical
    to a plain ``WLANSimulation`` run — so the paper's regime is the
    exact limiting case of the dynamic one.
``load_latency``
    Offered load vs queueing latency: Poisson (or bursty /
    heterogeneous) arrivals at a fraction ``load`` of the 3-packet/slot
    service capacity.  The headline sweep axis for ``repro sweep``.
``churn_throughput``
    Saturated demand with clients leaving and re-joining; measures what
    re-association and purged backlogs cost in throughput and fairness.

All three share a flat parameter vocabulary (every value JSON-scalar),
so any knob can be a ``repro sweep`` grid axis.  Each trial derives its
simulation seed from ``ctx.rng``, keeping the worker-count-invariance
contract of the experiment runner.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from repro.baselines.dot11_mimo import per_client_rates
from repro.core.plans import ChannelSet
from repro.experiments.registry import (
    TrialContext,
    register_scenario,
    register_stacked,
)
from repro.experiments.results import ExperimentResult
from repro.sim.columnar import run_stacked
from repro.sim.wlan import WLANConfig, WLANSimulation, WLANStats

#: Downlink groups carry up to three packets per slot (Lemma 5.2, M=2).
_SERVICE_CAPACITY = 3

_CLIENT_GAIN_PREFIX = "client_gain_"

def canonical_dynamic_params(p: Mapping[str, Any]) -> Mapping[str, Any]:
    """Strip workload knobs that are inert under the current switches.

    The sweep engine hashes a cell's parameters into its RNG seed; a
    knob the trial never reads (a Poisson ``load`` while traffic is
    saturated, churn probabilities with ``churn=False``) must therefore
    not enter the identity, or sweeping it would present pure seed
    noise as an effect.
    """
    q = dict(p)
    traffic = str(q.get("traffic", "saturated"))
    if traffic == "hetero":  # alias: one spelling, one identity
        traffic = q["traffic"] = "heterogeneous"
    if traffic == "saturated":
        q.pop("load", None)
    if traffic != "bursty":
        q.pop("p_on", None)
        q.pop("p_off", None)
    if traffic not in ("heterogeneous", "hetero"):
        q.pop("heavy_fraction", None)
    if not q.get("churn", False):
        for knob in ("p_leave", "p_join", "min_active"):
            q.pop(knob, None)
    if not q.get("mobility", False):
        for knob in ("rho_moving", "p_start", "p_stop"):
            q.pop(knob, None)
    if str(q.get("channel", "flat")) == "flat":
        # Wideband knobs never reach a flat FadingNetwork.
        for knob in ("n_taps", "delay_spread", "n_fft", "n_bins", "alignment"):
            q.pop(knob, None)
    else:
        if float(q.get("delay_spread", 0.0)) == 0.0:
            # A zero-spread profile has one non-zero tap whatever the tap
            # count; extra taps draw no RNG and shape no response.
            q.pop("n_taps", None)
        if int(q.get("n_bins", 1)) == 1:
            # One bin is its own anchor: both alignment modes run the
            # identical flat route.
            q.pop("alignment", None)
    # The group-evaluation engines are numerically equivalent (pinned by
    # tests/engine/test_evaluator.py), so the engine choice affects
    # timing only — never the numbers — and stays out of the identity.
    q.pop("engine", None)
    return q


#: The workload vocabulary every dynamic scenario shares.  Declared in
#: full on each scenario (``run_sweep`` validates grid axes against
#: ``default_params``, so every sweepable knob must appear here);
#: per-scenario dicts below override the handful that differ.
_DYNAMIC_DEFAULTS = {
    "algorithm": "best2",
    "n_clients": 8,
    "n_slots": 300,
    "rho": 0.998,
    "n_antennas": 2,
    "mean_gain_db": 15.0,
    "traffic": "saturated",
    "load": 0.9,
    "p_on": 0.05,
    "p_off": 0.15,
    "heavy_fraction": 0.25,
    "churn": False,
    "p_leave": 0.02,
    "p_join": 0.1,
    "min_active": 3,
    "mobility": False,
    "rho_moving": 0.97,
    "p_start": 0.02,
    "p_stop": 0.1,
    "engine": "batched",
}


def _traffic_spec(p: Mapping[str, Any], n_clients: int):
    """Translate the flat ``traffic``/``load`` params into config fields.

    ``load`` is the offered fraction of the system's 3-packet/slot
    service capacity; each model's knobs are derived so its *mean*
    per-client arrival rate equals ``load * 3 / n_clients``.
    """
    name = str(p.get("traffic", "saturated"))
    if name == "saturated":
        return name, None
    rate = float(p.get("load", 0.6)) * _SERVICE_CAPACITY / n_clients
    if name == "poisson":
        return name, {"rate_per_client": rate}
    if name == "bursty":
        p_on = float(p.get("p_on", 0.05))
        p_off = float(p.get("p_off", 0.15))
        if p_on <= 0.0:
            raise ValueError("bursty traffic needs p_on > 0 (sources never turn on)")
        duty = p_on / (p_on + p_off)
        return name, {"rate_on": rate / duty, "p_on": p_on, "p_off": p_off}
    if name in ("heterogeneous", "hetero"):
        heavy_fraction = float(p.get("heavy_fraction", 0.25))
        # heavy clients get 5x the base rate; solve the base so the
        # population mean matches the requested load, using the *actual*
        # heavy count (ceil, matching HeterogeneousTraffic.rate_of).
        n_heavy = int(np.ceil(heavy_fraction * n_clients))
        base = rate / (1.0 + 4.0 * n_heavy / n_clients)
        return name, {
            "base_rate": base,
            "heavy_rate": 5.0 * base,
            "heavy_fraction": heavy_fraction,
        }
    raise ValueError(f"unknown traffic model {name!r}")


def build_wlan_config(p: Mapping[str, Any], seed: int) -> WLANConfig:
    """A ``WLANConfig`` from a flat, JSON-scalar scenario parameter map."""
    n_clients = int(p["n_clients"])
    traffic, traffic_params = _traffic_spec(p, n_clients)
    churn_params = None
    if p.get("churn", False):
        churn_params = {
            "p_leave": float(p.get("p_leave", 0.02)),
            "p_join": float(p.get("p_join", 0.1)),
            "min_active": int(p.get("min_active", 3)),
        }
    mobility_params = None
    if p.get("mobility", False):
        mobility_params = {
            "rho_static": float(p.get("rho", 0.998)),
            "rho_moving": float(p.get("rho_moving", 0.97)),
            "p_start": float(p.get("p_start", 0.02)),
            "p_stop": float(p.get("p_stop", 0.1)),
        }
    return WLANConfig(
        n_clients=n_clients,
        n_antennas=int(p.get("n_antennas", 2)),
        rho=float(p.get("rho", 0.998)),
        mean_gain_db=float(p.get("mean_gain_db", 15.0)),
        algorithm=str(p.get("algorithm", "best2")),
        engine=str(p.get("engine", "batched")),
        traffic=traffic,
        traffic_params=traffic_params,
        churn_params=churn_params,
        mobility_params=mobility_params,
        channel=str(p.get("channel", "flat")),
        n_taps=int(p.get("n_taps", 8)),
        delay_spread=float(p.get("delay_spread", 0.0)),
        n_fft=int(p.get("n_fft", 64)),
        n_bins=int(p.get("n_bins", 4)),
        alignment=str(p.get("alignment", "per_subcarrier")),
        seed=seed,
    )


def _dynamic_metrics(stats: WLANStats) -> Dict[str, float]:
    """The flat metric block every dynamic scenario shares."""
    return {
        "total_rate": stats.total_rate,
        "idle_fraction": stats.idle_fraction,
        "mean_latency_slots": stats.mean_latency_slots,
        "mean_queue_depth": stats.mean_queue_depth,
        "max_queue_depth": float(stats.max_queue_depth),
        "jain_fairness": stats.jain_fairness,
        "delivered": float(stats.delivered_packets),
        "offered": float(stats.offered_packets),
        "dropped": float(stats.dropped_packets),
        "joins": float(stats.joins),
        "leaves": float(stats.leaves),
        "drift_reports": float(stats.drift_reports),
        "mean_staleness_loss_db": stats.mean_staleness_loss_db,
    }


def _sim_seed(ctx: TrialContext) -> int:
    """Per-trial simulation seed, drawn from the trial's own stream."""
    return int(ctx.rng.integers(2**31 - 1))


def _dot11_round_robin(sim: WLANSimulation) -> Dict[int, float]:
    """The 802.11-MIMO baseline: per-slot best-AP rate / population.

    Computed from the channels at association time (the same true
    channels the leader sounded), matching the Fig.-15 convention where
    the baseline serves one client per slot round-robin at its best AP's
    eigenmode rate.
    """
    channels = ChannelSet(
        {
            (a, c): sim.fading.channel(a, c)
            for a in sim.ap_ids
            for c in sim.client_ids
        }
    )
    rates = per_client_rates(
        channels, sim.client_ids, sim.ap_ids, noise_power=1.0, direction="downlink"
    )
    n = len(sim.client_ids)
    return {c: rate / n for c, rate in rates.items()}


# --------------------------------------------------------------------- #
# fig15_dynamic
# --------------------------------------------------------------------- #


def _format_fig15_dynamic(result: ExperimentResult, quiet: bool = False) -> str:
    p = result.params
    lines = [
        f"fig15_dynamic ({p['traffic']}/{p['algorithm']}): "
        f"{p['n_clients']} clients, {p['n_slots']} slots"
    ]
    for r in result.records:
        m = r.metrics
        lines.append(
            f"  trial {r.index}: mean gain {m['mean_gain']:.2f}x, "
            f"worst client {m['min_gain']:.2f}x, "
            f"idle {m['idle_fraction'] * 100:.0f}%, "
            f"latency {m['mean_latency_slots']:.1f} slots, "
            f"Jain {m['jain_fairness']:.2f}"
        )
    if not quiet and result.records:
        gains = sorted(
            v
            for name, v in result.records[0].metrics.items()
            if name.startswith(_CLIENT_GAIN_PREFIX)
        )
        lines.append("  per-client gains (trial 0): " + " ".join(f"{g:.2f}" for g in gains))
    return "\n".join(lines)


@register_scenario(
    "fig15_dynamic",
    figure="Fig. 15",
    description="Fig.-15 WLAN under dynamic load/churn/mobility",
    paper="saturated static limit ~ fig15 downlink (best2 ~1.5-1.8x)",
    default_params={
        **_DYNAMIC_DEFAULTS,
        "n_clients": 17,
        "n_slots": 400,
        # The paper's environments are static (§8a); rho < 1 opens the
        # mobility regime where staleness genuinely costs SINR.
        "rho": 1.0,
    },
    default_trials=1,
    tags=("wlan", "dynamic", "mac", "concurrency"),
    formatter=_format_fig15_dynamic,
    canonicalize=canonical_dynamic_params,
)
def fig15_dynamic_trial(ctx: TrialContext) -> Dict[str, float]:
    """One dynamic-workload run of the Fig.-15 WLAN deployment.

    Gains are per-client IAC average rate over the 802.11-MIMO
    round-robin baseline (best-AP eigenmode rate at association time /
    population size).  With the default saturated traffic and no
    churn/mobility this *is* the paper's regime: the underlying
    ``WLANSimulation`` trajectory is bit-identical to the pre-dynamic
    simulation's.
    """
    p = ctx.params
    sim = WLANSimulation(build_wlan_config(p, _sim_seed(ctx)))
    baseline = _dot11_round_robin(sim)
    stats = sim.run(int(p["n_slots"]))
    return _fig15_metrics(sim, baseline, stats)


def _fig15_metrics(
    sim: WLANSimulation, baseline: Dict[int, float], stats: WLANStats
) -> Dict[str, float]:
    """The fig15_dynamic metric block (shared by the stacked path)."""
    gains = {
        c: stats.per_client_rate.get(c, 0.0) / baseline[c] for c in sim.client_ids
    }
    values = np.array(list(gains.values()))
    metrics = {
        "mean_gain": float(values.mean()),
        "min_gain": float(values.min()),
        "fraction_below_1x": float(np.mean(values < 1.0)),
        **_dynamic_metrics(stats),
    }
    for c, g in gains.items():
        metrics[f"{_CLIENT_GAIN_PREFIX}{c}"] = g
    return metrics


# --------------------------------------------------------------------- #
# load_latency
# --------------------------------------------------------------------- #


def _format_load_latency(result: ExperimentResult, quiet: bool = False) -> str:
    p = result.params
    lines = [
        f"load_latency ({p['traffic']}, load {p['load']}): "
        f"{p['n_clients']} clients, {p['n_slots']} slots, {p['algorithm']}"
    ]
    for r in result.records:
        m = r.metrics
        lines.append(
            f"  trial {r.index}: latency {m['mean_latency_slots']:.2f} slots, "
            f"throughput {m['throughput_per_slot']:.2f} b/s/Hz/slot, "
            f"idle {m['idle_fraction'] * 100:.0f}%, "
            f"queue mean/max {m['mean_queue_depth']:.1f}/{m['max_queue_depth']:.0f}, "
            f"delivered {m['delivered']:.0f}/{m['offered']:.0f}"
        )
    if result.records:
        lat = result.metric("mean_latency_slots")
        lines.append(
            f"  mean over trials: latency {lat.mean():.2f} slots, "
            f"Jain {result.metric('jain_fairness').mean():.2f}"
        )
    return "\n".join(lines)


@register_scenario(
    "load_latency",
    figure="dynamic",
    description="offered load vs queueing latency (Poisson/bursty arrivals)",
    paper="latency knee as load -> 1 (queueing theory)",
    default_params={
        **_DYNAMIC_DEFAULTS,
        "traffic": "poisson",
        "load": 0.6,
    },
    default_trials=3,
    tags=("wlan", "dynamic", "traffic"),
    formatter=_format_load_latency,
    canonicalize=canonical_dynamic_params,
)
def load_latency_trial(ctx: TrialContext) -> Dict[str, float]:
    """One finite-load run: arrivals at ``load`` x the 3-packet capacity.

    ``throughput_per_slot`` is the delivered sum-rate per slot (equal to
    ``total_rate``); at low load it tracks the offered load, at high
    load it saturates while ``mean_latency_slots`` blows up — the
    classic throughput/latency knee the saturated experiments cannot
    show.
    """
    p = ctx.params
    sim = WLANSimulation(build_wlan_config(p, _sim_seed(ctx)))
    stats = sim.run(int(p["n_slots"]))
    return _load_latency_metrics(stats)


def _load_latency_metrics(stats: WLANStats) -> Dict[str, float]:
    # The offered load is deliberately NOT echoed as a metric: the row's
    # parameters already carry it, and a cached/shared cell relabeled
    # under a different (inert) load value would contradict itself.
    metrics = _dynamic_metrics(stats)
    metrics["throughput_per_slot"] = stats.total_rate
    return metrics


# --------------------------------------------------------------------- #
# churn_throughput
# --------------------------------------------------------------------- #


def _format_churn(result: ExperimentResult, quiet: bool = False) -> str:
    p = result.params
    lines = [
        f"churn_throughput (p_leave {p['p_leave']}, p_join {p['p_join']}): "
        f"{p['n_clients']} clients, {p['n_slots']} slots"
    ]
    for r in result.records:
        m = r.metrics
        lines.append(
            f"  trial {r.index}: rate {m['total_rate']:.2f}, "
            f"{m['leaves']:.0f} leaves / {m['joins']:.0f} joins, "
            f"dropped {m['dropped']:.0f}, Jain {m['jain_fairness']:.2f}"
        )
    if result.records:
        lines.append(
            f"  mean rate {result.metric('total_rate').mean():.2f} "
            f"(saturated no-churn baseline is the load=saturated limit)"
        )
    return "\n".join(lines)


@register_scenario(
    "churn_throughput",
    figure="dynamic",
    description="client churn vs throughput/fairness (re-association cost)",
    paper="throughput degrades gracefully with churn",
    default_params={
        **_DYNAMIC_DEFAULTS,
        "n_clients": 12,
        "churn": True,
    },
    default_trials=3,
    tags=("wlan", "dynamic", "churn"),
    formatter=_format_churn,
    canonicalize=canonical_dynamic_params,
)
def churn_throughput_trial(ctx: TrialContext) -> Dict[str, float]:
    """One churning saturated run: leaves purge backlog, joins re-sound.

    The interesting outputs are ``total_rate`` (how much the shrinking
    population and re-association churn cost against the saturated
    limit), ``jain_fairness`` over the client universe, and the
    ``joins``/``leaves``/``dropped`` accounting.
    """
    p = ctx.params
    sim = WLANSimulation(build_wlan_config(p, _sim_seed(ctx)))
    stats = sim.run(int(p["n_slots"]))
    return _churn_metrics(stats)


def _churn_metrics(stats: WLANStats) -> Dict[str, float]:
    metrics = _dynamic_metrics(stats)
    metrics["n_events"] = float(len(stats.events))
    return metrics


# --------------------------------------------------------------------- #
# Cross-trial stacking
# --------------------------------------------------------------------- #
#
# With ``engine="columnar"`` a whole experiment's trials can share one
# stacked alignment solve per slot (:func:`repro.sim.columnar.run_stacked`):
# every simulation's uncached candidate groups are pooled into a single
# ``solve_downlink_three_batch`` call.  Each stacked implementation below
# draws the per-trial simulation seeds from the contexts' own streams in
# context order — the identical single ``integers`` call the serial loop
# makes — so the simulations, and therefore the metrics, are bit-identical
# to the per-trial path.  Any other engine falls back to that plain loop.


def _stacked_sims(contexts: Sequence[TrialContext]) -> List[WLANSimulation]:
    return [
        WLANSimulation(build_wlan_config(ctx.params, _sim_seed(ctx)))
        for ctx in contexts
    ]


def _wants_stacking(contexts: Sequence[TrialContext]) -> bool:
    return str(contexts[0].params.get("engine", "batched")) == "columnar"


@register_stacked("fig15_dynamic")
def fig15_dynamic_stacked(
    contexts: Sequence[TrialContext],
) -> List[Dict[str, float]]:
    """All fig15_dynamic trials lock-step, one shared solve per slot."""
    if not _wants_stacking(contexts):
        return [fig15_dynamic_trial(ctx) for ctx in contexts]
    sims = _stacked_sims(contexts)
    # Baselines read the channels at association time, so they must be
    # computed before any slot advances the fading processes.
    baselines = [_dot11_round_robin(sim) for sim in sims]
    n_slots = int(contexts[0].params["n_slots"])
    all_stats = run_stacked(sims, n_slots)
    return [
        _fig15_metrics(sim, baseline, stats)
        for sim, baseline, stats in zip(sims, baselines, all_stats)
    ]


@register_stacked("load_latency")
def load_latency_stacked(
    contexts: Sequence[TrialContext],
) -> List[Dict[str, float]]:
    """All load_latency trials lock-step, one shared solve per slot."""
    if not _wants_stacking(contexts):
        return [load_latency_trial(ctx) for ctx in contexts]
    sims = _stacked_sims(contexts)
    n_slots = int(contexts[0].params["n_slots"])
    return [_load_latency_metrics(s) for s in run_stacked(sims, n_slots)]


@register_stacked("churn_throughput")
def churn_throughput_stacked(
    contexts: Sequence[TrialContext],
) -> List[Dict[str, float]]:
    """All churn_throughput trials lock-step, one shared solve per slot."""
    if not _wants_stacking(contexts):
        return [churn_throughput_trial(ctx) for ctx in contexts]
    sims = _stacked_sims(contexts)
    n_slots = int(contexts[0].params["n_slots"])
    return [_churn_metrics(s) for s in run_stacked(sims, n_slots)]
