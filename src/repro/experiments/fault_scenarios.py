"""Fault-injection scenarios: IAC under a failing backplane and control plane.

Two registered scenarios probe the robustness layer
(:mod:`repro.faults`) end to end:

* ``fault_resilience`` — a small multi-cell city run under a full fault
  cocktail (Gilbert–Elliott backplane loss, bounded delay, CSI
  corruption and staleness, a mid-run leader crash in every cell) with
  four APs per cell, so the post-crash deployment still aligns.  Its
  metrics surface the degradation counters (fallback slots, CSI
  rejections, re-elections) next to the goodput they protect; CI runs
  it twice at the same seed and asserts byte-identical JSON.
* ``backplane_loss_sweep`` — a single cell at one backplane loss rate,
  bracketed per trial by its own no-fault ceiling and its
  ``service="p2p"`` floor.  The headline ``degradation`` metric is the
  fraction of the IAC-over-p2p headroom that the lossy wire erased:
  0 at loss 0, exactly 1 at loss 1 (the graceful-degradation contract —
  a dead backplane *is* the p2p floor, never a crash).

Every knob is a flat JSON scalar so both scenarios sweep cleanly;
``workers`` and ``engine`` are execution knobs stripped from sweep
identity by the canonicalizers.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping

from repro.experiments.multicell_scenarios import (
    build_multicell_config,
    canonical_city_params,
)
from repro.experiments.registry import TrialContext, register_scenario
from repro.experiments.results import ExperimentResult
from repro.sim.multicell import MultiCellSimulation
from repro.sim.wlan import WLANConfig, WLANSimulation

#: FaultPlan knobs both scenarios expose as flat scenario parameters.
_FAULT_KNOBS = (
    "backplane_loss_rate",
    "burst_enter",
    "burst_exit",
    "burst_loss_rate",
    "backplane_delay_rate",
    "backplane_delay_max",
    "csi_corrupt_rate",
    "csi_stale_rate",
)


def _fault_params_from(p: Mapping[str, Any]) -> Dict[str, Any]:
    """The flat FaultPlan dict encoded in a scenario parameter map."""
    plan: Dict[str, Any] = {k: p[k] for k in _FAULT_KNOBS if k in p}
    crash = p.get("leader_crash_slot", -1)
    if int(crash) >= 0:
        plan["leader_crash_slot"] = int(crash)
    return plan


_RESILIENCE_DEFAULTS = {
    "n_cells": 4,
    # Four APs per cell: after the leader crash three survive, so the
    # cell re-elects and keeps aligning instead of degrading for good.
    "aps_per_cell": 4,
    "clients_per_cell": 8,
    "n_slots": 40,
    "workers": 1,
    "traffic": "poisson",
    "load": 0.7,
    "barrier_slots": 10,
    "backplane_loss_rate": 0.1,
    "burst_enter": 0.02,
    "burst_exit": 0.3,
    "burst_loss_rate": 0.9,
    "backplane_delay_rate": 0.1,
    "backplane_delay_max": 3,
    "csi_corrupt_rate": 0.05,
    "csi_stale_rate": 0.05,
    #: Absolute slot of the per-cell leader crash; -1 disables it (the
    #: scenario vocabulary is JSON scalars, so no None sentinel).
    "leader_crash_slot": 20,
    "engine": "batched",
}


def canonical_resilience_params(p: Mapping[str, Any]) -> Mapping[str, Any]:
    """Same stripping rule as the city scenario: execution knobs out."""
    return canonical_city_params(p)


def _format_resilience(result: ExperimentResult, quiet: bool = False) -> str:
    p = result.params
    lines = [
        f"fault_resilience: {p['n_cells']} cells x {p['aps_per_cell']} APs, "
        f"{p['n_slots']} slots, loss {p['backplane_loss_rate']}, "
        f"corrupt {p['csi_corrupt_rate']}, crash @{p['leader_crash_slot']}"
    ]
    for r in result.records:
        m = r.metrics
        lines.append(
            f"  trial {r.index}: network {m['network_rate']:.1f} b/s/Hz, "
            f"fallback {m['fallback_fraction']:.1%}, "
            f"lost {int(m['frames_lost_backplane'])} frames, "
            f"rejected {int(m['csi_rejections'])} reports, "
            f"{int(m['re_elections'])} re-election(s)"
        )
    if result.records:
        lines.append(
            f"  mean network rate {result.metric('network_rate').mean():.1f} "
            f"b/s/Hz over {len(result.records)} trial(s)"
        )
    return "\n".join(lines)


@register_scenario(
    "fault_resilience",
    figure="robustness",
    description="multi-cell city under backplane loss, CSI faults and leader crash",
    paper="IAC degrades to p2p service under faults instead of failing (§7.1)",
    default_params=_RESILIENCE_DEFAULTS,
    default_trials=1,
    tags=("wlan", "multicell", "faults"),
    formatter=_format_resilience,
    canonicalize=canonical_resilience_params,
)
def fault_resilience_trial(ctx: TrialContext) -> Dict[str, float]:
    """One faulted city run; the fault plan applies to every cell.

    The multi-cell seed comes from the trial's own stream and the fault
    streams are spawned per cell from hashed cell seeds, so the metrics
    are bit-identical for any ``workers`` value — the property the CI
    fault-smoke job asserts.
    """
    p = ctx.params
    config = dataclasses.replace(
        build_multicell_config(p, int(ctx.rng.integers(2**31 - 1))),
        fault_params=_fault_params_from(p),
    )
    stats = MultiCellSimulation(config).run(
        int(p["n_slots"]), workers=int(p.get("workers", 1))
    )
    return {
        "network_rate": stats.network_rate,
        "jain_fairness": stats.jain_fairness,
        "mean_latency_slots": stats.mean_latency_slots,
        "idle_fraction": stats.idle_fraction,
        "delivered": float(stats.delivered_packets),
        "frames_lost_backplane": float(stats.frames_lost_backplane),
        "frames_delayed_backplane": float(stats.frames_delayed_backplane),
        "csi_rejections": float(stats.csi_rejections),
        "fallback_slots": float(stats.fallback_slots),
        "fallback_fraction": (
            stats.fallback_slots / (stats.n_cells * stats.slots)
            if stats.slots
            else 0.0
        ),
        "re_elections": float(stats.re_elections),
    }


_LOSS_SWEEP_DEFAULTS = {
    "loss_rate": 0.5,
    "n_aps": 3,
    "n_clients": 8,
    "n_antennas": 2,
    "n_slots": 60,
    "rho": 0.998,
    "mean_gain_db": 15.0,
    "algorithm": "best2",
    "engine": "batched",
}


def canonical_loss_params(p: Mapping[str, Any]) -> Mapping[str, Any]:
    """``engine`` picks numerically-equivalent evaluators: strip it."""
    q = dict(p)
    q.pop("engine", None)
    return q


def _format_loss(result: ExperimentResult, quiet: bool = False) -> str:
    p = result.params
    lines = [
        f"backplane_loss_sweep: loss {p['loss_rate']}, {p['n_aps']} APs, "
        f"{p['n_clients']} clients, {p['n_slots']} slots"
    ]
    for r in result.records:
        m = r.metrics
        lines.append(
            f"  trial {r.index}: goodput {m['goodput']:.1f} "
            f"(ceiling {m['ceiling_rate']:.1f}, floor {m['floor_rate']:.1f}) "
            f"b/s/Hz, degradation {m['degradation']:.1%}, "
            f"fallback {m['fallback_fraction']:.1%}"
        )
    if result.records:
        lines.append(
            f"  mean degradation {result.metric('degradation').mean():.1%} "
            f"over {len(result.records)} trial(s)"
        )
    return "\n".join(lines)


@register_scenario(
    "backplane_loss_sweep",
    figure="robustness",
    description="goodput vs backplane loss, bracketed by no-fault and p2p runs",
    paper="a lossy Ethernet degrades IAC toward plain 802.11, not to zero (§7.1(d))",
    default_params=_LOSS_SWEEP_DEFAULTS,
    default_trials=3,
    tags=("wlan", "faults"),
    formatter=_format_loss,
    canonicalize=canonical_loss_params,
)
def backplane_loss_trial(ctx: TrialContext) -> Dict[str, float]:
    """Three same-seed runs: no-fault ceiling, p2p floor, faulted system.

    All three share one ``WLANConfig`` seed, so they see identical
    fading, traffic and selector draws; the only difference is the wire.
    ``degradation`` is ``(ceiling - goodput) / (ceiling - floor)`` —
    0 when the faults cost nothing, exactly 1 at ``loss_rate=1.0``
    (where the faulted run *is* the p2p floor, bit for bit).
    """
    p = ctx.params
    base = WLANConfig(
        n_aps=int(p["n_aps"]),
        n_clients=int(p["n_clients"]),
        n_antennas=int(p["n_antennas"]),
        rho=float(p["rho"]),
        mean_gain_db=float(p["mean_gain_db"]),
        algorithm=str(p["algorithm"]),
        engine=str(p["engine"]),
        seed=int(ctx.rng.integers(2**31 - 1)),
    )
    n_slots = int(p["n_slots"])
    ceiling = WLANSimulation(base).run(n_slots)
    floor = WLANSimulation(dataclasses.replace(base, service="p2p")).run(n_slots)
    faulted = WLANSimulation(
        dataclasses.replace(
            base, fault_params={"backplane_loss_rate": float(p["loss_rate"])}
        )
    ).run(n_slots)
    headroom = ceiling.total_rate - floor.total_rate
    degradation = (
        (ceiling.total_rate - faulted.total_rate) / headroom if headroom > 0 else 0.0
    )
    return {
        "goodput": faulted.total_rate,
        "ceiling_rate": ceiling.total_rate,
        "floor_rate": floor.total_rate,
        "degradation": degradation,
        "fallback_fraction": faulted.fallback_fraction,
        "frames_lost": float(faulted.frames_lost_backplane),
        "jain_fairness": faulted.jain_fairness,
    }
