"""Signal-level scatter scenarios: sample-accurate sweeps as experiments.

The rate-level scatter scenarios (``fig12``/``fig13b``) compute achievable
rates from post-projection SINRs.  These scenarios instead push every trial
through the *sample-accurate* pipeline the paper's GNU-Radio prototype ran
(:func:`repro.core.run_session`): FEC-encode, modulate, superimpose, mix
through the channel with CFO and timing offsets, then synchronise, cancel,
phase-track, demodulate and CRC-check — the IAC rate comes from the
*measured* per-packet EVM SNRs of delivered packets (Eq. 9 over measured
SNRs, exactly how the paper's Figs. 12-14 were produced).  The 802.11
baseline stays the rate-level best-AP eigenmode link, as in the rate-level
trials, so gains are comparable across the two scenario families.

Registered here (imported by ``repro.experiments``):

============== ========================================================
name           experiment
============== ========================================================
fig12_signal   Fig. 12 at signal level: 3 concurrent uplink packets
               from 2 clients to 2 APs per trial
fig13b_signal  Fig. 13b at signal level: 3 concurrent downlink packets
               from 3 APs to 3 clients per trial
============== ========================================================

These sweeps only became practical when the pipeline was vectorized
(block phase tracking, batched Viterbi — see ``BENCH_signal.json``); the
``engine`` parameter still accepts ``"reference"`` to run a sweep on the
scalar path for validation.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.dot11_mimo import best_ap_link
from repro.core import (
    SignalConfig,
    run_session,
    solve_downlink_three_packets,
    solve_uplink_three_packets,
)
from repro.experiments.registry import TrialContext, register_scenario
from repro.experiments.scenarios import _format_scatter
from repro.phy.packet import Packet

#: Modest payload: large enough for meaningful BER statistics, small
#: enough that a thousand-trial sweep stays interactive.
DEFAULT_PAYLOAD_BYTES = 60

_SIGNAL_DEFAULTS = {
    "payload_bytes": DEFAULT_PAYLOAD_BYTES,
    "modulation": "bpsk",  # the prototype's scheme (§10b)
    "fec": "conv",
    "cfo_spread": 5e-5,
    "max_timing_offset": 16,
    "engine": "fast",
}


def _signal_config(ctx: TrialContext) -> SignalConfig:
    p = ctx.params
    return SignalConfig(
        modulation=str(p["modulation"]),
        fec=p["fec"] if p["fec"] is None else str(p["fec"]),
        noise_power=ctx.testbed.noise_power,
        cfo_spread=float(p["cfo_spread"]),
        max_timing_offset=int(p["max_timing_offset"]),
        engine=str(p["engine"]),
    )


def _signal_metrics(report, dot11: float) -> Dict[str, float]:
    iac = report.total_rate
    return {
        "dot11": dot11,
        "iac": iac,
        "gain": iac / dot11 if dot11 > 0 else 0.0,
        "delivered": float(report.delivery_count),
        "n_packets": float(len(report.outcomes)),
    }


@register_scenario(
    "fig12_signal",
    figure="Fig. 12",
    description="2-client/2-AP uplink, sample-accurate",
    paper="1.5x (rate-level; signal adds impl. loss)",
    default_params={"n_clients": 2, "n_aps": 2, **_SIGNAL_DEFAULTS},
    default_trials=25,
    tags=("scatter", "uplink", "signal"),
    formatter=_format_scatter,
)
def fig12_signal_trial(ctx: TrialContext) -> Dict[str, float]:
    """Fig. 12 through the sample-level pipeline.

    One alignment solution per trial (the first drawn client sends two
    packets); the rate-level scenario averages both orderings, which at
    signal level would double the per-trial cost for the same statistic
    in expectation.
    """
    n_clients, n_aps = int(ctx.params["n_clients"]), int(ctx.params["n_aps"])
    nodes = ctx.testbed.pick_nodes(n_clients + n_aps, ctx.rng)
    clients, aps = nodes[:n_clients], nodes[n_clients:]
    noise = ctx.testbed.noise_power
    channels = ctx.testbed.channel_set(clients, aps)

    dot11 = float(
        np.mean(
            [
                best_ap_link(channels, c, aps, noise, direction="uplink").rate
                for c in clients
            ]
        )
    )
    solution = solve_uplink_three_packets(
        channels, clients=tuple(clients), aps=tuple(aps), rng=ctx.rng
    )
    payload_bytes = int(ctx.params["payload_bytes"])
    payloads = {
        p.packet_id: Packet.random(ctx.rng, payload_bytes, src=p.tx, seq=p.packet_id)
        for p in solution.packets
    }
    report = run_session(solution, channels, payloads, _signal_config(ctx), rng=ctx.rng)
    return _signal_metrics(report, dot11)


@register_scenario(
    "fig13b_signal",
    figure="Fig. 13b",
    description="3-client/3-AP downlink, sample-accurate",
    paper="1.4x (rate-level; signal adds impl. loss)",
    default_params={"n_clients": 3, "n_aps": 3, **_SIGNAL_DEFAULTS},
    default_trials=25,
    tags=("scatter", "downlink", "signal"),
    formatter=_format_scatter,
)
def fig13b_signal_trial(ctx: TrialContext) -> Dict[str, float]:
    """Fig. 13b through the sample-level pipeline (AP i serves client i)."""
    n_clients, n_aps = int(ctx.params["n_clients"]), int(ctx.params["n_aps"])
    nodes = ctx.testbed.pick_nodes(n_clients + n_aps, ctx.rng)
    clients, aps = nodes[:n_clients], nodes[n_clients:]
    noise = ctx.testbed.noise_power
    channels = ctx.testbed.channel_set(aps, clients)

    dot11 = float(
        np.mean(
            [
                best_ap_link(channels, c, aps, noise, direction="downlink").rate
                for c in clients
            ]
        )
    )
    solution = solve_downlink_three_packets(
        channels, aps=tuple(aps), clients=tuple(clients), rng=ctx.rng
    )
    payload_bytes = int(ctx.params["payload_bytes"])
    payloads = {
        p.packet_id: Packet.random(ctx.rng, payload_bytes, src=p.tx, seq=p.packet_id)
        for p in solution.packets
    }
    report = run_session(solution, channels, payloads, _signal_config(ctx), rng=ctx.rng)
    return _signal_metrics(report, dot11)


SIGNAL_SCENARIOS = ["fig12_signal", "fig13b_signal"]
