"""Wideband (per-subcarrier) scenarios: the §6c conjecture as workloads.

The paper conjectures (§6c) that on frequency-selective channels "one
can still do the alignment separately in each OFDM subcarrier without
trying to synchronize the transmitters" — and could not test it on
USRP1 hardware.  Two registered scenarios test it here, at two scales:

``ofdm_subcarrier``
    The isolated ablation (formerly only
    ``benchmarks/bench_ablation_ofdm.py``): a 2-client/2-AP uplink over
    multi-tap channels, per-subcarrier alignment vs a single band-centre
    (flat-approximation) alignment, over a configurable delay spread.
    ``repro sweep ofdm_subcarrier --grid delay_spread=0,0.5,1,2,4``
    reproduces the ablation's sweep through the same code path the
    benchmark drives.
``fig_ofdm_dynamic``
    The Fig.-15 WLAN regime on a
    :class:`~repro.phy.channel.provider.WidebandFadingNetwork`: per-bin
    sounding/tracking/alignment through the full stack
    (:mod:`repro.sim.wlan` with ``channel="wideband"``), gains against a
    band-aware 802.11 round-robin baseline.  Sweeping
    ``delay_spread x alignment`` (and the mobility knobs) shows
    per-subcarrier alignment holding the IAC gain while the
    flat-anchor approximation decays with dispersion — §6c, end to end.

Both share the flat JSON-scalar parameter vocabulary of the dynamic
scenarios, so every knob is a ``repro sweep`` axis.
"""

from __future__ import annotations

import functools
from typing import Dict

import numpy as np

from repro.baselines.dot11_mimo import per_client_rates
from repro.core.alignment import solve_uplink_three_packets
from repro.core.ofdm_alignment import conjecture_experiment
from repro.core.plans import ChannelSet
from repro.experiments.dynamic_scenarios import (
    _CLIENT_GAIN_PREFIX,
    _DYNAMIC_DEFAULTS,
    _dynamic_metrics,
    _sim_seed,
    build_wlan_config,
    canonical_dynamic_params,
)
from repro.experiments.registry import TrialContext, register_scenario
from repro.experiments.results import ExperimentResult
from repro.phy.channel.selective import MultiTapChannel, exponential_pdp
from repro.sim.wlan import WLANSimulation


# --------------------------------------------------------------------- #
# ofdm_subcarrier — the §6c ablation on the registry
# --------------------------------------------------------------------- #


def _format_ofdm_subcarrier(result: ExperimentResult, quiet: bool = False) -> str:
    p = result.params
    lines = [
        f"ofdm_subcarrier (delay spread {p['delay_spread']} samples, "
        f"{p['n_bins']} of {p['n_fft']} bins):"
    ]
    for r in result.records:
        m = r.metrics
        lines.append(
            f"  trial {r.index}: per-subcarrier {m['per_subcarrier_rate']:.2f} "
            f"b/s/Hz, flat-approx {m['flat_rate']:.2f} "
            f"(ratio {m['flat_ratio']:.2f}), "
            f"coherence {m['coherence_bins']:.0f} bins"
        )
    if result.records:
        ratios = result.metric("flat_ratio")
        lines.append(
            f"  mean flat/per-subcarrier ratio: {ratios.mean():.2f} "
            "(1.0 = flat approximation costs nothing)"
        )
    return "\n".join(lines)


@register_scenario(
    "ofdm_subcarrier",
    figure="§6c",
    description="per-subcarrier vs band-wide alignment on selective channels",
    paper="conjecture: per-subcarrier alignment works unsynchronised",
    default_params={
        "delay_spread": 1.0,
        "n_taps": 8,
        "n_fft": 64,
        "n_bins": 12,
        "n_antennas": 2,
        "noise_power": 1e-3,
        "n_candidates": 2,
    },
    default_trials=3,
    tags=("ofdm", "wideband", "ablation", "uplink"),
    formatter=_format_ofdm_subcarrier,
)
def ofdm_subcarrier_trial(ctx: TrialContext) -> Dict[str, float]:
    """One §6c ablation draw: both strategies over a fresh selective scene.

    Metrics: the band rates of both strategies (``per_subcarrier_rate``,
    ``flat_rate``, their ``flat_ratio``), the worst evaluated bin of each,
    and the channel's coherence bandwidth in bins — the quantity the
    conjecture's "nearby subcarriers" wording leans on.
    """
    p = ctx.params
    m = int(p["n_antennas"])
    pdp = exponential_pdp(int(p["n_taps"]), float(p["delay_spread"]))
    selective = {
        (c, a): MultiTapChannel.random(m, m, pdp, ctx.rng)
        for c in (0, 1)
        for a in (0, 1)
    }
    solver = functools.partial(
        solve_uplink_three_packets,
        rng=ctx.rng,
        n_candidates=int(p["n_candidates"]),
    )
    results = conjecture_experiment(
        selective,
        solver,
        n_fft=int(p["n_fft"]),
        n_bins=int(p["n_bins"]),
        noise_power=float(p["noise_power"]),
    )
    per_sc = results["per_subcarrier"]
    flat = results["flat_approximation"]
    return {
        "per_subcarrier_rate": per_sc.total_rate,
        "flat_rate": flat.total_rate,
        "flat_ratio": flat.total_rate / per_sc.total_rate,
        "per_subcarrier_worst_bin": per_sc.worst_bin_rate,
        "flat_worst_bin": flat.worst_bin_rate,
        "coherence_bins": float(
            selective[(0, 0)].coherence_bandwidth_bins(int(p["n_fft"]))
        ),
    }


# --------------------------------------------------------------------- #
# fig_ofdm_dynamic — the wideband Fig.-15 WLAN regime
# --------------------------------------------------------------------- #


def _dot11_round_robin_band(sim: WLANSimulation) -> Dict[int, float]:
    """Band-aware 802.11-MIMO baseline: per-bin best-AP rate, averaged
    over the evaluated subcarriers, divided by the population size.

    The wideband counterpart of the flat round-robin baseline used by
    ``fig15_dynamic``: the baseline discipline also transmits OFDM, so
    it too earns the *band-averaged* eigenmode rate of its best AP —
    gains stay an IAC-vs-802.11 comparison, not a wideband-vs-flat one.
    """
    n_bins = sim.fading.n_bins
    bands = {
        (a, c): sim.fading.channel_bins(a, c)
        for a in sim.ap_ids
        for c in sim.client_ids
    }
    rates = {c: 0.0 for c in sim.client_ids}
    for b in range(n_bins):
        channels = ChannelSet(
            {pair: band[b] for pair, band in bands.items()}
        )
        bin_rates = per_client_rates(
            channels, sim.client_ids, sim.ap_ids,
            noise_power=1.0, direction="downlink",
        )
        for c, rate in bin_rates.items():
            rates[c] += rate
    n = len(sim.client_ids)
    return {c: rate / (n_bins * n) for c, rate in rates.items()}


def _format_fig_ofdm_dynamic(result: ExperimentResult, quiet: bool = False) -> str:
    p = result.params
    lines = [
        f"fig_ofdm_dynamic ({p['alignment']}, delay spread {p['delay_spread']}, "
        f"{p['n_bins']} bins): {p['n_clients']} clients, {p['n_slots']} slots, "
        f"{p['algorithm']}"
    ]
    for r in result.records:
        m = r.metrics
        lines.append(
            f"  trial {r.index}: mean gain {m['mean_gain']:.2f}x, "
            f"worst client {m['min_gain']:.2f}x, "
            f"staleness {m['mean_staleness_loss_db']:.2f} dB/slot, "
            f"Jain {m['jain_fairness']:.2f}"
        )
    if not quiet and result.records:
        gains = sorted(
            v
            for name, v in result.records[0].metrics.items()
            if name.startswith(_CLIENT_GAIN_PREFIX)
        )
        lines.append(
            "  per-client gains (trial 0): " + " ".join(f"{g:.2f}" for g in gains)
        )
    return "\n".join(lines)


@register_scenario(
    "fig_ofdm_dynamic",
    figure="§6c",
    description="Fig.-15 WLAN on wideband channels: per-subcarrier IAC vs flat anchor",
    paper="per-subcarrier holds the fig15 gain; flat anchor decays with dispersion",
    default_params={
        **_DYNAMIC_DEFAULTS,
        "n_clients": 17,
        "n_slots": 400,
        "rho": 1.0,
        "channel": "wideband",
        "n_taps": 8,
        "delay_spread": 2.0,
        "n_fft": 64,
        "n_bins": 4,
        "alignment": "per_subcarrier",
    },
    default_trials=1,
    tags=("wlan", "wideband", "ofdm", "dynamic", "concurrency"),
    formatter=_format_fig_ofdm_dynamic,
    canonicalize=canonical_dynamic_params,
)
def fig_ofdm_dynamic_trial(ctx: TrialContext) -> Dict[str, float]:
    """One wideband Fig.-15 run: per-bin IAC against the band baseline.

    With ``delay_spread=0``/``n_bins=1`` this collapses to the flat
    ``fig15_dynamic`` regime bit-for-bit (same RNG streams, same
    simulation trajectory).  Sweeping ``delay_spread`` with
    ``alignment=flat_anchor`` reproduces the §6c decay at full-stack
    scale; ``alignment=per_subcarrier`` holds the gain.
    """
    p = ctx.params
    sim = WLANSimulation(build_wlan_config(p, _sim_seed(ctx)))
    baseline = _dot11_round_robin_band(sim)
    stats = sim.run(int(p["n_slots"]))
    gains = {
        c: stats.per_client_rate.get(c, 0.0) / baseline[c] for c in sim.client_ids
    }
    values = np.array(list(gains.values()))
    metrics = {
        "mean_gain": float(values.mean()),
        "min_gain": float(values.min()),
        "fraction_below_1x": float(np.mean(values < 1.0)),
        **_dynamic_metrics(stats),
    }
    for c, g in gains.items():
        metrics[f"{_CLIENT_GAIN_PREFIX}{c}"] = g
    return metrics
