"""Complex linear-algebra helpers for interference alignment.

All of IAC's signal processing happens in the "antenna-spatial domain"
(paper, §6): transmitted packets are complex scalars riding on complex
M-dimensional direction vectors.  This module provides the primitive
operations the rest of the library is written in terms of:

* normalising encoding vectors to unit power,
* finding vectors orthogonal to (aligned) interference,
* measuring how well two received directions are aligned, and
* extracting null spaces / orthogonal complements of interference subspaces.

Everything here operates on ``numpy`` complex arrays and is pure (no state).
"""

from __future__ import annotations

import numpy as np

#: Numerical tolerance used when deciding that two directions coincide.
DEFAULT_ATOL = 1e-9

# Low-overhead stacked linear algebra for the per-slot hot path.
#
# ``np.linalg.inv/solve/eig`` spend a large fraction of their time (for the
# tiny 2x2/3x3 batches the engine solves every slot) in the pure-Python
# wrapper: array coercion, shape assertions and error-callback setup.  The
# underlying gufuncs are reachable directly and produce *bit-identical*
# results — the wrapper adds no arithmetic — so the engine calls them via
# the helpers below.  Callers guarantee well-formed stacked square complex
# inputs; a singular input yields ``inf``/``nan`` entries instead of
# ``LinAlgError`` (measure-zero for the sim's continuous fading draws).
# If numpy ever moves its private module, the helpers fall back to the
# public wrappers transparently.
try:  # pragma: no cover - exercised indirectly by every engine test
    from numpy.linalg import _umath_linalg as _ul

    def stacked_inv(a: np.ndarray) -> np.ndarray:
        """``np.linalg.inv`` for stacked square complex matrices."""
        return _ul.inv(a, signature="D->D")

    def stacked_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``np.linalg.solve`` for stacked complex systems (``b`` stacked)."""
        return _ul.solve(a, b, signature="DD->D")

    def stacked_eig(a: np.ndarray):
        """``np.linalg.eig`` for stacked square complex matrices."""
        return _ul.eig(a, signature="D->DD")

    _probe = stacked_eig(np.eye(2, dtype=complex)[None])
    if not isinstance(_probe, tuple) or len(_probe) != 2:  # pragma: no cover
        raise ImportError("unexpected gufunc signature")
    del _probe
except Exception:  # pragma: no cover - future-numpy safety net
    stacked_inv = np.linalg.inv

    def stacked_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.linalg.solve(a, b)

    stacked_eig = np.linalg.eig


def herm(a: np.ndarray) -> np.ndarray:
    """Return the Hermitian (conjugate) transpose of ``a``."""
    return np.conjugate(np.swapaxes(np.asarray(a), -1, -2))


def normalize(v: np.ndarray) -> np.ndarray:
    """Return ``v`` scaled to unit Euclidean norm.

    Encoding vectors are normalised so every packet is transmitted with unit
    power regardless of the alignment solution (paper, footnote 2).

    Raises
    ------
    ValueError
        If ``v`` is (numerically) the zero vector.
    """
    v = np.asarray(v, dtype=complex)
    norm = np.linalg.norm(v)
    if norm < DEFAULT_ATOL:
        raise ValueError("cannot normalize a zero vector")
    return v / norm


def unit_vector(dim: int, index: int) -> np.ndarray:
    """Return the standard basis vector ``e_index`` in ``dim`` dimensions.

    Transmitting packet ``p`` on antenna ``i`` alone is equivalent to using
    the encoding vector ``e_i`` (paper, §4b).
    """
    if not 0 <= index < dim:
        raise ValueError(f"index {index} out of range for dimension {dim}")
    e = np.zeros(dim, dtype=complex)
    e[index] = 1.0
    return e


def projection_matrix(basis: np.ndarray) -> np.ndarray:
    """Return the orthogonal projector onto the column span of ``basis``.

    Parameters
    ----------
    basis:
        ``(M, k)`` complex array whose columns span the target subspace.
        Columns need not be orthonormal; a thin QR is taken internally.
    """
    basis = np.atleast_2d(np.asarray(basis, dtype=complex))
    if basis.ndim != 2:
        raise ValueError("basis must be a 2-D array of column vectors")
    q, _ = np.linalg.qr(basis)
    return q @ herm(q)


def project_onto(v: np.ndarray, basis: np.ndarray) -> np.ndarray:
    """Project vector ``v`` onto the column span of ``basis``."""
    return projection_matrix(basis) @ np.asarray(v, dtype=complex)


def orthogonal_complement(basis: np.ndarray, dim: int | None = None) -> np.ndarray:
    """Return an orthonormal basis of the orthogonal complement.

    Given interference directions as the columns of ``basis`` this returns
    the directions a receiver may project on to null that interference --
    the "decoding vectors" of the paper (§4a).

    Parameters
    ----------
    basis:
        ``(M, k)`` array of column vectors, or a 1-D length-``M`` vector.
    dim:
        Ambient dimension ``M``; inferred from ``basis`` when omitted.

    Returns
    -------
    numpy.ndarray
        ``(M, M - rank)`` array with orthonormal columns, each orthogonal to
        every column of ``basis``.  Empty second dimension if ``basis`` spans
        the whole space.
    """
    basis = np.asarray(basis, dtype=complex)
    if basis.ndim == 1:
        basis = basis[:, None]
    m = basis.shape[0] if dim is None else dim
    if basis.shape[0] != m:
        raise ValueError("basis row count does not match ambient dimension")
    if basis.size == 0:
        return np.eye(m, dtype=complex)
    # SVD gives an orthonormal basis for the left null space.
    u, s, _ = np.linalg.svd(basis, full_matrices=True)
    rank = int(np.sum(s > DEFAULT_ATOL * max(basis.shape) * (s[0] if s.size else 1.0)))
    return u[:, rank:]


def nullspace(a: np.ndarray, rtol: float = 1e-10) -> np.ndarray:
    """Return an orthonormal basis of the (right) null space of ``a``."""
    a = np.atleast_2d(np.asarray(a, dtype=complex))
    _, s, vh = np.linalg.svd(a)
    tol = rtol * (s[0] if s.size else 1.0) * max(a.shape)
    rank = int(np.sum(s > tol))
    return herm(vh)[:, rank:]


def subspace_angle(u: np.ndarray, v: np.ndarray) -> float:
    """Return the principal angle (radians) between two subspaces.

    For 1-D inputs this is the angle between the complex *lines* spanned by
    the two vectors, which is the natural alignment measure: two received
    directions are aligned exactly when the angle is zero, regardless of any
    complex scaling (paper, §6a -- frequency offset only scales a direction
    by ``exp(j 2 pi df t)`` and must not count as misalignment).
    """
    u = np.asarray(u, dtype=complex)
    v = np.asarray(v, dtype=complex)
    if u.ndim == 1:
        u = u[:, None]
    if v.ndim == 1:
        v = v[:, None]
    qu, _ = np.linalg.qr(u)
    qv, _ = np.linalg.qr(v)
    sigma = np.linalg.svd(herm(qu) @ qv, compute_uv=False)
    # Clamp for numerical safety before acos.
    smin = float(np.clip(sigma.min() if sigma.size else 0.0, -1.0, 1.0))
    return float(np.arccos(smin))


def align_error(u: np.ndarray, v: np.ndarray) -> float:
    """Return a scale-invariant misalignment measure in ``[0, 1]``.

    ``0`` means the complex lines spanned by ``u`` and ``v`` coincide;
    ``1`` means they are orthogonal.  Computed as ``sin`` of the principal
    angle, which is robust for near-aligned vectors.
    """
    u = normalize(np.asarray(u, dtype=complex).ravel())
    v = normalize(np.asarray(v, dtype=complex).ravel())
    # sin of the angle via the rejection norm: accurate near zero, where
    # the sqrt(1 - |<u,v>|^2) form suffers catastrophic cancellation.
    rejection = v - np.vdot(u, v) * u
    return float(min(1.0, np.linalg.norm(rejection)))


def is_aligned(u: np.ndarray, v: np.ndarray, atol: float = 1e-6) -> bool:
    """Return True when ``u`` and ``v`` span the same complex line."""
    return align_error(u, v) <= atol


def random_unit_vector(dim: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a complex unit vector uniformly from the sphere in ``C^dim``."""
    v = rng.standard_normal(dim) + 1j * rng.standard_normal(dim)
    return normalize(v)


def steer(direction: np.ndarray, samples: np.ndarray) -> np.ndarray:
    """Place a scalar sample stream on a spatial direction.

    Returns an ``(M, n_samples)`` array: each antenna transmits the sample
    stream scaled by the corresponding entry of ``direction``.  This is the
    "multiply the packet by the encoding vector" operation of §4b.
    """
    direction = np.asarray(direction, dtype=complex).ravel()
    samples = np.asarray(samples, dtype=complex).ravel()
    return np.outer(direction, samples)


def received_direction(channel: np.ndarray, encoding: np.ndarray) -> np.ndarray:
    """Return the direction ``H v`` along which a packet arrives."""
    return np.asarray(channel, dtype=complex) @ np.asarray(encoding, dtype=complex)


def zero_forcing_rows(directions: np.ndarray) -> np.ndarray:
    """Return decoding rows that separate the given received directions.

    ``directions`` is ``(M, k)`` with ``k <= M`` linearly-independent columns
    ``H_i v_i``.  Row ``i`` of the result responds with unit gain to column
    ``i`` and zero to all others (the pseudo-inverse), which is how an AP
    decodes multiple free packets after interference has been aligned away
    or cancelled.
    """
    directions = np.atleast_2d(np.asarray(directions, dtype=complex))
    m, k = directions.shape
    if k > m:
        raise ValueError(f"cannot zero-force {k} packets with {m} antennas")
    return np.linalg.pinv(directions)
