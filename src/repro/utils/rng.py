"""Deterministic random-number-generator plumbing.

Every experiment in the reproduction is seeded so that the benchmark harness
regenerates the same tables and figures run-to-run.  Components accept either
a ``numpy.random.Generator`` or an integer seed and route through
``default_rng``; independent sub-streams for parallel sweeps come from
``spawn_rngs``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def default_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed-like value.

    Passing an existing ``Generator`` returns it unchanged so components can
    share a stream when the caller wants correlated draws.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> Sequence[np.random.Generator]:
    """Return ``count`` statistically-independent generators.

    Used by experiment sweeps so each trial gets its own stream and a sweep
    of N trials is reproducible regardless of execution order.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
