"""Decibel conversions.

Two families are provided because amplitude and power quantities convert
differently:

* ``db_to_linear`` / ``linear_to_db`` -- for *power* ratios (SNR, gain):
  ``x_db = 10 log10(x)``.
* ``db_to_amplitude`` / ``amplitude_to_db`` -- for *amplitude* ratios:
  ``x_db = 20 log10(x)``.

``db_to_power`` / ``power_to_db`` are explicit aliases of the power forms so
call sites read unambiguously.
"""

from __future__ import annotations

import numpy as np


def db_to_linear(db):
    """Convert a power quantity from dB to linear scale."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0)


def linear_to_db(linear):
    """Convert a linear power ratio to dB.

    Non-positive inputs map to ``-inf`` rather than raising, because
    measured interference-free SINRs can be exactly zero.
    """
    linear = np.asarray(linear, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(linear)


def db_to_amplitude(db):
    """Convert an amplitude quantity from dB to linear scale."""
    return 10.0 ** (np.asarray(db, dtype=float) / 20.0)


def amplitude_to_db(amplitude):
    """Convert a linear amplitude ratio to dB."""
    amplitude = np.asarray(amplitude, dtype=float)
    with np.errstate(divide="ignore"):
        return 20.0 * np.log10(amplitude)


# Explicit aliases: "power" in the name removes any 10-vs-20 ambiguity.
db_to_power = db_to_linear
power_to_db = linear_to_db
