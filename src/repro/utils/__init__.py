"""Shared numerical utilities for the IAC reproduction.

The submodules here are deliberately small and dependency-free (numpy only):

``linalg``
    Complex vector/subspace helpers used by the alignment solvers and the
    projection-based decoders (orthogonal complements, projections, subspace
    angles, alignment residuals).
``db``
    Decibel/linear conversions used throughout the PHY and the experiment
    harness.
``rng``
    Seeded random-number helpers so every experiment in the paper-reproduction
    suite is deterministic and repeatable.
"""

from repro.utils.db import db_to_linear, linear_to_db, db_to_power, power_to_db
from repro.utils.linalg import (
    align_error,
    herm,
    is_aligned,
    normalize,
    nullspace,
    orthogonal_complement,
    project_onto,
    projection_matrix,
    subspace_angle,
    unit_vector,
)
from repro.utils.rng import default_rng, spawn_rngs

__all__ = [
    "align_error",
    "db_to_linear",
    "db_to_power",
    "default_rng",
    "herm",
    "is_aligned",
    "linear_to_db",
    "normalize",
    "nullspace",
    "orthogonal_complement",
    "power_to_db",
    "project_onto",
    "projection_matrix",
    "spawn_rngs",
    "subspace_angle",
    "unit_vector",
]
