"""Wall-clock benchmarks for the engine and the scenario registry.

``python -m repro bench`` runs two timing suites and writes one JSON
document each, so the repository's performance trajectory is recorded
alongside its correctness results:

* :func:`bench_wlan` times ``WLANSimulation.run`` under both group-
  evaluation engines (``scalar`` — the pre-engine reference path — and
  ``batched``) on identical seeds and reports the speedup.  The default
  workload (200 slots, 12 clients) is the acceptance workload of the
  engine PR; ``BENCH_wlan.json``.
* :func:`bench_scenarios` times registered scenarios end to end through
  :class:`~repro.experiments.ExperimentRunner`; ``BENCH_scenarios.json``.

JSON schemas are documented in ``EXPERIMENTS.md``.  Timings use the best
of ``repeats`` runs (fresh simulation each run, so caches never carry
over between measurements).
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, Sequence

import numpy as np

BENCH_SCHEMA_VERSION = 1

#: Scenarios timed by default: the scatter experiments are the cheap,
#: representative core of the registry.
DEFAULT_SCENARIOS = ("fig12", "fig13a", "fig13b", "fig14")


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


def _timestamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def bench_wlan(
    n_slots: int = 200,
    n_clients: int = 12,
    repeats: int = 3,
    seed: int = 7,
    rho: float = 0.99,
    algorithm: str = "best2",
    n_antennas: int = 2,
) -> dict:
    """Time ``WLANSimulation.run(n_slots)`` under both engines.

    Returns the ``BENCH_wlan.json`` document (see ``EXPERIMENTS.md``).
    The two engines run the same seed; their total rates are included so a
    regression in numerical equivalence is visible in the artifact too.
    """
    from repro.sim.wlan import WLANConfig, WLANSimulation  # deferred: keep import light

    engines: Dict[str, Dict[str, float]] = {}
    for engine in ("scalar", "batched"):
        best = float("inf")
        total_rate = 0.0
        for _ in range(max(1, repeats)):
            sim = WLANSimulation(
                WLANConfig(
                    n_clients=n_clients,
                    n_antennas=n_antennas,
                    rho=rho,
                    seed=seed,
                    algorithm=algorithm,
                    engine=engine,
                )
            )
            start = time.perf_counter()
            stats = sim.run(n_slots)
            best = min(best, time.perf_counter() - start)
            total_rate = stats.total_rate
        engines[engine] = {"seconds": best, "total_rate": total_rate}
    return {
        "benchmark": "wlan",
        "schema_version": BENCH_SCHEMA_VERSION,
        "config": {
            "n_slots": n_slots,
            "n_clients": n_clients,
            "n_aps": 3,
            "n_antennas": n_antennas,
            "rho": rho,
            "seed": seed,
            "algorithm": algorithm,
            "repeats": repeats,
        },
        "engines": engines,
        "speedup": engines["scalar"]["seconds"] / engines["batched"]["seconds"],
        "environment": _environment(),
        "timestamp": _timestamp(),
    }


def bench_scenarios(
    names: Sequence[str] = DEFAULT_SCENARIOS,
    n_trials: int = 8,
    seed: int = 0,
    workers: int = 1,
) -> dict:
    """Time registered scenarios through the experiment runner.

    Returns the ``BENCH_scenarios.json`` document.  Per-scenario seconds
    come from :attr:`~repro.experiments.ExperimentResult.seconds` (the
    runner's own timing), so CLI and bench agree on what is measured.
    """
    from repro.experiments import ExperimentRunner  # deferred: keep import light

    runner = ExperimentRunner(workers=workers)
    scenarios: Dict[str, Dict[str, float]] = {}
    for name in names:
        result = runner.run(name, n_trials=n_trials, seed=seed)
        entry = {"seconds": result.seconds, "n_trials": result.n_trials}
        try:
            entry["mean_gain"] = result.mean_gain
        except KeyError:
            pass
        scenarios[name] = entry
    return {
        "benchmark": "scenarios",
        "schema_version": BENCH_SCHEMA_VERSION,
        "seed": seed,
        "workers": workers,
        "scenarios": scenarios,
        "environment": _environment(),
        "timestamp": _timestamp(),
    }


def write_bench(doc: dict, path: str) -> None:
    """Write one benchmark document as deterministic, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def format_wlan_bench(doc: dict) -> str:
    """Human-readable summary of a ``BENCH_wlan.json`` document."""
    cfg = doc["config"]
    lines = [
        f"WLAN hot path: run({cfg['n_slots']}) @ {cfg['n_clients']} clients, "
        f"{cfg['algorithm']}, rho={cfg['rho']}, best of {cfg['repeats']}",
    ]
    for engine, stats in sorted(doc["engines"].items()):
        lines.append(
            f"  {engine:>8s}: {stats['seconds']*1e3:8.1f} ms   "
            f"total rate {stats['total_rate']:.3f} b/s/Hz"
        )
    lines.append(f"  speedup : {doc['speedup']:.2f}x (batched vs scalar)")
    return "\n".join(lines)


def format_scenario_bench(doc: dict) -> str:
    """Human-readable summary of a ``BENCH_scenarios.json`` document."""
    lines = [f"Scenario trials (seed {doc['seed']}, workers {doc['workers']}):"]
    for name, stats in doc["scenarios"].items():
        gain = stats.get("mean_gain")
        gain_text = f"   mean gain {gain:.2f}x" if gain is not None else ""
        lines.append(
            f"  {name:>8s}: {stats['seconds']*1e3:8.1f} ms for "
            f"{stats['n_trials']} trials{gain_text}"
        )
    return "\n".join(lines)
