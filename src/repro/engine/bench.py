"""Wall-clock benchmarks for the engine and the scenario registry.

``python -m repro bench`` runs up to four timing suites and writes one
JSON document each, so the repository's performance trajectory is
recorded alongside its correctness results:

* :func:`bench_wlan` times ``WLANSimulation.run`` under all three
  execution engines (``scalar`` — the pre-engine reference path —
  ``batched``, and ``columnar``) on identical seeds and reports both
  speedups plus the per-engine ``WLANStats.digest()``; ``bit_identical``
  asserts columnar == batched bit-for-bit.  The default workload
  (200 slots, 12 clients) is the acceptance workload of the engine and
  columnar PRs; ``BENCH_wlan.json``.
* :func:`bench_events` (``repro bench --events``) times the
  event-driven kernel (``engine="event"``) against the columnar slot
  loop as a function of offered load on a sounding-dominated cell,
  records busy-slots-processed per second, and checks per-point digest
  equality plus the no-regression saturated bracket;
  ``BENCH_events.json``.
* :func:`bench_signal` times the sample-accurate pipeline
  (:func:`repro.core.run_session`) under the ``fast`` (block phase
  tracking, batched Viterbi, table-driven FEC) and ``reference`` (scalar)
  engines on identical seeds, reports the speedup, and records delivery
  counts plus the worst SNR discrepancy so numerical equivalence is
  visible in the artifact; ``BENCH_signal.json``.
* :func:`bench_scenarios` times registered scenarios end to end through
  :class:`~repro.experiments.ExperimentRunner`; ``BENCH_scenarios.json``.
* :func:`bench_ofdm` (``repro bench --ofdm``) times the subcarrier-
  batched downlink solver against the per-bin scalar reference loop on a
  64-bin OFDM grid and records the worst per-packet SINR discrepancy;
  ``BENCH_ofdm.json``.
* :func:`bench_city` (``repro bench --city``) times the sharded
  multi-cell simulation (:mod:`repro.sim.multicell`) at each worker
  count, records client-slots simulated per second, and asserts the
  network-wide stats digest is bit-identical across worker counts;
  ``BENCH_city.json``.
* :func:`bench_faults` (``repro bench --faults``) exercises the fault
  layer (:mod:`repro.faults`): a backplane-loss degradation curve
  bracketed by no-fault and p2p runs, plus a fully-faulted multi-cell
  city whose digest must be bit-identical across worker counts and
  same-seed reruns; ``BENCH_faults.json``.

JSON schemas are documented in ``EXPERIMENTS.md``.  Timings use the best
of ``repeats`` runs (fresh simulation each run, so caches never carry
over between measurements).
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, Sequence

import numpy as np

BENCH_SCHEMA_VERSION = 1

#: Scenarios timed by default: the scatter experiments are the cheap,
#: representative core of the registry.
DEFAULT_SCENARIOS = ("fig12", "fig13a", "fig13b", "fig14")


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


def _timestamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def bench_wlan(
    n_slots: int = 200,
    n_clients: int = 12,
    repeats: int = 3,
    seed: int = 7,
    rho: float = 0.99,
    algorithm: str = "best2",
    n_antennas: int = 2,
) -> dict:
    """Time ``WLANSimulation.run(n_slots)`` under all three engines.

    Returns the ``BENCH_wlan.json`` document (see ``EXPERIMENTS.md``).
    The engines run the same seed; per-engine total rates and
    ``WLANStats.digest()`` values are included so a regression in
    numerical equivalence is visible in the artifact, and
    ``bit_identical`` asserts the columnar digest equals the batched one
    (the columnar PR's correctness contract).  ``speedup`` remains the
    batched-vs-scalar ratio of the engine PR; ``speedup_columnar`` is the
    columnar-vs-scalar ratio (the columnar PR's >= 10x acceptance
    number).
    """
    from repro.sim.wlan import WLANConfig, WLANSimulation  # deferred: keep import light

    engines: Dict[str, Dict[str, object]] = {}
    for engine in ("scalar", "batched", "columnar"):
        best = float("inf")
        total_rate = 0.0
        digest = ""
        for _ in range(max(1, repeats)):
            sim = WLANSimulation(
                WLANConfig(
                    n_clients=n_clients,
                    n_antennas=n_antennas,
                    rho=rho,
                    seed=seed,
                    algorithm=algorithm,
                    engine=engine,
                )
            )
            start = time.perf_counter()
            stats = sim.run(n_slots)
            best = min(best, time.perf_counter() - start)
            total_rate = stats.total_rate
            digest = stats.digest()
        engines[engine] = {
            "seconds": best,
            "total_rate": total_rate,
            "digest": digest,
        }
    return {
        "benchmark": "wlan",
        "schema_version": BENCH_SCHEMA_VERSION,
        "config": {
            "n_slots": n_slots,
            "n_clients": n_clients,
            "n_aps": 3,
            "n_antennas": n_antennas,
            "rho": rho,
            "seed": seed,
            "algorithm": algorithm,
            "repeats": repeats,
        },
        "engines": engines,
        "speedup": engines["scalar"]["seconds"] / engines["batched"]["seconds"],
        "speedup_columnar": (
            engines["scalar"]["seconds"] / engines["columnar"]["seconds"]
        ),
        "bit_identical": (
            engines["columnar"]["digest"] == engines["batched"]["digest"]
        ),
        "environment": _environment(),
        "timestamp": _timestamp(),
    }


def bench_events(
    n_slots: int = 3000,
    n_clients: int = 48,
    repeats: int = 3,
    seed: int = 7,
    rho: float = 0.9995,
    n_aps: int = 3,
    loads: Sequence[float] = (
        0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.3, 0.6,
    ),
) -> dict:
    """Time the event kernel against the columnar slot loop vs offered load.

    Returns the ``BENCH_events.json`` document (see ``EXPERIMENTS.md``).
    The workload is the regime the event kernel exists for: a dense,
    sounding-dominated cell (``ack_period=1``, high coherence ``rho``)
    where the slot loop pays per-slot CSI tracking on every idle slot
    while the event kernel jumps straight between transmission
    opportunities.  *Offered load* is the Poisson arrival rate
    normalised by the cell's service capacity (``n_aps`` packets per
    slot), so ``load=0.1`` keeps the cell ~90% idle.  Both engines run
    identical seeds; every point records digest equality, and
    ``bit_identical`` only holds if *all* points (including the
    saturated bracket, where the kernel must not regress) match.
    """
    from repro.sim.wlan import WLANConfig, WLANSimulation  # deferred: keep import light

    def time_engine(engine: str, load, n_rep: int):
        best = float("inf")
        digest = ""
        summary = None
        for _ in range(max(1, n_rep)):
            kwargs = dict(
                n_aps=n_aps,
                n_clients=n_clients,
                n_antennas=2,
                rho=rho,
                mean_gain_db=15.0,
                algorithm="best2",
                ack_period=1,
                seed=seed,
                engine=engine,
            )
            if load is not None:
                kwargs["traffic"] = "poisson"
                kwargs["traffic_params"] = {
                    "rate_per_client": load * n_aps / n_clients
                }
            sim = WLANSimulation(WLANConfig(**kwargs))
            start = time.perf_counter()
            stats = sim.run(n_slots)
            best = min(best, time.perf_counter() - start)
            digest = stats.digest()
            summary = getattr(sim, "last_event_summary", None)
        return best, digest, summary

    def point(load, n_rep: int = repeats) -> dict:
        col_seconds, col_digest, _ = time_engine("columnar", load, n_rep)
        ev_seconds, ev_digest, summary = time_engine("event", load, n_rep)
        entry = {
            "columnar_seconds": col_seconds,
            "event_seconds": ev_seconds,
            "speedup": col_seconds / ev_seconds,
            "digest": ev_digest,
            "digest_match": col_digest == ev_digest,
        }
        if summary is not None:
            entry["processed_slots"] = summary["processed_slots"]
            entry["skipped_slots"] = summary["skipped_slots"]
            entry["events_per_second"] = summary["processed_slots"] / ev_seconds
        return entry

    points = []
    for load in loads:
        entry = point(load)
        entry["load"] = load
        points.append(entry)
    # Saturated, the event kernel delegates to the columnar loop, so the
    # two runs are the same code and the ratio is pure timing noise
    # around 1.0 — extra repeats keep one slow outlier from reporting a
    # phantom regression.
    saturated = point(None, n_rep=max(repeats, 4))
    low = [p["speedup"] for p in points if p["load"] <= 0.1]
    return {
        "benchmark": "events",
        "schema_version": BENCH_SCHEMA_VERSION,
        "config": {
            "n_slots": n_slots,
            "n_clients": n_clients,
            "n_aps": n_aps,
            "n_antennas": 2,
            "rho": rho,
            "ack_period": 1,
            "algorithm": "best2",
            "seed": seed,
            "repeats": repeats,
            "loads": list(loads),
        },
        "loads": points,
        "saturated": saturated,
        "speedup_low_load": max(low) if low else 0.0,
        "speedup_saturated": saturated["speedup"],
        "bit_identical": (
            all(p["digest_match"] for p in points)
            and saturated["digest_match"]
        ),
        "environment": _environment(),
        "timestamp": _timestamp(),
    }


def bench_signal(
    n_sessions: int = 20,
    payload_bytes: int = 200,
    repeats: int = 3,
    seed: int = 7,
    modulation: str = "bpsk",
    fec: str = "conv",
) -> dict:
    """Time ``run_session`` under the ``fast`` and ``reference`` engines.

    One fixed 2-client/2-AP uplink scene (3 concurrent packets, §6
    impairments on: CFO, timing offsets) is decoded ``n_sessions`` times
    per engine on identical per-session seeds.  Returns the
    ``BENCH_signal.json`` document (see ``EXPERIMENTS.md``): per-engine
    seconds, delivery counts and summed measured rates, the fast/reference
    speedup, and the worst absolute per-packet SNR discrepancy between the
    engines (``max_snr_diff_db`` — the two paths must agree).
    """
    # Deferred imports: keep ``repro.engine`` light for non-bench users.
    from repro.core import ChannelSet, SignalConfig, run_session, solve_uplink_three_packets
    from repro.phy.channel.model import rayleigh_channel
    from repro.phy.packet import Packet
    from repro.utils.rng import default_rng

    scene_rng = default_rng(seed)
    channels = ChannelSet(
        {(c, a): rayleigh_channel(2, 2, scene_rng) for c in (0, 1) for a in (0, 1)}
    )
    solution = solve_uplink_three_packets(channels, rng=scene_rng)
    payloads = {
        i: Packet.random(scene_rng, payload_bytes, src=i, seq=i) for i in range(3)
    }

    # Warm the shared FEC cache so one-time table construction is not
    # charged to whichever engine happens to run first.
    SignalConfig(fec=fec).make_fec()

    engines: Dict[str, Dict[str, float]] = {}
    snrs: Dict[str, list] = {}
    for engine in ("reference", "fast"):
        config = SignalConfig(
            modulation=modulation,
            fec=fec,
            noise_power=1e-3,
            cfo_spread=5e-5,
            max_timing_offset=16,
            engine=engine,
        )
        best = float("inf")
        delivered = 0
        total_rate = 0.0
        engine_snrs: list = []
        for _ in range(max(1, repeats)):
            delivered = 0
            total_rate = 0.0
            engine_snrs = []
            start = time.perf_counter()
            for session in range(n_sessions):
                report = run_session(
                    solution, channels, payloads, config, rng=default_rng(session)
                )
                delivered += report.delivery_count
                total_rate += report.total_rate
                engine_snrs.extend(o.snr_db for o in report.outcomes)
            best = min(best, time.perf_counter() - start)
        engines[engine] = {
            "seconds": best,
            "delivered": delivered,
            "total_rate": total_rate,
        }
        snrs[engine] = engine_snrs
    max_snr_diff = max(
        (
            abs(a - b)
            for a, b in zip(snrs["fast"], snrs["reference"])
            # Identical infinities (both failed, or both perfect) carry no
            # discrepancy; a +inf/-inf mismatch must NOT be masked — that
            # is the engines disagreeing about whether a packet decoded.
            if not (np.isinf(a) and np.isinf(b) and a == b)
        ),
        default=0.0,
    )
    return {
        "benchmark": "signal",
        "schema_version": BENCH_SCHEMA_VERSION,
        "config": {
            "n_sessions": n_sessions,
            "payload_bytes": payload_bytes,
            "modulation": modulation,
            "fec": fec,
            "n_packets": 3,
            "seed": seed,
            "repeats": repeats,
        },
        "engines": engines,
        "speedup": engines["reference"]["seconds"] / engines["fast"]["seconds"],
        "max_snr_diff_db": max_snr_diff,
        "environment": _environment(),
        "timestamp": _timestamp(),
    }


def bench_ofdm(
    n_groups: int = 16,
    n_bins: int = 64,
    n_antennas: int = 2,
    n_taps: int = 8,
    delay_spread: float = 2.0,
    repeats: int = 3,
    seed: int = 7,
) -> dict:
    """Time the subcarrier-batched downlink solver against the per-bin loop.

    One fixed scene — ``n_groups`` candidate 3-client downlink groups over
    multi-tap Rayleigh channels, ``n_bins`` evaluated subcarriers of a
    64-point OFDM grid — is solved two ways:

    * ``batched``: the whole ``(G, B)`` grid flattened into one stacked
      ``np.linalg`` pass (:func:`repro.engine.batched.solve_downlink_three_band`);
    * ``reference``: the per-bin scalar loop — one
      :func:`~repro.core.alignment.solve_downlink_three_packets` +
      :func:`~repro.core.decoder.decode_rate_level` per (group, bin),
      exactly what the pre-wideband code would have done bin by bin.

    Returns the ``BENCH_ofdm.json`` document: per-engine seconds, the
    speedup, and the worst absolute per-packet SINR discrepancy between
    the two paths in dB (``max_sinr_diff_db``) — the §6c acceptance
    numbers (speedup >= 3x at 64 bins, discrepancy <= 1e-6 dB).
    """
    # Deferred imports: keep ``repro.engine`` light for non-bench users.
    from repro.core.alignment import solve_downlink_three_packets
    from repro.core.decoder import decode_rate_level
    from repro.core.plans import ChannelSet
    from repro.engine.batched import solve_downlink_three_band
    from repro.phy.channel.provider import evaluation_bins
    from repro.phy.channel.selective import MultiTapChannel, exponential_pdp

    n_fft = 64
    if not 1 <= n_bins <= n_fft:
        raise ValueError(f"n_bins must be in [1, {n_fft}]")
    rng = np.random.default_rng(seed)
    pdp = exponential_pdp(n_taps, delay_spread)
    # The provider's evaluation grid, or — for the full-FFT acceptance
    # run (n_bins == 64) — every subcarrier including DC, so all bins
    # are distinct and "64 bins" means 64 solved subcarriers.
    bins = (
        np.arange(n_fft) if n_bins == n_fft else evaluation_bins(n_fft, n_bins)
    )
    aps = (0, 1, 2)
    # Independent scenes per group: h[g, :, i, j] is the band of the
    # channel from AP i to client j of candidate group g.
    m = n_antennas
    h = np.empty((n_groups, n_bins, 3, 3, m, m), dtype=complex)
    for g in range(n_groups):
        for i in range(3):
            for j in range(3):
                ch = MultiTapChannel.random(m, m, pdp, rng)
                h[g, :, i, j] = ch.frequency_response(n_fft)[bins]

    def run_batched():
        _, _, sinrs = solve_downlink_three_band(h, noise_power=1.0)
        return sinrs  # (G, B, 3)

    def run_reference():
        sinrs = np.empty((n_groups, n_bins, 3))
        for g in range(n_groups):
            for b in range(n_bins):
                chans = ChannelSet(
                    {(aps[i], 100 + j): h[g, b, i, j] for i in range(3) for j in range(3)}
                )
                solution = solve_downlink_three_packets(
                    chans, aps=aps, clients=(100, 101, 102), noise_power=1.0
                )
                report = decode_rate_level(solution, chans, noise_power=1.0)
                sinrs[g, b] = [r.sinr for r in report.results]
        return sinrs

    engines: Dict[str, Dict[str, float]] = {}
    results = {}
    for engine, fn in (("reference", run_reference), ("batched", run_batched)):
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            results[engine] = fn()
            best = min(best, time.perf_counter() - start)
        engines[engine] = {
            "seconds": best,
            "mean_rate": float(
                np.log2(1.0 + results[engine]).sum(axis=-1).mean()
            ),
        }
    max_sinr_diff = float(
        np.max(np.abs(10 * np.log10(results["batched"]) - 10 * np.log10(results["reference"])))
    )
    return {
        "benchmark": "ofdm",
        "schema_version": BENCH_SCHEMA_VERSION,
        "config": {
            "n_groups": n_groups,
            "n_bins": n_bins,
            "n_fft": n_fft,
            "n_antennas": n_antennas,
            "n_taps": n_taps,
            "delay_spread": delay_spread,
            "seed": seed,
            "repeats": repeats,
        },
        "engines": engines,
        "speedup": engines["reference"]["seconds"] / engines["batched"]["seconds"],
        "max_sinr_diff_db": max_sinr_diff,
        "environment": _environment(),
        "timestamp": _timestamp(),
    }


def bench_city(
    n_cells: int = 64,
    aps_per_cell: int = 3,
    clients_per_cell: int = 16,
    n_slots: int = 60,
    barrier_slots: int = 20,
    worker_counts: Sequence[int] = (1, 2, 4),
    repeats: int = 1,
    seed: int = 7,
) -> dict:
    """Time the multi-cell city at each worker count; check bit-identity.

    Returns the ``BENCH_city.json`` document (see ``EXPERIMENTS.md``):
    per-worker-count seconds and throughput in *client-slots per second*
    (``clients_per_second = n_clients * n_slots / seconds``), the
    ``MultiCellStats`` digest of every run, ``bit_identical`` (all
    digests equal — the subsystem's correctness contract), the speedup
    of the largest worker count over one worker, and ``cpu_count`` so a
    reader can judge the speedup against the cores actually available
    (process sharding cannot beat 1x on a single-core host).
    """
    from repro.sim.multicell import MultiCellConfig, MultiCellSimulation  # deferred

    config = MultiCellConfig(
        n_cells=n_cells,
        aps_per_cell=aps_per_cell,
        clients_per_cell=clients_per_cell,
        barrier_slots=barrier_slots,
        seed=seed,
    )
    workers_doc: Dict[str, Dict[str, float]] = {}
    digests: Dict[int, str] = {}
    network_rate = 0.0
    jain = 0.0
    for workers in worker_counts:
        best = float("inf")
        for _ in range(max(1, repeats)):
            sim = MultiCellSimulation(config)
            start = time.perf_counter()
            stats = sim.run(n_slots, workers=workers)
            best = min(best, time.perf_counter() - start)
        digests[workers] = stats.digest()
        network_rate = stats.network_rate
        jain = stats.jain_fairness
        workers_doc[str(workers)] = {
            "seconds": best,
            "clients_per_second": config.n_clients * n_slots / best,
            "digest": digests[workers],
        }
    baseline = min(worker_counts)
    peak = max(worker_counts)
    return {
        "benchmark": "city",
        "schema_version": BENCH_SCHEMA_VERSION,
        "config": {
            "n_cells": n_cells,
            "aps_per_cell": aps_per_cell,
            "clients_per_cell": clients_per_cell,
            "n_clients": config.n_clients,
            "n_slots": n_slots,
            "barrier_slots": barrier_slots,
            "worker_counts": list(worker_counts),
            "seed": seed,
            "repeats": repeats,
        },
        "workers": workers_doc,
        "speedup": (
            workers_doc[str(baseline)]["seconds"] / workers_doc[str(peak)]["seconds"]
        ),
        "bit_identical": len(set(digests.values())) == 1,
        "network_rate": network_rate,
        "jain_fairness": jain,
        "cpu_count": os.cpu_count(),
        "environment": _environment(),
        "timestamp": _timestamp(),
    }


def bench_faults(
    n_cells: int = 4,
    aps_per_cell: int = 4,
    clients_per_cell: int = 8,
    n_slots: int = 40,
    barrier_slots: int = 10,
    loss_rates: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    worker_counts: Sequence[int] = (1, 2, 4),
    n_wlan_slots: int = 60,
    seed: int = 7,
) -> dict:
    """Exercise the fault layer: degradation curve plus determinism checks.

    Returns the ``BENCH_faults.json`` document (see ``EXPERIMENTS.md``)
    with three sections:

    * ``loss_curve`` — single-cell goodput at each backplane loss rate,
      bracketed by the same-seed no-fault ceiling and ``service="p2p"``
      floor; ``degradation`` is the fraction of the IAC headroom lost
      (0 at loss 0, exactly 1 at loss 1 — graceful degradation, not a
      crash).
    * ``workers`` — a faulted multi-cell city (loss + burst + corruption
      + staleness + a mid-run leader crash in every cell) timed at each
      worker count; ``bit_identical`` asserts every digest is equal —
      fault injection must not break the worker-invariance contract.
    * ``deterministic`` — the one-worker city re-run at the same seed
      digests identically (same (seed, fault plan) → same bits).
    """
    from repro.sim.multicell import MultiCellConfig, MultiCellSimulation  # deferred
    from repro.sim.wlan import WLANConfig, WLANSimulation  # deferred

    import dataclasses

    base = WLANConfig(n_clients=clients_per_cell, seed=seed)
    loss_curve = []
    for loss_rate in loss_rates:
        ceiling = WLANSimulation(base).run(n_wlan_slots)
        floor = WLANSimulation(
            dataclasses.replace(base, service="p2p")
        ).run(n_wlan_slots)
        faulted = WLANSimulation(
            dataclasses.replace(
                base, fault_params={"backplane_loss_rate": float(loss_rate)}
            )
        ).run(n_wlan_slots)
        headroom = ceiling.total_rate - floor.total_rate
        loss_curve.append(
            {
                "loss_rate": float(loss_rate),
                "goodput": faulted.total_rate,
                "ceiling_rate": ceiling.total_rate,
                "floor_rate": floor.total_rate,
                "degradation": (
                    (ceiling.total_rate - faulted.total_rate) / headroom
                    if headroom > 0
                    else 0.0
                ),
                "fallback_fraction": faulted.fallback_fraction,
                "frames_lost": faulted.frames_lost_backplane,
            }
        )

    fault_params = {
        "backplane_loss_rate": 0.1,
        "burst_enter": 0.02,
        "burst_exit": 0.3,
        "backplane_delay_rate": 0.1,
        "backplane_delay_max": 3,
        "csi_corrupt_rate": 0.05,
        "csi_stale_rate": 0.05,
        "leader_crash_slot": n_slots // 2,
    }
    config = MultiCellConfig(
        n_cells=n_cells,
        aps_per_cell=aps_per_cell,
        clients_per_cell=clients_per_cell,
        barrier_slots=barrier_slots,
        fault_params=fault_params,
        seed=seed,
    )
    workers_doc: Dict[str, Dict[str, float]] = {}
    digests: Dict[int, str] = {}
    for workers in worker_counts:
        sim = MultiCellSimulation(config)
        start = time.perf_counter()
        stats = sim.run(n_slots, workers=workers)
        seconds = time.perf_counter() - start
        digests[workers] = stats.digest()
        workers_doc[str(workers)] = {
            "seconds": seconds,
            "clients_per_second": config.n_clients * n_slots / seconds,
            "digest": digests[workers],
        }
    rerun_digest = MultiCellSimulation(config).run(n_slots, workers=1).digest()
    return {
        "benchmark": "faults",
        "schema_version": BENCH_SCHEMA_VERSION,
        "config": {
            "n_cells": n_cells,
            "aps_per_cell": aps_per_cell,
            "clients_per_cell": clients_per_cell,
            "n_clients": config.n_clients,
            "n_slots": n_slots,
            "barrier_slots": barrier_slots,
            "n_wlan_slots": n_wlan_slots,
            "loss_rates": [float(r) for r in loss_rates],
            "worker_counts": list(worker_counts),
            "fault_params": dict(fault_params),
            "seed": seed,
        },
        "loss_curve": loss_curve,
        "workers": workers_doc,
        "bit_identical": len(set(digests.values())) == 1,
        "deterministic": rerun_digest == digests[min(worker_counts)],
        "re_elections": stats.re_elections,
        "fallback_slots": stats.fallback_slots,
        "csi_rejections": stats.csi_rejections,
        "frames_lost_backplane": stats.frames_lost_backplane,
        "cpu_count": os.cpu_count(),
        "environment": _environment(),
        "timestamp": _timestamp(),
    }


def bench_scenarios(
    names: Sequence[str] = DEFAULT_SCENARIOS,
    n_trials: int = 8,
    seed: int = 0,
    workers: int = 1,
) -> dict:
    """Time registered scenarios through the experiment runner.

    Returns the ``BENCH_scenarios.json`` document.  Per-scenario seconds
    come from :attr:`~repro.experiments.ExperimentResult.seconds` (the
    runner's own timing), so CLI and bench agree on what is measured.
    """
    from repro.experiments import ExperimentRunner  # deferred: keep import light

    runner = ExperimentRunner(workers=workers)
    scenarios: Dict[str, Dict[str, float]] = {}
    for name in names:
        result = runner.run(name, n_trials=n_trials, seed=seed)
        entry = {"seconds": result.seconds, "n_trials": result.n_trials}
        try:
            entry["mean_gain"] = result.mean_gain
        except KeyError:
            pass
        scenarios[name] = entry
    return {
        "benchmark": "scenarios",
        "schema_version": BENCH_SCHEMA_VERSION,
        "seed": seed,
        "workers": workers,
        "scenarios": scenarios,
        "environment": _environment(),
        "timestamp": _timestamp(),
    }


def write_bench(doc: dict, path: str) -> None:
    """Write one benchmark document as deterministic, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def format_wlan_bench(doc: dict) -> str:
    """Human-readable summary of a ``BENCH_wlan.json`` document."""
    cfg = doc["config"]
    lines = [
        f"WLAN hot path: run({cfg['n_slots']}) @ {cfg['n_clients']} clients, "
        f"{cfg['algorithm']}, rho={cfg['rho']}, best of {cfg['repeats']}",
    ]
    for engine, stats in sorted(doc["engines"].items()):
        lines.append(
            f"  {engine:>8s}: {stats['seconds']*1e3:8.1f} ms   "
            f"total rate {stats['total_rate']:.3f} b/s/Hz"
        )
    lines.append(f"  speedup : {doc['speedup']:.2f}x (batched vs scalar)")
    if "speedup_columnar" in doc:
        identical = "yes" if doc.get("bit_identical") else "NO - BROKEN"
        lines.append(
            f"  speedup : {doc['speedup_columnar']:.2f}x (columnar vs scalar), "
            f"columnar digest == batched digest: {identical}"
        )
    return "\n".join(lines)


def format_events_bench(doc: dict) -> str:
    """Human-readable summary of a ``BENCH_events.json`` document."""
    cfg = doc["config"]
    lines = [
        f"Event kernel: {cfg['n_slots']} slots @ {cfg['n_clients']} clients, "
        f"{cfg['n_aps']} APs, ack_period={cfg['ack_period']}, "
        f"rho={cfg['rho']}, best of {cfg['repeats']}",
    ]
    for p in doc["loads"]:
        match = "ok" if p["digest_match"] else "DIGEST MISMATCH"
        events = (
            f"   {p['events_per_second']:8.0f} busy slots/s"
            if "events_per_second" in p
            else ""
        )
        lines.append(
            f"  load {p['load']:7.4f}: columnar {p['columnar_seconds']*1e3:7.1f} ms, "
            f"event {p['event_seconds']*1e3:7.1f} ms -> "
            f"{p['speedup']:5.2f}x  [{match}]{events}"
        )
    sat = doc["saturated"]
    match = "ok" if sat["digest_match"] else "DIGEST MISMATCH"
    lines.append(
        f"  saturated  : columnar {sat['columnar_seconds']*1e3:7.1f} ms, "
        f"event {sat['event_seconds']*1e3:7.1f} ms -> "
        f"{sat['speedup']:5.2f}x  [{match}]"
    )
    identical = "yes" if doc["bit_identical"] else "NO - BROKEN"
    lines.append(
        f"  speedup : {doc['speedup_low_load']:.2f}x at <=10% offered load, "
        f"{doc['speedup_saturated']:.2f}x saturated, "
        f"bit-identical: {identical}"
    )
    return "\n".join(lines)


def format_signal_bench(doc: dict) -> str:
    """Human-readable summary of a ``BENCH_signal.json`` document."""
    cfg = doc["config"]
    lines = [
        f"Signal pipeline: {cfg['n_sessions']} sessions x {cfg['n_packets']} "
        f"packets @ {cfg['payload_bytes']}B, {cfg['modulation']}/{cfg['fec']}, "
        f"best of {cfg['repeats']}",
    ]
    for engine, stats in sorted(doc["engines"].items()):
        lines.append(
            f"  {engine:>9s}: {stats['seconds']*1e3:8.1f} ms   "
            f"{stats['delivered']} delivered   "
            f"measured rate {stats['total_rate']:.1f} b/s/Hz"
        )
    lines.append(
        f"  speedup : {doc['speedup']:.2f}x (fast vs reference), "
        f"max SNR diff {doc['max_snr_diff_db']:.2e} dB"
    )
    return "\n".join(lines)


def format_ofdm_bench(doc: dict) -> str:
    """Human-readable summary of a ``BENCH_ofdm.json`` document."""
    cfg = doc["config"]
    lines = [
        f"OFDM band solver: {cfg['n_groups']} groups x {cfg['n_bins']} bins, "
        f"M={cfg['n_antennas']}, delay spread {cfg['delay_spread']}, "
        f"best of {cfg['repeats']}",
    ]
    for engine, stats in sorted(doc["engines"].items()):
        lines.append(
            f"  {engine:>9s}: {stats['seconds']*1e3:8.1f} ms   "
            f"mean bin rate {stats['mean_rate']:.3f} b/s/Hz"
        )
    lines.append(
        f"  speedup : {doc['speedup']:.2f}x (band-batched vs per-bin loop), "
        f"max SINR diff {doc['max_sinr_diff_db']:.2e} dB"
    )
    return "\n".join(lines)


def format_city_bench(doc: dict) -> str:
    """Human-readable summary of a ``BENCH_city.json`` document."""
    cfg = doc["config"]
    lines = [
        f"Multi-cell city: {cfg['n_cells']} cells x "
        f"({cfg['aps_per_cell']} APs + {cfg['clients_per_cell']} clients) "
        f"= {cfg['n_clients']} clients, {cfg['n_slots']} slots, "
        f"barrier every {cfg['barrier_slots']}, best of {cfg['repeats']} "
        f"({doc['cpu_count']} CPU(s))",
    ]
    for workers, stats in sorted(doc["workers"].items(), key=lambda kv: int(kv[0])):
        lines.append(
            f"  {workers:>2s} worker(s): {stats['seconds']:8.2f} s   "
            f"{stats['clients_per_second']:10.0f} client-slots/s"
        )
    identical = "yes" if doc["bit_identical"] else "NO - BROKEN"
    lines.append(
        f"  speedup : {doc['speedup']:.2f}x "
        f"(max vs min workers), bit-identical across workers: {identical}"
    )
    lines.append(
        f"  network rate {doc['network_rate']:.1f} b/s/Hz, "
        f"Jain {doc['jain_fairness']:.3f}"
    )
    return "\n".join(lines)


def format_faults_bench(doc: dict) -> str:
    """Human-readable summary of a ``BENCH_faults.json`` document."""
    cfg = doc["config"]
    lines = [
        f"Fault layer: {cfg['n_cells']} cells x {cfg['aps_per_cell']} APs "
        f"(crash @{cfg['fault_params']['leader_crash_slot']}), "
        f"{cfg['n_slots']} slots ({doc['cpu_count']} CPU(s))",
        "  loss curve (single cell, ceiling/floor-bracketed):",
    ]
    for point in doc["loss_curve"]:
        lines.append(
            f"    loss {point['loss_rate']:.2f}: goodput "
            f"{point['goodput']:6.1f} b/s/Hz, degradation "
            f"{point['degradation']:6.1%}, fallback "
            f"{point['fallback_fraction']:6.1%}"
        )
    for workers, stats in sorted(doc["workers"].items(), key=lambda kv: int(kv[0])):
        lines.append(
            f"  {workers:>2s} worker(s): {stats['seconds']:8.2f} s   "
            f"{stats['clients_per_second']:10.0f} client-slots/s"
        )
    identical = "yes" if doc["bit_identical"] else "NO - BROKEN"
    deterministic = "yes" if doc["deterministic"] else "NO - BROKEN"
    lines.append(
        f"  bit-identical across workers: {identical}, "
        f"same-seed rerun identical: {deterministic}"
    )
    lines.append(
        f"  city counters: {doc['re_elections']} re-election(s), "
        f"{doc['fallback_slots']} fallback slots, "
        f"{doc['csi_rejections']} CSI rejections, "
        f"{doc['frames_lost_backplane']} frames lost"
    )
    return "\n".join(lines)


def format_scenario_bench(doc: dict) -> str:
    """Human-readable summary of a ``BENCH_scenarios.json`` document."""
    lines = [f"Scenario trials (seed {doc['seed']}, workers {doc['workers']}):"]
    for name, stats in doc["scenarios"].items():
        gain = stats.get("mean_gain")
        gain_text = f"   mean gain {gain:.2f}x" if gain is not None else ""
        lines.append(
            f"  {name:>8s}: {stats['seconds']*1e3:8.1f} ms for "
            f"{stats['n_trials']} trials{gain_text}"
        )
    return "\n".join(lines)
