"""Batched downlink alignment + rate-level decoding over a group axis.

The scalar path (:func:`repro.core.alignment.solve_downlink_three_packets`
followed by :func:`repro.core.decoder.decode_rate_level`) performs a dozen
tiny ``np.linalg`` calls and builds several Python objects *per candidate
group*.  When a concurrency selector probes many groups per slot, that
Python-level overhead dominates the wall clock.

This module runs the identical mathematics for ``G`` candidate groups at
once by stacking their believed channel matrices into an
``(G, 3, 3, M, M)`` ndarray and using numpy's stacked linear algebra
(``inv``, ``eig``, ``solve`` all broadcast over leading axes):

* :func:`stack_downlink_channels` builds the channel batch from a channel
  source (e.g. the leader AP's channel map);
* :func:`solve_downlink_three_batch` solves Eqs. 5-7 for every group and
  every eigenvector candidate of the alignment loop matrix, scores every
  candidate at rate level, and keeps the per-group best — exactly the
  scalar solver's selection rule (first index of the maximum estimated
  throughput, eigenvalues sorted by descending magnitude);
* :func:`downlink_sinrs_batch` is the batched rate-level decoder for the
  non-cooperative 3-packet downlink: per-receiver MMSE (max-SINR) filters
  from :func:`repro.phy.mimo.detection.max_sinr_vectors` and SINRs from
  :func:`repro.phy.mimo.detection.post_projection_sinr_batch`.

The wideband (per-subcarrier, §6c) layer stacks one more axis on the
same machinery: :func:`stack_downlink_channels_band` builds a
``(G, B, 3, 3, M, M)`` band batch from banded channel maps,
:func:`solve_downlink_three_band` flattens the ``(G, B)`` grid into one
``(G*B,)`` batch — every subcarrier of every group solved in the same
single stacked ``np.linalg`` calls — and
:func:`downlink_transmit_sinrs_band` decodes a transmitted group on all
bins at once.  ``B = 1`` reduces to the flat route bit-identically.

Numerical equivalence with the scalar path is asserted by
``tests/engine/test_evaluator.py`` (all selectors, 2-4 antennas) and,
for the banded solver against the per-bin scalar loop, by
``tests/engine/test_band.py``.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.phy.mimo.detection import max_sinr_vectors, post_projection_sinr_batch
from repro.phy.mimo.precoding import normalize_encodings
from repro.utils.linalg import stacked_eig, stacked_inv

#: Index layout of the channel batch: ``h[g, i, j]`` is the believed
#: channel from AP ``aps[i]`` to client ``group[j]`` of group ``g``.
GROUP_SIZE = 3

#: Receiver indices and interfering-packet indices per receiver for the
#: 3-packet downlink.  Hoisted to module level so the per-slot hot path
#: never rebuilds them.
_RX = np.arange(GROUP_SIZE)
_OTHERS = np.array([[1, 2], [0, 2], [0, 1]])


def stack_downlink_channels(
    groups: Sequence[Tuple[int, ...]],
    channel_maps: Mapping[int, Mapping[int, np.ndarray]],
    aps: Sequence[int],
) -> np.ndarray:
    """Stack believed channels of candidate groups into one ndarray batch.

    Parameters
    ----------
    groups:
        Ordered 3-client tuples (the order encodes the AP assignment).
    channel_maps:
        ``client -> {ap -> (M, M) matrix}`` believed channel maps.
    aps:
        The three transmitting APs, in packet order.

    Returns
    -------
    numpy.ndarray
        ``(G, 3, 3, M, M)`` complex batch, ``h[g, i, j]`` the channel from
        AP ``aps[i]`` to client ``groups[g][j]``.
    """
    if len(aps) != GROUP_SIZE:
        raise ValueError(f"downlink groups use exactly {GROUP_SIZE} APs")
    first = next(iter(next(iter(channel_maps.values())).values()))
    m = np.asarray(first).shape[0]
    h = np.empty((len(groups), GROUP_SIZE, GROUP_SIZE, m, m), dtype=complex)
    for g, group in enumerate(groups):
        if len(group) != GROUP_SIZE:
            raise ValueError(f"group {group} does not have {GROUP_SIZE} clients")
        for j, client in enumerate(group):
            cmap = channel_maps[client]
            for i, ap in enumerate(aps):
                h[g, i, j] = cmap[ap]
    return h


def downlink_sinrs_batch(
    h: np.ndarray,
    v: np.ndarray,
    noise_power: float,
    return_filters: bool = False,
) -> np.ndarray:
    """Rate-level SINRs of batched downlink-3 solutions.

    Mirrors :func:`repro.core.decoder.decode_rate_level` for the
    non-cooperative downlink with the default max-SINR receiver and unit
    per-packet transmit amplitude (each AP sends exactly one packet, so the
    equal power split is a no-op).

    Parameters
    ----------
    h:
        ``(G, 3, 3, M, M)`` channel batch (see :func:`stack_downlink_channels`).
    v:
        ``(..., 3, M)`` encoding vectors with leading batch axes matching
        ``h``'s group axis (extra candidate axes broadcast).
    noise_power:
        Receiver noise power per antenna.

    Returns
    -------
    numpy.ndarray
        ``(..., 3)`` SINRs, packet ``i`` decoded at client ``i``.  With
        ``return_filters=True``, the tuple ``(sinrs, w)`` where ``w`` is
        the ``(..., 3, M)`` max-SINR receive filters the SINRs were
        evaluated with (computed either way; returning them lets callers
        memoise the believed-design filters for the transmit step).
    """
    # ht[g, j, i] = channel AP i -> client j; received directions
    # d[..., j, i] = H(ap_i, k_j) v_i  (packet i as seen by receiver j).
    ht = np.swapaxes(h, 1, 2)
    if v.ndim > 3:
        # Candidate axes sit between the group axis and the packet axis.
        extra = v.ndim - 3
        ht = ht.reshape(ht.shape[:1] + (1,) * extra + ht.shape[1:])
    d = np.einsum("...jimn,...in->...jim", ht, v)
    # All three receivers in one batched filter design + SINR evaluation:
    # the receiver axis is just one more batch axis on the same per-slice
    # arithmetic, so this is bit-identical to looping ``i in range(3)``.
    desired = d[..., _RX, _RX, :]  # (..., 3, M)
    interference = d[..., _RX[:, None], _OTHERS, :]  # (..., 3, 2, M)
    w = max_sinr_vectors(desired, interference, noise_power)
    sinrs = post_projection_sinr_batch(w, desired, interference, noise_power)
    if return_filters:
        return sinrs, w
    return sinrs


def stack_downlink_channels_band(
    groups: Sequence[Tuple[int, ...]],
    channel_maps: Mapping[int, Mapping[int, np.ndarray]],
    aps: Sequence[int],
) -> np.ndarray:
    """Banded counterpart of :func:`stack_downlink_channels`.

    ``channel_maps`` values are per-AP ``(B, M, M)`` subcarrier stacks
    (a flat ``(M, M)`` matrix is accepted as the ``B = 1`` case).

    Returns
    -------
    numpy.ndarray
        ``(G, B, 3, 3, M, M)`` complex batch: ``h[g, b, i, j]`` is the
        bin-``b`` channel from AP ``aps[i]`` to client ``groups[g][j]``.
    """
    if len(aps) != GROUP_SIZE:
        raise ValueError(f"downlink groups use exactly {GROUP_SIZE} APs")
    first = np.asarray(next(iter(next(iter(channel_maps.values())).values())))
    if first.ndim == 2:
        first = first[None]
    n_bins, m = first.shape[0], first.shape[-1]
    h = np.empty((len(groups), n_bins, GROUP_SIZE, GROUP_SIZE, m, m), dtype=complex)
    for g, group in enumerate(groups):
        if len(group) != GROUP_SIZE:
            raise ValueError(f"group {group} does not have {GROUP_SIZE} clients")
        for j, client in enumerate(group):
            cmap = channel_maps[client]
            for i, ap in enumerate(aps):
                hb = np.asarray(cmap[ap])
                h[g, :, i, j] = hb if hb.ndim == 3 else hb[None]
    return h


def solve_downlink_three_band(
    h: np.ndarray,
    noise_power: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-subcarrier downlink-3 alignment for a batch of banded groups.

    The §6c operating mode: every subcarrier of every group is solved
    *independently* — bin ``b`` of group ``g`` is exactly the flat
    problem :func:`solve_downlink_three_batch` solves, so the whole
    ``(G, B)`` grid is flattened into one ``(G*B,)`` batch and solved in
    the same single stacked ``np.linalg`` calls.  ``B = 1`` is therefore
    bit-identical to the flat route by construction (the reshape is a
    view; the arithmetic is the same).

    Parameters
    ----------
    h:
        ``(G, B, 3, 3, M, M)`` believed-channel band batch
        (see :func:`stack_downlink_channels_band`).
    noise_power:
        Noise power used to score eigenvector candidates per bin.

    Returns
    -------
    (encodings, rates, sinrs):
        ``encodings`` is ``(G, B, 3, M)`` — per-bin winning unit-norm
        vectors; ``rates`` is ``(G, B)`` per-bin estimated throughput;
        ``sinrs`` is ``(G, B, 3)`` per-bin per-packet SINRs.
    """
    g, b = h.shape[:2]
    v, rates, sinrs = solve_downlink_three_batch(
        h.reshape((g * b,) + h.shape[2:]), noise_power
    )
    return (
        v.reshape(g, b, GROUP_SIZE, -1),
        rates.reshape(g, b),
        sinrs.reshape(g, b, GROUP_SIZE),
    )


def downlink_sinrs_band(h: np.ndarray, v: np.ndarray, noise_power: float) -> np.ndarray:
    """Per-bin rate-level SINRs of banded groups under given encodings.

    Used by the flat-anchor mode to score one band-wide encoding (solved
    at the anchor subcarrier) against every bin's believed channel.

    Parameters
    ----------
    h:
        ``(G, B, 3, 3, M, M)`` channel band batch.
    v:
        ``(G, B, 3, M)`` encoding vectors (broadcast a ``(G, 1, 3, M)``
        anchor solution across bins with ``np.broadcast_to``).

    Returns
    -------
    numpy.ndarray
        ``(G, B, 3)`` SINRs, packet ``i`` decoded at client ``i``.
    """
    g, b = h.shape[:2]
    v = np.broadcast_to(v, (g, b) + v.shape[2:])
    flat = downlink_sinrs_batch(
        h.reshape((g * b,) + h.shape[2:]),
        np.ascontiguousarray(v).reshape((g * b,) + v.shape[2:]),
        noise_power,
    )
    return flat.reshape(g, b, GROUP_SIZE)


def downlink_transmit_sinrs(
    h_true: np.ndarray,
    h_believed: np.ndarray,
    v: np.ndarray,
    noise_power: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Actual and genie SINRs of one transmitted downlink group.

    The transmission step of the WLAN sim decodes the chosen solution
    against the *true* channels twice: once with receive filters designed
    from the leader's believed (possibly stale) estimates — the actual
    outcome — and once with filters designed from the true channels — the
    genie bound used to account staleness loss.  This does both in one
    vectorised pass (receivers and the two filter designs are batch axes).

    Parameters
    ----------
    h_true, h_believed:
        ``(3, 3, M, M)`` channel stacks for one group, indexed like
        :func:`stack_downlink_channels` without the group axis.
    v:
        ``(3, M)`` unit-norm encoding vectors of the transmitted solution.
    noise_power:
        Receiver noise power per antenna.

    Returns
    -------
    (actual, ideal):
        Two ``(3,)`` arrays of per-packet SINRs, packet ``i`` at client ``i``.
    """
    # d[x, j, i] = H(ap_i, k_j) v_i — axis 0 is the filter design:
    # 0 = believed (actual outcome), 1 = true (genie bound).
    ht = np.stack([np.swapaxes(h_believed, 0, 1), np.swapaxes(h_true, 0, 1)])
    d = np.einsum("xjimn,in->xjim", ht, v)
    desired = d[:, _RX, _RX]  # (2, 3, M)
    interference = d[:, _RX[:, None], _OTHERS]  # (2, 3, 2, M)
    w = max_sinr_vectors(desired, interference, noise_power)
    # Both designs are evaluated against the *true* received directions.
    sinr = post_projection_sinr_batch(w, desired[1:], interference[1:], noise_power)
    return sinr[0], sinr[1]


def downlink_transmit_sinrs_cached(
    h_true: np.ndarray,
    v: np.ndarray,
    w_believed: np.ndarray,
    noise_power: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`downlink_transmit_sinrs` reusing memoised believed filters.

    The believed-design receive filters are a pure function of the
    believed channels and the encoding vectors — both already fixed when
    the evaluator solved/scored this group — so the evaluator caches
    them (:func:`downlink_sinrs_batch` with ``return_filters``) and the
    transmit step only designs the genie (true-channel) filters here.
    Batch-slice invariance of the max-SINR design makes the cached
    filters bit-identical to recomputing them from ``h_believed``, so
    this returns exactly what :func:`downlink_transmit_sinrs` would.

    Parameters
    ----------
    h_true:
        ``(3, 3, M, M)`` true-channel stack for one group.
    v:
        ``(3, M)`` unit-norm encoding vectors of the transmitted solution.
    w_believed:
        ``(3, M)`` memoised believed-design receive filters.
    noise_power:
        Receiver noise power per antenna.
    """
    # d[j, i] = H(ap_i, k_j) v_i over the *true* channels only.
    d = np.einsum("jimn,in->jim", np.swapaxes(h_true, 0, 1), v)
    desired = d[_RX, _RX]  # (3, M)
    interference = d[_RX[:, None], _OTHERS]  # (3, 2, M)
    w_true = max_sinr_vectors(desired, interference, noise_power)
    w = np.stack([w_believed, w_true])
    # Both designs are evaluated against the true received directions
    # (they broadcast across the design axis of ``w``).
    sinr = post_projection_sinr_batch(w, desired, interference, noise_power)
    return sinr[0], sinr[1]


def downlink_transmit_sinrs_band(
    h_true: np.ndarray,
    h_believed: np.ndarray,
    v: np.ndarray,
    noise_power: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Banded :func:`downlink_transmit_sinrs`: all subcarriers at once.

    Every evaluated bin of one transmitted group is decoded against its
    own true channel, with receive filters designed per bin from the
    believed (actual) and true (genie) channels — the bin axis is just
    one more batch axis on the same vectorised pass.

    Parameters
    ----------
    h_true, h_believed:
        ``(B, 3, 3, M, M)`` channel bands for one group.
    v:
        ``(B, 3, M)`` per-bin unit-norm encoding vectors; a flat-anchor
        solution broadcasts its single ``(1, 3, M)`` entry across bins.

    Returns
    -------
    (actual, ideal):
        Two ``(B, 3)`` per-bin per-packet SINR arrays.
    """
    n_bins = h_true.shape[0]
    v = np.broadcast_to(v, (n_bins,) + v.shape[1:])
    # d[x, b, j, i] = H_b(ap_i, k_j) v_i — axis 0 is the filter design:
    # 0 = believed (actual outcome), 1 = true (genie bound).
    ht = np.stack([np.swapaxes(h_believed, 1, 2), np.swapaxes(h_true, 1, 2)])
    d = np.einsum("xbjimn,bin->xbjim", ht, v)
    desired = d[:, :, _RX, _RX]  # (2, B, 3, M)
    interference = d[:, :, _RX[:, None], _OTHERS]  # (2, B, 3, 2, M)
    w = max_sinr_vectors(desired, interference, noise_power)
    # Both designs are evaluated against the *true* received directions.
    sinr = post_projection_sinr_batch(w, desired[1:], interference[1:], noise_power)
    return sinr[0], sinr[1]


def solve_downlink_three_batch(
    h: np.ndarray,
    noise_power: float = 1.0,
    return_filters: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Solve the 3-AP/3-client downlink alignment for a batch of groups.

    Follows Eqs. 5-7 exactly as the scalar solver does: express ``v1, v2``
    in terms of ``v0`` and close the loop at client 0, so ``v0`` is an
    eigenvector of the loop matrix.  Every eigenvector (sorted by
    descending ``|eigenvalue|``) is a valid candidate; all are decoded at
    rate level and the per-group best (first maximum) is kept — the same
    selection the leader AP performs in the scalar path.

    Parameters
    ----------
    h:
        ``(G, 3, 3, M, M)`` believed-channel batch.
    noise_power:
        Noise power used to score candidates (the sim's estimator uses 1.0).

    Returns
    -------
    (encodings, rates, sinrs):
        ``encodings`` is ``(G, 3, M)`` — the winning unit-norm encoding
        vectors per group; ``rates`` is ``(G,)`` estimated group throughput
        (Eq. 9); ``sinrs`` is ``(G, 3)`` the winning per-packet SINRs.
        With ``return_filters=True``, a fourth element — the winning
        candidates' ``(G, 3, M)`` believed-design receive filters, for
        :func:`downlink_transmit_sinrs_cached`.
    """
    # Loop matrix at client 0 (same association order as the scalar solver):
    #   left  = H(a2,k0) H(a2,k1)^-1 H(a0,k1)
    #   right = H(a1,k0) H(a1,k2)^-1 H(a0,k2)
    # The two inversions and the two triple products are stacked along one
    # more batch axis — per-slice LAPACK/BLAS calls are unchanged, so the
    # results are bit-identical to computing left and right separately.
    # All four pair stacks are sliced out of ONE fancy-index gather of
    # ``h`` (h[:, i, j] is the channel AP i -> client j):
    #   [H(a2,k1), H(a1,k2), H(a2,k0), H(a1,k0), H(a0,k1), H(a0,k2)]
    hp = h[:, (2, 1, 2, 1, 0, 0), (1, 2, 0, 0, 1, 2)]
    inv_pair = stacked_inv(hp[:, 0:2])  # [H(a2,k1)^-1, H(a1,k2)^-1]
    lr = hp[:, 2:4] @ inv_pair @ hp[:, 4:6]
    loop = stacked_inv(lr[:, 0]) @ lr[:, 1]

    values, vectors = stacked_eig(loop)  # (G, M), (G, M, M) column eigvecs
    order = np.argsort(-np.abs(values), axis=-1)
    # v0 candidates: (G, C, M) with C = M, best-|eigenvalue| first — the
    # inlined gather is ``np.take_along_axis(vectors, order[:, None, :], 2)``.
    g_idx = np.arange(h.shape[0])
    m_idx = np.arange(h.shape[-1])
    v0 = np.swapaxes(vectors[g_idx[:, None, None], m_idx[None, :, None], order[:, None, :]], 1, 2)
    v0 = normalize_encodings(v0)

    # v1 = H(a1,k2)^-1 H(a0,k2) v0,  v2 = H(a2,k1)^-1 H(a0,k1) v0 (Eqs. 6-7),
    # again stacked: b[:, 0] maps v0 -> v1, b[:, 1] maps v0 -> v2.
    b = inv_pair[:, ::-1] @ hp[:, 5:3:-1]  # view: [H(a0,k2), H(a0,k1)]
    v12 = normalize_encodings(np.einsum("gxmn,gcn->gxcm", b, v0))
    v = np.stack([v0, v12[:, 0], v12[:, 1]], axis=2)  # (G, C, 3, M)

    sinrs, w = downlink_sinrs_batch(h, v, noise_power, return_filters=True)
    rates = np.add.reduce(np.log2(1.0 + sinrs), axis=-1)  # (G, C)
    best = np.argmax(rates, axis=1)  # first maximum, like the scalar loop
    g_idx = np.arange(h.shape[0])
    if return_filters:
        return v[g_idx, best], rates[g_idx, best], sinrs[g_idx, best], w[g_idx, best]
    return v[g_idx, best], rates[g_idx, best], sinrs[g_idx, best]
