"""Batched group-evaluation engine for the WLAN hot path.

The per-slot cost of the IAC WLAN simulation is dominated by the
concurrency selector probing candidate transmission groups: the scalar
path re-runs :func:`~repro.core.alignment.solve_downlink_three_packets`
and :func:`~repro.core.decoder.decode_rate_level` from scratch for every
probe — O(clients^3) tiny ``np.linalg`` calls per slot.  This package
replaces that with two orthogonal optimisations behind one interface:

* **Batching** (:mod:`repro.engine.batched`): the believed
  :class:`~repro.core.plans.ChannelSet` of every not-yet-cached candidate
  group is stacked into an ``(G, 3, 3, M, M)`` ndarray and the alignment
  solutions plus rate-level SINRs are computed with stacked ``np.linalg``
  calls (``inv``/``eig``/``solve`` broadcast over the leading group axis),
  amortising the Python and LAPACK dispatch overhead over the whole probe.

* **Memoisation** (:class:`~repro.engine.evaluator.BatchedGroupEvaluator`):
  solved groups are cached under their ordered client tuple.  **The
  memoisation key is the tuple of the group's clients' channel-map
  versions** as reported by the evaluator's
  :class:`~repro.engine.evaluator.ChannelSource` (the leader AP bumps a
  client's version on association and on every applied drift report).  A
  cached solution is reused while every member client's version is
  unchanged — i.e. between drift reports the same group is never
  re-solved — and a single drift report invalidates exactly the cached
  groups containing the drifted client.

The scalar reference path is kept as
:class:`~repro.engine.evaluator.ScalarGroupEvaluator`;
``tests/engine/test_evaluator.py`` asserts numerical equivalence of the
two on random channel sets for all selectors and 2-4 antennas.
:mod:`repro.engine.bench` times both engines (``python -m repro bench``)
and records the speedup trajectory in ``BENCH_*.json`` files.
"""

from repro.engine.batched import (
    downlink_sinrs_band,
    downlink_sinrs_batch,
    downlink_transmit_sinrs_band,
    downlink_transmit_sinrs_cached,
    solve_downlink_three_band,
    solve_downlink_three_batch,
    stack_downlink_channels,
    stack_downlink_channels_band,
)
from repro.engine.evaluator import (
    ALIGNMENT_MODES,
    BatchedGroupEvaluator,
    ChannelSource,
    ColumnarGroupEvaluator,
    GroupEvaluator,
    ScalarGroupEvaluator,
    StaticChannelSource,
    make_evaluator,
)

__all__ = [
    "ALIGNMENT_MODES",
    "BatchedGroupEvaluator",
    "ChannelSource",
    "ColumnarGroupEvaluator",
    "GroupEvaluator",
    "ScalarGroupEvaluator",
    "StaticChannelSource",
    "downlink_sinrs_band",
    "downlink_sinrs_batch",
    "downlink_transmit_sinrs_band",
    "downlink_transmit_sinrs_cached",
    "make_evaluator",
    "solve_downlink_three_band",
    "solve_downlink_three_batch",
    "stack_downlink_channels",
    "stack_downlink_channels_band",
]
