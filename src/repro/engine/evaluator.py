"""Group evaluators: scalar reference path and the memoised batched engine.

A :class:`GroupEvaluator` scores candidate transmission groups against the
leader's *believed* channels — the quantity the concurrency selectors of
:mod:`repro.mac.concurrency` maximise — and produces the winning
:class:`~repro.core.plans.AlignmentSolution` for the group that actually
transmits.  Two implementations share the interface:

* :class:`ScalarGroupEvaluator` — the reference path: one
  :func:`~repro.core.alignment.solve_downlink_three_packets` +
  :func:`~repro.core.decoder.decode_rate_level` per call, exactly what
  ``WLANSimulation`` inlined before the engine existed;
* :class:`BatchedGroupEvaluator` — stacks all not-yet-cached groups of a
  probe into one ndarray batch (:mod:`repro.engine.batched`) and memoises
  per-group solutions keyed on the channel-map versions of the group's
  clients, so unchanged groups are never re-solved between drift reports.

Evaluators are also plain callables (``evaluator(group) -> rate``), so they
drop into any API expecting the legacy scorer-callable contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.alignment import solve_downlink_three_packets
from repro.core.decoder import decode_rate_level
from repro.core.plans import AlignmentSolution, ChannelSet, DecodeStage, PacketSpec
from repro.engine.batched import (
    GROUP_SIZE,
    downlink_transmit_sinrs,
    solve_downlink_three_batch,
    stack_downlink_channels,
)

Group = Tuple[int, ...]


class ChannelSource(ABC):
    """Where an evaluator reads believed channels and their versions.

    ``channel_map(client)`` returns ``{ap_id: (M, M) matrix}``;
    ``channel_version(client)`` returns a counter that changes whenever
    that client's map changes (the memoisation key).  The leader AP
    (:class:`repro.mac.association.LeaderAP`) implements this natively;
    :class:`StaticChannelSource` adapts a fixed :class:`ChannelSet`.
    """

    @abstractmethod
    def channel_map(self, client_id: int) -> Mapping[int, np.ndarray]:
        """Believed downlink channels to ``client_id``, per AP."""

    @abstractmethod
    def channel_version(self, client_id: int) -> int:
        """Monotone counter bumped on every change to the client's map."""


class StaticChannelSource(ChannelSource):
    """A frozen :class:`ChannelSet` (downlink ``(ap, client)`` keys)."""

    def __init__(self, channels: ChannelSet, aps: Sequence[int]):
        self._channels = channels
        self._aps = tuple(aps)

    def channel_map(self, client_id: int) -> Dict[int, np.ndarray]:
        return {ap: self._channels.h(ap, client_id) for ap in self._aps}

    def channel_version(self, client_id: int) -> int:
        return 0


class GroupEvaluator(ABC):
    """Scores ordered client groups and solves the winning one.

    The order of a group's clients encodes the AP assignment: packet ``i``
    goes from ``aps[i]`` to ``group[i]``.  Groups with fewer than three
    clients cannot align and score 0.0 (the selector still transmits them,
    the solver just has nothing to batch).
    """

    def __init__(self, source: ChannelSource, aps: Sequence[int], noise_power: float = 1.0):
        if len(aps) != GROUP_SIZE:
            raise ValueError(f"downlink groups use exactly {GROUP_SIZE} APs")
        self.source = source
        self.aps = tuple(aps)
        self.noise_power = float(noise_power)

    @abstractmethod
    def evaluate_many(self, groups: Sequence[Group]) -> List[float]:
        """Estimated throughput of every candidate group, in order."""

    @abstractmethod
    def solve(self, group: Group) -> AlignmentSolution:
        """The alignment solution the leader would transmit for ``group``."""

    def evaluate(self, group: Group) -> float:
        return self.evaluate_many([tuple(group)])[0]

    def __call__(self, group: Group) -> float:
        return self.evaluate(group)

    def transmit_sinrs(self, group: Group, true_channels: ChannelSet) -> Tuple[np.ndarray, np.ndarray]:
        """Per-packet SINRs of transmitting ``group`` over true channels.

        Returns ``(actual, ideal)``: receive filters designed from the
        believed channels vs. from the true ones (the genie bound), both
        measured against ``true_channels``.  Packet ``i`` is decoded at
        client ``group[i]``.  The reference implementation runs
        :func:`~repro.core.decoder.decode_rate_level` twice.
        """
        group = tuple(group)
        believed = self._believed(group)
        solution = self.solve(group)
        actual = decode_rate_level(
            solution, true_channels, self.noise_power, estimated_channels=believed
        )
        ideal = decode_rate_level(solution, true_channels, self.noise_power)
        return (
            np.array([r.sinr for r in actual.results]),
            np.array([r.sinr for r in ideal.results]),
        )

    # ------------------------------------------------------------------ #

    def _believed(self, group: Group) -> ChannelSet:
        out = {}
        for c in group:
            for ap, h in self.source.channel_map(c).items():
                out[(ap, c)] = h
        return ChannelSet(out)

    def _solution_from_encodings(self, group: Group, encodings: np.ndarray) -> AlignmentSolution:
        packets = [PacketSpec(i, self.aps[i], group[i]) for i in range(GROUP_SIZE)]
        return AlignmentSolution(
            packets=packets,
            encoding={i: encodings[i] for i in range(GROUP_SIZE)},
            schedule=[DecodeStage(rx=group[i], packet_ids=(i,)) for i in range(GROUP_SIZE)],
            cooperative=False,
        )


class ScalarGroupEvaluator(GroupEvaluator):
    """The pre-engine reference path: re-solve every probe from scratch."""

    def evaluate_many(self, groups: Sequence[Group]) -> List[float]:
        rates = []
        for group in groups:
            group = tuple(group)
            if len(group) < GROUP_SIZE:
                rates.append(0.0)
                continue
            believed = self._believed(group)
            solution = solve_downlink_three_packets(
                believed, aps=self.aps, clients=group, noise_power=self.noise_power
            )
            rates.append(
                decode_rate_level(solution, believed, noise_power=self.noise_power).total_rate
            )
        return rates

    def solve(self, group: Group) -> AlignmentSolution:
        group = tuple(group)
        return solve_downlink_three_packets(
            self._believed(group), aps=self.aps, clients=group,
            noise_power=self.noise_power,
        )


@dataclass
class _CacheEntry:
    versions: Tuple[int, ...]
    rate: float
    encodings: np.ndarray  # (3, M) unit-norm
    sinrs: np.ndarray  # (3,)


class BatchedGroupEvaluator(GroupEvaluator):
    """Batched + memoised evaluation of candidate downlink groups.

    All groups of one :meth:`evaluate_many` probe that are not already
    cached are solved in a single stacked ``np.linalg`` pass.  Cache key:
    the ordered client tuple; cache validity: the tuple of the clients'
    channel-map versions at solve time.  A drift report bumps one client's
    version and thereby invalidates exactly the cached groups containing
    that client — everything else stays warm across slots.
    """

    def __init__(self, source: ChannelSource, aps: Sequence[int], noise_power: float = 1.0):
        super().__init__(source, aps, noise_power)
        self._cache: Dict[Group, _CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def cache_info(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._cache)}

    def _entry(self, group: Group) -> _CacheEntry:
        """Cached entry for ``group``, refusing stale versions."""
        versions = tuple(self.source.channel_version(c) for c in group)
        entry = self._cache.get(group)
        if entry is not None and entry.versions == versions:
            return entry
        raise KeyError(group)

    def evaluate_many(self, groups: Sequence[Group]) -> List[float]:
        groups = [tuple(g) for g in groups]
        rates: List[float] = [0.0] * len(groups)
        missing: List[Group] = []
        missing_idx: List[List[int]] = []
        position: Dict[Group, int] = {}
        for i, group in enumerate(groups):
            if len(group) < GROUP_SIZE:
                continue
            if len(group) > GROUP_SIZE:
                raise ValueError(f"group {group} exceeds {GROUP_SIZE} clients")
            try:
                rates[i] = self._entry(group).rate
                self.hits += 1
                continue
            except KeyError:
                pass
            self.misses += 1
            if group in position:  # duplicate within this probe
                missing_idx[position[group]].append(i)
            else:
                position[group] = len(missing)
                missing.append(group)
                missing_idx.append([i])
        if missing:
            self._solve_batch(missing)
            for group, idxs in zip(missing, missing_idx):
                rate = self._cache[group].rate
                for i in idxs:
                    rates[i] = rate
        return rates

    def _solve_batch(self, groups: Sequence[Group]) -> None:
        clients = {c for g in groups for c in g}
        channel_maps = {c: self.source.channel_map(c) for c in clients}
        versions = {c: self.source.channel_version(c) for c in clients}
        h = stack_downlink_channels(groups, channel_maps, self.aps)
        encodings, rates, sinrs = solve_downlink_three_batch(h, self.noise_power)
        for g, group in enumerate(groups):
            self._cache[group] = _CacheEntry(
                versions=tuple(versions[c] for c in group),
                rate=float(rates[g]),
                encodings=encodings[g],
                sinrs=sinrs[g],
            )

    def _cached_entry(self, group: Group) -> _CacheEntry:
        try:
            entry = self._entry(group)
        except KeyError:
            self.misses += 1
            self._solve_batch([group])
            entry = self._cache[group]
        else:
            self.hits += 1
        return entry

    def solve(self, group: Group) -> AlignmentSolution:
        group = tuple(group)
        return self._solution_from_encodings(group, self._cached_entry(group).encodings)

    def transmit_sinrs(self, group: Group, true_channels: ChannelSet) -> Tuple[np.ndarray, np.ndarray]:
        """Batched transmission decode: no per-packet Python machinery.

        Uses the memoised encodings (the selector just scored this group)
        and one vectorised pass over receivers x {believed, true} filter
        designs — see :func:`repro.engine.batched.downlink_transmit_sinrs`.
        """
        group = tuple(group)
        entry = self._cached_entry(group)
        maps = {c: self.source.channel_map(c) for c in group}
        h_bel = stack_downlink_channels([group], maps, self.aps)[0]
        h_true = np.empty_like(h_bel)
        for i, ap in enumerate(self.aps):
            for j, client in enumerate(group):
                h_true[i, j] = true_channels.h(ap, client)
        return downlink_transmit_sinrs(h_true, h_bel, entry.encodings, self.noise_power)


def make_evaluator(
    name: str,
    source: ChannelSource,
    aps: Sequence[int],
    noise_power: float = 1.0,
) -> GroupEvaluator:
    """Factory: ``"batched"`` (default engine) or ``"scalar"`` (reference)."""
    key = name.lower()
    if key == "batched":
        return BatchedGroupEvaluator(source, aps, noise_power)
    if key == "scalar":
        return ScalarGroupEvaluator(source, aps, noise_power)
    raise ValueError(f"unknown engine {name!r} (expected 'batched' or 'scalar')")
