"""Group evaluators: scalar reference path and the memoised batched engine.

A :class:`GroupEvaluator` scores candidate transmission groups against the
leader's *believed* channels — the quantity the concurrency selectors of
:mod:`repro.mac.concurrency` maximise — and produces the winning
:class:`~repro.core.plans.AlignmentSolution` for the group that actually
transmits.  Two implementations share the interface:

* :class:`ScalarGroupEvaluator` — the reference path: one
  :func:`~repro.core.alignment.solve_downlink_three_packets` +
  :func:`~repro.core.decoder.decode_rate_level` per call, exactly what
  ``WLANSimulation`` inlined before the engine existed;
* :class:`BatchedGroupEvaluator` — stacks all not-yet-cached groups of a
  probe into one ndarray batch (:mod:`repro.engine.batched`) and memoises
  per-group solutions keyed on the channel-map versions of the group's
  clients, so unchanged groups are never re-solved between drift reports.

Evaluators are also plain callables (``evaluator(group) -> rate``), so they
drop into any API expecting the legacy scorer-callable contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.alignment import solve_downlink_three_packets
from repro.core.decoder import decode_rate_level
from repro.core.plans import (
    AlignmentSolution,
    BandedChannelSet,
    ChannelSet,
    DecodeStage,
    PacketSpec,
)
from repro.engine.batched import (
    GROUP_SIZE,
    downlink_sinrs_band,
    downlink_transmit_sinrs,
    downlink_transmit_sinrs_cached,
    downlink_transmit_sinrs_band,
    solve_downlink_three_band,
    solve_downlink_three_batch,
    stack_downlink_channels,
    stack_downlink_channels_band,
)

Group = Tuple[int, ...]

#: How a wideband (banded) evaluator aligns across the subcarrier grid:
#: ``"per_subcarrier"`` solves every bin independently (the §6c
#: conjecture's operating mode); ``"flat_anchor"`` solves once at the
#: band-centre bin and reuses those encoding vectors band-wide (the
#: paper's baseline worry — alignment decays as the band decorrelates).
#: Receivers always decode each bin against that bin's own channels.
ALIGNMENT_MODES = ("per_subcarrier", "flat_anchor")


def _map_n_bins(channel_maps: Mapping[int, Mapping[int, np.ndarray]]) -> int:
    """Bin count of a believed channel map (1 when entries are flat)."""
    first = np.asarray(next(iter(next(iter(channel_maps.values())).values())))
    return first.shape[0] if first.ndim == 3 else 1


def _flatten_one_bin(
    channel_maps: Mapping[int, Mapping[int, np.ndarray]]
) -> Dict[int, Dict[int, np.ndarray]]:
    """Squeeze ``(1, M, M)`` one-bin stacks to flat matrices, so a one-bin
    banded source runs the literal flat (pre-wideband) route."""
    out: Dict[int, Dict[int, np.ndarray]] = {}
    for c, cmap in channel_maps.items():
        flat = {}
        for ap, h in cmap.items():
            h = np.asarray(h)
            flat[ap] = h[0] if h.ndim == 3 else h
        out[c] = flat
    return out


class ChannelSource(ABC):
    """Where an evaluator reads believed channels and their versions.

    ``channel_map(client)`` returns ``{ap_id: (M, M) matrix}`` — or, for
    a wideband deployment whose sounding carries per-subcarrier
    estimates, ``{ap_id: (B, M, M) stack}``; evaluators treat the flat
    matrix as the ``B = 1`` case.  ``channel_version(client)`` returns a
    counter that changes whenever that client's map changes (the
    memoisation key).  The leader AP
    (:class:`repro.mac.association.LeaderAP`) implements this natively;
    :class:`StaticChannelSource` adapts a fixed :class:`ChannelSet` or
    :class:`BandedChannelSet`.
    """

    @abstractmethod
    def channel_map(self, client_id: int) -> Mapping[int, np.ndarray]:
        """Believed downlink channels to ``client_id``, per AP."""

    @abstractmethod
    def channel_version(self, client_id: int) -> int:
        """Monotone counter bumped on every change to the client's map."""


class StaticChannelSource(ChannelSource):
    """A frozen :class:`ChannelSet` or :class:`BandedChannelSet`
    (downlink ``(ap, client)`` keys)."""

    def __init__(self, channels, aps: Sequence[int]):
        self._channels = channels
        self._aps = tuple(aps)

    def channel_map(self, client_id: int) -> Dict[int, np.ndarray]:
        if isinstance(self._channels, BandedChannelSet):
            return {ap: self._channels.h_bins(ap, client_id) for ap in self._aps}
        return {ap: self._channels.h(ap, client_id) for ap in self._aps}

    def channel_version(self, client_id: int) -> int:
        return 0


class GroupEvaluator(ABC):
    """Scores ordered client groups and solves the winning one.

    The order of a group's clients encodes the AP assignment: packet ``i``
    goes from ``aps[i]`` to ``group[i]``.  Groups with fewer than three
    clients cannot align and score 0.0 (the selector still transmits them,
    the solver just has nothing to batch).
    """

    def __init__(
        self,
        source: ChannelSource,
        aps: Sequence[int],
        noise_power: float = 1.0,
        alignment: str = "per_subcarrier",
    ):
        if len(aps) != GROUP_SIZE:
            raise ValueError(f"downlink groups use exactly {GROUP_SIZE} APs")
        if alignment not in ALIGNMENT_MODES:
            raise ValueError(
                f"unknown alignment mode {alignment!r} (expected one of {ALIGNMENT_MODES})"
            )
        self.source = source
        self.aps = tuple(aps)
        self.noise_power = float(noise_power)
        #: Wideband alignment strategy; irrelevant when the source is flat
        #: (one bin *is* its own anchor).
        self.alignment = alignment

    @abstractmethod
    def evaluate_many(self, groups: Sequence[Group]) -> List[float]:
        """Estimated throughput of every candidate group, in order."""

    @abstractmethod
    def solve(self, group: Group) -> AlignmentSolution:
        """The alignment solution the leader would transmit for ``group``."""

    def evaluate(self, group: Group) -> float:
        return self.evaluate_many([tuple(group)])[0]

    def __call__(self, group: Group) -> float:
        return self.evaluate(group)

    def transmit_sinrs(self, group: Group, true_channels: ChannelSet) -> Tuple[np.ndarray, np.ndarray]:
        """Per-packet SINRs of transmitting ``group`` over true channels.

        Returns ``(actual, ideal)``: receive filters designed from the
        believed channels vs. from the true ones (the genie bound), both
        measured against ``true_channels``.  Packet ``i`` is decoded at
        client ``group[i]``.  The reference implementation runs
        :func:`~repro.core.decoder.decode_rate_level` twice.
        """
        group = tuple(group)
        believed = self._believed(group)
        solution = self.solve(group)
        actual = decode_rate_level(
            solution, true_channels, self.noise_power, estimated_channels=believed
        )
        ideal = decode_rate_level(solution, true_channels, self.noise_power)
        return (
            np.array([r.sinr for r in actual.results]),
            np.array([r.sinr for r in ideal.results]),
        )

    # ------------------------------------------------------------------ #

    def _believed(self, group: Group) -> ChannelSet:
        out = {}
        for c, cmap in _flatten_one_bin(self._group_maps(group)).items():
            for ap, h in cmap.items():
                out[(ap, c)] = h
        return ChannelSet(out)

    def _believed_band(self, group: Group) -> BandedChannelSet:
        out = {}
        for c in group:
            for ap, h in self.source.channel_map(c).items():
                out[(ap, c)] = h
        return BandedChannelSet(out)

    def _group_maps(self, group: Group) -> Dict[int, Mapping[int, np.ndarray]]:
        return {c: self.source.channel_map(c) for c in group}

    def _solution_from_encodings(self, group: Group, encodings: np.ndarray) -> AlignmentSolution:
        packets = [PacketSpec(i, self.aps[i], group[i]) for i in range(GROUP_SIZE)]
        return AlignmentSolution(
            packets=packets,
            encoding={i: encodings[i] for i in range(GROUP_SIZE)},
            schedule=[DecodeStage(rx=group[i], packet_ids=(i,)) for i in range(GROUP_SIZE)],
            cooperative=False,
        )


class ScalarGroupEvaluator(GroupEvaluator):
    """The pre-engine reference path: re-solve every probe from scratch.

    On a banded (wideband) channel source this is the **per-bin scalar
    loop**: every evaluated subcarrier is treated as its own flat
    problem — one :func:`solve_downlink_three_packets` +
    :func:`decode_rate_level` per bin — against which the
    subcarrier-batched engine is equivalence-tested and benchmarked.
    """

    def _is_banded(self, group: Group) -> bool:
        return _map_n_bins(self._group_maps(group)) > 1

    def _band_solutions(
        self, group: Group, believed: BandedChannelSet
    ) -> List[AlignmentSolution]:
        """One alignment solution per bin (the anchor's, repeated, in
        flat-anchor mode)."""
        if self.alignment == "flat_anchor":
            anchor = solve_downlink_three_packets(
                believed.at_bin(believed.n_bins // 2),
                aps=self.aps, clients=group, noise_power=self.noise_power,
            )
            return [anchor] * believed.n_bins
        return [
            solve_downlink_three_packets(
                believed.at_bin(b),
                aps=self.aps, clients=group, noise_power=self.noise_power,
            )
            for b in range(believed.n_bins)
        ]

    def evaluate_many(self, groups: Sequence[Group]) -> List[float]:
        rates = []
        for group in groups:
            group = tuple(group)
            if len(group) < GROUP_SIZE:
                rates.append(0.0)
                continue
            if self._is_banded(group):
                believed = self._believed_band(group)
                solutions = self._band_solutions(group, believed)
                rates.append(
                    float(np.mean([
                        decode_rate_level(
                            sol, believed.at_bin(b), noise_power=self.noise_power
                        ).total_rate
                        for b, sol in enumerate(solutions)
                    ]))
                )
                continue
            believed = self._believed(group)
            solution = solve_downlink_three_packets(
                believed, aps=self.aps, clients=group, noise_power=self.noise_power
            )
            rates.append(
                decode_rate_level(solution, believed, noise_power=self.noise_power).total_rate
            )
        return rates

    def solve(self, group: Group) -> AlignmentSolution:
        """The flat solution (banded sources: the anchor bin's)."""
        group = tuple(group)
        if self._is_banded(group):
            believed = self._believed_band(group)
            return solve_downlink_three_packets(
                believed.at_bin(believed.n_bins // 2),
                aps=self.aps, clients=group, noise_power=self.noise_power,
            )
        return solve_downlink_three_packets(
            self._believed(group), aps=self.aps, clients=group,
            noise_power=self.noise_power,
        )

    def transmit_sinrs(self, group: Group, true_channels) -> Tuple[np.ndarray, np.ndarray]:
        """Reference transmission decode; banded sources loop the bins.

        With a banded source ``true_channels`` must be a
        :class:`BandedChannelSet`; the return arrays are ``(B, 3)``.
        """
        group = tuple(group)
        if not self._is_banded(group):
            return super().transmit_sinrs(group, true_channels)
        believed = self._believed_band(group)
        solutions = self._band_solutions(group, believed)
        actual = np.empty((believed.n_bins, GROUP_SIZE))
        ideal = np.empty((believed.n_bins, GROUP_SIZE))
        for b, sol in enumerate(solutions):
            true_b = true_channels.at_bin(b)
            report = decode_rate_level(
                sol, true_b, self.noise_power,
                estimated_channels=believed.at_bin(b),
            )
            genie = decode_rate_level(sol, true_b, self.noise_power)
            actual[b] = [r.sinr for r in report.results]
            ideal[b] = [r.sinr for r in genie.results]
        return actual, ideal


@dataclass
class _CacheEntry:
    versions: Tuple[int, ...]
    rate: float
    #: Unit-norm encoding vectors: ``(3, M)`` on flat sources (also the
    #: flat-anchor band solution, broadcast at transmit time); ``(B, 3, M)``
    #: per-bin on banded sources in per-subcarrier mode.
    encodings: np.ndarray
    sinrs: np.ndarray  # (3,) flat, (B, 3) banded
    #: Believed-design max-SINR receive filters of the winning candidate
    #: (``(3, M)``, flat solves only) — reused by the transmit decode via
    #: :func:`~repro.engine.batched.downlink_transmit_sinrs_cached` so it
    #: skips redesigning them.  ``None`` on banded entries.
    w_bel: "np.ndarray | None" = None
    #: Source ``version_epoch`` at which ``versions`` was last confirmed
    #: current (``-1`` when the source has no epoch counter).  Epoch
    #: unchanged implies *no* client's version changed, so revalidation
    #: can skip polling every member — same hit/miss decisions, cheaper.
    validated_epoch: int = -1


class BatchedGroupEvaluator(GroupEvaluator):
    """Batched + memoised evaluation of candidate downlink groups.

    All groups of one :meth:`evaluate_many` probe that are not already
    cached are solved in a single stacked ``np.linalg`` pass.  Cache key:
    the ordered client tuple; cache validity: the tuple of the clients'
    channel-map versions at solve time.  A drift report bumps one client's
    version and thereby invalidates exactly the cached groups containing
    that client — everything else stays warm across slots.
    """

    def __init__(
        self,
        source: ChannelSource,
        aps: Sequence[int],
        noise_power: float = 1.0,
        alignment: str = "per_subcarrier",
    ):
        super().__init__(source, aps, noise_power, alignment)
        self._cache: Dict[Group, _CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def cache_info(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._cache)}

    def _entry(self, group: Group) -> _CacheEntry:
        """Cached entry for ``group``, refusing stale versions.

        Fast path: when the source exposes a global ``version_epoch`` and
        it hasn't moved since this entry was last validated, no client's
        version can have changed, so the per-member version poll is
        skipped — the hit/miss decision is identical either way.
        """
        entry = self._cache.get(group)
        if entry is None:
            raise KeyError(group)
        epoch = getattr(self.source, "version_epoch", None)
        if epoch is not None and entry.validated_epoch == epoch:
            return entry
        versions = tuple(self.source.channel_version(c) for c in group)
        if entry.versions == versions:
            if epoch is not None:
                entry.validated_epoch = epoch
            return entry
        raise KeyError(group)

    def evaluate_many(self, groups: Sequence[Group]) -> List[float]:
        groups = [tuple(g) for g in groups]
        rates: List[float] = [0.0] * len(groups)
        missing: List[Group] = []
        missing_idx: List[List[int]] = []
        position: Dict[Group, int] = {}
        # Inline of :meth:`_entry` without the KeyError control flow
        # (misses dominate under drift; exception dispatch is pure
        # overhead on this per-slot path).  Decisions are identical.
        cache_get = self._cache.get
        epoch = getattr(self.source, "version_epoch", None)
        channel_version = self.source.channel_version
        for i, group in enumerate(groups):
            if len(group) < GROUP_SIZE:
                continue
            if len(group) > GROUP_SIZE:
                raise ValueError(f"group {group} exceeds {GROUP_SIZE} clients")
            entry = cache_get(group)
            if entry is not None:
                if epoch is not None and entry.validated_epoch == epoch:
                    rates[i] = entry.rate
                    self.hits += 1
                    continue
                if entry.versions == tuple(channel_version(c) for c in group):
                    if epoch is not None:
                        entry.validated_epoch = epoch
                    rates[i] = entry.rate
                    self.hits += 1
                    continue
            self.misses += 1
            if group in position:  # duplicate within this probe
                missing_idx[position[group]].append(i)
            else:
                position[group] = len(missing)
                missing.append(group)
                missing_idx.append([i])
        if missing:
            self._solve_batch(missing)
            for group, idxs in zip(missing, missing_idx):
                rate = self._cache[group].rate
                for i in idxs:
                    rates[i] = rate
        return rates

    def _solve_batch(self, groups: Sequence[Group]) -> None:
        clients = {c for g in groups for c in g}
        channel_maps = {c: self.source.channel_map(c) for c in clients}
        versions = {c: self.source.channel_version(c) for c in clients}
        if _map_n_bins(channel_maps) == 1:
            # Flat route (also the wideband n_bins == 1 limit): exactly the
            # pre-wideband computation, preserved bit-identically.
            h = stack_downlink_channels(
                groups, _flatten_one_bin(channel_maps), self.aps
            )
            encodings, rates, sinrs, w_bel = solve_downlink_three_batch(
                h, self.noise_power, return_filters=True
            )
        else:
            w_bel = None
            h = stack_downlink_channels_band(groups, channel_maps, self.aps)
            if self.alignment == "flat_anchor":
                # Solve once at the band-centre anchor, score the stale
                # encodings against every bin's believed channel.
                anchor = h.shape[1] // 2
                encodings, _, _ = solve_downlink_three_batch(
                    h[:, anchor], self.noise_power
                )
                sinrs = downlink_sinrs_band(h, encodings[:, None], self.noise_power)
            else:
                encodings, _, sinrs = solve_downlink_three_band(h, self.noise_power)
            # Band throughput: per-subcarrier sum rate averaged over the
            # evaluated bins (b/s/Hz, comparable across bin counts).
            rates = np.log2(1.0 + sinrs).sum(axis=-1).mean(axis=-1)
        epoch = getattr(self.source, "version_epoch", -1)
        for g, group in enumerate(groups):
            self._cache[group] = _CacheEntry(
                versions=tuple(versions[c] for c in group),
                rate=float(rates[g]),
                encodings=encodings[g],
                sinrs=sinrs[g],
                w_bel=None if w_bel is None else w_bel[g],
                validated_epoch=epoch,
            )

    def _cached_entry(self, group: Group) -> _CacheEntry:
        try:
            entry = self._entry(group)
        except KeyError:
            self.misses += 1
            self._solve_batch([group])
            entry = self._cache[group]
        else:
            self.hits += 1
        return entry

    def solve(self, group: Group) -> AlignmentSolution:
        """The flat solution (banded per-subcarrier: the anchor bin's)."""
        group = tuple(group)
        encodings = self._cached_entry(group).encodings
        if encodings.ndim == 3:
            encodings = encodings[encodings.shape[0] // 2]
        return self._solution_from_encodings(group, encodings)

    def transmit_sinrs(self, group: Group, true_channels) -> Tuple[np.ndarray, np.ndarray]:
        """Batched transmission decode: no per-packet Python machinery.

        Uses the memoised encodings (the selector just scored this group)
        and one vectorised pass over receivers x {believed, true} filter
        designs — see :func:`repro.engine.batched.downlink_transmit_sinrs`.
        On a banded source ``true_channels`` is a
        :class:`BandedChannelSet` and the bins ride along as one more
        batch axis (``(B, 3)`` outputs, see
        :func:`repro.engine.batched.downlink_transmit_sinrs_band`).
        """
        group = tuple(group)
        entry = self._cached_entry(group)
        maps = self._group_maps(group)
        if _map_n_bins(maps) == 1:
            m = entry.encodings.shape[-1]
            h_true = np.empty((GROUP_SIZE, GROUP_SIZE, m, m), dtype=complex)
            for i, ap in enumerate(self.aps):
                for j, client in enumerate(group):
                    h_true[i, j] = true_channels.h(ap, client)
            if entry.w_bel is not None:
                return downlink_transmit_sinrs_cached(
                    h_true, entry.encodings, entry.w_bel, self.noise_power
                )
            h_bel = stack_downlink_channels([group], _flatten_one_bin(maps), self.aps)[0]
            return downlink_transmit_sinrs(
                h_true, h_bel, entry.encodings, self.noise_power
            )
        h_bel = stack_downlink_channels_band([group], maps, self.aps)[0]
        h_true = np.empty_like(h_bel)
        for i, ap in enumerate(self.aps):
            for j, client in enumerate(group):
                h_true[:, i, j] = true_channels.h_bins(ap, client)
        v = entry.encodings
        if v.ndim == 2:  # flat-anchor: one solution band-wide
            v = v[None]
        return downlink_transmit_sinrs_band(h_true, h_bel, v, self.noise_power)


class ColumnarGroupEvaluator(BatchedGroupEvaluator):
    """The batched evaluator plus a columnar believed-channel mirror.

    Believed channels live in one ``(capacity, 3, M, M)`` ndarray indexed
    by a per-client row; a row is refreshed **only** when the client's
    channel-map version changed since the last sync (the "incremental
    drift update" — a drift report touches exactly one row, everything
    else stays in place).  Stacking a probe's candidate groups is then a
    single fancy-index gather instead of the per-group dict walk of
    :func:`~repro.engine.batched.stack_downlink_channels`, and the
    gathered values are byte-for-byte the leader's believed matrices, so
    :func:`~repro.engine.batched.solve_downlink_three_batch` produces
    bit-identical solutions (pinned by the columnar equivalence suite).

    The mirror only covers flat (one-bin) sources; a genuinely banded
    source falls back to the parent's wideband route wholesale.  Two
    extra hooks — :meth:`uncached` + :meth:`insert_solved` — let the
    stacked multi-simulation driver (:func:`repro.sim.columnar.run_stacked`)
    pull many simulations' missing groups into **one** shared
    ``np.linalg`` solve and scatter the entries back; batch-slice
    invariance of the solver makes the shared solve bit-identical to the
    per-simulation ones.
    """

    def __init__(
        self,
        source: ChannelSource,
        aps: Sequence[int],
        noise_power: float = 1.0,
        alignment: str = "per_subcarrier",
    ):
        super().__init__(source, aps, noise_power, alignment)
        self._rows: Dict[int, int] = {}
        self._bel: np.ndarray | None = None  # (capacity, 3, M, M) mirror
        self._bel_versions: np.ndarray | None = None  # (capacity,) int64
        #: Source ``version_epoch`` at which each row was last confirmed
        #: fresh (-1 = never): lets :meth:`_sync` skip even the per-client
        #: version poll while the leader's table is globally unchanged.
        self._row_epochs: np.ndarray | None = None  # (capacity,) int64
        #: Tri-state: None = not yet probed, True = flat mirror active,
        #: False = banded source (delegate everything to the parent).
        self._flat: bool | None = None

    # -------------------------- mirror plumbing ----------------------- #

    def flat_capable(self, client: int) -> bool:
        """Whether the mirror route applies (lazily probed once)."""
        if self._flat is None:
            h = np.asarray(next(iter(self.source.channel_map(client).values())))
            self._flat = h.ndim != 3 or h.shape[0] == 1
        return self._flat

    def _grow(self, row: int, cmap: Mapping[int, np.ndarray]) -> None:
        if self._bel is None:
            h0 = np.asarray(next(iter(cmap.values())))
            m = h0.shape[-1]
            cap = max(8, row + 1)
            self._bel = np.zeros((cap, len(self.aps), m, m), dtype=complex)
            self._bel_versions = np.full(cap, -1, dtype=np.int64)
            self._row_epochs = np.full(cap, -1, dtype=np.int64)
        elif row >= self._bel.shape[0]:
            cap = max(2 * self._bel.shape[0], row + 1)
            bel = np.zeros((cap,) + self._bel.shape[1:], dtype=complex)
            bel[: self._bel.shape[0]] = self._bel
            versions = np.full(cap, -1, dtype=np.int64)
            versions[: self._bel_versions.shape[0]] = self._bel_versions
            epochs = np.full(cap, -1, dtype=np.int64)
            epochs[: self._row_epochs.shape[0]] = self._row_epochs
            self._bel, self._bel_versions = bel, versions
            self._row_epochs = epochs

    def _sync(self, client: int) -> int:
        """Row of ``client`` in the mirror, refreshed iff its version moved."""
        row = self._rows.get(client)
        epoch = getattr(self.source, "version_epoch", None)
        if row is not None and epoch is not None and self._row_epochs[row] == epoch:
            # Global epoch unchanged since this row was confirmed fresh:
            # the client's version cannot have moved either.
            return row
        version = self.source.channel_version(client)
        if row is not None and self._bel_versions[row] == version:
            if epoch is not None:
                self._row_epochs[row] = epoch
            return row
        cmap = self.source.channel_map(client)
        if row is None:
            row = len(self._rows)
            self._rows[client] = row
        self._grow(row, cmap)
        for i, ap in enumerate(self.aps):
            h = np.asarray(cmap[ap])
            if h.ndim == 3:  # one-bin banded source: the flat squeeze
                h = h[0]
            self._bel[row, i] = h
        self._bel_versions[row] = version
        if epoch is not None:
            self._row_epochs[row] = epoch
        return row

    def stack_believed(
        self, groups: Sequence[Group]
    ) -> Tuple[np.ndarray, List[Tuple[int, ...]]]:
        """Gather ``(G, 3, 3, M, M)`` believed channels plus version keys."""
        # Sync each distinct client once per probe: _sync is idempotent
        # between source mutations, so memoising it is observationally
        # identical to calling it per (group, member).
        sync = self._sync
        memo: Dict[int, int] = {}
        rows_list = []
        for g in groups:
            row_g = []
            for c in g:
                r = memo.get(c)
                if r is None:
                    r = sync(c)
                    memo[c] = r
                row_g.append(r)
            rows_list.append(row_g)
        rows = np.array(rows_list)
        # mirror rows are client-major; the solver wants h[g, ap, client]
        # (a strided view is fine: the solver's gufuncs buffer per slice).
        h = np.swapaxes(self._bel[rows], 1, 2)
        versions = [tuple(v) for v in self._bel_versions[rows].tolist()]
        return h, versions

    def uncached(self, candidates: Sequence[Group]) -> List[Group]:
        """Distinct full-size candidate groups with no valid cache entry."""
        out: List[Group] = []
        seen = set()
        for group in candidates:
            group = tuple(group)
            if len(group) != GROUP_SIZE or group in seen:
                continue
            try:
                self._entry(group)
            except KeyError:
                seen.add(group)
                out.append(group)
        return out

    def insert_solved(
        self,
        groups: Sequence[Group],
        versions: Sequence[Tuple[int, ...]],
        encodings: np.ndarray,
        rates: np.ndarray,
        sinrs: np.ndarray,
        w_bel: "np.ndarray | None" = None,
    ) -> None:
        """Adopt externally solved entries (the stacked driver's scatter)."""
        epoch = getattr(self.source, "version_epoch", -1)
        for g, group in enumerate(groups):
            self._cache[group] = _CacheEntry(
                versions=tuple(versions[g]),
                rate=float(rates[g]),
                encodings=encodings[g],
                sinrs=sinrs[g],
                w_bel=None if w_bel is None else w_bel[g],
                validated_epoch=epoch,
            )

    # -------------------------- engine overrides ---------------------- #

    def _solve_batch(self, groups: Sequence[Group]) -> None:
        if groups and not self.flat_capable(groups[0][0]):
            super()._solve_batch(groups)
            return
        groups = [tuple(g) for g in groups]
        h, versions = self.stack_believed(groups)
        encodings, rates, sinrs, w_bel = solve_downlink_three_batch(
            h, self.noise_power, return_filters=True
        )
        self.insert_solved(groups, versions, encodings, rates, sinrs, w_bel)

    def transmit_sinrs_fast(
        self, group: Group, h_true: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat transmission decode from a pre-gathered true-channel stack.

        ``h_true`` is the ``(3, 3, M, M)`` stack ``h[i, j]`` = true channel
        from ``aps[i]`` to ``group[j]`` — the columnar slot loop gathers
        it straight from the fading stack, skipping the
        :class:`~repro.core.plans.ChannelSet` round-trip of the scalar
        path.  Only valid on flat sources (callers check
        :meth:`flat_capable`).
        """
        group = tuple(group)
        entry = self._cached_entry(group)
        if entry.w_bel is not None:
            return downlink_transmit_sinrs_cached(
                h_true, entry.encodings, entry.w_bel, self.noise_power
            )
        rows = [self._sync(c) for c in group]
        h_bel = np.swapaxes(self._bel[rows], 0, 1)
        return downlink_transmit_sinrs(
            h_true, h_bel, entry.encodings, self.noise_power
        )


def make_evaluator(
    name: str,
    source: ChannelSource,
    aps: Sequence[int],
    noise_power: float = 1.0,
    alignment: str = "per_subcarrier",
) -> GroupEvaluator:
    """Factory: ``"batched"`` (default engine), ``"columnar"`` (the
    batched engine plus the believed-channel mirror consumed by the
    columnar slot loop) or ``"scalar"`` (reference).

    ``alignment`` selects the wideband strategy (``"per_subcarrier"`` or
    ``"flat_anchor"``); it only matters when the channel source carries
    banded (``(B, M, M)``) believed channels.
    """
    key = name.lower()
    if key == "batched":
        return BatchedGroupEvaluator(source, aps, noise_power, alignment)
    if key in ("columnar", "event"):
        # The event kernel reuses the columnar slot path wholesale, so it
        # needs the same believed-channel mirror.
        return ColumnarGroupEvaluator(source, aps, noise_power, alignment)
    if key == "scalar":
        return ScalarGroupEvaluator(source, aps, noise_power, alignment)
    raise ValueError(
        f"unknown engine {name!r} "
        "(expected 'batched', 'columnar', 'event' or 'scalar')"
    )
