"""Command-line interface: registry-driven experiment runner.

Scenarios come from the :mod:`repro.experiments` registry — the CLI has
no per-figure wiring of its own.  Usage::

    python -m repro list [--tag TAG]
    python -m repro run SCENARIO [--trials N] [--seed S] [--workers N]
                        [--json PATH|-] [--quiet] [--param KEY=VALUE ...]
    python -m repro sweep SCENARIO --grid KEY=V1,V2,... [--grid ...]
                        [--workers N] [--cache PATH | --no-cache]
                        [--retries N] [--backoff S] [--quarantine]
    python -m repro fig12 | fig13a | fig13b | fig14      (legacy aliases)
    python -m repro fig15 [--slots N] [--direction uplink|downlink]
    python -m repro fig16 | fig17
    python -m repro lemmas | overhead
    python -m repro bench [--quick] [--events] [--ofdm] [--city] [--faults]
                          [--skip-wlan|-signal|-scenarios] [--out-dir DIR]
    python -m repro lint [--json PATH] [--rule RULE-ID] [--no-baseline]
    python -m repro --version

``run`` executes any registered scenario; ``--json -`` writes the
structured result to stdout (and nothing else), ``--json PATH`` archives
it next to the human-readable report, ``--quiet`` suppresses the ASCII
plots, and ``--workers`` parallelises trials without changing a single
output bit.  ``sweep`` fans the cartesian product of ``--grid`` axes
across workers (one scenario run per cell, per-cell RNG streams) and
memoises completed cells in a JSON cache so an interrupted sweep resumes
bit-identically; see :mod:`repro.experiments.sweep`.  The ``figNN`` subcommands are thin aliases over the same
registry.  ``bench`` times the WLAN hot path under both group-evaluation
engines, the sample-accurate signal pipeline under its ``fast`` and
``reference`` engines, and a set of scenario trials, writing
``BENCH_wlan.json`` / ``BENCH_signal.json`` / ``BENCH_scenarios.json``
(``--quick`` for the CI smoke variant; ``--events`` adds the
event-driven kernel vs the columnar slot loop across offered loads with
per-point digest checks, ``BENCH_events.json``; ``--ofdm`` adds the
subcarrier-batched band solver vs the per-bin reference loop,
``BENCH_ofdm.json``;
``--city`` adds the sharded multi-cell city vs worker count with its
bit-identity check, ``BENCH_city.json``; ``--faults`` adds the fault
layer — a backplane-loss degradation curve plus a fully-faulted city
whose digest must match across worker counts and same-seed reruns,
``BENCH_faults.json``; ``--skip-wlan``/``--skip-signal``/
``--skip-scenarios`` drop the default suites, so any subset runs in one
invocation).  ``sweep --retries``/``--backoff`` retry failing
cells on a capped deterministic schedule and ``--quarantine`` records
exhausted failures in the result instead of aborting the sweep.
``lint`` runs the AST contract linter (:mod:`repro.analysis`) over the
source tree — determinism, RNG-stream, engine-pair and related
invariants — exiting non-zero on any finding not grandfathered in
``LINT_BASELINE.json``; see docs/ARCHITECTURE.md §"Enforced contracts".
See ``EXPERIMENTS.md`` for every scenario, its paper figure, the
expected gain ranges and the benchmark JSON schemas.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.core.dof import downlink_max_packets, uplink_max_packets
from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    Scenario,
    gain_cdf_from_record,
    get_scenario,
    list_scenarios,
    scenario_names,
    scenarios_by_tag,
)
from repro.mac.frames import DataPollMetadata, GroupEntry
from repro.sim.metrics import format_cdf_table
from repro.sim.plotting import ascii_cdf

#: Legacy scatter subcommands kept as aliases of ``run <name>``.
_SCATTER_ALIASES = ("fig12", "fig13a", "fig13b", "fig14")


def _fail(message: str, code: int = 1) -> int:
    """Report a CLI failure on stderr; return the exit code.

    Every error path funnels through here so failures read uniformly
    (``error: <what> — naming the offending knob``) and never land on
    stdout, which ``--json -`` reserves for machine-readable output.
    """
    print(f"error: {message}", file=sys.stderr)
    return code


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_value(raw: str) -> Any:
    """A ``--param``/``--grid`` value: JSON, with a bare-string fallback
    (so ``algorithm=brute`` works without quoting).

    Python-style booleans are honoured: a bare ``False`` is not valid
    JSON and would otherwise fall back to a *truthy* non-empty string,
    silently enabling whatever feature flag it was meant to disable.
    """
    if raw in ("True", "False"):
        return raw == "True"
    try:
        return json.loads(raw)
    except ValueError:
        return raw


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, Any]:
    """Parse repeated ``--param key=value`` overrides (values are JSON)."""
    params: Dict[str, Any] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        params[key] = _parse_value(raw)
    return params


def _runner(args) -> ExperimentRunner:
    return ExperimentRunner(
        testbed_seed=args.testbed_seed, workers=getattr(args, "workers", 1)
    )


def _emit_json(doc: str, target: Optional[str]) -> Optional[int]:
    """Handle a ``--json`` target; shared by every emitting subcommand.

    ``"-"`` prints the document as the only stdout output and returns 0;
    a path archives it (returning 1 on failure); otherwise returns
    ``None`` — the caller proceeds with its human-readable report.
    """
    if target == "-":
        print(doc)
        return 0
    if target:
        try:
            with open(target, "w", encoding="utf-8") as fh:
                fh.write(doc + "\n")
        except OSError as exc:
            return _fail(f"cannot write --json target {target}: {exc}")
    return None


def _emit(scenario: Scenario, result: ExperimentResult, args) -> int:
    """Write the JSON and/or human-readable views of a result.

    ``--json -`` is the machine path: the JSON document is the only
    stdout output.  Otherwise the scenario's formatter renders the
    report (``--quiet`` drops the ASCII plots) and ``--json PATH``
    archives the structured result alongside it.
    """
    json_target = getattr(args, "json", None)
    code = _emit_json(result.to_json(), json_target)
    if code is not None:
        return code
    if scenario.formatter is not None:
        print(scenario.formatter(result, quiet=args.quiet))
    else:
        print(result.to_json())
    if json_target:
        print(f"  (structured result written to {json_target})")
    return 0


def _cmd_list(args) -> int:
    scenarios = scenarios_by_tag(args.tag) if args.tag else list_scenarios()
    if not scenarios:
        print(f"no scenarios tagged {args.tag!r}")
        return 1
    name_width = max(8, max(len(s.name) for s in scenarios))
    print(f"{'name':<{name_width}} {'figure':<9} {'trials':>6}  {'paper':<41} description")
    for s in scenarios:
        print(
            f"{s.name:<{name_width}} {s.figure:<9} {s.default_trials:>6}  "
            f"{s.paper:<41} {s.description}"
        )
    print(f"\n{len(scenarios)} scenarios; run one with: python -m repro run NAME")
    return 0


def _cmd_run(args) -> int:
    try:
        scenario = get_scenario(args.scenario)
    except KeyError:
        return _fail(
            f"unknown scenario {args.scenario!r}; "
            f"available: {', '.join(scenario_names())}",
            code=2,
        )
    try:
        result = _runner(args).run(
            scenario,
            n_trials=args.trials,
            seed=args.seed,
            params=_parse_params(args.param),
        )
    except (KeyError, TypeError, ValueError) as exc:
        # Free-form --param overrides reach the trial unchecked; surface
        # the trial's complaint (which names the knob) instead of a
        # traceback.
        return _fail(f"running {scenario.name!r}: {exc}")
    return _emit(scenario, result, args)


def _parse_grid(pairs: Optional[List[str]]) -> Dict[str, List[Any]]:
    """Parse repeated ``--grid key=v1,v2,...`` axes (values are JSON)."""
    grid: Dict[str, List[Any]] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key or not raw:
            raise SystemExit(f"--grid expects KEY=V1,V2,..., got {pair!r}")
        values = [_parse_value(item) for item in raw.split(",")]
        if key in grid:
            raise SystemExit(f"--grid axis {key!r} given twice")
        grid[key] = values
    return grid


def _cmd_sweep(args) -> int:
    from repro.experiments.sweep import SweepCache, run_sweep

    try:
        scenario = get_scenario(args.scenario)
    except KeyError:
        return _fail(
            f"unknown scenario {args.scenario!r}; "
            f"available: {', '.join(scenario_names())}",
            code=2,
        )
    grid = _parse_grid(args.grid)
    if not grid:
        return _fail("sweep needs at least one --grid KEY=V1,V2,... axis", code=2)
    cache = None
    if not args.no_cache:
        path = args.cache or os.path.join(
            ".sweep-cache", f"{scenario.name}-seed{args.seed}.json"
        )
        try:
            cache = SweepCache(path)
        except (OSError, ValueError) as exc:
            return _fail(f"cannot use sweep cache {path}: {exc}")
    def progress(cell, from_cache):
        if not args.quiet and args.json != "-":
            label = ", ".join(f"{k}={v}" for k, v in cell.params.items())
            source = "cached" if from_cache else "ran"
            print(f"  [{source}] {label}")

    try:
        result = run_sweep(
            scenario,
            grid,
            params=_parse_params(args.param),
            n_trials=args.trials,
            seed=args.seed,
            workers=args.workers,
            cache=cache,
            runner=_runner(args),
            progress=progress,
            retries=args.retries,
            backoff=args.backoff,
            quarantine=args.quarantine,
        )
    except (KeyError, TypeError, ValueError) as exc:
        return _fail(f"sweeping {scenario.name!r}: {exc}")
    code = _emit_json(result.to_json(), args.json)
    if code is not None:
        return code
    metrics = args.metrics.split(",") if args.metrics else None
    fresh = len(result.cells) - result.cached_cells
    print(
        f"sweep {scenario.name}: {len(result.cells)} cells "
        f"({result.cached_cells} cached, {fresh} ran"
        + (f", {len(result.quarantined)} quarantined" if result.quarantined else "")
        + f"), {args.workers} workers, seed {args.seed}"
    )
    print()
    print(result.table(metrics))
    if result.quarantined:
        print(f"\n  {len(result.quarantined)} cell(s) quarantined after retries:")
        for q in result.quarantined:
            label = ", ".join(f"{k}={v}" for k, v in sorted(q.params.items()))
            print(f"    {label}: {q.error} ({q.attempts} attempt(s))")
    if cache is not None:
        print(f"\n  (cell cache: {cache.path})")
    if args.json:
        print(f"  (structured result written to {args.json})")
    return 0


def _cmd_scatter(name: str, args) -> int:
    scenario = get_scenario(name)
    result = _runner(args).run(scenario, n_trials=args.trials, seed=args.seed)
    return _emit(scenario, result, args)


def _cmd_fig15(args) -> int:
    """Legacy fig15 alias: every (direction, algorithm) combination.

    Unlike the other aliases this is a *composite* of six registry runs,
    so ``--json`` emits one document with a ``runs`` list of the
    individual structured results.
    """
    runner = _runner(args)
    directions = [args.direction] if args.direction else ["uplink", "downlink"]
    paper = {
        ("uplink", "brute"): 2.32, ("uplink", "fifo"): 1.9, ("uplink", "best2"): 2.08,
        ("downlink", "brute"): 1.58, ("downlink", "fifo"): 1.23, ("downlink", "best2"): 1.52,
    }
    results = []
    lines: List[str] = []
    for direction in directions:
        lines.append(f"fig15 ({direction}): 17 clients, 3 APs, {args.slots} slots")
        cdfs = []
        for algorithm in ("brute", "fifo", "best2"):
            result = runner.run(
                "fig15",
                n_trials=1,
                seed=args.seed,
                params={
                    "algorithm": algorithm,
                    "direction": direction,
                    "n_slots": args.slots,
                },
            )
            results.append(result)
            cdf = gain_cdf_from_record(
                result.records[0], label=f"{algorithm}/{direction}"
            )
            cdfs.append(cdf)
            lines.append(
                f"  {algorithm:>6s}: mean {cdf.mean_gain:.2f}x "
                f"(paper {paper[(direction, algorithm)]}x), "
                f"worst client {cdf.min_gain:.2f}x"
            )
        lines.append("")
        lines.append(format_cdf_table(cdfs, n_rows=8))
        if not args.quiet:
            lines.append("")
            lines.append(ascii_cdf(cdfs))
        lines.append("")
    doc = json.dumps(
        {"scenario": "fig15", "seed": args.seed, "n_slots": args.slots,
         "runs": [r.to_dict() for r in results]},
        indent=2, sort_keys=True,
    )
    code = _emit_json(doc, args.json)
    if code is not None:
        return code
    print("\n".join(lines))
    if args.json:
        print(f"  (structured results written to {args.json})")
    return 0


def _cmd_fig16(args) -> int:
    scenario = get_scenario("fig16")
    result = _runner(args).run(scenario, n_trials=args.pairs, seed=args.seed)
    return _emit(scenario, result, args)


def _cmd_fig17(args) -> int:
    scenario = get_scenario("fig17")
    result = _runner(args).run(scenario, n_trials=args.trials, seed=args.seed)
    return _emit(scenario, result, args)


def _cmd_bench(args) -> int:
    """Time the WLAN + signal hot paths + scenario trials; write BENCH_*.json."""
    from repro.engine.bench import (
        bench_city,
        bench_events,
        bench_faults,
        bench_ofdm,
        bench_scenarios,
        bench_signal,
        bench_wlan,
        format_city_bench,
        format_events_bench,
        format_faults_bench,
        format_ofdm_bench,
        format_scenario_bench,
        format_signal_bench,
        format_wlan_bench,
        write_bench,
    )

    if args.quick:
        slots, repeats, trials, sessions = min(args.slots, 40), 1, 2, min(args.sessions, 4)
        ofdm_groups = min(args.ofdm_groups, 8)
        city_cells, city_slots = min(args.city_cells, 9), 20
    else:
        slots, repeats, trials, sessions = args.slots, args.repeats, args.trials, args.sessions
        ofdm_groups = args.ofdm_groups
        city_cells, city_slots = args.city_cells, args.city_slots
    docs = {}
    first = True

    def _announce():
        nonlocal first
        if not first:
            print()
        first = False

    if not args.skip_wlan:
        wlan_doc = bench_wlan(
            n_slots=slots,
            n_clients=args.clients,
            repeats=repeats,
            seed=args.seed,
        )
        _announce()
        print(format_wlan_bench(wlan_doc))
        docs["BENCH_wlan.json"] = wlan_doc
        if not wlan_doc["bit_identical"]:
            return _fail(
                "columnar WLAN digest differs from the batched reference "
                "(see BENCH_wlan.json 'engines')"
            )
    if args.events:
        if args.quick:
            events_doc = bench_events(
                n_slots=1500,
                repeats=2,
                seed=args.seed,
                loads=(0.001, 0.01, 0.1),
            )
        else:
            events_doc = bench_events(seed=args.seed)
        _announce()
        print(format_events_bench(events_doc))
        docs["BENCH_events.json"] = events_doc
        if not events_doc["bit_identical"]:
            return _fail(
                "event-kernel digest differs from the columnar slot loop "
                "(see BENCH_events.json 'loads')"
            )
    if not args.skip_signal:
        signal_doc = bench_signal(
            n_sessions=sessions, repeats=repeats, seed=args.seed
        )
        _announce()
        print(format_signal_bench(signal_doc))
        docs["BENCH_signal.json"] = signal_doc
    if args.ofdm:
        # 64 bins always: the acceptance number (>=3x at 64 bins) is only
        # meaningful at the full grid; --quick shrinks the group count.
        ofdm_doc = bench_ofdm(
            n_groups=ofdm_groups, repeats=repeats, seed=args.seed
        )
        _announce()
        print(format_ofdm_bench(ofdm_doc))
        docs["BENCH_ofdm.json"] = ofdm_doc
    if args.city:
        city_doc = bench_city(
            n_cells=city_cells,
            n_slots=city_slots,
            worker_counts=tuple(args.city_workers),
            repeats=1 if args.quick else repeats,
            seed=args.seed,
        )
        _announce()
        print(format_city_bench(city_doc))
        docs["BENCH_city.json"] = city_doc
        if not city_doc["bit_identical"]:
            return _fail(
                "multi-cell stats differ across worker counts "
                f"(--city-workers {' '.join(map(str, args.city_workers))})"
            )
    if args.faults:
        if args.quick:
            faults_doc = bench_faults(
                n_cells=2,
                n_slots=20,
                loss_rates=(0.0, 0.5, 1.0),
                n_wlan_slots=30,
                seed=args.seed,
            )
        else:
            faults_doc = bench_faults(seed=args.seed)
        _announce()
        print(format_faults_bench(faults_doc))
        docs["BENCH_faults.json"] = faults_doc
        if not faults_doc["bit_identical"]:
            return _fail(
                "faulted multi-cell stats differ across worker counts "
                "(see BENCH_faults.json 'workers')"
            )
        if not faults_doc["deterministic"]:
            return _fail(
                "faulted multi-cell rerun at the same seed produced a "
                "different digest (see BENCH_faults.json 'deterministic')"
            )
    if not args.skip_scenarios:
        scen_doc = bench_scenarios(n_trials=trials, seed=args.seed)
        _announce()
        print(format_scenario_bench(scen_doc))
        docs["BENCH_scenarios.json"] = scen_doc
    for name, doc in docs.items():
        path = os.path.join(args.out_dir, name)
        try:
            os.makedirs(args.out_dir, exist_ok=True)
            write_bench(doc, path)
        except OSError as exc:
            return _fail(f"cannot write {path} (--out-dir {args.out_dir}): {exc}")
        print(f"  (written to {path})")
    return 0


def _cmd_digest(args) -> int:
    """Check (or regenerate) the golden-digest corpus."""
    from repro.sim import golden

    path = golden.DEFAULT_BASELINE if args.baseline is None else args.baseline
    computed = golden.compute_digests()
    if args.update:
        try:
            golden.write_baseline(computed, path)
        except OSError as exc:
            return _fail(f"cannot write {path}: {exc}")
        print(f"golden-digest corpus updated: {len(computed)} cases -> {path}")
        return 0
    try:
        baseline = golden.load_baseline(path)
    except FileNotFoundError:
        return _fail(
            f"no corpus at {path}; generate it with `repro digest --update`"
        )
    except (OSError, ValueError) as exc:
        return _fail(f"cannot read corpus {path}: {exc}")
    problems = golden.compare(computed, baseline)
    for problem in problems:
        print(f"  {problem}")
    if problems:
        return _fail(
            f"golden-digest corpus drift: {len(problems)} problem(s); if the "
            "numerical change is intentional, rerun with --update and review "
            "the diff"
        )
    print(f"golden-digest corpus intact: {len(computed)} cases match {path}")
    return 0


def _cmd_lint(args) -> int:
    """Run the contract linter (:mod:`repro.analysis`) over the source tree."""
    import repro as _repro
    from repro.analysis import Baseline, lint_path

    package_dir = os.path.dirname(os.path.abspath(_repro.__file__))
    root = args.root or os.path.dirname(package_dir)
    if not os.path.isdir(root):
        return _fail(f"lint root {root} is not a directory (--root)", code=2)
    baseline_path = args.baseline or os.path.join(
        os.path.dirname(root), "LINT_BASELINE.json"
    )
    baseline = None
    if not args.no_baseline and not args.update_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            return _fail(f"cannot read baseline {baseline_path}: {exc}")
    try:
        report = lint_path(
            root,
            tests_root=args.tests,
            selected=args.rule or None,
            baseline=baseline,
        )
    except ValueError as exc:
        # An unknown --rule id; the message lists the known rules.
        return _fail(str(exc), code=2)
    if args.update_baseline:
        try:
            Baseline.write(report.findings, baseline_path)
        except OSError as exc:
            return _fail(f"cannot write baseline {baseline_path}: {exc}")
        print(
            f"baseline {baseline_path} updated with "
            f"{len(report.findings)} finding(s)"
        )
        return 0
    code = _emit_json(json.dumps(report.to_dict(), indent=2, sort_keys=True),
                      args.json)
    if code is not None:
        return code
    print(report.render())
    if args.json:
        print(f"  (structured report written to {args.json})")
    return 0 if report.ok else 1


def _cmd_lemmas(args) -> int:
    print("Lemmas 5.1/5.2: concurrent packets vs antennas")
    print("  M   uplink (2M)   downlink max(2M-2, floor(3M/2))")
    for m in range(2, 9):
        print(f"  {m}   {uplink_max_packets(m):11d}   {downlink_max_packets(m):8d}")
    return 0


def _cmd_overhead(args) -> int:
    entries = tuple(
        GroupEntry(client_id=i, ap_id=i, encoding=(0j, 0j), decoding=(0j, 0j))
        for i in range(3)
    )
    meta = DataPollMetadata(frame_id=1, n_aps=3, entries=entries)
    print("MAC metadata overhead (paper §7.1(e)):")
    print(f"  DATA+Poll metadata: {meta.nbytes()} bytes for 3 client-AP pairs")
    for payload in (100, 500, 1440, 1500):
        print(f"  @ {payload:4d}-byte payloads: {meta.metadata_overhead(payload) * 100:5.2f}%")
    print("  (paper: 1-2% at 1440 bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Interference Alignment and "
        "Cancellation' (SIGCOMM 2009).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--seed", type=int, default=0, help="experiment seed")
        p.add_argument(
            "--testbed-seed", type=int, default=2009, help="testbed channel seed"
        )
        p.add_argument(
            "--quiet", action="store_true",
            help="suppress ASCII plots (machine-friendly output)",
        )

    def runnable(p):
        common(p)
        p.add_argument(
            "--workers", type=_positive_int, default=1,
            help="parallel trial workers (results are worker-count invariant)",
        )
        p.add_argument(
            "--json", metavar="PATH", default=None,
            help="write the structured result as JSON ('-' for stdout only)",
        )

    pl = sub.add_parser("list", help="list registered scenarios")
    pl.add_argument("--tag", default=None, help="filter by tag (e.g. scatter)")

    pr = sub.add_parser("run", help="run any registered scenario")
    pr.add_argument("scenario", help="scenario name (see 'list')")
    pr.add_argument(
        "--trials", type=int, default=None,
        help="trial count (default: the scenario's)",
    )
    pr.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="override a scenario parameter (repeatable; value is JSON)",
    )
    runnable(pr)

    ps = sub.add_parser(
        "sweep", help="run a scenario over a parameter grid (resumable)"
    )
    ps.add_argument("scenario", help="scenario name (see 'list')")
    ps.add_argument(
        "--grid", action="append", metavar="KEY=V1,V2,...",
        help="one grid axis (repeatable; values are JSON)",
    )
    ps.add_argument(
        "--trials", type=int, default=None,
        help="trials per cell (default: the scenario's)",
    )
    ps.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="fixed parameter override applied to every cell (repeatable)",
    )
    cache_group = ps.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", metavar="PATH", default=None,
        help="cell cache file (default: .sweep-cache/<scenario>-seed<S>.json)",
    )
    cache_group.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell; do not read or write a cache",
    )
    ps.add_argument(
        "--metrics", default=None,
        help="comma-separated metric columns for the table",
    )
    ps.add_argument(
        "--retries", type=int, default=0,
        help="re-run a failing cell up to N times before giving up",
    )
    ps.add_argument(
        "--backoff", type=float, default=0.0,
        help="base retry delay in seconds (doubles per attempt, capped at 2s)",
    )
    ps.add_argument(
        "--quarantine", action="store_true",
        help="record cells that exhaust their retries in the result "
             "instead of aborting the sweep",
    )
    runnable(ps)

    for name in _SCATTER_ALIASES:
        p = sub.add_parser(
            name, help=f"{get_scenario(name).description} scatter experiment"
        )
        p.add_argument("--trials", type=int, default=40)
        runnable(p)

    p15 = sub.add_parser("fig15", help="concurrency-algorithm gain CDFs")
    p15.add_argument("--slots", type=int, default=400)
    p15.add_argument("--direction", choices=["uplink", "downlink"], default=None)
    runnable(p15)

    p16 = sub.add_parser("fig16", help="reciprocity calibration error")
    p16.add_argument("--pairs", type=int, default=17)
    runnable(p16)

    p17 = sub.add_parser("fig17", help="clustered ad-hoc networks")
    p17.add_argument("--trials", type=int, default=8)
    runnable(p17)

    pb = sub.add_parser(
        "bench", help="time the WLAN hot path and scenario trials (BENCH_*.json)"
    )
    pb.add_argument(
        "--quick", action="store_true",
        help="CI smoke variant: few slots/trials, one repeat",
    )
    pb.add_argument("--slots", type=_positive_int, default=200,
                    help="WLAN slots to simulate per engine")
    pb.add_argument("--clients", type=_positive_int, default=12,
                    help="WLAN client count")
    pb.add_argument("--repeats", type=_positive_int, default=3,
                    help="timing repetitions (best is reported)")
    pb.add_argument("--trials", type=_positive_int, default=8,
                    help="trials per timed scenario")
    pb.add_argument("--sessions", type=_positive_int, default=20,
                    help="signal-pipeline sessions to time per engine")
    pb.add_argument("--seed", type=int, default=7, help="benchmark seed")
    pb.add_argument("--out-dir", default=".", help="where BENCH_*.json land")
    pb.add_argument("--skip-wlan", action="store_true",
                    help="skip the WLAN engine timing suite")
    pb.add_argument("--skip-scenarios", action="store_true",
                    help="skip the scenario timing suite")
    pb.add_argument("--skip-signal", action="store_true",
                    help="skip the signal-pipeline timing suite")
    pb.add_argument("--events", action="store_true",
                    help="also time the event-driven kernel against the "
                         "columnar slot loop across offered loads and check "
                         "per-point digest equality (BENCH_events.json)")
    pb.add_argument("--ofdm", action="store_true",
                    help="also time the subcarrier-batched band solver "
                         "against the per-bin reference loop (BENCH_ofdm.json)")
    pb.add_argument("--ofdm-groups", type=_positive_int, default=16,
                    help="candidate groups in the OFDM band-solver suite")
    pb.add_argument("--city", action="store_true",
                    help="also time the sharded multi-cell city vs worker "
                         "count and check bit-identity (BENCH_city.json)")
    pb.add_argument("--city-cells", type=_positive_int, default=64,
                    help="cells in the multi-cell city suite")
    pb.add_argument("--city-slots", type=_positive_int, default=60,
                    help="slots to simulate in the multi-cell city suite")
    pb.add_argument("--city-workers", type=_positive_int, nargs="+",
                    default=[1, 2, 4],
                    help="worker counts to time in the multi-cell city suite")
    pb.add_argument("--faults", action="store_true",
                    help="also run the fault-injection suite: backplane-loss "
                         "degradation curve plus a fully-faulted city with "
                         "worker-count and rerun digest checks "
                         "(BENCH_faults.json)")

    plint = sub.add_parser(
        "lint",
        help="run the AST contract linter over the source tree "
             "(determinism / RNG-stream / engine-pair invariants)",
    )
    plint.add_argument(
        "--root", default=None,
        help="directory to lint (default: the installed repro package's "
             "source root, i.e. src/)",
    )
    plint.add_argument(
        "--tests", default=None,
        help="tests directory for the engine-pair test-mention check "
             "(default: the tests/ sibling of the lint root)",
    )
    plint.add_argument(
        "--rule", action="append", metavar="RULE-ID",
        help="check only this rule (repeatable; stale-waiver detection "
             "is skipped on partial runs)",
    )
    plint.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the structured lint report as JSON ('-' for stdout only)",
    )
    plint.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline of grandfathered findings "
             "(default: LINT_BASELINE.json next to the source root)",
    )
    plint.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, baselined or not",
    )
    plint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to grandfather the current findings, "
             "then exit 0",
    )

    pdig = sub.add_parser(
        "digest",
        help="check the golden-digest corpus (tests/baselines/digests.json) "
             "against freshly recomputed simulation trajectories",
    )
    pdig.add_argument(
        "--update", action="store_true",
        help="regenerate the corpus file from the current code (the "
             "reviewed way to land an intentional numerical change)",
    )
    pdig.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="corpus file to check or update "
             "(default: tests/baselines/digests.json in the repository)",
    )

    pl2 = sub.add_parser("lemmas", help="print the DoF table (Lemmas 5.1/5.2)")
    common(pl2)

    po = sub.add_parser("overhead", help="MAC metadata overhead")
    common(po)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in _SCATTER_ALIASES:
        return _cmd_scatter(args.command, args)
    return {
        "list": _cmd_list,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "fig15": _cmd_fig15,
        "fig16": _cmd_fig16,
        "fig17": _cmd_fig17,
        "bench": _cmd_bench,
        "digest": _cmd_digest,
        "lint": _cmd_lint,
        "lemmas": _cmd_lemmas,
        "overhead": _cmd_overhead,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
