"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro fig12 [--trials N] [--seed S]
    python -m repro fig13a | fig13b | fig14
    python -m repro fig15 [--slots N] [--direction uplink|downlink]
    python -m repro fig16
    python -m repro fig17
    python -m repro lemmas
    python -m repro overhead

Each subcommand prints the experiment's paper-vs-measured summary; see
``EXPERIMENTS.md`` for what "measured" means on the synthetic testbed.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

import numpy as np

from repro.core.dof import downlink_max_packets, uplink_max_packets
from repro.mac.frames import DataPollMetadata, GroupEntry
from repro.sim.clustered import ClusteredConfig, ClusteredNetwork
from repro.sim.experiment import (
    diversity_trial,
    downlink_3x3_trial,
    large_network_experiment,
    reciprocity_experiment,
    run_scatter,
    uplink_2x2_trial,
    uplink_3x3_trial,
)
from repro.sim.metrics import format_cdf_table
from repro.sim.plotting import ascii_cdf, ascii_scatter
from repro.sim.testbed import Testbed, TestbedConfig

_SCATTER = {
    "fig12": (uplink_2x2_trial, 2, 2, "2-client/2-AP uplink", "1.5x"),
    "fig13a": (uplink_3x3_trial, 3, 3, "3-client/3-AP uplink", "1.8x"),
    "fig13b": (downlink_3x3_trial, 3, 3, "3-client/3-AP downlink", "1.4x"),
    "fig14": (diversity_trial, 1, 2, "1-client/2-AP diversity", "1.2x"),
}


def _testbed(seed: int) -> Testbed:
    return Testbed(TestbedConfig(n_nodes=20, seed=seed))


def _cmd_scatter(name: str, args) -> int:
    trial, n_clients, n_aps, description, paper = _SCATTER[name]
    testbed = _testbed(args.testbed_seed)
    scatter = run_scatter(
        trial, testbed, n_trials=args.trials, n_clients=n_clients, n_aps=n_aps,
        seed=args.seed, label=name,
    )
    print(f"{name}: {description}")
    print(f"  trials        : {args.trials}")
    print(f"  mean gain     : {scatter.mean_gain:.2f}x (paper: {paper})")
    dot11 = np.array([p.dot11 for p in scatter.points])
    print(f"  baseline range: {dot11.min():.1f}-{dot11.max():.1f} b/s/Hz")
    print()
    print(ascii_scatter(scatter))
    print("\n  802.11 rate   IAC rate   gain")
    for p in sorted(scatter.points, key=lambda p: p.dot11):
        print(f"  {p.dot11:10.2f} {p.iac:10.2f} {p.gain:6.2f}")
    return 0


def _cmd_fig15(args) -> int:
    testbed = _testbed(args.testbed_seed)
    directions = [args.direction] if args.direction else ["uplink", "downlink"]
    paper = {
        ("uplink", "brute"): 2.32, ("uplink", "fifo"): 1.9, ("uplink", "best2"): 2.08,
        ("downlink", "brute"): 1.58, ("downlink", "fifo"): 1.23, ("downlink", "best2"): 1.52,
    }
    for direction in directions:
        print(f"fig15 ({direction}): 17 clients, 3 APs, {args.slots} slots")
        cdfs = []
        for algorithm in ("brute", "fifo", "best2"):
            cdf = large_network_experiment(
                testbed, algorithm, direction, n_slots=args.slots,
                n_clients=17, seed=args.seed,
            )
            cdfs.append(cdf)
            print(
                f"  {algorithm:>6s}: mean {cdf.mean_gain:.2f}x "
                f"(paper {paper[(direction, algorithm)]}x), "
                f"worst client {cdf.min_gain:.2f}x"
            )
        print()
        print(format_cdf_table(cdfs, n_rows=8))
        print()
        print(ascii_cdf(cdfs))
        print()
    return 0


def _cmd_fig16(args) -> int:
    testbed = _testbed(args.testbed_seed)
    errors = reciprocity_experiment(testbed, n_pairs=17, n_moves=5, seed=args.seed)
    print("fig16: reciprocity fractional error per client-AP pair")
    for i, err in enumerate(errors, 1):
        print(f"  client {i:2d}: {err:.3f} {'#' * int(err * 100)}")
    print(f"  mean {np.mean(errors):.3f} (paper: ~0.05-0.2)")
    return 0


def _cmd_fig17(args) -> int:
    print("fig17: clustered ad-hoc networks (bottleneck inter-cluster links)")
    gains = []
    for seed in range(args.trials):
        net = ClusteredNetwork(ClusteredConfig(nodes_per_cluster=3, seed=seed))
        dot11 = net.flow_throughput("dot11")
        iac = net.flow_throughput("iac")
        gains.append(iac / dot11)
        print(f"  topology {seed}: 802.11 {dot11:.2f}, IAC {iac:.2f}, gain {iac / dot11:.2f}x")
    print(f"  mean gain {np.mean(gains):.2f}x (paper: 'IAC can double the throughput')")
    return 0


def _cmd_lemmas(args) -> int:
    print("Lemmas 5.1/5.2: concurrent packets vs antennas")
    print("  M   uplink (2M)   downlink max(2M-2, floor(3M/2))")
    for m in range(2, 9):
        print(f"  {m}   {uplink_max_packets(m):11d}   {downlink_max_packets(m):8d}")
    return 0


def _cmd_overhead(args) -> int:
    entries = tuple(
        GroupEntry(client_id=i, ap_id=i, encoding=(0j, 0j), decoding=(0j, 0j))
        for i in range(3)
    )
    meta = DataPollMetadata(frame_id=1, n_aps=3, entries=entries)
    print("MAC metadata overhead (paper §7.1(e)):")
    print(f"  DATA+Poll metadata: {meta.nbytes()} bytes for 3 client-AP pairs")
    for payload in (100, 500, 1440, 1500):
        print(f"  @ {payload:4d}-byte payloads: {meta.metadata_overhead(payload) * 100:5.2f}%")
    print("  (paper: 1-2% at 1440 bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Interference Alignment and "
        "Cancellation' (SIGCOMM 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--seed", type=int, default=0, help="experiment seed")
        p.add_argument(
            "--testbed-seed", type=int, default=2009, help="testbed channel seed"
        )

    for name in _SCATTER:
        p = sub.add_parser(name, help=f"{_SCATTER[name][3]} scatter experiment")
        p.add_argument("--trials", type=int, default=40)
        common(p)

    p15 = sub.add_parser("fig15", help="concurrency-algorithm gain CDFs")
    p15.add_argument("--slots", type=int, default=400)
    p15.add_argument("--direction", choices=["uplink", "downlink"], default=None)
    common(p15)

    p16 = sub.add_parser("fig16", help="reciprocity calibration error")
    common(p16)

    p17 = sub.add_parser("fig17", help="clustered ad-hoc networks")
    p17.add_argument("--trials", type=int, default=8)
    common(p17)

    pl = sub.add_parser("lemmas", help="print the DoF table (Lemmas 5.1/5.2)")
    common(pl)

    po = sub.add_parser("overhead", help="MAC metadata overhead")
    common(po)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in _SCATTER:
        return _cmd_scatter(args.command, args)
    return {
        "fig15": _cmd_fig15,
        "fig16": _cmd_fig16,
        "fig17": _cmd_fig17,
        "lemmas": _cmd_lemmas,
        "overhead": _cmd_overhead,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
