"""repro: a reproduction of *Interference Alignment and Cancellation*
(Gollakota, Perli, Katabi -- SIGCOMM 2009).

IAC lets Ethernet-connected MIMO access points decode more concurrent
packets than any one AP has antennas, by combining transmitter-side
interference alignment with wired-backplane interference cancellation.

Package layout
--------------
``repro.core``
    The IAC algorithms: alignment solvers, cancellation, decode schedules,
    the sample-level pipeline and the DoF lemmas.
``repro.phy``
    The PHY substrate: modulation, FEC, packets, the flat-fading MIMO
    channel model, channel estimation and reciprocity calibration.
``repro.mac``
    The PCF-based MAC with the three concurrency algorithms.
``repro.net``
    Nodes and the Ethernet hub backplane.
``repro.baselines``
    802.11-MIMO (eigenmode + best AP) and the TDMA comparison discipline.
``repro.sim``
    The synthetic 20-node testbed, per-figure experiment runners, the
    integrated WLAN simulation and its dynamic workloads
    (``repro.sim.traffic``: arrival processes, churn, mobility).
``repro.engine``
    The batched, memoised group-evaluation engine behind the WLAN
    simulation's hot path (``python -m repro bench`` times it).
``repro.experiments``
    The unified scenario/experiment API: the scenario registry, the
    parallel ``ExperimentRunner``, structured JSON-serialisable results
    and the resumable parameter-sweep engine behind
    ``python -m repro sweep``.

Quickstart
----------
Reproduce any paper figure through the scenario registry — trials run in
parallel (``workers=N``) with bit-identical results for any worker
count, and every result serialises to JSON:

>>> from repro import run_experiment
>>> result = run_experiment("fig13a", n_trials=4, workers=2)
>>> result.mean_gain > 1.0  # paper: ~1.8x for the 3x3 uplink
True
>>> restored = type(result).from_json(result.to_json())
>>> restored == result
True

``python -m repro list`` enumerates the scenarios (see
``EXPERIMENTS.md``); the same algorithms are importable directly for
bespoke setups:

>>> import numpy as np
>>> from repro.core import ChannelSet, solve_uplink_three_packets, decode_rate_level
>>> from repro.phy.channel import rayleigh_channel
>>> rng = np.random.default_rng(0)
>>> channels = ChannelSet({(c, a): rayleigh_channel(2, 2, rng)
...                        for c in (0, 1) for a in (0, 1)})
>>> solution = solve_uplink_three_packets(channels, rng=rng)
>>> report = decode_rate_level(solution, channels, noise_power=1e-3)
>>> report.total_rate > 0
True
"""

__version__ = "1.0.0"

from repro.core import (
    AlignmentSolution,
    ChannelSet,
    DecodeStage,
    PacketSpec,
    SignalConfig,
    decode_rate_level,
    run_session,
    solve_downlink_general,
    solve_downlink_three_packets,
    solve_uplink_four_packets,
    solve_uplink_general,
    solve_uplink_three_packets,
)
from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    Scenario,
    SweepResult,
    TrialRecord,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_experiment,
    run_sweep,
)
from repro.phy.packet import Packet

__all__ = [
    "AlignmentSolution",
    "ChannelSet",
    "DecodeStage",
    "ExperimentResult",
    "ExperimentRunner",
    "Packet",
    "PacketSpec",
    "Scenario",
    "SignalConfig",
    "SweepResult",
    "TrialRecord",
    "__version__",
    "decode_rate_level",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_experiment",
    "run_session",
    "run_sweep",
    "solve_downlink_general",
    "solve_downlink_three_packets",
    "solve_uplink_four_packets",
    "solve_uplink_general",
    "solve_uplink_three_packets",
]
