"""The columnar slot engine: ``WLANSimulation.run`` without the Python loop.

This module is the fast half of the repo's engine-pair recipe (the slow
half is :meth:`repro.sim.wlan.WLANSimulation._run_scalar`, the bit-exact
reference): per-client state lives in ndarrays, the per-slot work that
used to be many small Python/numpy calls is batched into a handful of
vectorised ones, and *nothing* about the simulated trajectory changes —
same RNG stream consumption, same event log, same
:meth:`~repro.sim.wlan.WLANStats.digest` for every (seed, config, fault
plan).  Concretely:

* **Fading** (:class:`ColumnarFadingNetwork`): all Gauss-Markov links
  stacked into one ``(L, M, M)`` ndarray; a slot step is a single
  ``standard_normal((L, 2, M, M))`` draw (the C-order fill reproduces
  the per-link real-block-then-imaginary-block order exactly) plus one
  broadcast AR(1) update, instead of ``L`` tiny per-link draws.
* **Drift tracking** (:func:`_track_fast`): every (client, AP) smoothing
  + relative-Frobenius drift decision of an ack slot computed in one
  batched pass via :func:`repro.phy.channel.estimation.frobenius_norms`
  (whose pinned sequential accumulation makes the stacked norms equal
  the scalar ones to the last ulp); only drifted pairs walk the scalar
  report path (``LeaderAP.handle_update``), so bookkeeping stays exact.
* **Evaluation** (:class:`repro.engine.ColumnarGroupEvaluator`): believed
  channels mirrored columnar-side and refreshed *incrementally* — a row
  is re-gathered only when that client's channel-map version moved.
* **Transmission** (:func:`_transmit_fast`): the true channels of the
  transmitting group gathered straight from the fading stack (one fancy
  index) instead of a :class:`~repro.core.plans.ChannelSet` round-trip.
* **Accounting** (:class:`_ColumnarState`): per-client cumulative rates,
  latency sums/counts and queue backlogs as ndarrays; the arrays are
  folded back into the simulation's dicts when the run finalises.
* **Cross-trial stacking** (:func:`run_stacked`): many independent
  simulations advanced in lock-step, their not-yet-cached candidate
  groups concatenated into **one** ``np.linalg`` solve per slot
  (batch-slice invariance of
  :func:`~repro.engine.batched.solve_downlink_three_batch` keeps each
  trial bit-identical to running alone).

What stays scalar, deliberately: the FIFO queue (its packet order *is*
the trajectory), the selectors (their RNG draws are the trajectory),
stats counters that the scalar loop accumulates sequentially (pairwise
``np.sum`` would change rounding), and every fault-injection path
(faulted runs fall back to the reference helpers per slot — correctness
over speed on the rare path).

Equivalence contract: ``run_columnar(sim, n)`` must equal
``run_columnar_reference(sim, n)`` (a fresh sim either way) field for
field — pinned by ``tests/sim/test_columnar_equivalence.py`` and the
``engine-pair`` lint rule; the benchmark gate additionally pins
``WLANConfig(engine="columnar")`` against ``engine="batched"`` digests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.batched import solve_downlink_three_batch
from repro.engine.evaluator import ColumnarGroupEvaluator
from repro.mac.association import ChannelUpdate
from repro.mac.queueing import QueuedPacket
from repro.phy.channel.estimation import ChannelEstimate, frobenius_norms
from repro.phy.channel.timevarying import FadingNetwork

__all__ = [
    "ColumnarFadingNetwork",
    "run_columnar",
    "run_columnar_reference",
    "run_stacked",
    "run_stacked_reference",
]


class ColumnarFadingNetwork(FadingNetwork):
    """Every Gauss-Markov link of a deployment in one stacked ndarray.

    Construction defers entirely to :class:`FadingNetwork` — the same
    per-link draws from the same shared generator in the same order —
    then restacks the link matrices into one contiguous ``(L, M, M)``
    array and rebinds each link's ``_h`` to its slice view, so every
    scalar accessor (``channel()``, trackers and leader records holding
    matrix references) keeps working unchanged.

    :meth:`step` replaces ``L`` per-link ``standard_normal((M, M))``
    pairs with **one** ``standard_normal((L, 2, M, M))`` call.  The
    generator fills the output buffer in C order — link 0's real block,
    link 0's imaginary block, link 1's real block, … — which is exactly
    the order :func:`~repro.phy.channel.model.rayleigh_channel` consumes
    per link, so the stream (and hence every subsequent draw anywhere in
    the simulation) is bit-identical to the scalar network's.  The AR(1)
    update allocates a **new** stack each step rather than updating in
    place: the scalar link rebinds ``_h`` to a fresh array per step,
    leaving earlier matrices frozen for whoever holds them (trackers,
    the leader's table) — an in-place update would corrupt those views.
    """

    def __init__(self, pairs, n_antennas: int, rho: float = 0.995,
                 gains=None, rng=None):
        super().__init__(pairs, n_antennas=n_antennas, rho=rho,
                         gains=gains, rng=rng)
        self._keys = list(self._links.keys())
        #: Link key ``(min(a, b), max(a, b))`` -> row in :attr:`stack`.
        self.rows: Dict[Tuple[int, int], int] = {
            key: i for i, key in enumerate(self._keys)
        }
        links = [self._links[key] for key in self._keys]
        self._m = int(n_antennas)
        # All links were built from one shared generator; keep it for the
        # single stacked draw per step.
        self._shared_rng = links[0].rng if links else None
        self._gain_scale = np.array(
            [np.sqrt(link.gain / 2.0) for link in links]
        )[:, None, None]
        self._refresh_rho()
        if links:
            self.stack = np.stack([link._h for link in links])
        else:  # degenerate but keeps step() total
            self.stack = np.empty((0, self._m, self._m), dtype=complex)
        self._rebind()

    def _refresh_rho(self) -> None:
        """Rebuild the per-link rho/innovation-scale vectors.

        Each entry is computed from that link's Python-float ``rho`` with
        the same expression ``GaussMarkovFading.step`` uses
        (``np.sqrt(1.0 - rho**2)``), so mobility overrides keep the
        stacked update bit-identical to the per-link one.
        """
        links = [self._links[key] for key in self._keys]
        self._rho_vec = np.array([link.rho for link in links])[:, None, None]
        self._scale_vec = np.array(
            [np.sqrt(1.0 - link.rho**2) for link in links]
        )[:, None, None]

    def _rebind(self) -> None:
        for i, key in enumerate(self._keys):
            self._links[key]._h = self.stack[i]
        self._stale = False

    def channel(self, tx: int, rx: int) -> np.ndarray:
        # Rebinding the L per-link views is deferred until someone
        # actually reads a link (the columnar fast paths gather from
        # :attr:`stack` directly and never do).  Every scalar read goes
        # through here or :meth:`channel_bins`, so a stale ``_h`` is
        # never observable.
        if self._stale:
            self._rebind()
        return super().channel(tx, rx)

    def channel_bins(self, tx: int, rx: int) -> np.ndarray:
        if self._stale:
            self._rebind()
        return super().channel_bins(tx, rx)

    def set_node_rho(self, node: int, rho: float) -> None:
        super().set_node_rho(node, rho)
        self._refresh_rho()

    def step(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("cannot step backwards")
        if n != 1:
            # The scalar network interleaves differently for n > 1 (link
            # 0 draws all n innovations before link 1 draws any), so the
            # multi-step path defers to the per-link loop and restacks.
            for i, key in enumerate(self._keys):
                link = self._links[key]
                link._h = self.stack[i].copy()
                link.step(n)
            if self._keys:
                self.stack = np.stack(
                    [self._links[key]._h for key in self._keys]
                )
            self._rebind()
            return
        if not self._keys:
            return
        m = self._m
        draw = self._shared_rng.standard_normal((len(self._keys), 2, m, m))
        w = self._gain_scale * (draw[:, 0] + 1j * draw[:, 1])
        self.stack = self._rho_vec * self.stack + self._scale_vec * w
        self._stale = True

    def step_block(
        self,
        n: int,
        keep: Optional[List[int]] = None,
        keep_rows: Optional[np.ndarray] = None,
        snap_out: Optional[np.ndarray] = None,
    ) -> List[np.ndarray]:
        """Advance ``n`` slots with one blocked draw; return snapshots.

        Bit-identical to ``n`` successive :meth:`step` calls: the
        ``(n, L, 2, M, M)`` draw fills in C order (slot-major), so it
        consumes the shared stream exactly as ``n`` per-slot draws
        would, and the scaled innovations are precomputed with the same
        elementwise expressions ``step`` uses — only the inherently
        sequential AR(1) fold (two ndarray ops per slot; floating-point
        non-associativity forbids compressing it) stays in the loop.
        ``keep`` is a sorted list of offsets in ``[0, n)`` whose
        post-step stacks the caller wants back (the event kernel passes
        its ack-slot offsets); ``None`` keeps all ``n``.  When ``keep``
        is given, the fold runs through two ping-pong scratch buffers
        (``np.multiply``/``np.add`` with ``out=`` — the same ufuncs,
        the same rounding) and only the kept offsets pay a copy, which
        is what makes long idle spans cheap.  ``keep_rows`` (only with
        ``keep``) narrows each snapshot to those stack rows — the fancy
        index produces the fresh copy — so a sounding caller pays for
        the (client, AP) rows it tracks instead of the whole stack;
        ``snap_out`` (only with ``keep_rows``) is a preallocated
        ``(len(keep), len(keep_rows), M, M)`` buffer the snapshots are
        taken straight into (``np.take`` with ``out=``), skipping the
        per-snapshot allocation — the return value is then empty and
        the caller reads the buffer.  Callers must hold ``rho`` fixed
        across the block — the kernel ends spans at mobility events.
        """
        if n < 0:
            raise ValueError("cannot step backwards")
        if not self._keys:
            if keep is None:
                return [self.stack] * n
            base = self.stack if keep_rows is None else self.stack[keep_rows]
            if snap_out is not None:
                for idx in range(len(keep)):
                    snap_out[idx] = base
                return []
            return [base] * len(keep)
        m = self._m
        L = len(self._keys)
        rho = self._rho_vec
        stack = self.stack
        out = []
        if keep is None:
            draws = self._shared_rng.standard_normal((n, L, 2, m, m))
            w = self._gain_scale * (draws[:, :, 0] + 1j * draws[:, :, 1])
            sw = self._scale_vec * w
            for i in range(n):
                stack = rho * stack + sw[i]
                out.append(stack)
        else:
            mul, add = np.multiply, np.add
            take = np.take
            bufs = (np.empty_like(stack), np.empty_like(stack))
            keep_iter = iter(keep)
            want = next(keep_iter, None)
            kept = 0
            # Draw and scale in bounded chunks so the innovation block
            # stays cache-resident through the fold.  Sequential
            # chunked draws consume the shared stream exactly as one
            # blocked draw does (the same C-order fill lemma), so this
            # is invisible to the bitstream.
            chunk = 256
            for c0 in range(0, n, chunk):
                cn = min(chunk, n - c0)
                draws = self._shared_rng.standard_normal((cn, L, 2, m, m))
                w = self._gain_scale * (
                    draws[:, :, 0] + 1j * draws[:, :, 1]
                )
                sw = self._scale_vec * w
                for i in range(cn):
                    nxt = bufs[(c0 + i) & 1]
                    mul(rho, stack, out=nxt)
                    add(nxt, sw[i], out=nxt)
                    stack = nxt
                    if want == c0 + i:
                        if snap_out is not None:
                            take(stack, keep_rows, axis=0,
                                 out=snap_out[kept])
                        elif keep_rows is None:
                            out.append(stack.copy())
                        else:
                            out.append(stack[keep_rows])
                        kept += 1
                        want = next(keep_iter, None)
            # Detach the live stack from the scratch buffers.
            stack = stack.copy() if n else stack
        if n:
            self.stack = stack
            self._stale = True
        return out


# --------------------------------------------------------------------- #
# Per-run columnar state
# --------------------------------------------------------------------- #


class _ColumnarState:
    """ndarray mirrors of the simulation's per-client dicts for one run.

    Built fresh at every :func:`run_columnar` entry from the
    simulation's authoritative dicts (so interleaving scalar and
    columnar ``run()`` calls on one deployment stays correct) and folded
    back by :func:`_finalize`.
    """

    __slots__ = (
        "client_ids", "row", "cum_rate", "lat_sum", "lat_n", "backlog",
        "fast_track", "fast_transmit", "alpha", "drift_threshold",
        "nbytes_flat", "row_ca", "row_ev", "T", "T_valid",
    )

    def __init__(self, sim):
        self.client_ids = list(sim.client_ids)
        self.row = {c: i for i, c in enumerate(self.client_ids)}
        n = len(self.client_ids)
        self.cum_rate = np.zeros(n)
        self.lat_sum = np.zeros(n)
        self.lat_n = np.zeros(n, dtype=np.int64)
        for c, v in sim._cumulative_rate.items():
            self.cum_rate[self.row[c]] = v
        for c, v in sim._latency_sum.items():
            self.lat_sum[self.row[c]] = v
        for c, v in sim._latency_n.items():
            self.lat_n[self.row[c]] = v
        self.backlog = np.zeros(n, dtype=np.int64)
        for packet in sim.queue._queue:
            self.backlog[self.row[packet.client_id]] += 1

        columnar_fading = isinstance(sim.fading, ColumnarFadingNetwork)
        fault_free = sim.injector is None
        flat = not sim._banded
        #: Vectorised ack-slot tracking: needs the stacked fading (the
        #: sounding source), a flat channel and no fault injection (ack
        #: loss, corruption, quarantine refresh and the lossy hub all
        #: stay on the scalar reference path).
        self.fast_track = columnar_fading and fault_free and flat
        #: Fancy-indexed true channels at transmit: same preconditions
        #: (a leader crash under faults would re-seat the transmit APs).
        self.fast_transmit = self.fast_track
        if self.fast_track:
            tracker = sim.subordinates[sim.ap_ids[0]]._tracker
            self.alpha = tracker.alpha
            self.drift_threshold = tracker.drift_threshold
            m = sim.config.n_antennas
            self.nbytes_flat = 4 + 8 * m * m
            rows = sim.fading.rows
            self.row_ca = np.array(
                [[rows[(a, c)] for a in sim.ap_ids] for c in self.client_ids]
            )
            self.row_ev = np.array(
                [[rows[(a, c)] for a in sim.evaluator.aps]
                 for c in self.client_ids]
            )
            a = len(sim.ap_ids)
            self.T = np.zeros((n, a, m, m), dtype=complex)
            self.T_valid = np.zeros((n, a), dtype=bool)
        else:
            self.alpha = self.drift_threshold = 0.0
            self.nbytes_flat = 0
            self.row_ca = self.row_ev = None
            self.T = self.T_valid = None


class _Pending:
    """A slot paused between selector ``propose`` and ``resolve``."""

    __slots__ = ("slot", "proposal")

    def __init__(self, slot, proposal):
        self.slot = slot
        self.proposal = proposal


# --------------------------------------------------------------------- #
# Vectorised slot pieces
# --------------------------------------------------------------------- #


def _track_fast(sim, state: _ColumnarState, slot: int) -> None:
    """One ack slot of drift tracking, batched over every (client, AP).

    Bit-equivalent to :meth:`WLANSimulation._track_channels` on the
    fault-free flat path: gather current estimates and fresh soundings,
    one broadcast exponential smoothing, one batched relative-Frobenius
    drift decision (:func:`frobenius_norms` pins the accumulation
    order), then a short Python pass that stores the smoothed estimates
    back into the trackers and walks only the *drifted* pairs through
    the exact scalar report path (``LeaderAP.handle_update`` — version
    bump, update-byte and quarantine bookkeeping included).
    """
    if slot % sim.config.ack_period:
        return
    active = sorted(sim._active)
    if not active:
        sim.stats.update_bytes = (
            sim._update_bytes_base + sim.leader.update_bytes
        )
        return
    rows = [state.row[c] for c in active]
    ap_ids = sim.ap_ids
    # Resync mirror rows invalidated by churn (fresh association state).
    for c, r in zip(active, rows):
        if not state.T_valid[r].all():
            for j, a in enumerate(ap_ids):
                state.T[r, j] = sim.subordinates[a].channel_to(c)
            state.T_valid[r] = True
    m = state.T.shape[-1]
    cur = state.T[rows].reshape(-1, m, m)
    h_new = sim.fading.stack[state.row_ca[rows].ravel()]
    smoothed = state.alpha * h_new + (1.0 - state.alpha) * cur
    num = frobenius_norms(smoothed - cur, batch_ndim=1)
    den = frobenius_norms(cur, batch_ndim=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(den == 0, np.inf, num / den)
    drifted = (ratio > state.drift_threshold).tolist()
    state.T[rows] = smoothed.reshape(len(rows), len(ap_ids), m, m)
    estimate_maps = [sim.subordinates[a]._tracker._estimates for a in ap_ids]
    handle_update = sim.leader.handle_update
    n_reports = 0
    p = 0
    for c in active:
        for j, a in enumerate(ap_ids):
            h = smoothed[p]
            estimate_maps[j][c] = ChannelEstimate(h=h)
            if drifted[p]:
                handle_update(ChannelUpdate(ap_id=a, client_id=c, h=h))
                n_reports += 1
            p += 1
    sim.stats.drift_reports += n_reports
    sim.stats.update_bytes = sim._update_bytes_base + sim.leader.update_bytes


def _apply_arrivals_fast(sim, state: _ColumnarState, slot: int) -> None:
    """Enqueue this slot's arrivals from the vectorised count array.

    Consumes the traffic RNG identically to
    :meth:`WLANSimulation._apply_arrivals` (the models' ``arrival_counts``
    contract) and enqueues in the same sorted-client order, so the queue
    — and therefore the whole trajectory — matches packet for packet.
    """
    active = sorted(sim._active)
    counts = sim.traffic.arrival_counts(slot, active, sim._traffic_rng)
    total = int(counts.sum())
    if not total:
        return
    push = sim.queue.push
    for c, k in zip(active, counts):
        if not k:
            continue
        row = state.row[c]
        for _ in range(int(k)):
            sim._seq += 1
            push(QueuedPacket(client_id=int(c), seq=sim._seq,
                              enqueued_slot=slot))
        state.backlog[row] += int(k)
    sim.stats.offered_packets += total


def _resync_after_churn(sim, state: _ColumnarState, events) -> None:
    """Refresh the mirrors after scalar churn handling touched the queue."""
    state.backlog[:] = 0
    for packet in sim.queue._queue:
        state.backlog[state.row[packet.client_id]] += 1
    if state.T_valid is not None:
        for event in events:
            state.T_valid[state.row[event.client]] = False


def _transmit_fast(sim, state: _ColumnarState, group) -> Dict[int, float]:
    """Aligned-group transmission with fancy-indexed true channels.

    Replicates :meth:`WLANSimulation._transmit_group` exactly — the
    interference-floor scaling, the staleness accounting and the rate
    dict are the same expressions — but gathers the group's true
    channels straight from the fading stack and decodes through
    :meth:`~repro.engine.ColumnarGroupEvaluator.transmit_sinrs_fast`,
    skipping the ChannelSet/dict construction of the scalar path.
    """
    group = tuple(group)
    if len(group) < 3:
        return {c: 0.0 for c in group}
    evaluator = sim.evaluator
    if not (
        state.fast_transmit
        and isinstance(evaluator, ColumnarGroupEvaluator)
        and evaluator.flat_capable(group[0])
    ):
        return sim._transmit_group(group)
    cols = [state.row[c] for c in group]
    h_true = sim.fading.stack[state.row_ev[cols].T]
    actual, ideal = evaluator.transmit_sinrs_fast(group, h_true)
    if sim._interference:
        scale = np.array(
            [1.0 + sim._interference.get(int(c), 0.0) for c in group]
        )
        actual = actual / scale
        ideal = ideal / scale
    sim.stats.staleness_loss_db += max(
        0.0, 10 * np.log10((1 + ideal.min()) / (1 + actual.min()))
    )
    # One vectorised log2 over the group (elementwise-identical to the
    # scalar path's per-client ``np.log2``).
    lg = np.log2(1.0 + actual).tolist()
    return dict(zip(group, lg))


# --------------------------------------------------------------------- #
# The slot, split at the selector's propose/resolve seam
# --------------------------------------------------------------------- #


def _begin_slot(sim, state: _ColumnarState, track: bool,
                saturated: bool) -> Optional[_Pending]:
    """Everything up to (and including) the selector's ``propose``.

    Returns a :class:`_Pending` when the slot needs group scoring — the
    seam where :func:`run_stacked` batches many simulations' solves —
    and ``None`` when the slot completed here (idle, point-to-point or
    backplane-degraded service).
    """
    slot = sim._slot
    sim._slot += 1
    if sim.hub is not None:
        sim.hub.tick()
    if (
        sim.injector is not None
        and sim.injector.crash_due(slot)
        and len(sim.ap_ids) > 1
    ):
        sim._crash_leader(slot)
    sim.fading.step()
    if sim.churn is not None:
        n_events = len(sim.stats.events)
        sim._apply_churn(slot)
        if len(sim.stats.events) > n_events:
            _resync_after_churn(sim, state, sim.stats.events[n_events:])
    if sim.mobility is not None:
        sim._apply_mobility(slot)
    if track:
        if state.fast_track:
            _track_fast(sim, state, slot)
        else:
            sim._track_channels(slot)
    if not saturated:
        _apply_arrivals_fast(sim, state, slot)
    depth = len(sim.queue)
    sim.stats.queue_depth_total += depth
    if depth > sim.stats.max_queue_depth:
        sim.stats.max_queue_depth = depth
    if not depth:
        sim.stats.idle_slots += 1
        return None
    p2p_only = sim.config.service == "p2p" or sim._degraded
    if not p2p_only and int(np.count_nonzero(state.backlog)) >= 3:
        if sim.injector is not None and not sim._backplane_data_ready():
            sim.stats.fallback_slots += 1
            served = (sim.queue.head().client_id,)
            rates = sim._serve_head_alone(served[0])
            _serve(sim, state, served, rates, slot, saturated)
            return None
        return _Pending(slot, sim.selector.propose(sim.queue))
    if sim._degraded and sim.config.service == "iac":
        sim.stats.fallback_slots += 1
    served = (sim.queue.head().client_id,)
    rates = sim._serve_head_alone(served[0])
    _serve(sim, state, served, rates, slot, saturated)
    return None


def _finish_slot(sim, state: _ColumnarState, pending: _Pending,
                 saturated: bool) -> None:
    """Resolve the proposed groups, transmit and account the slot."""
    served = tuple(sim.selector.resolve(pending.proposal, sim.evaluator))
    if any(sim.leader.is_quarantined(c) for c in served):
        sim.stats.fallback_slots += 1
        served = (sim.queue.head().client_id,)
        rates = sim._serve_head_alone(served[0])
    else:
        rates = _transmit_fast(sim, state, served)
    _serve(sim, state, served, rates, pending.slot, saturated)


def _serve(sim, state: _ColumnarState, served, rates, slot: int,
           saturated: bool) -> None:
    """Pop, account and (under saturation) replenish each served client."""
    for c in served:
        packet = sim.queue.pop_client(c)
        i = state.row[c]
        state.cum_rate[i] += rates.get(c, 0.0)
        sim.stats.delivered_packets += 1
        if packet is not None:
            state.backlog[i] -= 1
            waited = float(slot - packet.enqueued_slot)
            sim.stats.latency_slots_total += waited
            state.lat_sum[i] += waited
            state.lat_n[i] += 1
        if saturated:
            sim._seq += 1
            sim.queue.push(
                QueuedPacket(client_id=int(c), seq=sim._seq,
                             enqueued_slot=slot + 1)
            )
            state.backlog[i] += 1


def _finalize(sim, state: _ColumnarState, n_slots: int):
    """Fold the ndarray mirrors back into the simulation's dicts."""
    sim.stats.slots += n_slots
    if sim.hub is not None:
        sim.stats.frames_lost_backplane = sim.hub.frames_lost
        sim.stats.frames_delayed_backplane = sim.hub.frames_delayed
    row = state.row
    sim._cumulative_rate = {
        c: float(state.cum_rate[row[c]]) for c in state.client_ids
    }
    sim._latency_sum = {
        c: float(state.lat_sum[row[c]])
        for c in state.client_ids
        if state.lat_n[row[c]] > 0
    }
    sim._latency_n = {
        c: int(state.lat_n[row[c]])
        for c in state.client_ids
        if state.lat_n[row[c]] > 0
    }
    sim.stats.per_client_rate = {
        c: total / sim.stats.slots
        for c, total in sim._cumulative_rate.items()
    }
    sim.stats.per_client_latency = {
        c: sim._latency_sum[c] / sim._latency_n[c]
        for c in sorted(sim._latency_n)
    }
    return sim.stats


# --------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------- #


def run_columnar(sim, n_slots: int, track: bool = True):
    """Columnar execution of ``sim.run(n_slots, track)``.

    Same trajectory, same RNG stream consumption, bit-identical
    :class:`~repro.sim.wlan.WLANStats`; ``WLANSimulation.run`` dispatches
    here under ``engine="columnar"``.
    """
    state = _ColumnarState(sim)
    saturated = sim.traffic.saturated
    for _ in range(n_slots):  # repro-lint: ignore[no-python-slot-loop]
        pending = _begin_slot(sim, state, track, saturated)
        if pending is not None:
            _finish_slot(sim, state, pending, saturated)
    return _finalize(sim, state, n_slots)


def run_columnar_reference(sim, n_slots: int, track: bool = True):
    """The scalar reference loop (the engine-pair bit-identity oracle)."""
    return sim._run_scalar(n_slots, track)


def _shared_solve(sims, pendings) -> None:
    """One stacked alignment solve across many simulations' proposals.

    Gathers every participating simulation's not-yet-cached candidate
    groups, concatenates their believed-channel stacks and runs a single
    :func:`solve_downlink_three_batch`, scattering the entries back into
    each evaluator's cache.  Batch-slice invariance of the solver makes
    each simulation's entries bit-identical to solving alone, so the
    subsequent per-simulation ``resolve`` is pure cache hits.  Only
    flat-capable :class:`ColumnarGroupEvaluator` instances with a common
    noise power participate; everyone else simply solves at resolve
    time, exactly as when running unstacked.
    """
    chunks: List[Tuple[ColumnarGroupEvaluator, list, list]] = []
    blocks: List[np.ndarray] = []
    for sim, pending in zip(sims, pendings):
        if pending is None or not pending.proposal.groups:
            continue
        evaluator = sim.evaluator
        if not isinstance(evaluator, ColumnarGroupEvaluator):
            continue
        groups = evaluator.uncached(pending.proposal.groups)
        if not groups or not evaluator.flat_capable(groups[0][0]):
            continue
        h, versions = evaluator.stack_believed(groups)
        chunks.append((evaluator, groups, versions))
        blocks.append(h)
    if not blocks:
        return
    noise_powers = {chunk[0].noise_power for chunk in chunks}
    if len(noise_powers) != 1:
        return
    h_all = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
    encodings, rates, sinrs, w_bel = solve_downlink_three_batch(
        h_all, noise_powers.pop(), return_filters=True
    )
    offset = 0
    for (evaluator, groups, versions), h in zip(chunks, blocks):
        g = h.shape[0]
        evaluator.insert_solved(
            groups, versions,
            encodings[offset:offset + g],
            rates[offset:offset + g],
            sinrs[offset:offset + g],
            w_bel[offset:offset + g],
        )
        offset += g


def run_stacked(sims: Sequence, n_slots: int, track: bool = True):
    """Advance many independent simulations in lock-step, sharing solves.

    The cross-trial stacking of a sweep: each slot runs every
    simulation's :func:`_begin_slot` (through the selector's
    draw-complete ``propose``), pools all their uncached candidate
    groups into one stacked solve, then resolves and finishes each slot.
    Per-simulation state is fully independent (separate RNG streams,
    queues, evaluator caches), so interleaving cannot couple trials: the
    returned stats list is bit-identical to ``[sim.run(n_slots) for sim
    in sims]`` at any stacking width — pinned by the equivalence suite
    via :func:`run_stacked_reference`.
    """
    sims = list(sims)
    states = [_ColumnarState(sim) for sim in sims]
    saturation = [sim.traffic.saturated for sim in sims]
    for _ in range(n_slots):  # repro-lint: ignore[no-python-slot-loop]
        pendings = [
            _begin_slot(sim, state, track, saturated)
            for sim, state, saturated in zip(sims, states, saturation)
        ]
        _shared_solve(sims, pendings)
        for sim, state, saturated, pending in zip(
            sims, states, saturation, pendings
        ):
            if pending is not None:
                _finish_slot(sim, state, pending, saturated)
    return [
        _finalize(sim, state, n_slots)
        for sim, state in zip(sims, states)
    ]


def run_stacked_reference(sims: Sequence, n_slots: int, track: bool = True):
    """Per-simulation scalar runs (the stacked driver's oracle)."""
    return [sim._run_scalar(n_slots, track) for sim in sims]
