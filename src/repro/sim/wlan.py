"""End-to-end WLAN simulation: every layer of IAC working together.

This is the integration piece the individual experiments factor out: a
simulated deployment that runs, slot by slot,

1. **association** -- clients join, all APs sound their channels, the
   leader registers them (:mod:`repro.mac.association`);
2. **channel evolution** -- Gauss-Markov fading behind the
   :class:`~repro.phy.channel.provider.ChannelProvider` contract: flat
   (:mod:`repro.phy.channel.timevarying`) or frequency-selective
   wideband (:class:`~repro.phy.channel.provider.WidebandFadingNetwork`,
   per-subcarrier estimates and alignment -- the paper's §6c conjecture
   as an operating mode); subordinate APs track their estimates from
   client acks and report significant drift to the leader;
3. **workload dynamics** -- an arrival process feeds the leader's FIFO
   (:mod:`repro.sim.traffic`), clients churn (leave, re-associate) and
   move (per-client Doppler via ``FadingNetwork.set_node_rho``); the
   default ``saturated`` model reproduces the paper's infinite-demand
   downlink bit-for-bit;
4. **scheduling** -- the leader's concurrency algorithm forms downlink
   transmission groups from the backlog (:mod:`repro.mac.concurrency`);
   an empty backlog idles the slot, a backlog with fewer than three
   distinct clients serves the head client point-to-point;
5. **transmission** -- each group is solved and decoded at rate level with
   the leader's (possibly stale) channel estimates against the *true*
   current channels, so stale estimates genuinely cost SINR; per-client
   cross-cell interference floors (injected by the multi-cell layer via
   :meth:`WLANSimulation.set_interference_floor`) raise the noise floor
   of boundary clients;
6. **accounting** -- per-client goodput and queueing latency, queue
   depth, idle slots, Jain fairness, churn/mobility event log, control
   bytes, estimate staleness.

Used by ``benchmarks/bench_wlan_integration.py`` to show the tracked
system's throughput approaches the genie-channel bound, and that switching
tracking off hurts under mobility; the dynamic scenarios
(``fig15_dynamic``, ``load_latency``, ``churn_throughput``) and the
``repro sweep`` engine drive it across workload grids.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.baselines.dot11_mimo import best_ap_link
from repro.core.plans import BandedChannelSet, ChannelSet
from repro.engine import make_evaluator
from repro.faults import FaultInjector, FaultPlan
from repro.mac.association import (
    ChannelUpdate,
    LeaderAP,
    SubordinateAP,
    elect_leader,
)
from repro.mac.concurrency import make_selector
from repro.mac.queueing import QueuedPacket, TransmissionQueue
from repro.net.ethernet import EthernetHub, HubFrame
from repro.phy.channel.provider import ChannelProvider, WidebandFadingNetwork
from repro.phy.channel.timevarying import FadingNetwork
from repro.sim.traffic import ClientChurn, MobilityModel, TrafficModel, make_traffic
from repro.utils.db import db_to_linear
from repro.utils.rng import default_rng

#: Every value :attr:`WLANConfig.engine` accepts.  Doc-sync tests use
#: this to require each engine be documented in EXPERIMENTS.md.
WLAN_ENGINES: Tuple[str, ...] = ("scalar", "batched", "columnar", "event")


@dataclass
class WLANConfig:
    """Deployment parameters."""

    n_aps: int = 3
    n_clients: int = 8
    n_antennas: int = 2
    #: Per-slot channel correlation (1.0 = static environment).
    rho: float = 0.998
    #: Mean pair SNR in dB (noise power is 1).
    mean_gain_db: float = 15.0
    #: Subordinate APs report drift beyond this relative change.
    drift_threshold: float = 0.15
    #: Concurrency algorithm for group formation.
    algorithm: str = "best2"
    #: Clients re-sound the channel (ack overheard) every ``ack_period`` slots.
    ack_period: int = 4
    #: Group-evaluation engine: ``"batched"`` (memoised ndarray batches,
    #: :mod:`repro.engine`), ``"scalar"`` (the reference per-group path),
    #: ``"columnar"`` (the batched evaluator plus the columnar slot
    #: loop of :mod:`repro.sim.columnar` — stacked fading steps,
    #: vectorised drift tracking and ndarray per-client state; bit-exact
    #: to the other two, ~10x faster than ``"scalar"``) or ``"event"``
    #: (the event-driven kernel of :mod:`repro.sim.events` — the
    #: columnar slot path plus idle-span skipping between scheduled
    #: events, bit-exact again; the fast engine for non-saturated,
    #: idle-heavy workloads).
    engine: str = "batched"
    #: Arrival process (:func:`repro.sim.traffic.make_traffic` name):
    #: ``"saturated"`` (the paper's infinite-demand regime, default),
    #: ``"poisson"``, ``"bursty"`` or ``"heterogeneous"``, parameterised
    #: by ``traffic_params``.
    traffic: str = "saturated"
    traffic_params: Optional[Dict[str, Any]] = None
    #: Client churn (:class:`repro.sim.traffic.ClientChurn` kwargs);
    #: ``None`` disables churn.
    churn_params: Optional[Dict[str, Any]] = None
    #: Mobility (:class:`repro.sim.traffic.MobilityModel` kwargs);
    #: ``None`` keeps every client at the base ``rho``.
    mobility_params: Optional[Dict[str, Any]] = None
    #: Channel substrate: ``"flat"`` (the paper's narrowband regime,
    #: :class:`~repro.phy.channel.timevarying.FadingNetwork`) or
    #: ``"wideband"`` (frequency-selective
    #: :class:`~repro.phy.channel.provider.WidebandFadingNetwork`; the
    #: §6c per-subcarrier operating mode).  A single-tap wideband channel
    #: with ``n_bins=1`` reproduces the flat run bit-identically.
    channel: str = "flat"
    #: Wideband knobs (ignored under ``channel="flat"``): taps of the
    #: exponential power-delay profile, its RMS delay spread in samples,
    #: the OFDM FFT size and the number of evaluated subcarriers.
    n_taps: int = 8
    delay_spread: float = 0.0
    n_fft: int = 64
    n_bins: int = 4
    #: Wideband alignment strategy (:data:`repro.engine.ALIGNMENT_MODES`):
    #: ``"per_subcarrier"`` solves every evaluated bin independently,
    #: ``"flat_anchor"`` reuses one band-centre solution band-wide (the
    #: paper's baseline worry).
    alignment: str = "per_subcarrier"
    #: Fault-injection plan (:class:`repro.faults.FaultPlan` fields as a
    #: flat dict): backplane loss/delay, CSI corruption/staleness, leader
    #: crash.  ``None`` (default) disables the fault path entirely — the
    #: backplane is the implicit lossless wire of the original model and
    #: the simulation's trajectory is bit-identical to pre-fault builds.
    fault_params: Optional[Dict[str, Any]] = None
    #: Service discipline: ``"iac"`` (aligned three-client groups, the
    #: paper's system) or ``"p2p"`` (always serve the queue head alone at
    #: its best AP — the point-to-point floor that faulted runs degrade
    #: toward; the selector never runs, so its RNG stream is untouched).
    service: str = "iac"
    seed: int = 0


@dataclass(frozen=True)
class WLANEvent:
    """One entry of the simulation's event log.

    ``kind`` is one of ``"join"``, ``"leave"``, ``"start_move"``,
    ``"stop_move"``, ``"leader_crash"`` (``client`` then carries the
    crashed AP's id); ``slot`` is the absolute slot index (persistent
    across repeated ``run()`` calls).
    """

    slot: int
    kind: str
    client: int


@dataclass
class WLANStats:
    """Simulation outcome, cumulative over every ``run()`` call."""

    slots: int = 0
    #: Per-client average rate over all ``slots`` simulated so far.
    per_client_rate: Dict[int, float] = field(default_factory=dict)
    drift_reports: int = 0
    update_bytes: int = 0
    #: Total rate-level SINR loss (dB) due to estimate staleness, summed
    #: over slots; see :attr:`mean_staleness_loss_db` for the per-slot mean.
    staleness_loss_db: float = 0.0
    #: Slots in which the downlink queue was empty (dynamic traffic only;
    #: always 0 under the saturated model).
    idle_slots: int = 0
    #: Packets enqueued by the arrival process (0 under saturation —
    #: demand is infinite, not enumerable).
    offered_packets: int = 0
    #: Packets served (popped from the queue by a transmission).
    delivered_packets: int = 0
    #: Packets purged because their owner left (churn).
    dropped_packets: int = 0
    joins: int = 0
    leaves: int = 0
    #: Sum over delivered packets of (service slot - arrival slot).
    latency_slots_total: float = 0.0
    #: Mean queueing latency per client, in slots (delivered packets only).
    per_client_latency: Dict[int, float] = field(default_factory=dict)
    #: Sum over simulated slots of the queue length at selection time.
    queue_depth_total: int = 0
    max_queue_depth: int = 0
    #: Join/leave/mobility transitions, in slot order.
    events: List[WLANEvent] = field(default_factory=list)
    # ---- fault/degradation counters (all 0 without fault injection) --- #
    #: Backplane frames the faulted Ethernet hub lost outright.
    frames_lost_backplane: int = 0
    #: Backplane frames the faulted hub delayed past their slot.
    frames_delayed_backplane: int = 0
    #: Drift reports the leader's corrupt-CSI guard rejected.
    csi_rejections: int = 0
    #: Group-capable slots degraded to point-to-point service (lost
    #: backplane data, quarantined CSI in the selected group, or a
    #: post-crash deployment with too few APs left to align).
    fallback_slots: int = 0
    #: Leader re-elections after a leader-AP crash.
    re_elections: int = 0

    @property
    def total_rate(self) -> float:
        # Summed in sorted client order: the dict's insertion order
        # reflects service history, and float addition is neither
        # commutative nor associative at the ulp level, so a canonical
        # order keeps the summary invariant under permutations of
        # bit-identical per-client values.
        return float(
            sum(self.per_client_rate[c] for c in sorted(self.per_client_rate))
        )

    @property
    def fallback_fraction(self) -> float:
        """Fraction of simulated slots degraded to point-to-point."""
        return self.fallback_slots / self.slots if self.slots else 0.0

    @property
    def mean_staleness_loss_db(self) -> float:
        """Mean per-slot rate-level SINR loss (dB) due to staleness."""
        return self.staleness_loss_db / self.slots if self.slots else 0.0

    @property
    def mean_latency_slots(self) -> float:
        """Mean queueing latency of delivered packets, in slots."""
        if not self.delivered_packets:
            return 0.0
        return self.latency_slots_total / self.delivered_packets

    @property
    def mean_queue_depth(self) -> float:
        return self.queue_depth_total / self.slots if self.slots else 0.0

    @property
    def idle_fraction(self) -> float:
        return self.idle_slots / self.slots if self.slots else 0.0

    @property
    def jain_fairness(self) -> float:
        """Jain's index over per-client average rates (1.0 = perfectly fair)."""
        # Sorted client order for the same permutation-invariance reason
        # as :attr:`total_rate`.
        rates = [self.per_client_rate[c] for c in sorted(self.per_client_rate)]
        if not rates:
            return 1.0
        square_sum = sum(r * r for r in rates)
        if square_sum == 0.0:
            return 1.0
        total = sum(rates)
        return (total * total) / (len(rates) * square_sum)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form: every counter, rate and event.

        Float values serialise via ``repr`` (shortest round-trip), so two
        stats objects produce the same dict iff every field is
        bit-identical — the representation :meth:`digest` hashes.
        """
        return {
            "slots": self.slots,
            "per_client_rate": {
                str(c): self.per_client_rate[c]
                for c in sorted(self.per_client_rate)
            },
            "drift_reports": self.drift_reports,
            "update_bytes": self.update_bytes,
            "staleness_loss_db": self.staleness_loss_db,
            "idle_slots": self.idle_slots,
            "offered_packets": self.offered_packets,
            "delivered_packets": self.delivered_packets,
            "dropped_packets": self.dropped_packets,
            "joins": self.joins,
            "leaves": self.leaves,
            "latency_slots_total": self.latency_slots_total,
            "per_client_latency": {
                str(c): self.per_client_latency[c]
                for c in sorted(self.per_client_latency)
            },
            "queue_depth_total": self.queue_depth_total,
            "max_queue_depth": self.max_queue_depth,
            "events": [[e.slot, e.kind, e.client] for e in self.events],
            "frames_lost_backplane": self.frames_lost_backplane,
            "frames_delayed_backplane": self.frames_delayed_backplane,
            "csi_rejections": self.csi_rejections,
            "fallback_slots": self.fallback_slots,
            "re_elections": self.re_elections,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (the bit-identity pin).

        The columnar engine's equivalence contract and the golden-digest
        corpus (``tests/baselines/digests.json``) both compare runs by
        this value; it changes iff any stats field changes by even one
        ulp or the event log differs anywhere.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class WLANSimulation:
    """A running IAC WLAN (downlink traffic, saturated or dynamic).

    ``traffic``, ``churn`` and ``mobility`` instances override the
    config's string/params spelling (handy for tests and bespoke
    models); each process draws from its own RNG stream spawned from
    ``config.seed``, so enabling one never perturbs the fading, the
    selector or the other processes.
    """

    def __init__(
        self,
        config: Optional[WLANConfig] = None,
        *,
        traffic: Optional[TrafficModel] = None,
        churn: Optional[ClientChurn] = None,
        mobility: Optional[MobilityModel] = None,
    ):
        config = WLANConfig() if config is None else config
        if config.n_aps < 3:
            raise ValueError("IAC downlink groups need three APs")
        if config.n_clients < config.n_aps:
            raise ValueError("need at least as many clients as APs")
        if config.service not in ("iac", "p2p"):
            raise ValueError(
                f"unknown service discipline {config.service!r} "
                "(expected 'iac' or 'p2p')"
            )
        self.config = config
        #: The fault plan, or None — parsed up front so a bad
        #: ``fault_params`` dict fails at construction, not mid-run.
        self.fault_plan: Optional[FaultPlan] = (
            FaultPlan.from_params(config.fault_params)
            if config.fault_params is not None
            else None
        )
        self.rng = default_rng(config.seed)

        self.ap_ids = list(range(config.n_aps))
        self.client_ids = list(range(100, 100 + config.n_clients))
        pairs = [(a, c) for a in self.ap_ids for c in self.client_ids]
        gains = {
            (min(a, c), max(a, c)): db_to_linear(config.mean_gain_db)
            for a, c in pairs
        }
        #: The channel substrate, behind the ChannelProvider contract.
        self.fading: ChannelProvider
        if config.channel == "flat":
            # The columnar engine swaps in a stacked fading network whose
            # construction draws are identical to the per-link reference
            # (same RNG stream, same order) but whose per-slot step is one
            # vectorised draw over every link.
            if config.engine in ("columnar", "event"):
                from repro.sim.columnar import ColumnarFadingNetwork

                fading_cls = ColumnarFadingNetwork
            else:
                fading_cls = FadingNetwork
            self.fading = fading_cls(
                pairs, n_antennas=config.n_antennas, rho=config.rho,
                gains=gains, rng=self.rng,
            )
        elif config.channel == "wideband":
            self.fading = WidebandFadingNetwork(
                pairs, n_antennas=config.n_antennas, rho=config.rho,
                gains=gains, rng=self.rng,
                n_taps=config.n_taps, delay_spread=config.delay_spread,
                n_fft=config.n_fft, n_bins=config.n_bins,
            )
        else:
            raise ValueError(
                f"unknown channel substrate {config.channel!r} "
                "(expected 'flat' or 'wideband')"
            )
        #: Whether sounding/tracking/solving carry per-subcarrier bands.
        self._banded = self.fading.n_bins > 1

        leader_id = elect_leader(self.ap_ids)
        #: The corrupt-CSI guard only arms under fault injection; without
        #: it the leader trusts every report (pre-fault behaviour).
        self._csi_guard = (
            self.fault_plan.csi_guard_threshold
            if self.fault_plan is not None
            else None
        )
        self.leader = LeaderAP(
            ap_id=leader_id, ap_ids=self.ap_ids, csi_guard=self._csi_guard
        )
        self.subordinates = {
            ap: SubordinateAP(ap_id=ap, drift_threshold=config.drift_threshold)
            for ap in self.ap_ids
        }
        # Association: every AP sounds every client once (paper §8a).
        for c in self.client_ids:
            self._associate(c)

        self.selector = make_selector(config.algorithm, group_size=3, rng=self.rng)
        #: The APs that transmit an aligned group (first three, leader
        #: included); rebuilt on leader crash from the survivors.
        self._transmit_aps = tuple(self.ap_ids[:3])
        #: Scores candidate groups against the leader's believed channels;
        #: the batched engine memoises solutions on the leader's per-client
        #: channel-map versions (see :mod:`repro.engine`).
        self.evaluator = make_evaluator(
            config.engine, source=self.leader, aps=self._transmit_aps,
            alignment=config.alignment,
        )

        # ---- dynamic-workload wiring (all default-off / saturated) ---- #
        self.traffic = (
            traffic
            if traffic is not None
            else make_traffic(config.traffic, **(config.traffic_params or {}))
        )
        # The association backlog: under saturation every client starts
        # with a queued packet (and is replenished forever); a finite
        # arrival process starts from an empty queue and fills it itself.
        # The permutation is drawn either way so the selector's stream
        # stays aligned with the pre-dynamic simulation's.
        order = list(self.rng.permutation(self.client_ids))
        self.queue = TransmissionQueue(
            QueuedPacket(client_id=int(c), seq=i) for i, c in enumerate(order)
        ) if self.traffic.saturated else TransmissionQueue()
        self._seq = len(order)
        self.stats = WLANStats()
        self._cumulative_rate = {c: 0.0 for c in self.client_ids}
        if churn is not None:
            self.churn: Optional[ClientChurn] = churn
        elif config.churn_params is not None:
            self.churn = ClientChurn(**config.churn_params)
        else:
            self.churn = None
        if mobility is not None:
            self.mobility: Optional[MobilityModel] = mobility
        elif config.mobility_params is not None:
            self.mobility = MobilityModel(**config.mobility_params)
        else:
            self.mobility = None
        # Dedicated streams: spawned from the config seed, independent of
        # ``self.rng`` so the saturated default draws the exact sequence
        # the pre-dynamic simulation drew.  SeedSequence children are
        # keyed by sequential spawn index, so growing spawn(3) to
        # spawn(4) leaves the first three streams bit-identical.
        traffic_seq, churn_seq, mobility_seq, fault_seq = np.random.SeedSequence(
            config.seed
        ).spawn(4)
        self._traffic_rng = np.random.default_rng(traffic_seq)
        self._churn_rng = np.random.default_rng(churn_seq)
        self._mobility_rng = np.random.default_rng(mobility_seq)
        # ---- fault wiring (all None without fault_params) ------------- #
        self.injector: Optional[FaultInjector] = None
        self.hub: Optional[EthernetHub] = None
        if self.fault_plan is not None:
            self.injector = FaultInjector(self.fault_plan, fault_seq)
            # The explicit backplane: CSI annotations and the leader's
            # per-slot data frames to the other transmit APs cross this
            # hub and are subject to the injector's loss/delay.  Without
            # faults the wire stays implicit (and lossless), exactly as
            # before.
            self.hub = EthernetHub(faults=self.injector)
            for ap in self.ap_ids:
                self.hub.attach(
                    ap,
                    lambda frame, port=ap: self._on_backplane_frame(port, frame),
                )
        #: True once a leader crash leaves fewer than three APs: every
        #: subsequent non-idle slot is point-to-point (permanent fallback).
        self._degraded = False
        #: update_bytes accumulated by leaders that have since crashed.
        self._update_bytes_base = 0
        self._active = set(self.client_ids)
        #: Extra interference power per client (in noise units), injected
        #: by an enclosing multi-cell simulation at slot barriers; empty
        #: means the original single-cell behaviour, bit for bit.
        self._interference: Dict[int, float] = {}
        self._latency_sum: Dict[int, float] = {}
        self._latency_n: Dict[int, int] = {}
        #: Absolute slot counter, persistent across ``run()`` calls (the
        #: ack cadence and packet timestamps never reset mid-deployment).
        self._slot = 0

    # ------------------------------------------------------------------ #

    @property
    def active_clients(self) -> List[int]:
        """Currently associated clients, in id order."""
        return sorted(self._active)

    def set_interference_floor(
        self, floors: Optional[Mapping[int, float]] = None
    ) -> None:
        """Set per-client cross-cell interference power, in noise units.

        The hook a :class:`~repro.sim.multicell.MultiCellSimulation`
        uses to inject boundary interference at slot barriers: a client
        with floor ``f`` sees every SINR (aligned groups and degenerate
        point-to-point service alike) divided by ``1 + f`` — its noise
        floor rises from 1 to ``1 + f``.  An empty or all-zero mapping
        restores the exact single-cell trajectory (the floors touch no
        RNG stream, so setting and clearing them is side-effect free).
        """
        self._interference = {
            int(c): float(v) for c, v in (floors or {}).items() if float(v) > 0.0
        }

    def _derate(self, rate: float, client: int) -> float:
        """A point-to-point rate under the client's interference floor."""
        floor = self._interference.get(int(client), 0.0)
        if not floor:
            return float(rate)
        return float(np.log2(1.0 + (2.0**rate - 1.0) / (1.0 + floor)))

    def _sound(self, ap: int, client: int) -> np.ndarray:
        """One sounding: the flat matrix, or the per-subcarrier band.

        Wideband deployments estimate every evaluated subcarrier from the
        OFDM preamble, so association, tracking and drift reports all
        carry ``(n_bins, M, M)`` stacks; the flat path (and the wideband
        ``n_bins=1`` limit) carries the plain ``(M, M)`` matrix, keeping
        its computation — and its update-byte accounting — unchanged.
        """
        if self._banded:
            return self.fading.channel_bins(ap, client)
        return self.fading.channel(ap, client)

    def _associate(self, client: int) -> None:
        """§8a association: all APs sound the client's current channel,
        the leader registers it.  Used at start-up and on every churn
        re-join (the leave path forgets the subordinates' trackers, so
        this sounding is genuinely fresh, not a smoothed blend)."""
        estimates = {a: self._sound(a, client) for a in self.ap_ids}
        self.leader.handle_association(client, estimates)
        for a in self.ap_ids:
            self.subordinates[a].observe(client, estimates[a])

    def _true_channels(self, group: Tuple[int, ...]):
        if self._banded:
            return BandedChannelSet(
                {
                    (a, c): self.fading.channel_bins(a, c)
                    for a in self.ap_ids
                    for c in group
                }
            )
        return ChannelSet(
            {(a, c): self.fading.channel(a, c) for a in self.ap_ids for c in group}
        )

    def _transmit_group(self, group: Tuple[int, ...]) -> Dict[int, float]:
        """Solve with believed channels, decode against the true ones."""
        group = tuple(group)
        if len(group) < 3:
            return {c: 0.0 for c in group}
        # The selector just scored this group, so the engine reuses its
        # memoised solution instead of re-solving from scratch.
        actual, ideal = self.evaluator.transmit_sinrs(group, self._true_channels(group))
        if self._interference:
            # Boundary interference raises the noise floor from 1 to
            # 1 + f for both the achieved and the genie SINR (it is not
            # staleness), uniformly across subcarriers.
            scale = np.array(
                [1.0 + self._interference.get(int(c), 0.0) for c in group]
            )
            actual = actual / scale
            ideal = ideal / scale
        self.stats.staleness_loss_db += max(
            0.0, 10 * np.log10((1 + ideal.min()) / (1 + actual.min()))
        )
        if actual.ndim == 1:
            return {c: float(np.log2(1.0 + actual[i])) for i, c in enumerate(group)}
        # Banded: per-client goodput is the band-averaged spectral
        # efficiency — the sum over evaluated subcarriers divided by the
        # band width, so flat and wideband rates stay comparable.
        return {
            c: float(np.mean(np.log2(1.0 + actual[:, i])))
            for i, c in enumerate(group)
        }

    def _serve_head_alone(self, client: int) -> Dict[int, float]:
        """Degenerate backlog (< 3 distinct clients): point-to-point slot.

        With too few clients to align, the leader falls back to plain
        802.11 service of the head-of-queue client at its best AP's
        eigenmode rate over the *true* current channels — the same
        degenerate-group rule the Fig.-15 rate cache applies.  Wideband
        deployments average the per-subcarrier eigenmode rate over the
        evaluated band.
        """
        if self._banded:
            bands = {a: self.fading.channel_bins(a, client) for a in self.ap_ids}
            rates = []
            for b in range(self.fading.n_bins):
                channels = ChannelSet(
                    {(a, client): bands[a][b] for a in self.ap_ids}
                )
                rates.append(
                    self._derate(
                        best_ap_link(
                            channels, client, self.ap_ids,
                            noise_power=1.0, direction="downlink",
                        ).rate,
                        client,
                    )
                )
            return {client: float(np.mean(rates))}
        channels = ChannelSet(
            {(a, client): self.fading.channel(a, client) for a in self.ap_ids}
        )
        rate = best_ap_link(
            channels, client, self.ap_ids, noise_power=1.0, direction="downlink"
        ).rate
        return {client: self._derate(rate, client)}

    def _track_channels(self, slot: int) -> None:
        """Clients ack; every AP re-estimates and reports drift (§7.1(c)).

        Wideband: the ack covers the whole OFDM band, so the smoothed
        estimate, the drift norm and the reported annotation all span the
        per-subcarrier stack (a drift report costs ``n_bins`` times the
        flat annotation bytes — the §6c price on the Ethernet).

        Under fault injection three things change: an AP can miss the
        ack outright (forced staleness — that sounding never happens); a
        subordinate's report crosses the lossy Ethernet hub and may be
        lost, delayed or corrupted in transit (the subordinate's *own*
        tracker stays clean — the wire is what fails); and a quarantined
        client forces a full refresh report from every subordinate at
        the next ack, bypassing the drift threshold, so recovery doesn't
        wait for the channel to drift again.
        """
        if slot % self.config.ack_period:
            return
        for c in sorted(self._active):
            for a in self.ap_ids:
                if self.injector is not None and self.injector.ack_missed():
                    continue
                update = self.subordinates[a].observe(c, self._sound(a, c))
                if (
                    update is None
                    and self.injector is not None
                    and a != self.leader.ap_id
                    and self.leader.is_quarantined(c)
                ):
                    update = ChannelUpdate(
                        ap_id=a, client_id=c, h=self.subordinates[a].channel_to(c)
                    )
                if update is None:
                    continue
                if self.hub is not None and a != self.leader.ap_id:
                    # The report rides the backplane as an annotation;
                    # what the leader sees is the (possibly corrupted)
                    # wire copy, applied by _on_backplane_frame on
                    # delivery — this slot, later (delay), or never.
                    wire = ChannelUpdate(
                        ap_id=a,
                        client_id=c,
                        h=self.injector.corrupt_report(update.h),
                    )
                    self.hub.broadcast(
                        HubFrame(
                            src_port=a,
                            payload_bytes=0,
                            annotation_bytes=update.nbytes(),
                            kind="csi-update",
                            data=wire,
                        )
                    )
                else:
                    # The leader's own tracker reports never cross the
                    # wire (and the fault-free path keeps its original
                    # direct call, bit for bit).
                    self.leader.handle_update(update)
                    self.stats.drift_reports += 1
        self.stats.update_bytes = self._update_bytes_base + self.leader.update_bytes

    # ------------------------------------------------------------------ #
    # Fault handling (never reached without ``fault_params``)
    # ------------------------------------------------------------------ #

    def _on_backplane_frame(self, port: int, frame: HubFrame) -> None:
        """Hub delivery callback for AP ``port``.

        Only CSI annotations arriving at the *current* leader's port
        carry state; data frames (and frames addressed to a crashed
        ex-leader's port) are inert on arrival.
        """
        if frame.kind != "csi-update" or port != self.leader.ap_id:
            return
        update: ChannelUpdate = frame.data
        if update.client_id not in self.leader.table:
            # Delivered after the client churned away (a delayed frame);
            # a §8a re-association would re-sound from scratch anyway.
            return
        if self.leader.handle_update(update):
            self.stats.drift_reports += 1
        else:
            self.stats.csi_rejections += 1

    def _backplane_data_ready(self) -> bool:
        """Ship the slot's data frames to the other transmit APs.

        "Every decoded packet is broadcast only once to all APs"
        (§7.1(d)): before an aligned slot the leader pushes one payload
        frame per non-leader transmit AP across the hub.  Any loss or
        delay means that AP has nothing to precode — the slot must fall
        back to point-to-point service.  Called *before* the selector
        runs, so a lost backplane never costs selector RNG draws (at
        loss 1.0 the trajectory equals the ``service="p2p"`` floor).
        """
        delivered_all = True
        for ap in self._transmit_aps:
            if ap == self.leader.ap_id:
                continue
            delivered = self.hub.broadcast(
                HubFrame(
                    src_port=self.leader.ap_id,
                    payload_bytes=1500,
                    kind="decoded-packet",
                )
            )
            delivered_all = delivered_all and delivered
        return delivered_all

    def _crash_leader(self, slot: int) -> None:
        """Kill the leader AP; re-elect and rebuild from the survivors.

        The dead AP leaves the deployment entirely (its subordinate
        tracker dies with it).  The new leader is elected by the same
        lowest-id rule and rebuilds its association table and channel
        map from the *surviving* subordinates' tracked estimates — the
        distributed state the paper's design already maintains (§7.1(c)),
        so no re-sounding round is needed.  With fewer than three APs
        left the deployment can no longer align: it serves every
        remaining slot point-to-point (counted in ``fallback_slots``).
        """
        dead = self.leader.ap_id
        self.stats.events.append(WLANEvent(slot, "leader_crash", dead))
        self.stats.re_elections += 1
        self._update_bytes_base += self.leader.update_bytes
        self.ap_ids = [a for a in self.ap_ids if a != dead]
        del self.subordinates[dead]
        new_leader = LeaderAP(
            ap_id=elect_leader(self.ap_ids),
            ap_ids=self.ap_ids,
            csi_guard=self._csi_guard,
        )
        for c in sorted(self._active):
            estimates = {
                a: self.subordinates[a].channel_to(c) for a in self.ap_ids
            }
            new_leader.handle_association(c, estimates)
        self.leader = new_leader
        if len(self.ap_ids) >= 3:
            self._transmit_aps = tuple(self.ap_ids[:3])
            self.evaluator = make_evaluator(
                self.config.engine,
                source=new_leader,
                aps=self._transmit_aps,
                alignment=self.config.alignment,
            )
        else:
            self._degraded = True

    # ------------------------------------------------------------------ #
    # Dynamic-workload steps (no-ops under the default configuration)
    # ------------------------------------------------------------------ #

    def _apply_churn(self, slot: int) -> None:
        inactive = [c for c in self.client_ids if c not in self._active]
        events = self.churn.step(sorted(self._active), inactive, self._churn_rng)
        for c in events.leaves:
            self._active.discard(c)
            self.stats.dropped_packets += self.queue.remove_client(c)
            self.leader.handle_disassociation(c)
            # Subordinates drop their smoothed estimates too: a later
            # re-association must start from the fresh sounding, not
            # blend it with the pre-departure channel.
            for a in self.ap_ids:
                self.subordinates[a].forget(c)
            self.stats.leaves += 1
            self.stats.events.append(WLANEvent(slot, "leave", c))
        for c in events.joins:
            self._active.add(c)
            # A join re-triggers association: all APs sound the channel
            # afresh and the leader re-registers the client (§8a).
            self._associate(c)
            self.stats.joins += 1
            self.stats.events.append(WLANEvent(slot, "join", c))
            if self.traffic.saturated:
                self._seq += 1
                self.queue.push(
                    QueuedPacket(client_id=int(c), seq=self._seq, enqueued_slot=slot)
                )

    def _apply_mobility(self, slot: int) -> None:
        changed = self.mobility.step(sorted(self._active), self._mobility_rng)
        for c, rho in changed.items():
            self.fading.set_node_rho(c, rho)
            kind = "start_move" if self.mobility.is_moving(c) else "stop_move"
            self.stats.events.append(WLANEvent(slot, kind, c))

    def _apply_arrivals(self, slot: int) -> None:
        arrivals = self.traffic.arrivals(slot, sorted(self._active), self._traffic_rng)
        for c in sorted(arrivals):
            for _ in range(int(arrivals[c])):
                self._seq += 1
                self.queue.push(
                    QueuedPacket(client_id=int(c), seq=self._seq, enqueued_slot=slot)
                )
                self.stats.offered_packets += 1

    def _account_service(self, client: int, rate: float, slot: int) -> None:
        """Pop the client's head packet and account rate + latency."""
        packet = self.queue.pop_client(client)
        self._cumulative_rate[client] = (
            self._cumulative_rate.get(client, 0.0) + rate
        )
        self.stats.delivered_packets += 1
        if packet is not None:
            waited = float(slot - packet.enqueued_slot)
            self.stats.latency_slots_total += waited
            self._latency_sum[client] = self._latency_sum.get(client, 0.0) + waited
            self._latency_n[client] = self._latency_n.get(client, 0) + 1

    # ------------------------------------------------------------------ #

    def run(self, n_slots: int, track: bool = True) -> WLANStats:
        """Simulate ``n_slots`` downlink slots; returns the statistics.

        Statistics are cumulative: repeated calls keep extending the same
        deployment, and ``stats.per_client_rate`` always averages over
        every slot simulated so far.

        Under ``engine="columnar"`` the loop is executed by
        :func:`repro.sim.columnar.run_columnar` — same trajectory, same
        RNG stream consumption, bit-identical :class:`WLANStats` (pinned
        by ``tests/sim/test_columnar_equivalence.py``); under
        ``engine="event"`` by :func:`repro.sim.events.run_event`, which
        additionally skips idle spans between scheduled events (pinned
        by ``tests/sim/test_event_equivalence.py``); every other engine
        runs the scalar reference loop below.
        """
        if self.config.engine == "columnar":
            from repro.sim.columnar import run_columnar

            return run_columnar(self, n_slots, track=track)
        if self.config.engine == "event":
            from repro.sim.events import run_event

            return run_event(self, n_slots, track=track)
        return self._run_scalar(n_slots, track)

    def _run_scalar(self, n_slots: int, track: bool = True) -> WLANStats:
        """The reference slot loop — every fast engine's bit-identity oracle."""
        saturated = self.traffic.saturated
        for _ in range(n_slots):
            slot = self._slot
            self._slot += 1
            if self.hub is not None:
                # Matured delayed frames (late CSI) land at slot start.
                self.hub.tick()
            if (
                self.injector is not None
                and self.injector.crash_due(slot)
                and len(self.ap_ids) > 1
            ):
                self._crash_leader(slot)
            self.fading.step()
            if self.churn is not None:
                self._apply_churn(slot)
            if self.mobility is not None:
                self._apply_mobility(slot)
            if track:
                self._track_channels(slot)
            if not saturated:
                self._apply_arrivals(slot)
            depth = len(self.queue)
            self.stats.queue_depth_total += depth
            self.stats.max_queue_depth = max(self.stats.max_queue_depth, depth)
            if not self.queue:
                self.stats.idle_slots += 1
                continue
            # The selector only runs when a full group can form: invoking
            # it on a 1-2 client backlog would let BestOfTwo reset the
            # fairness credits of companions that never get served (and
            # solve candidate groups the degenerate slot then ignores).
            # Under ``service="p2p"`` — or after a crash left too few APs
            # to align — it never runs at all, so its RNG stream (shared
            # with the fading substrate) is consumed identically by a
            # faulted run falling back every slot and its p2p twin.
            p2p_only = self.config.service == "p2p" or self._degraded
            if not p2p_only and len(self.queue.clients_in_order()) >= 3:
                if self.injector is not None and not self._backplane_data_ready():
                    # Backplane data lost or late: the other transmit APs
                    # have nothing to precode this slot.  Decided before
                    # the selector runs, so a lossy wire costs zero
                    # selector draws (at loss 1.0 the trajectory is the
                    # p2p floor, bit for bit).
                    self.stats.fallback_slots += 1
                    served = (self.queue.head().client_id,)
                    rates = self._serve_head_alone(served[0])
                else:
                    served = tuple(self.selector.select(self.queue, self.evaluator))
                    if any(self.leader.is_quarantined(c) for c in served):
                        # Aligning against distrusted CSI would null the
                        # wrong subspace for every client in the group:
                        # degrade the slot instead of transmitting on it.
                        self.stats.fallback_slots += 1
                        served = (self.queue.head().client_id,)
                        rates = self._serve_head_alone(served[0])
                    else:
                        rates = self._transmit_group(served)
            else:
                if self._degraded and self.config.service == "iac":
                    # Post-crash permanent degradation (< 3 APs left):
                    # every served slot is a fallback.  A configured p2p
                    # floor is *service*, not degradation — not counted.
                    self.stats.fallback_slots += 1
                served = (self.queue.head().client_id,)
                rates = self._serve_head_alone(served[0])
            for c in served:
                self._account_service(c, rates.get(c, 0.0), slot)
                if saturated:
                    self._seq += 1
                    self.queue.push(
                        QueuedPacket(
                            client_id=int(c), seq=self._seq, enqueued_slot=slot + 1
                        )
                    )
        self.stats.slots += n_slots
        if self.hub is not None:
            self.stats.frames_lost_backplane = self.hub.frames_lost
            self.stats.frames_delayed_backplane = self.hub.frames_delayed
        self.stats.per_client_rate = {
            c: total / self.stats.slots for c, total in self._cumulative_rate.items()
        }
        self.stats.per_client_latency = {
            c: self._latency_sum[c] / self._latency_n[c]
            for c in sorted(self._latency_n)
        }
        return self.stats
