"""End-to-end WLAN simulation: every layer of IAC working together.

This is the integration piece the individual experiments factor out: a
simulated deployment that runs, slot by slot,

1. **association** -- clients join, all APs sound their channels, the
   leader registers them (:mod:`repro.mac.association`);
2. **channel evolution** -- Gauss-Markov fading
   (:mod:`repro.phy.channel.timevarying`); subordinate APs track their
   estimates from client acks and report significant drift to the leader;
3. **scheduling** -- the leader's concurrency algorithm forms downlink
   transmission groups from the backlog (:mod:`repro.mac.concurrency`);
4. **transmission** -- each group is solved and decoded at rate level with
   the leader's (possibly stale) channel estimates against the *true*
   current channels, so stale estimates genuinely cost SINR;
5. **accounting** -- per-client goodput, control bytes, estimate staleness.

Used by ``benchmarks/bench_wlan_integration.py`` to show the tracked
system's throughput approaches the genie-channel bound, and that switching
tracking off hurts under mobility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.plans import ChannelSet
from repro.engine import make_evaluator
from repro.mac.association import LeaderAP, SubordinateAP, elect_leader
from repro.mac.concurrency import make_selector
from repro.mac.queueing import QueuedPacket, TransmissionQueue
from repro.phy.channel.timevarying import FadingNetwork
from repro.utils.db import db_to_linear
from repro.utils.rng import default_rng


@dataclass
class WLANConfig:
    """Deployment parameters."""

    n_aps: int = 3
    n_clients: int = 8
    n_antennas: int = 2
    #: Per-slot channel correlation (1.0 = static environment).
    rho: float = 0.998
    #: Mean pair SNR in dB (noise power is 1).
    mean_gain_db: float = 15.0
    #: Subordinate APs report drift beyond this relative change.
    drift_threshold: float = 0.15
    #: Concurrency algorithm for group formation.
    algorithm: str = "best2"
    #: Clients re-sound the channel (ack overheard) every ``ack_period`` slots.
    ack_period: int = 4
    #: Group-evaluation engine: ``"batched"`` (memoised ndarray batches,
    #: :mod:`repro.engine`) or ``"scalar"`` (the reference per-group path).
    engine: str = "batched"
    seed: int = 0


@dataclass
class WLANStats:
    """Simulation outcome, cumulative over every ``run()`` call."""

    slots: int = 0
    #: Per-client average rate over all ``slots`` simulated so far.
    per_client_rate: Dict[int, float] = field(default_factory=dict)
    drift_reports: int = 0
    update_bytes: int = 0
    #: Total rate-level SINR loss (dB) due to estimate staleness, summed
    #: over slots; see :attr:`mean_staleness_loss_db` for the per-slot mean.
    staleness_loss_db: float = 0.0

    @property
    def total_rate(self) -> float:
        return float(sum(self.per_client_rate.values()))

    @property
    def mean_staleness_loss_db(self) -> float:
        """Mean per-slot rate-level SINR loss (dB) due to staleness."""
        return self.staleness_loss_db / self.slots if self.slots else 0.0


class WLANSimulation:
    """A running IAC WLAN (downlink traffic, infinite demand)."""

    def __init__(self, config: Optional[WLANConfig] = None):
        config = WLANConfig() if config is None else config
        if config.n_aps < 3:
            raise ValueError("IAC downlink groups need three APs")
        if config.n_clients < config.n_aps:
            raise ValueError("need at least as many clients as APs")
        self.config = config
        self.rng = default_rng(config.seed)

        self.ap_ids = list(range(config.n_aps))
        self.client_ids = list(range(100, 100 + config.n_clients))
        pairs = [(a, c) for a in self.ap_ids for c in self.client_ids]
        self.fading = FadingNetwork(
            pairs,
            n_antennas=config.n_antennas,
            rho=config.rho,
            gains={
                (min(a, c), max(a, c)): db_to_linear(config.mean_gain_db)
                for a, c in pairs
            },
            rng=self.rng,
        )

        leader_id = elect_leader(self.ap_ids)
        self.leader = LeaderAP(ap_id=leader_id, ap_ids=self.ap_ids)
        self.subordinates = {
            ap: SubordinateAP(ap_id=ap, drift_threshold=config.drift_threshold)
            for ap in self.ap_ids
        }
        # Association: every AP sounds every client once (paper §8a).
        for c in self.client_ids:
            estimates = {a: self.fading.channel(a, c) for a in self.ap_ids}
            self.leader.handle_association(c, estimates)
            for a in self.ap_ids:
                self.subordinates[a].observe(c, estimates[a])

        self.selector = make_selector(config.algorithm, group_size=3, rng=self.rng)
        #: Scores candidate groups against the leader's believed channels;
        #: the batched engine memoises solutions on the leader's per-client
        #: channel-map versions (see :mod:`repro.engine`).
        self.evaluator = make_evaluator(
            config.engine, source=self.leader, aps=tuple(self.ap_ids[:3])
        )
        order = list(self.rng.permutation(self.client_ids))
        self.queue = TransmissionQueue(
            QueuedPacket(client_id=int(c), seq=i) for i, c in enumerate(order)
        )
        self._seq = len(order)
        self.stats = WLANStats()
        self._cumulative_rate = {c: 0.0 for c in self.client_ids}

    # ------------------------------------------------------------------ #

    def _true_channels(self, group: Tuple[int, ...]) -> ChannelSet:
        return ChannelSet(
            {(a, c): self.fading.channel(a, c) for a in self.ap_ids for c in group}
        )

    def _transmit_group(self, group: Tuple[int, ...]) -> Dict[int, float]:
        """Solve with believed channels, decode against the true ones."""
        group = tuple(group)
        if len(group) < 3:
            return {c: 0.0 for c in group}
        # The selector just scored this group, so the engine reuses its
        # memoised solution instead of re-solving from scratch.
        actual, ideal = self.evaluator.transmit_sinrs(group, self._true_channels(group))
        self.stats.staleness_loss_db += max(
            0.0, 10 * np.log10((1 + ideal.min()) / (1 + actual.min()))
        )
        return {c: float(np.log2(1.0 + actual[i])) for i, c in enumerate(group)}

    def _track_channels(self, slot: int) -> None:
        """Clients ack; every AP re-estimates and reports drift (§7.1(c))."""
        if slot % self.config.ack_period:
            return
        for c in self.client_ids:
            for a in self.ap_ids:
                update = self.subordinates[a].observe(c, self.fading.channel(a, c))
                if update is not None:
                    self.leader.handle_update(update)
                    self.stats.drift_reports += 1
        self.stats.update_bytes = self.leader.update_bytes

    def run(self, n_slots: int, track: bool = True) -> WLANStats:
        """Simulate ``n_slots`` downlink slots; returns the statistics.

        Statistics are cumulative: repeated calls keep extending the same
        deployment, and ``stats.per_client_rate`` always averages over
        every slot simulated so far.
        """
        for slot in range(n_slots):
            self.fading.step()
            if track:
                self._track_channels(slot)
            group = self.selector.select(self.queue, self.evaluator)
            rates = self._transmit_group(group)
            for c in group:
                self._cumulative_rate[c] += rates.get(c, 0.0)
                self.queue.pop_client(c)
                self._seq += 1
                self.queue.push(QueuedPacket(client_id=int(c), seq=self._seq))
        self.stats.slots += n_slots
        self.stats.per_client_rate = {
            c: total / self.stats.slots for c, total in self._cumulative_rate.items()
        }
        return self.stats
