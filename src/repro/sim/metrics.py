"""Measurement helpers for the experiment harness (paper §10(f)).

The paper reports scatter plots of per-experiment (baseline rate, IAC rate)
pairs, average gains, and CDFs of per-client gains.  These small containers
carry those results from the runners to the benchmarks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RatePair:
    """One scatter point: baseline and IAC average rates (bit/s/Hz)."""

    dot11: float
    iac: float

    @property
    def gain(self) -> float:
        if self.dot11 <= 0:
            raise ZeroDivisionError("baseline rate is zero")
        return self.iac / self.dot11


@dataclass
class ScatterResult:
    """A collection of scatter points (one figure's worth of data)."""

    points: List[RatePair] = field(default_factory=list)
    label: str = ""

    def add(self, dot11: float, iac: float) -> None:
        self.points.append(RatePair(dot11=dot11, iac=iac))

    @property
    def gains(self) -> np.ndarray:
        return np.array([p.gain for p in self.points])

    @property
    def mean_gain(self) -> float:
        """Ratio of the average rates (the paper's headline numbers)."""
        dot11 = np.array([p.dot11 for p in self.points])
        iac = np.array([p.iac for p in self.points])
        return float(np.mean(iac) / np.mean(dot11))

    @property
    def mean_of_gains(self) -> float:
        """Mean of per-point gains (sensitive to low-rate points)."""
        return float(np.mean(self.gains))

    def summary(self) -> str:
        dot11 = np.array([p.dot11 for p in self.points])
        iac = np.array([p.iac for p in self.points])
        return (
            f"{self.label}: n={len(self.points)} "
            f"dot11={dot11.mean():.2f} b/s/Hz iac={iac.mean():.2f} b/s/Hz "
            f"gain={self.mean_gain:.2f}x"
        )


@dataclass
class GainCDF:
    """Per-client gain distribution (Fig. 15)."""

    gains: Dict[int, float] = field(default_factory=dict)
    label: str = ""

    def cdf_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted gains and cumulative fractions, ready to print/plot."""
        values = np.sort(np.array(list(self.gains.values())))
        fractions = np.arange(1, values.size + 1) / values.size
        return values, fractions

    @property
    def mean_gain(self) -> float:
        return float(np.mean(list(self.gains.values())))

    @property
    def min_gain(self) -> float:
        return float(np.min(list(self.gains.values())))

    def fraction_below(self, threshold: float) -> float:
        """Fraction of clients whose gain is below ``threshold``.

        ``fraction_below(1.0)`` is the paper's fairness indicator: clients
        that would have been better off under 802.11-MIMO.
        """
        values = np.array(list(self.gains.values()))
        return float(np.mean(values < threshold))

    def summary(self) -> str:
        return (
            f"{self.label}: mean={self.mean_gain:.2f}x min={self.min_gain:.2f}x "
            f"below-1x={self.fraction_below(1.0) * 100:.0f}%"
        )


def format_cdf_table(cdfs: Sequence[GainCDF], n_rows: int = 10) -> str:
    """Render CDFs side by side as the textual analogue of Fig. 15."""
    lines = ["gain-quantile  " + "  ".join(f"{c.label:>14s}" for c in cdfs)]
    quantiles = np.linspace(0.05, 1.0, n_rows)
    for q in quantiles:
        row = [f"{q * 100:>3.0f}%         "]
        for c in cdfs:
            values, fractions = c.cdf_points()
            idx = np.searchsorted(fractions, q)
            idx = min(idx, values.size - 1)
            row.append(f"{values[idx]:>14.2f}")
        lines.append("  ".join(row))
    return "\n".join(lines)
