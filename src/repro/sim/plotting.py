"""Text rendering of the paper's figures (scatter plots and CDFs).

The benchmark harness prints numbers; these helpers draw them, so a
terminal user can *see* Fig. 12's point cloud sitting between the Gain=1
and Gain=2 reference lines the way the paper draws it.  Pure-text output
keeps the repository dependency-free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.metrics import GainCDF, ScatterResult


def ascii_scatter(
    result: ScatterResult,
    width: int = 58,
    height: int = 20,
    x_label: str = "802.11-MIMO rate [b/s/Hz]",
    y_label: str = "IAC rate",
    gain_lines: Sequence[float] = (1.0, 2.0),
) -> str:
    """Render a ScatterResult the way the paper's Figs. 12-14 are drawn.

    ``*`` marks experiment points; ``.`` and ``:`` trace the Gain=1 and
    Gain=2 reference lines.
    """
    if not result.points:
        raise ValueError("nothing to plot")
    xs = np.array([p.dot11 for p in result.points])
    ys = np.array([p.iac for p in result.points])
    x_max = float(xs.max()) * 1.05
    y_max = max(float(ys.max()), x_max * max(gain_lines)) * 1.05
    x_min, y_min = 0.0, 0.0

    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, ch: str, keep: str = "*"):
        if not (x_min <= x <= x_max and y_min <= y <= y_max):
            return
        col = int((x - x_min) / (x_max - x_min) * (width - 1))
        row = height - 1 - int((y - y_min) / (y_max - y_min) * (height - 1))
        if grid[row][col] != keep:
            grid[row][col] = ch

    marks = ".:+x"
    for gi, gain in enumerate(gain_lines):
        ch = marks[gi % len(marks)]
        for col in range(width):
            x = x_min + (x_max - x_min) * col / (width - 1)
            put(x, gain * x, ch)
    for x, y in zip(xs, ys):
        put(float(x), float(y), "*", keep="")

    lines = [f"{result.label or 'scatter'}  (gain lines: " +
             ", ".join(f"{marks[i % len(marks)]}={g:g}x" for i, g in enumerate(gain_lines)) + ")"]
    for row_index, row in enumerate(grid):
        y_tick = y_max * (height - 1 - row_index) / (height - 1)
        prefix = f"{y_tick:6.1f} |" if row_index % 4 == 0 else "       |"
        lines.append(prefix + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(f"        0{'':{width - 12}}{x_max:6.1f}")
    lines.append(f"        {x_label}   (y: {y_label})")
    return "\n".join(lines)


def ascii_cdf(
    cdfs: Sequence[GainCDF],
    width: int = 58,
    height: int = 16,
    x_max: Optional[float] = None,
) -> str:
    """Render gain CDFs the way Fig. 15 is drawn (one mark per curve)."""
    if not cdfs:
        raise ValueError("nothing to plot")
    marks = "*o+x"
    if x_max is None:
        x_max = max(max(c.gains.values()) for c in cdfs) * 1.05

    grid = [[" "] * width for _ in range(height)]
    for ci, cdf in enumerate(cdfs):
        values, fractions = cdf.cdf_points()
        ch = marks[ci % len(marks)]
        for v, f in zip(values, fractions):
            if v > x_max:
                v = x_max
            col = int(v / x_max * (width - 1))
            row = height - 1 - int(f * (height - 1))
            grid[row][col] = ch

    legend = "  ".join(
        f"{marks[i % len(marks)]}={c.label}" for i, c in enumerate(cdfs)
    )
    lines = [f"CDF of client gains   ({legend})"]
    for row_index, row in enumerate(grid):
        frac = (height - 1 - row_index) / (height - 1)
        prefix = f"{frac:5.2f} |" if row_index % 4 == 0 else "      |"
        lines.append(prefix + "".join(row))
    lines.append("      +" + "-" * width)
    lines.append(f"       0{'':{width - 10}}{x_max:5.1f}")
    lines.append("       client gain over 802.11-MIMO")
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Simple horizontal bar chart for summary comparisons."""
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must pair up and be non-empty")
    peak = max(values)
    if peak <= 0:
        raise ValueError("need at least one positive value")
    label_width = max(len(lbl) for lbl in labels)
    lines = []
    for lbl, val in zip(labels, values):
        bar = "#" * max(1, int(val / peak * width))
        lines.append(f"{lbl:<{label_width}}  {bar} {val:.2f}{unit}")
    return "\n".join(lines)
