"""Dynamic workloads for the WLAN simulation: arrivals, churn, mobility.

The paper's §10-§11 WLAN results assume a *saturated* downlink: every
client always has a packet queued, so the concurrency algorithm never
sees an empty position.  That regime hides everything interesting about
the MAC under real traffic — queueing delay, idle slots, unfairness
under bursts, the cost of re-association after churn, stale estimates
under mobility.  This module supplies those dynamics as small composable
processes that :class:`repro.sim.wlan.WLANSimulation` drives once per
slot:

* **Arrival processes** (:class:`TrafficModel`): how many packets each
  active client enqueues per slot.  ``saturated`` reproduces the paper's
  infinite-demand regime bit-for-bit; ``poisson``, ``bursty`` (ON/OFF
  Markov-modulated) and ``heterogeneous`` (per-client rates) open the
  dynamic-load regimes.
* **Client churn** (:class:`ClientChurn`): clients leave and re-join a
  fixed universe; a join re-triggers association (all APs re-sound the
  channel, the leader re-registers the client — paper §8a), a leave
  purges the client's queue and disassociates it.
* **Mobility** (:class:`MobilityModel`): clients toggle between a
  static and a moving state; the simulation wires the per-client
  Doppler into :meth:`repro.phy.channel.timevarying.FadingNetwork.set_node_rho`,
  so moving clients genuinely decorrelate their channels and stress the
  drift-tracking machinery.

All processes draw exclusively from the RNG handed to them by the
simulation (one dedicated stream per process, spawned from the config
seed), so a dynamic run is exactly as reproducible as a saturated one.

The event-driven kernel (:mod:`repro.sim.events`) additionally needs to
*look ahead*: it skips runs of slots where nothing happens, but the
bit-identity contract requires every skipped slot to consume exactly the
RNG draws the per-slot loop would have made.  Each process therefore
exposes a scan/replay pair built on one lemma: ``Generator`` output
buffers fill element-by-element in C order, so a single blocked draw of
``n`` slots' worth consumes the bitstream identically to ``n``
sequential per-slot draws.  ``scan_quiet(n, ...)`` draws ``n`` slots
blocked and reports how many leading slots are event-free;
``replay(j, ...)`` re-consumes exactly ``j`` slots' worth after the
kernel restores a checkpoint (``rng.bit_generator.state``) to unwind an
overdrawn scan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "TrafficModel",
    "SaturatedTraffic",
    "PoissonTraffic",
    "BurstyTraffic",
    "HeterogeneousTraffic",
    "ClientChurn",
    "MobilityModel",
    "make_traffic",
]


def _leading_quiet(busy: np.ndarray, n_slots: int) -> int:
    """Index of the first eventful slot in a scan block (or ``n_slots``)."""
    if not busy.any():
        return n_slots
    return int(np.argmax(busy))


class TrafficModel(ABC):
    """Per-slot packet arrivals for the active clients.

    ``arrivals(slot, clients, rng)`` returns ``{client_id: n_packets}``
    for this slot (clients without arrivals may be omitted).  The
    ``saturated`` model is special-cased by the simulation — it keeps
    the legacy pop-and-replenish loop — and signals that via
    :attr:`saturated`.
    """

    #: True only for the infinite-demand model.
    saturated: bool = False

    @abstractmethod
    def arrivals(
        self, slot: int, clients: Sequence[int], rng: np.random.Generator
    ) -> Dict[int, int]:
        """Packets arriving for each active client during ``slot``."""

    def arrival_counts(
        self, slot: int, clients: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        """Vector form of :meth:`arrivals`: counts aligned with ``clients``.

        Consumes the RNG stream *identically* to :meth:`arrivals` (the
        base implementation simply calls it), so the columnar slot loop
        can enqueue straight from the ndarray while staying bit-identical
        to the scalar loop's dict path.  Models whose draw is already one
        vectorised call (Poisson, heterogeneous) override this to skip
        the dict round-trip; stateful models (bursty) keep the fallback.
        """
        arrivals = self.arrivals(slot, clients, rng)
        return np.array(
            [arrivals.get(c, 0) for c in clients], dtype=np.int64
        )

    def can_scan(self, clients: Sequence[int]) -> bool:
        """Whether this model supports blocked lookahead *right now*.

        ``False`` forces the event kernel onto the per-slot path (still
        bit-identical, no skipping).  Stateful models may answer
        per-state — bursty traffic is scannable only while every given
        client's chain is OFF, because an ON client draws a variable
        number of values per slot.
        """
        return False

    def scan_quiet(
        self, n_slots: int, clients: Sequence[int],
        rng: np.random.Generator,
    ) -> int:
        """Draw ``n_slots`` of stream blocked; count leading quiet slots.

        A quiet slot is one :meth:`arrivals` would have returned empty
        for (and, for stateful models, left the model state unchanged).
        Consumes exactly ``n_slots`` slots' worth of the stream; the
        caller checkpoints/restores the generator and calls
        :meth:`replay` to position it mid-block.
        """
        raise NotImplementedError

    def replay(
        self, n_slots: int, clients: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        """Consume exactly ``n_slots`` quiet slots' worth of the stream."""
        raise NotImplementedError


class SaturatedTraffic(TrafficModel):
    """Infinite demand: every client is always backlogged (paper §10.3).

    The simulation never consults :meth:`arrivals`; a served packet is
    immediately replaced, exactly as the pre-dynamic ``WLANSimulation``
    did, so this model is the bit-identical limiting case every dynamic
    scenario collapses to.
    """

    saturated = True

    def arrivals(self, slot, clients, rng) -> Dict[int, int]:
        return {}


@dataclass
class PoissonTraffic(TrafficModel):
    """Independent Poisson arrivals at ``rate_per_client`` packets/slot.

    An offered-load fraction ``load`` of the system's service capacity
    (up to ``group_size`` packets per slot across all clients) maps to
    ``rate_per_client = load * group_size / n_clients``; the
    ``load_latency`` scenario does that conversion.
    """

    rate_per_client: float = 0.25

    def __post_init__(self):
        if self.rate_per_client < 0:
            raise ValueError("rate_per_client must be non-negative")

    def arrivals(self, slot, clients, rng) -> Dict[int, int]:
        counts = rng.poisson(self.rate_per_client, size=len(clients))
        return {c: int(k) for c, k in zip(clients, counts) if k}

    def arrival_counts(self, slot, clients, rng) -> np.ndarray:
        # Same single draw as arrivals(), minus the dict round-trip.
        return np.asarray(
            rng.poisson(self.rate_per_client, size=len(clients)),
            dtype=np.int64,
        )

    def can_scan(self, clients) -> bool:
        return True

    def scan_quiet(self, n_slots, clients, rng) -> int:
        if not len(clients):
            return n_slots
        counts = rng.poisson(self.rate_per_client,
                             size=(n_slots, len(clients)))
        return _leading_quiet(counts.any(axis=1), n_slots)

    def replay(self, n_slots, clients, rng) -> None:
        if n_slots and len(clients):
            rng.poisson(self.rate_per_client, size=(n_slots, len(clients)))


@dataclass
class BurstyTraffic(TrafficModel):
    """ON/OFF Markov-modulated arrivals (bursty sources).

    Each client carries a two-state chain: OFF -> ON with probability
    ``p_on``, ON -> OFF with ``p_off``, per slot.  While ON it emits
    Poisson(``rate_on``) packets per slot; while OFF, nothing.  The
    long-run mean rate is ``rate_on * p_on / (p_on + p_off)``.
    """

    rate_on: float = 1.0
    p_on: float = 0.05
    p_off: float = 0.15

    def __post_init__(self):
        if self.rate_on < 0:
            raise ValueError("rate_on must be non-negative")
        for name in ("p_on", "p_off"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self._on: Dict[int, bool] = {}

    def mean_rate(self) -> float:
        denom = self.p_on + self.p_off
        return self.rate_on * (self.p_on / denom) if denom else 0.0

    def arrivals(self, slot, clients, rng) -> Dict[int, int]:
        out: Dict[int, int] = {}
        flips = rng.random(len(clients))
        for c, flip in zip(clients, flips):
            on = self._on.get(c, False)
            if flip < (self.p_off if on else self.p_on):
                on = not on
            self._on[c] = on
            if on:
                k = int(rng.poisson(self.rate_on))
                if k:
                    out[c] = k
        return out

    def can_scan(self, clients) -> bool:
        # An ON client draws an extra Poisson per slot (variable stream
        # consumption) and usually emits — only the all-OFF state has a
        # fixed per-slot draw shape the blocked scan can reproduce.
        return not any(self._on.get(c, False) for c in clients)

    def scan_quiet(self, n_slots, clients, rng) -> int:
        # All chains OFF: a quiet slot consumes len(clients) uniforms
        # and flips nobody ON (every flip draw >= p_on).
        if not len(clients):
            return n_slots
        flips = rng.random((n_slots, len(clients)))
        return _leading_quiet((flips < self.p_on).any(axis=1), n_slots)

    def replay(self, n_slots, clients, rng) -> None:
        if n_slots and len(clients):
            rng.random((n_slots, len(clients)))


@dataclass
class HeterogeneousTraffic(TrafficModel):
    """Per-client Poisson rates: a few heavy hitters over a light base.

    ``rates`` pins exact per-client rates; clients not listed fall back
    to ``base_rate``.  Alternatively ``heavy_fraction``/``heavy_rate``
    designates the first ``ceil(heavy_fraction * n)`` active clients (in
    sorted id order, so the choice is deterministic) as heavy.
    """

    base_rate: float = 0.1
    heavy_rate: float = 1.0
    heavy_fraction: float = 0.0
    rates: Optional[Mapping[int, float]] = None

    def __post_init__(self):
        if self.base_rate < 0 or self.heavy_rate < 0:
            raise ValueError("rates must be non-negative")
        if not 0.0 <= self.heavy_fraction <= 1.0:
            raise ValueError("heavy_fraction must be in [0, 1]")

    def _heavy_set(self, clients: Sequence[int]) -> frozenset:
        if self.heavy_fraction <= 0.0:
            return frozenset()
        n_heavy = int(np.ceil(self.heavy_fraction * len(clients)))
        return frozenset(sorted(clients)[:n_heavy])

    def rate_of(self, client: int, clients: Sequence[int]) -> float:
        if self.rates is not None and client in self.rates:
            return float(self.rates[client])
        if client in self._heavy_set(clients):
            return self.heavy_rate
        return self.base_rate

    def _lam(self, clients: Sequence[int]) -> np.ndarray:
        # One heavy-set computation per slot, not per client.
        heavy = self._heavy_set(clients)
        pinned = self.rates or {}
        return np.array([
            float(pinned[c]) if c in pinned
            else (self.heavy_rate if c in heavy else self.base_rate)
            for c in clients
        ])

    def arrivals(self, slot, clients, rng) -> Dict[int, int]:
        lam = self._lam(clients)
        counts = rng.poisson(lam) if len(lam) else np.empty(0, dtype=int)
        return {c: int(k) for c, k in zip(clients, counts) if k}

    def arrival_counts(self, slot, clients, rng) -> np.ndarray:
        lam = self._lam(clients)
        counts = rng.poisson(lam) if len(lam) else np.empty(0, dtype=int)
        return np.asarray(counts, dtype=np.int64)

    def can_scan(self, clients) -> bool:
        return True

    def scan_quiet(self, n_slots, clients, rng) -> int:
        # Mirrors arrivals(): with no clients the per-slot path skips the
        # poisson call entirely, so the scan must consume nothing either.
        lam = self._lam(clients)
        if not len(lam):
            return n_slots
        counts = rng.poisson(lam, size=(n_slots, len(lam)))
        return _leading_quiet(counts.any(axis=1), n_slots)

    def replay(self, n_slots, clients, rng) -> None:
        lam = self._lam(clients)
        if n_slots and len(lam):
            rng.poisson(lam, size=(n_slots, len(lam)))


def make_traffic(name: str, **params) -> TrafficModel:
    """Factory used by scenario params: name + keyword knobs.

    Names: ``"saturated"``, ``"poisson"``, ``"bursty"``,
    ``"heterogeneous"``.  Unknown keyword arguments raise ``TypeError``
    (dataclass constructors), so sweep grids fail loudly on typos.
    """
    key = name.lower()
    if key == "saturated":
        if params:
            raise TypeError("saturated traffic takes no parameters")
        return SaturatedTraffic()
    if key == "poisson":
        return PoissonTraffic(**params)
    if key == "bursty":
        return BurstyTraffic(**params)
    if key in ("heterogeneous", "hetero"):
        return HeterogeneousTraffic(**params)
    raise ValueError(
        f"unknown traffic model {name!r} "
        "(expected saturated/poisson/bursty/heterogeneous)"
    )


# --------------------------------------------------------------------- #
# Churn and mobility
# --------------------------------------------------------------------- #


@dataclass
class ClientChurn:
    """Join/leave dynamics over a fixed client universe.

    Every slot, each *active* client leaves with probability ``p_leave``
    (never dropping below ``min_active``) and each *departed* client
    re-joins with probability ``p_join``.  The simulation translates a
    join into a fresh association (all APs re-sound the channel, the
    leader re-registers — §8a) and a leave into a disassociation plus a
    purge of the client's queued packets.
    """

    p_leave: float = 0.01
    p_join: float = 0.05
    min_active: int = 3

    def __post_init__(self):
        for name in ("p_leave", "p_join"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.min_active < 0:
            raise ValueError("min_active must be non-negative")

    def step(
        self,
        active: Sequence[int],
        inactive: Sequence[int],
        rng: np.random.Generator,
    ) -> "ChurnEvents":
        """One slot of churn: who leaves and who joins (deterministic order)."""
        leaves: List[int] = []
        joins: List[int] = []
        budget = len(active) - self.min_active
        for c, draw in zip(sorted(active), rng.random(len(active))):
            if budget <= 0:
                break
            if draw < self.p_leave:
                leaves.append(c)
                budget -= 1
        for c, draw in zip(sorted(inactive), rng.random(len(inactive))):
            if draw < self.p_join:
                joins.append(c)
        return ChurnEvents(leaves=leaves, joins=joins)

    def scan_quiet(
        self,
        n_slots: int,
        active: Sequence[int],
        inactive: Sequence[int],
        rng: np.random.Generator,
    ) -> int:
        """Leading slots of a block where :meth:`step` returns no events.

        :meth:`step` draws ``random(len(active))`` then
        ``random(len(inactive))`` unconditionally — both arrays
        materialise before the loops — so one
        ``random((n, na + ni))`` block consumes the identical bitstream.
        A slot is eventful iff some inactive draw clears ``p_join``, or
        the leave budget is positive *and* some active draw clears
        ``p_leave`` (with a zero budget the leave loop breaks before
        recording anything, whatever the draws say).
        """
        na, ni = len(active), len(inactive)
        if not na + ni:
            return n_slots
        u = rng.random((n_slots, na + ni))
        busy = np.zeros(n_slots, dtype=bool)
        if na and len(active) - self.min_active > 0:
            busy |= (u[:, :na] < self.p_leave).any(axis=1)
        if ni:
            busy |= (u[:, na:] < self.p_join).any(axis=1)
        return _leading_quiet(busy, n_slots)

    def replay(
        self,
        n_slots: int,
        active: Sequence[int],
        inactive: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        """Consume exactly ``n_slots`` quiet slots' worth of the stream."""
        total = len(active) + len(inactive)
        if n_slots and total:
            rng.random((n_slots, total))


@dataclass(frozen=True)
class ChurnEvents:
    """One slot's churn outcome."""

    leaves: List[int] = field(default_factory=list)
    joins: List[int] = field(default_factory=list)


@dataclass
class MobilityModel:
    """Two-state pause/move mobility driving per-client fading rates.

    Each client alternates between *paused* (channel correlation
    ``rho_static``) and *moving* (``rho_moving < rho_static``), toggling
    with probabilities ``p_start`` / ``p_stop`` per slot — a discrete
    random-waypoint pause/travel cycle.  On every transition the
    simulation pushes the new per-client rho into the fading network
    (:meth:`~repro.phy.channel.timevarying.FadingNetwork.set_node_rho`),
    so a moving client's links decorrelate faster and its estimates go
    stale unless the tracking machinery keeps up.
    """

    rho_static: float = 0.999
    rho_moving: float = 0.97
    p_start: float = 0.02
    p_stop: float = 0.1

    def __post_init__(self):
        for name in ("rho_static", "rho_moving"):
            rho = getattr(self, name)
            if not 0.0 <= rho <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        for name in ("p_start", "p_stop"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self._moving: Dict[int, bool] = {}

    def is_moving(self, client: int) -> bool:
        return self._moving.get(client, False)

    def step(
        self, clients: Sequence[int], rng: np.random.Generator
    ) -> Dict[int, float]:
        """Advance every client's state; return {client: new_rho} transitions."""
        changed: Dict[int, float] = {}
        draws = rng.random(len(clients))
        for c, draw in zip(sorted(clients), draws):
            moving = self._moving.get(c, False)
            if draw < (self.p_stop if moving else self.p_start):
                moving = not moving
                self._moving[c] = moving
                changed[c] = self.rho_moving if moving else self.rho_static
        return changed

    def scan_quiet(
        self, n_slots: int, clients: Sequence[int],
        rng: np.random.Generator,
    ) -> int:
        """Leading slots of a block where :meth:`step` transitions nobody.

        The per-slot draw is one ``random(len(clients))`` zipped against
        ``sorted(clients)``, so the per-client toggle threshold
        (``p_stop`` while moving, ``p_start`` while paused — frozen for
        the span, since any transition ends it) lines up column-wise
        with a ``(n, len(clients))`` block.
        """
        n = len(clients)
        if not n:
            return n_slots
        thresh = np.array([
            self.p_stop if self._moving.get(c, False) else self.p_start
            for c in sorted(clients)
        ])
        u = rng.random((n_slots, n))
        return _leading_quiet((u < thresh).any(axis=1), n_slots)

    def replay(
        self, n_slots: int, clients: Sequence[int],
        rng: np.random.Generator,
    ) -> None:
        """Consume exactly ``n_slots`` quiet slots' worth of the stream."""
        if n_slots and len(clients):
            rng.random((n_slots, len(clients)))
