"""Planar cluster geometry shared by the clustered mesh and the city.

Both multi-neighbourhood topologies in this repository — the two-cluster
ad-hoc mesh of the paper's §11 (:mod:`repro.sim.clustered`, Fig. 17) and
the K-cell city of :mod:`repro.sim.multicell` — need the same geometric
vocabulary: lay cluster centres out on a plane, scatter nodes around
them, assign every node to exactly one cluster, and turn positions (or
cluster membership) into link gains.  This module is that one shared
implementation:

* **Layouts** — :func:`grid_centers` places K cluster centres on a
  square grid; :func:`disk_positions` scatters nodes uniformly in a
  disk around a centre.
* **Membership** — :func:`contiguous_labels` partitions node ids into K
  contiguous blocks (the Fig.-17 convention: cluster A is ``0..n-1``,
  cluster B is ``n..2n-1``); :func:`nearest_center` recovers membership
  from positions, which doubles as the partition-correctness oracle in
  the multicell property tests.
* **Gain models** — :func:`two_level_gain_db` is the paper's clustered
  rule (strong intra-cluster links, weak inter-cluster links);
  :func:`path_gain_db` is the log-distance rule the city uses for
  cross-cell interference coupling.

Everything is pure geometry: no RNG state lives here (callers pass a
generator to :func:`disk_positions`), so these helpers never perturb a
simulation's stream discipline.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

__all__ = [
    "contiguous_labels",
    "disk_positions",
    "grid_centers",
    "nearest_center",
    "pairwise_distances",
    "path_gain_db",
    "two_level_gain_db",
]


def grid_centers(n_clusters: int, spacing: float = 1.0) -> np.ndarray:
    """``(K, 2)`` cluster centres on a row-major square grid.

    The grid has ``ceil(sqrt(K))`` columns, so 64 clusters form an 8x8
    city block and a non-square count leaves the last row short.  The
    layout is deterministic: centre ``k`` sits at
    ``(spacing * (k % cols), spacing * (k // cols))``.
    """
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    cols = math.ceil(math.sqrt(n_clusters))
    k = np.arange(n_clusters)
    return np.column_stack((spacing * (k % cols), spacing * (k // cols))).astype(float)


def disk_positions(
    center: np.ndarray, n: int, radius: float, rng: np.random.Generator
) -> np.ndarray:
    """``(n, 2)`` positions uniform in the disk of ``radius`` at ``center``.

    Uses the ``sqrt``-radius trick so density is uniform in *area*, not
    radius — the outer half of the area really holds half the nodes,
    which is what makes an area-fraction edge rule meaningful.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    r = radius * np.sqrt(rng.uniform(size=n))
    theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
    return np.asarray(center, dtype=float) + np.column_stack(
        (r * np.cos(theta), r * np.sin(theta))
    )


def contiguous_labels(n_nodes: int, n_clusters: int) -> np.ndarray:
    """``(n_nodes,)`` cluster labels in contiguous, near-equal blocks.

    ``contiguous_labels(2 * n, 2)`` reproduces the Fig.-17 convention
    (first ``n`` ids are cluster A, the rest cluster B); uneven counts
    split as evenly as possible with earlier clusters never smaller.
    """
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    if n_nodes < 0:
        raise ValueError("n_nodes must be non-negative")
    return (np.arange(n_nodes) * n_clusters) // n_nodes if n_nodes else np.empty(
        0, dtype=int
    )


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(len(a), len(b))`` Euclidean distances between two point sets."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def nearest_center(positions: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Cluster label of each position: the index of its nearest centre.

    This is the membership *oracle*: a partition built by scattering
    nodes around their own centre (with scatter radius below half the
    centre spacing) must agree with it exactly — the multicell property
    tests assert that no node is orphaned or claimed by two cells.
    """
    return np.argmin(pairwise_distances(positions, centers), axis=1)


def two_level_gain_db(
    label_a: Union[int, np.ndarray],
    label_b: Union[int, np.ndarray],
    intra_gain_db: float,
    inter_gain_db: float,
):
    """The paper's clustered gain rule: strong within, weak across.

    Links between nodes of the same cluster average ``intra_gain_db``;
    links crossing a cluster boundary average ``inter_gain_db`` (the
    Fig.-17 bottleneck).  Accepts scalars or label arrays.
    """
    same = np.asarray(label_a) == np.asarray(label_b)
    result = np.where(same, float(intra_gain_db), float(inter_gain_db))
    return float(result) if result.ndim == 0 else result


def path_gain_db(
    distance: Union[float, np.ndarray],
    gain_at_ref_db: float,
    ref_distance: float = 1.0,
    exponent: float = 3.5,
):
    """Log-distance path gain: ``gain_at_ref_db`` at the reference range,
    decaying ``10 * exponent * log10(d / ref)`` dB beyond it.

    Distances inside the reference range are clamped to it (the model
    is a far-field rule; letting it diverge at zero distance would hand
    adjacent nodes unbounded gain).
    """
    if ref_distance <= 0:
        raise ValueError("ref_distance must be positive")
    d = np.maximum(np.asarray(distance, dtype=float), ref_distance)
    result = gain_at_ref_db - 10.0 * exponent * np.log10(d / ref_distance)
    return float(result) if result.ndim == 0 else result
