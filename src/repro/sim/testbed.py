"""Synthetic testbed standing in for the paper's 20-node USRP deployment.

The paper's testbed (Fig. 11) is 20 two-antenna nodes, all in radio range
of each other, with enough SNR spread that baseline rates span roughly
4-13 b/s/Hz (the x-axes of Figs. 12-14).  We reproduce the *statistics*
the experiments consume:

* every ordered node pair has a flat-fading Rayleigh channel whose average
  power gain is drawn log-uniform over a configurable dB range (distance /
  shadowing spread);
* over-the-air channels are reciprocal (``H_ba = H_ab^T``), as physics
  requires and §8b relies on; hardware chains are modelled separately via
  :class:`~repro.phy.channel.reciprocity.RadioHardware`;
* receiver noise power is 1.0 by convention, so pair gains are per-link
  average SNRs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plans import ChannelSet
from repro.phy.channel.model import rayleigh_channel
from repro.phy.channel.reciprocity import RadioHardware
from repro.utils.db import db_to_linear
from repro.utils.rng import default_rng


@dataclass(frozen=True)
class TestbedConfig:
    """Testbed generation parameters."""

    #: Not a pytest test class despite the name.
    __test__ = False

    n_nodes: int = 20
    n_antennas: int = 2
    #: Per-pair average SNR range in dB (log-uniform draw).
    gain_db_range: Tuple[float, float] = (8.0, 22.0)
    #: Receiver noise power (per antenna).
    noise_power: float = 1.0
    seed: int = 2009


class Testbed:
    """A generated testbed: reciprocal channels between all node pairs.

    Channels are drawn once at construction and then immutable, matching
    the paper's static-environment experiments; use different seeds for
    different "days" of measurement.
    """

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(self, config: Optional[TestbedConfig] = None):
        config = TestbedConfig() if config is None else config
        self.config = config
        rng = default_rng(config.seed)
        n = config.n_nodes
        if n < 2:
            raise ValueError("testbed needs at least two nodes")
        self._channels: Dict[Tuple[int, int], np.ndarray] = {}
        self._gains_db: Dict[Tuple[int, int], float] = {}
        lo, hi = config.gain_db_range
        for a in range(n):
            for b in range(a + 1, n):
                gain_db = float(rng.uniform(lo, hi))
                h = rayleigh_channel(
                    config.n_antennas, config.n_antennas, rng, gain=db_to_linear(gain_db)
                )
                self._channels[(a, b)] = h
                self._channels[(b, a)] = h.T  # over-the-air reciprocity
                self._gains_db[(a, b)] = gain_db
                self._gains_db[(b, a)] = gain_db
        self.hardware: List[RadioHardware] = [
            RadioHardware.random(config.n_antennas, rng) for _ in range(n)
        ]

    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    @property
    def noise_power(self) -> float:
        return self.config.noise_power

    def channel(self, tx: int, rx: int) -> np.ndarray:
        """Over-the-air channel matrix from node ``tx`` to node ``rx``."""
        if tx == rx:
            raise ValueError("no self-channel")
        return self._channels[(tx, rx)]

    def pair_gain_db(self, a: int, b: int) -> float:
        """Average per-path SNR of the pair, in dB."""
        return self._gains_db[(a, b)]

    def channel_set(self, txs: Sequence[int], rxs: Sequence[int]) -> ChannelSet:
        """Channel set between transmitter and receiver node lists."""
        return ChannelSet({(t, r): self.channel(t, r) for t in txs for r in rxs if t != r})

    def pick_nodes(self, count: int, rng) -> List[int]:
        """Draw ``count`` distinct node ids."""
        rng = default_rng(rng)
        if count > self.n_nodes:
            raise ValueError("not enough nodes in the testbed")
        return list(rng.choice(self.n_nodes, size=count, replace=False))
