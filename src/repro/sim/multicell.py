"""Multi-cell scale-out: a sharded city of interference neighbourhoods.

The paper's §11 clustering conjecture (Fig. 17) argues IAC's gains
survive in *dense* deployments where many interference neighbourhoods
coexist.  :class:`~repro.sim.wlan.WLANSimulation` is one neighbourhood —
one leader, three APs, a dozen clients.  This module scales that out to
hundreds of APs and thousands of clients:

* **Spatial partitioning** — :func:`build_partition` lays ``n_cells``
  cell centres on a grid (:func:`repro.sim.geometry.grid_centers`, the
  K-cluster generalisation of the Fig.-17 two-cluster seed) and
  scatters each cell's APs and clients in a disk around its centre.
  Scatter radius is held below half the grid pitch, so every node's
  nearest centre is its own cell — each client and AP lands in exactly
  one interference neighbourhood (pinned by property tests against the
  :func:`~repro.sim.geometry.nearest_center` oracle).
* **Per-cell leader election** — each cell runs its *own*
  ``WLANSimulation`` whose leader is elected among that cell's APs
  (:func:`repro.mac.association.elect_leader`), instead of one global
  leader; :func:`elect_cell_leaders` exposes the winners as global AP
  ids.
* **Deterministic fan-out** — each cell's simulation seed is an
  identity hash of ``(config seed, cell index)`` (:func:`cell_sim_seed`,
  the sweep engine's per-cell hash discipline), so a cell computes the
  same trajectory whichever worker runs it.
* **Slot-barrier boundary exchange** — cells run ``barrier_slots``
  slots, then exchange :class:`CellSummary` records.  A cell's per-round
  busy fraction radiates interference to its neighbours through a
  log-distance coupling matrix; the resulting per-cell floor is
  injected into that cell's *edge* clients (the outermost
  ``edge_fraction`` of the cell disk's area) via
  :meth:`~repro.sim.wlan.WLANSimulation.set_interference_floor` before
  the next round (a Jacobi-style exchange: round ``r`` sees round
  ``r-1``'s activity).  Floors are computed centrally from the gathered
  summaries, in fixed cell order, so they are bit-identical for any
  worker count.
* **Sharded execution** — ``run(n_slots, workers=W)`` shards cells
  round-robin across ``W`` persistent worker *processes* (cells stay
  alive in their shard between barriers; only floors and summaries
  cross the pipe).  ``workers=1`` is the in-process reference loop, and
  the two are bit-identical: a cell's trajectory depends only on its
  seed and its floor sequence, never on which shard stepped it.
* **Aggregation** — :class:`MultiCellStats` merges per-cell
  :class:`~repro.sim.wlan.WLANStats` into network-wide goodput,
  delivered/offered/dropped accounting, queueing latency and Jain
  fairness over *all* clients, plus a canonical :meth:`digest
  <MultiCellStats.digest>` used by CI to assert worker-count
  bit-identity.

Surfaced as the ``city_scale`` scenario
(:mod:`repro.experiments.multicell_scenarios`) and ``repro bench
--city`` (``BENCH_city.json``).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.mac.association import elect_leader
from repro.sim.geometry import disk_positions, grid_centers, path_gain_db
from repro.sim.wlan import WLANConfig, WLANSimulation, WLANStats
from repro.utils.db import db_to_linear

__all__ = [
    "CellPartition",
    "CellSummary",
    "MultiCellConfig",
    "MultiCellSimulation",
    "MultiCellStats",
    "build_partition",
    "cell_sim_seed",
    "elect_cell_leaders",
]

#: Downlink groups carry up to three packets per slot (Lemma 5.2, M=2).
_SERVICE_CAPACITY = 3


@dataclass(frozen=True)
class MultiCellConfig:
    """A city of ``n_cells`` interference neighbourhoods on a grid."""

    n_cells: int = 64
    #: APs per cell; the IAC downlink construction needs three.
    aps_per_cell: int = 3
    clients_per_cell: int = 16
    n_antennas: int = 2
    rho: float = 0.998
    #: Mean in-cell pair SNR in dB (noise power is 1).
    mean_gain_db: float = 15.0
    algorithm: str = "best2"
    engine: str = "batched"
    #: Per-cell arrival process: ``"saturated"`` or ``"poisson"`` at a
    #: fraction ``load`` of the cell's 3-packet/slot service capacity.
    #: (Finite load makes the boundary exchange informative: a lightly
    #: loaded cell radiates less interference than a busy one.)
    traffic: str = "poisson"
    load: float = 0.7
    #: Grid pitch between cell centres and node-scatter radius (must be
    #: below half the pitch so the partition is unambiguous).
    cell_spacing: float = 1.0
    cell_radius: float = 0.35
    #: Interference (dB relative to noise) a *fully busy* cell lands on
    #: a neighbour one ``cell_spacing`` away; decays with the
    #: log-distance exponent beyond that, and cells farther than
    #: ``interference_radius`` spacings contribute nothing.
    coupling_gain_db: float = -10.0
    path_loss_exp: float = 3.5
    interference_radius: float = 2.5
    #: Outermost area fraction of each cell whose clients take the
    #: boundary floor (interior clients are shielded by their cell).
    edge_fraction: float = 0.5
    #: Slots between boundary-interference exchanges.
    barrier_slots: int = 20
    seed: int = 0
    #: Fault-injection plan applied to *every* cell
    #: (:class:`repro.faults.FaultPlan` fields as a flat dict); each
    #: cell's injector draws from its own hashed-seed streams, so the
    #: city stays bit-identical for any worker count.  ``None`` disables
    #: the fault path (the pre-fault trajectory, bit for bit).
    fault_params: Optional[Dict[str, Any]] = None
    #: Seconds a shard worker may stay silent (alive but not answering)
    #: after a barrier message before the run fails loudly, naming the
    #: shard and its cells.  A *dead* worker is detected within one poll
    #: interval regardless.
    shard_timeout: float = 60.0
    #: Times a crashed shard worker is restarted (and replayed from its
    #: completed barriers) before the run gives up.
    max_shard_restarts: int = 2

    @property
    def n_aps(self) -> int:
        return self.n_cells * self.aps_per_cell

    @property
    def n_clients(self) -> int:
        return self.n_cells * self.clients_per_cell


def cell_sim_seed(config_seed: int, cell: int) -> int:
    """The cell's ``WLANConfig`` seed: an identity hash, not an offset.

    Mirrors the sweep engine's per-cell discipline
    (:func:`repro.experiments.sweep.cell_key`): the seed is derived by
    hashing the cell's full identity, so cell ``k`` computes the same
    trajectory whichever worker runs it, whatever cells surround it —
    and neighbouring config seeds never produce overlapping streams.
    """
    identity = json.dumps(
        {"multicell_seed": int(config_seed), "cell": int(cell)},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(identity.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


@dataclass(frozen=True)
class CellPartition:
    """The city's node placement and its cell assignment.

    Global ids are indices: AP ``g`` lives in cell ``g // aps_per_cell``
    and maps to local AP id ``g % aps_per_cell`` inside that cell's
    ``WLANSimulation``; client ``g`` maps to local id
    ``100 + g % clients_per_cell`` (the WLAN sim's client-id convention).
    """

    centers: np.ndarray  #: (K, 2) cell centres.
    ap_positions: np.ndarray  #: (K * A, 2)
    client_positions: np.ndarray  #: (K * C, 2)
    ap_cell: np.ndarray  #: (K * A,) owning cell of each AP.
    client_cell: np.ndarray  #: (K * C,) owning cell of each client.
    #: Clients in the outermost ``edge_fraction`` of their cell's area.
    edge_client: np.ndarray  #: (K * C,) bool

    @property
    def n_cells(self) -> int:
        return len(self.centers)

    def aps_of(self, cell: int) -> np.ndarray:
        """Global AP ids of one cell, in id order."""
        return np.flatnonzero(self.ap_cell == cell)

    def clients_of(self, cell: int) -> np.ndarray:
        """Global client ids of one cell, in id order."""
        return np.flatnonzero(self.client_cell == cell)

    def edge_clients_of(self, cell: int) -> np.ndarray:
        """Global ids of the cell's boundary clients."""
        return np.flatnonzero((self.client_cell == cell) & self.edge_client)


def build_partition(config: MultiCellConfig) -> CellPartition:
    """Place every AP and client and assign each to exactly one cell.

    Placement draws from per-cell RNG streams spawned from the config
    seed (`SeedSequence(seed).spawn`), so cell ``k``'s geometry is
    independent of how many cells exist — growing the city never moves
    existing nodes.  The scatter radius is validated against half the
    grid pitch, which makes the construction's block assignment agree
    with the :func:`~repro.sim.geometry.nearest_center` oracle.
    """
    if config.n_cells < 1:
        raise ValueError("need at least one cell")
    if config.aps_per_cell < 3:
        raise ValueError("IAC downlink groups need three APs per cell")
    if config.clients_per_cell < config.aps_per_cell:
        raise ValueError("need at least as many clients as APs per cell")
    if not 0.0 < config.cell_radius < 0.5 * config.cell_spacing:
        raise ValueError(
            "cell_radius must be positive and below cell_spacing / 2 "
            "(otherwise a node could land nearer a neighbouring centre)"
        )
    if not 0.0 <= config.edge_fraction <= 1.0:
        raise ValueError("edge_fraction must be in [0, 1]")
    if config.shard_timeout <= 0.0:
        raise ValueError("shard_timeout must be > 0 seconds")
    if config.max_shard_restarts < 0:
        raise ValueError("max_shard_restarts must be >= 0")
    centers = grid_centers(config.n_cells, config.cell_spacing)
    streams = np.random.SeedSequence(config.seed).spawn(config.n_cells)
    ap_positions = np.empty((config.n_aps, 2))
    client_positions = np.empty((config.n_clients, 2))
    a, c = config.aps_per_cell, config.clients_per_cell
    for k in range(config.n_cells):
        rng = np.random.default_rng(streams[k])
        ap_positions[k * a : (k + 1) * a] = disk_positions(
            centers[k], a, config.cell_radius, rng
        )
        client_positions[k * c : (k + 1) * c] = disk_positions(
            centers[k], c, config.cell_radius, rng
        )
    ap_cell = np.repeat(np.arange(config.n_cells), a)
    client_cell = np.repeat(np.arange(config.n_cells), c)
    # Edge rule: uniform-in-disk density makes "outermost edge_fraction
    # of the area" the annulus beyond radius * sqrt(1 - edge_fraction).
    own_center = centers[client_cell]
    dist = np.linalg.norm(client_positions - own_center, axis=1)
    threshold = config.cell_radius * np.sqrt(1.0 - config.edge_fraction)
    edge_client = dist > threshold
    return CellPartition(
        centers=centers,
        ap_positions=ap_positions,
        client_positions=client_positions,
        ap_cell=ap_cell,
        client_cell=client_cell,
        edge_client=edge_client,
    )


def elect_cell_leaders(partition: CellPartition) -> np.ndarray:
    """One elected leader per cell, as global AP ids.

    Runs the WLAN's real election rule
    (:func:`repro.mac.association.elect_leader`) over each cell's AP
    set — per-neighbourhood leadership instead of the single global
    leader of the one-cell simulation.
    """
    return np.array(
        [elect_leader(list(partition.aps_of(k))) for k in range(partition.n_cells)]
    )


@dataclass(frozen=True)
class CellSummary:
    """What a cell tells its neighbours at a slot barrier."""

    cell: int
    #: Fraction of the round's slots the cell transmitted (non-idle).
    busy_fraction: float
    #: Rate delivered during the round (diagnostic only — floors depend
    #: solely on ``busy_fraction``).
    round_rate: float


@dataclass
class MultiCellStats:
    """Network-wide outcome, merged from per-cell ``WLANStats``."""

    n_cells: int = 0
    slots: int = 0
    #: Per-cell total goodput (b/s/Hz), in cell order.
    cell_rates: List[float] = field(default_factory=list)
    #: Per-client average rate, keyed by *global* client id.
    per_client_rate: Dict[int, float] = field(default_factory=dict)
    delivered_packets: int = 0
    offered_packets: int = 0
    dropped_packets: int = 0
    idle_slots: int = 0
    drift_reports: int = 0
    latency_slots_total: float = 0.0
    #: Mean/max injected boundary floor over (round, cell) pairs, in
    #: noise units — how loud the city is at its edges.
    mean_interference_floor: float = 0.0
    max_interference_floor: float = 0.0
    # ---- fault/degradation counters (0 without fault injection) ------ #
    frames_lost_backplane: int = 0
    frames_delayed_backplane: int = 0
    csi_rejections: int = 0
    fallback_slots: int = 0
    re_elections: int = 0
    #: Shard-worker restarts this run survived.  *Excluded* from
    #: :meth:`to_dict` / :meth:`digest` by design: a run whose worker was
    #: killed and replayed must digest identically to one that wasn't —
    #: that equality is exactly what the self-healing contract promises.
    shard_restarts: int = 0

    @property
    def n_clients(self) -> int:
        return len(self.per_client_rate)

    @property
    def network_rate(self) -> float:
        """Network-wide goodput: the sum of per-cell total rates."""
        return float(sum(self.cell_rates))

    @property
    def mean_cell_rate(self) -> float:
        return self.network_rate / self.n_cells if self.n_cells else 0.0

    @property
    def mean_latency_slots(self) -> float:
        if not self.delivered_packets:
            return 0.0
        return self.latency_slots_total / self.delivered_packets

    @property
    def idle_fraction(self) -> float:
        total = self.n_cells * self.slots
        return self.idle_slots / total if total else 0.0

    @property
    def jain_fairness(self) -> float:
        """Jain's index over every client in the city (1.0 = fair)."""
        # Sorted client order: the merge inserts clients in shard order,
        # and float sums are order-sensitive at the ulp level — a
        # canonical order keeps the summary permutation-invariant.
        rates = [self.per_client_rate[c] for c in sorted(self.per_client_rate)]
        if not rates:
            return 1.0
        square_sum = sum(r * r for r in rates)
        if square_sum == 0.0:
            return 1.0
        total = sum(rates)
        return (total * total) / (len(rates) * square_sum)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_cells": self.n_cells,
            "slots": self.slots,
            "cell_rates": [float(r) for r in self.cell_rates],
            "per_client_rate": {
                str(c): float(r) for c, r in sorted(self.per_client_rate.items())
            },
            "delivered_packets": self.delivered_packets,
            "offered_packets": self.offered_packets,
            "dropped_packets": self.dropped_packets,
            "idle_slots": self.idle_slots,
            "drift_reports": self.drift_reports,
            "latency_slots_total": float(self.latency_slots_total),
            "mean_interference_floor": float(self.mean_interference_floor),
            "max_interference_floor": float(self.max_interference_floor),
            "frames_lost_backplane": self.frames_lost_backplane,
            "frames_delayed_backplane": self.frames_delayed_backplane,
            "csi_rejections": self.csi_rejections,
            "fallback_slots": self.fallback_slots,
            "re_elections": self.re_elections,
            "network_rate": self.network_rate,
            "jain_fairness": self.jain_fairness,
        }

    def digest(self) -> str:
        """Canonical hash of the full outcome (worker-invariance check).

        Two runs that differ in any per-client rate, counter or floor
        statistic produce different digests; CI asserts digests are
        equal across worker counts.
        """
        doc = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# Shard execution
# --------------------------------------------------------------------- #


def _cell_wlan_config(config: MultiCellConfig, cell: int) -> WLANConfig:
    """The ``WLANConfig`` of one cell (its own hashed seed)."""
    if config.traffic == "saturated":
        traffic, traffic_params = "saturated", None
    elif config.traffic == "poisson":
        traffic = "poisson"
        traffic_params = {
            "rate_per_client": float(config.load)
            * _SERVICE_CAPACITY
            / config.clients_per_cell
        }
    else:
        raise ValueError(
            f"unknown multicell traffic model {config.traffic!r} "
            "(expected 'saturated' or 'poisson')"
        )
    return WLANConfig(
        n_aps=config.aps_per_cell,
        n_clients=config.clients_per_cell,
        n_antennas=config.n_antennas,
        rho=config.rho,
        mean_gain_db=config.mean_gain_db,
        algorithm=config.algorithm,
        engine=config.engine,
        traffic=traffic,
        traffic_params=traffic_params,
        fault_params=(
            dict(config.fault_params) if config.fault_params is not None else None
        ),
        seed=cell_sim_seed(config.seed, cell),
    )


class _Shard:
    """A set of cells stepped together between barriers (one worker).

    Runs identically in-process (``workers=1``) and inside a worker
    process: the shard only ever sees its own cells' configs, the local
    ids of their edge clients, and the scalar floor each cell was
    assigned for the round.
    """

    def __init__(
        self,
        cells: Sequence[int],
        configs: Dict[int, WLANConfig],
        edge_local_ids: Dict[int, List[int]],
    ):
        self.sims = {k: WLANSimulation(configs[k]) for k in cells}
        self.edge_local_ids = edge_local_ids
        self._prev_idle = {k: 0 for k in cells}
        self._prev_rate = {k: 0.0 for k in cells}

    def run_round(
        self, n_slots: int, floors: Mapping[int, float]
    ) -> Dict[int, CellSummary]:
        summaries: Dict[int, CellSummary] = {}
        for k in sorted(self.sims):
            sim = self.sims[k]
            floor = float(floors.get(k, 0.0))
            sim.set_interference_floor(
                {cid: floor for cid in self.edge_local_ids[k]} if floor else {}
            )
            stats = sim.run(n_slots)
            busy = 1.0 - (stats.idle_slots - self._prev_idle[k]) / n_slots
            round_rate = stats.total_rate * stats.slots - self._prev_rate[k]
            self._prev_idle[k] = stats.idle_slots
            self._prev_rate[k] = stats.total_rate * stats.slots
            summaries[k] = CellSummary(
                cell=k, busy_fraction=busy, round_rate=round_rate
            )
        return summaries

    def stats(self) -> Dict[int, WLANStats]:
        return {k: sim.stats for k, sim in sorted(self.sims.items())}


#: Pipe poll granularity (seconds): how quickly a dead peer is noticed.
_POLL_INTERVAL = 0.2


class _ShardDied(RuntimeError):
    """Internal: the worker process behind a shard handle is gone.

    Never escapes :meth:`MultiCellSimulation.run` — the caller either
    revives the shard (restart-and-replay) or converts the condition
    into a plain :class:`RuntimeError` once restarts are exhausted.
    """


def _shard_worker(conn, cells, configs, edge_local_ids) -> None:
    """Worker-process main loop: build the shard, serve barrier rounds.

    Receives are poll-guarded: a vanished parent (closed pipe) ends the
    loop instead of blocking forever on a dead file descriptor.
    """
    shard = _Shard(cells, configs, edge_local_ids)
    try:
        while True:
            if not conn.poll(_POLL_INTERVAL):
                continue
            try:
                # Guarded: poll() just confirmed data (or EOF) is ready.
                message = conn.recv()  # repro-lint: ignore[no-naked-recv]
            except EOFError:
                break
            if message[0] == "run":
                _, n_slots, floors = message
                conn.send(shard.run_round(n_slots, floors))
            elif message[0] == "stats":
                conn.send(shard.stats())
            else:  # "stop"
                break
    finally:
        conn.close()


class _ShardHandle:
    """One worker process plus everything needed to resurrect it.

    A cell's trajectory is a deterministic function of its config and
    the floor sequence it was handed (the module's fan-out discipline),
    so a crashed worker is healed by starting a fresh process and
    replaying the ``completed`` barrier log — the replacement arrives at
    bit-identical state, and the run's digest never betrays the crash.
    """

    def __init__(
        self,
        ctx,
        index: int,
        cells: Sequence[int],
        configs: Dict[int, WLANConfig],
        edge_local_ids: Dict[int, List[int]],
        timeout: float,
        max_restarts: int,
    ):
        self.index = index
        self.cells = list(cells)
        self.restarts = 0
        #: Barrier log: ``(n_slots, floors)`` of every answered round.
        self.completed: List[Any] = []
        self._ctx = ctx
        self._configs = configs
        self._edge_local_ids = edge_local_ids
        self._timeout = timeout
        self._max_restarts = max_restarts
        self._pipe = None
        self._process = None
        self._start()

    def _start(self) -> None:
        parent, child = self._ctx.Pipe()
        self._process = self._ctx.Process(
            target=_shard_worker,
            args=(child, self.cells, self._configs, self._edge_local_ids),
        )
        self._process.start()
        child.close()
        self._pipe = parent

    def _died(self, what: str) -> _ShardDied:
        return _ShardDied(
            f"shard {self.index} (cells {self.cells}) worker died {what}"
        )

    def send(self, message) -> None:
        try:
            self._pipe.send(message)
        except (BrokenPipeError, OSError):
            raise _ShardDied(
                f"shard {self.index} (cells {self.cells}) worker died "
                "before accepting a message"
            ) from None

    def recv(self):
        """One reply, or a diagnosis: dead worker (:class:`_ShardDied`,
        revivable) versus alive-but-silent past the configured timeout
        (:class:`RuntimeError`, fatal — a hung worker holds state a
        restart cannot reconstruct mid-round)."""
        waited = 0.0
        while True:
            if self._pipe.poll(_POLL_INTERVAL):
                try:
                    # Guarded: poll() confirmed data (or EOF) is ready.
                    return self._pipe.recv()  # repro-lint: ignore[no-naked-recv]
                except (EOFError, OSError):
                    # EOFError on an orderly close, ConnectionResetError
                    # when the worker was killed outright.
                    raise self._died("mid-round (pipe closed)") from None
            if not self._process.is_alive():
                raise self._died(
                    f"mid-round (exit code {self._process.exitcode})"
                )
            waited += _POLL_INTERVAL
            if waited >= self._timeout:
                raise RuntimeError(
                    f"shard {self.index} (cells {self.cells}) sent no "
                    f"result within {self._timeout:.1f}s; worker is alive "
                    "but silent (raise MultiCellConfig.shard_timeout for "
                    "slow hosts)"
                )

    def revive(self) -> None:
        """Restart the worker and replay its barrier log."""
        if self.restarts >= self._max_restarts:
            raise RuntimeError(
                f"shard {self.index} (cells {self.cells}) died "
                f"{self.restarts + 1} times; giving up after "
                f"{self._max_restarts} restart(s)"
            )
        self.restarts += 1
        self.close()
        self._start()
        for n_slots, floors in self.completed:
            self.send(("run", n_slots, floors))
            # _ShardHandle.recv polls with a timeout internally.
            self.recv()  # repro-lint: ignore[no-naked-recv]

    def close(self) -> None:
        if self._pipe is not None:
            try:
                self._pipe.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        if self._process is not None:
            self._process.join(timeout=5)
            if self._process.is_alive():  # pragma: no cover - hung worker
                self._process.terminate()
                self._process.join()


class MultiCellSimulation:
    """A city of per-cell WLANs coupled by boundary interference.

    ``run(n_slots, workers=W)`` simulates every cell for ``n_slots``
    slots in rounds of ``config.barrier_slots``, exchanging boundary
    interference at each barrier.  Each call builds fresh cells (the
    multi-cell simulation is a deterministic function of its config, so
    repeated runs reproduce, not extend, the deployment — worker
    processes are torn down at the end of the call).
    """

    def __init__(self, config: Optional[MultiCellConfig] = None):
        self.config = MultiCellConfig() if config is None else config
        self.partition = build_partition(self.config)
        self.cell_leaders = elect_cell_leaders(self.partition)
        self.coupling = self._coupling_matrix()
        self._configs = {
            k: _cell_wlan_config(self.config, k) for k in range(self.config.n_cells)
        }
        # Local WLAN client ids (100 + local index) of each cell's edge
        # clients — what the floor injection hands to set_interference_floor.
        c = self.config.clients_per_cell
        self._edge_local_ids = {
            k: [100 + int(g % c) for g in self.partition.edge_clients_of(k)]
            for k in range(self.config.n_cells)
        }

    def _coupling_matrix(self) -> np.ndarray:
        """``coupling[i, j]``: linear interference power cell ``i`` lands
        on cell ``j``'s edge when fully busy (zero on the diagonal and
        beyond ``interference_radius`` spacings)."""
        centers = self.partition.centers
        diff = centers[:, None, :] - centers[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=-1)) / self.config.cell_spacing
        gain_db = path_gain_db(
            np.maximum(dist, 1e-12),
            self.config.coupling_gain_db,
            ref_distance=1.0,
            exponent=self.config.path_loss_exp,
        )
        coupling = db_to_linear(np.asarray(gain_db, dtype=float))
        coupling[dist > self.config.interference_radius] = 0.0
        np.fill_diagonal(coupling, 0.0)
        return coupling

    def _floors_from(self, summaries: Dict[int, CellSummary]) -> np.ndarray:
        """Next round's per-cell edge floor, in fixed cell order."""
        busy = np.array(
            [summaries[k].busy_fraction for k in range(self.config.n_cells)]
        )
        return busy @ self.coupling

    def _aggregate(
        self,
        cell_stats: Dict[int, WLANStats],
        n_slots: int,
        floor_history: List[np.ndarray],
    ) -> MultiCellStats:
        config = self.config
        stats = MultiCellStats(n_cells=config.n_cells, slots=n_slots)
        c = config.clients_per_cell
        for k in range(config.n_cells):
            cs = cell_stats[k]
            stats.cell_rates.append(cs.total_rate)
            for local, rate in sorted(cs.per_client_rate.items()):
                stats.per_client_rate[k * c + (int(local) - 100)] = rate
            stats.delivered_packets += cs.delivered_packets
            stats.offered_packets += cs.offered_packets
            stats.dropped_packets += cs.dropped_packets
            stats.idle_slots += cs.idle_slots
            stats.drift_reports += cs.drift_reports
            stats.latency_slots_total += cs.latency_slots_total
            stats.frames_lost_backplane += cs.frames_lost_backplane
            stats.frames_delayed_backplane += cs.frames_delayed_backplane
            stats.csi_rejections += cs.csi_rejections
            stats.fallback_slots += cs.fallback_slots
            stats.re_elections += cs.re_elections
        if floor_history:
            floors = np.stack(floor_history)
            stats.mean_interference_floor = float(floors.mean())
            stats.max_interference_floor = float(floors.max())
        return stats

    def run(self, n_slots: int, workers: int = 1) -> MultiCellStats:
        """Simulate ``n_slots`` slots across every cell; merge the stats.

        ``workers`` shards cells round-robin over that many persistent
        worker processes; the result is bit-identical for any count
        (``tests/sim/test_multicell.py`` and ``repro bench --city``
        assert it).
        """
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        config = self.config
        rounds: List[int] = []
        remaining = n_slots
        while remaining > 0:
            step = min(config.barrier_slots, remaining)
            rounds.append(step)
            remaining -= step

        floors = np.zeros(config.n_cells)
        floor_history: List[np.ndarray] = []
        workers = min(workers, config.n_cells)
        if workers == 1:
            shard = _Shard(
                range(config.n_cells), self._configs, self._edge_local_ids
            )
            for step in rounds:
                floor_history.append(floors)
                summaries = shard.run_round(step, dict(enumerate(floors)))
                floors = self._floors_from(summaries)
            return self._aggregate(shard.stats(), n_slots, floor_history)

        # Persistent shard processes: cells live in their worker between
        # barriers; only scalar floors and summaries cross the pipes.
        # Every receive is timeout-guarded and every crashed worker is
        # restarted and replayed from its barrier log, so a SIGKILLed
        # shard heals to a bit-identical digest and a hung shard fails
        # loudly naming itself instead of hanging the caller forever.
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = mp.get_context("spawn")
        shards = [list(range(w, config.n_cells, workers)) for w in range(workers)]
        handles: List[_ShardHandle] = []
        try:
            for index, cells in enumerate(shards):
                handles.append(
                    _ShardHandle(
                        ctx,
                        index,
                        cells,
                        {k: self._configs[k] for k in cells},
                        {k: self._edge_local_ids[k] for k in cells},
                        timeout=config.shard_timeout,
                        max_restarts=config.max_shard_restarts,
                    )
                )
            for step in rounds:
                floor_history.append(floors)
                floor_map = dict(enumerate(floors))
                messages = [
                    ("run", step, {k: floor_map[k] for k in handle.cells})
                    for handle in handles
                ]
                # Optimistic broadcast keeps the shards concurrent; a
                # death here surfaces at (and is healed by) the collect
                # phase's roundtrip below.
                for handle, message in zip(handles, messages):
                    try:
                        handle.send(message)
                    except _ShardDied:
                        pass
                summaries: Dict[int, CellSummary] = {}
                for handle, message in zip(handles, messages):
                    summaries.update(self._roundtrip(handle, message))
                    handle.completed.append((message[1], message[2]))
                floors = self._floors_from(summaries)
            cell_stats: Dict[int, WLANStats] = {}
            for handle in handles:
                try:
                    handle.send(("stats",))
                except _ShardDied:
                    pass
            for handle in handles:
                cell_stats.update(self._roundtrip(handle, ("stats",)))
            for handle in handles:
                try:
                    handle.send(("stop",))
                except _ShardDied:  # pragma: no cover - died after stats
                    pass
        finally:
            for handle in handles:
                handle.close()
        stats = self._aggregate(cell_stats, n_slots, floor_history)
        stats.shard_restarts = sum(h.restarts for h in handles)
        return stats

    @staticmethod
    def _roundtrip(handle: _ShardHandle, message):
        """The shard's reply to ``message``, healing crashes en route.

        A dead worker is revived (fresh process, barrier log replayed)
        and the in-flight message resent; repeated deaths keep healing
        until :meth:`_ShardHandle.revive` exhausts its restart budget
        and raises.  An alive-but-silent worker raises from
        :meth:`_ShardHandle.recv` directly — hangs are not healable.
        """
        while True:
            try:
                # _ShardHandle.recv polls with a timeout internally.
                return handle.recv()  # repro-lint: ignore[no-naked-recv]
            except _ShardDied:
                handle.revive()
                try:
                    handle.send(message)
                except _ShardDied:  # pragma: no cover - died instantly
                    continue
