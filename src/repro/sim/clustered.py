"""Clustered MIMO ad-hoc networks (paper §11, Fig. 17).

The paper's closing conjecture: in clustered ad-hoc/mesh settings, links
*within* a cluster are fast (54 Mbps-class) and links *across* clusters are
slow -- so the inter-cluster links bottleneck the network, and "IAC can
double the throughput of the inter-cluster bottleneck links" because a
cluster's nodes can cooperate over their fast intra-cluster links exactly
the way IAC's APs cooperate over the Ethernet.

This module builds that topology and evaluates the bottleneck throughput:

* **802.11-MIMO**: one transmitter crosses the gap at a time, using the
  best sender-receiver pair (point-to-point eigenmode beamforming);
* **IAC**: two senders in the source cluster transmit three concurrent
  packets to two receivers in the destination cluster (the 2x2 uplink
  construction); the receiving cluster's intra-links carry the decoded
  packets for cancellation, playing the Ethernet's role.

End-to-end flow throughput is the min of the intra-cluster relay capacity
and the inter-cluster rate, so as long as intra-links are much faster the
IAC gain on the bottleneck carries through to the flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.dot11_mimo import best_ap_link
from repro.core.alignment import solve_uplink_three_packets
from repro.core.decoder import decode_rate_level
from repro.core.plans import ChannelSet
from repro.phy.channel.model import rayleigh_channel
from repro.phy.mimo.eigenmode import eigenmode_link
from repro.sim.geometry import contiguous_labels, two_level_gain_db
from repro.utils.db import db_to_linear
from repro.utils.rng import default_rng


@dataclass(frozen=True)
class ClusteredConfig:
    """Topology parameters for a two-cluster network."""

    nodes_per_cluster: int = 4
    n_antennas: int = 2
    #: Average per-path SNR of links within a cluster (strong).
    intra_gain_db: float = 30.0
    #: Average per-path SNR of links across clusters (the bottleneck).
    inter_gain_db: float = 8.0
    noise_power: float = 1.0
    seed: int = 17


class ClusteredNetwork:
    """Two clusters with strong intra- and weak inter-cluster channels."""

    def __init__(self, config: Optional[ClusteredConfig] = None):
        config = ClusteredConfig() if config is None else config
        if config.nodes_per_cluster < 2:
            raise ValueError("clusters need at least two nodes for IAC")
        self.config = config
        rng = default_rng(config.seed)
        n = config.nodes_per_cluster
        m = config.n_antennas
        #: Node ids: cluster A = 0..n-1, cluster B = n..2n-1 — the
        #: contiguous two-cluster special case of the shared layout
        #: helpers (:mod:`repro.sim.geometry`).
        labels = contiguous_labels(2 * n, 2)
        self.cluster_a = [int(i) for i in np.flatnonzero(labels == 0)]
        self.cluster_b = [int(i) for i in np.flatnonzero(labels == 1)]
        self._channels: Dict[Tuple[int, int], np.ndarray] = {}
        for a in range(2 * n):
            for b in range(a + 1, 2 * n):
                gain_db = two_level_gain_db(
                    labels[a], labels[b], config.intra_gain_db, config.inter_gain_db
                )
                h = rayleigh_channel(m, m, rng, gain=db_to_linear(gain_db))
                self._channels[(a, b)] = h
                self._channels[(b, a)] = h.T

    def channel(self, tx: int, rx: int) -> np.ndarray:
        if tx == rx:
            raise ValueError("no self-channel")
        return self._channels[(tx, rx)]

    def channel_set(self, txs, rxs) -> ChannelSet:
        return ChannelSet(
            {(t, r): self.channel(t, r) for t in txs for r in rxs if t != r}
        )

    # ------------------------------------------------------------------ #
    # Capacity of the pieces
    # ------------------------------------------------------------------ #

    def intra_cluster_rate(self, cluster: List[int]) -> float:
        """Mean point-to-point eigenmode rate among a cluster's node pairs."""
        rates = []
        for i, a in enumerate(cluster):
            for b in cluster[i + 1 :]:
                rates.append(
                    eigenmode_link(self.channel(a, b), self.config.noise_power).rate()
                )
        return float(np.mean(rates))

    def bottleneck_rate_dot11(self) -> float:
        """Best single sender-receiver pair across the gap (802.11-MIMO)."""
        noise = self.config.noise_power
        chans = self.channel_set(self.cluster_a, self.cluster_b)
        return max(
            best_ap_link(chans, a, self.cluster_b, noise).rate for a in self.cluster_a
        )

    def bottleneck_rate_iac(self, rng=None) -> float:
        """Three concurrent packets across the gap via the IAC construction.

        Tries every (2 senders, 2 receivers) combination from the clusters
        and alternates which sender uploads two packets, as in §10.1.
        """
        rng = default_rng(rng if rng is not None else self.config.seed)
        noise = self.config.noise_power
        best = 0.0
        for i, s0 in enumerate(self.cluster_a):
            for s1 in self.cluster_a[i + 1 :]:
                for j, r0 in enumerate(self.cluster_b):
                    for r1 in self.cluster_b[j + 1 :]:
                        chans = self.channel_set([s0, s1], [r0, r1])
                        rates = []
                        for first, second in ((s0, s1), (s1, s0)):
                            solution = solve_uplink_three_packets(
                                chans,
                                clients=(first, second),
                                aps=(r0, r1),
                                rng=rng,
                                n_candidates=4,
                            )
                            rates.append(
                                decode_rate_level(solution, chans, noise).total_rate
                            )
                        best = max(best, float(np.mean(rates)))
        return best

    # ------------------------------------------------------------------ #
    # End-to-end flows
    # ------------------------------------------------------------------ #

    def flow_throughput(self, scheme: str, rng=None) -> float:
        """End-to-end rate of a flow relayed A -> gap -> B.

        The flow is bottlenecked by ``min(intra relay rate, gap rate)``; the
        receiving cluster additionally spends intra capacity on sharing
        decoded packets for cancellation under IAC (one crossing per
        bootstrap packet, like the Ethernet in a WLAN).
        """
        intra = min(
            self.intra_cluster_rate(self.cluster_a),
            self.intra_cluster_rate(self.cluster_b),
        )
        if scheme == "dot11":
            return min(intra, self.bottleneck_rate_dot11())
        if scheme == "iac":
            gap = self.bottleneck_rate_iac(rng)
            # 1 of 3 packets crosses the intra-cluster links once more for
            # cancellation; the relay cost rises accordingly.
            relay_capacity = intra / (1.0 + 1.0 / 3.0)
            return min(relay_capacity, gap)
        raise ValueError("scheme must be 'dot11' or 'iac'")

    def gain(self, rng=None) -> float:
        """IAC's end-to-end improvement on the clustered topology."""
        return self.flow_throughput("iac", rng) / self.flow_throughput("dot11")
