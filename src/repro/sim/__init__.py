"""Experiment harness: testbed generation, runners, metrics."""

from repro.sim.clustered import ClusteredConfig, ClusteredNetwork
from repro.sim.experiment import (
    GroupRateCache,
    diversity_trial,
    downlink_3x3_trial,
    large_network_experiment,
    reciprocity_experiment,
    run_scatter,
    uplink_2x2_trial,
    uplink_3x3_trial,
)
from repro.sim.metrics import GainCDF, RatePair, ScatterResult, format_cdf_table
from repro.sim.plotting import ascii_bars, ascii_cdf, ascii_scatter
from repro.sim.traffic import (
    BurstyTraffic,
    ClientChurn,
    HeterogeneousTraffic,
    MobilityModel,
    PoissonTraffic,
    SaturatedTraffic,
    TrafficModel,
    make_traffic,
)
from repro.sim.wlan import WLANConfig, WLANEvent, WLANSimulation, WLANStats
from repro.sim.testbed import Testbed, TestbedConfig

__all__ = [
    "BurstyTraffic",
    "ClientChurn",
    "ClusteredConfig",
    "ClusteredNetwork",
    "GainCDF",
    "GroupRateCache",
    "HeterogeneousTraffic",
    "MobilityModel",
    "PoissonTraffic",
    "RatePair",
    "SaturatedTraffic",
    "ScatterResult",
    "Testbed",
    "TestbedConfig",
    "TrafficModel",
    "WLANConfig",
    "WLANEvent",
    "WLANSimulation",
    "WLANStats",
    "make_traffic",
    "ascii_bars",
    "ascii_cdf",
    "ascii_scatter",
    "diversity_trial",
    "downlink_3x3_trial",
    "format_cdf_table",
    "large_network_experiment",
    "reciprocity_experiment",
    "run_scatter",
    "uplink_2x2_trial",
    "uplink_3x3_trial",
]
