"""The event-driven slot kernel: skip the slots where nothing happens.

:func:`run_event` executes ``WLANSimulation.run`` by advancing simulated
time in jumps.  The slot-synchronous engines (scalar, batched, columnar)
pay for every slot even when the queue is empty and no process fires —
exactly the regime dynamic, non-saturated workloads live in.  This
kernel instead maintains a priority queue of *wake-up points* — packet
arrivals, churn joins/leaves, mobility epoch changes, sounding
deadlines, fault events (leader crashes, delayed backplane frames
maturing) and run-end barriers — and skips the idle span between them in
one vectorised batch.  Every woken slot runs the full columnar per-slot
path (:func:`repro.sim.columnar._begin_slot` /
:func:`~repro.sim.columnar._finish_slot`), which stays the single source
of intra-slot ordering truth.

**The contract is bit-identity**, the repo's strictest:
``WLANStats.digest()`` — every counter, rate and event-log entry — must
equal the slot-loop reference for every (seed, config, fault plan),
pinned by ``tests/sim/test_event_equivalence.py`` and the golden-digest
corpus.  Skipping is therefore an exercise in RNG-stream bookkeeping,
built on one lemma: numpy ``Generator`` output buffers fill
element-by-element in C order, so *one blocked draw of n slots' worth
consumes the bitstream identically to n sequential per-slot draws*.
Concretely, per idle span:

* **Scan** — each stochastic stream (traffic, churn, mobility) is
  checkpointed (``rng.bit_generator.state``), block-drawn
  ``(B, width)`` slots ahead, and scanned for its first eventful slot
  (the models' ``scan_quiet`` hooks encode the exact per-model
  predicates — e.g. a zero-budget churn slot cannot produce leaves no
  matter what it draws).  Block sizes double geometrically
  (:data:`_BLOCK_MIN` → :data:`_BLOCK_MAX`), bounded by the earliest
  static deadline.
* **Rollback** — when a stream's scan overdraws past the earliest
  event, its checkpoint is restored and exactly ``j`` quiet slots'
  worth is re-consumed with a single blocked ``replay`` call (same
  lemma, run in reverse), leaving the stream positioned exactly where
  the per-slot loop would have left it.
* **Fading** — drawn *after* the jump width is known: the shared
  fading/selector stream is only touched by fading during idle slots
  (the selector never runs), so
  :meth:`~repro.sim.columnar.ColumnarFadingNetwork.step_block` draws
  the whole span in one call and folds the AR(1) recurrence at two
  ndarray ops per slot, no rollback needed.
* **Sounding** — on the fault-free flat path, ack slots inside a span
  are tracked *in-span*: the per-ack exponential smoothing recurrence
  runs on stack snapshots, the relative-Frobenius drift decisions are
  batched across all of the span's ack slots in one
  :func:`frobenius_norms` call (its pinned per-matrix accumulation
  makes the stacked norms equal the per-ack ones to the ulp), drifted
  pairs walk ``LeaderAP.handle_update`` in exact (ack, client, AP)
  order, and the tracker-dict writes — which the scalar loop repeats
  every ack slot, each overwriting the last — are deferred to a single
  flush at run end (churned clients are evicted from the pending set,
  since their entries were forgotten or re-sounded fresh).  Under
  fault injection, ack slots are barriers instead (the scalar ack path
  draws fault RNG).
* **Clocks** — the Ethernet hub's clock jumps via
  :meth:`~repro.net.ethernet.EthernetHub.advance`; any pending delayed
  frame turns its maturity slot into a barrier, so deliveries land at
  exactly the scalar tick.

Determinism of the queue itself: heap keys are ``(time, seq, kind)``
tuples of ints — ``seq`` is a monotone push counter, so pops are totally
ordered even when events tie on time (and no float ever enters a key;
the ``event-key-total-order`` lint rule bans that for all of
``repro.sim``).  Because every woken slot replays the *full* per-slot
path, the queue only decides *when* to wake, never what order intra-slot
work runs in — which is what makes ``seq`` ranking ahead of ``kind``
safe.

Saturated traffic never idles, so :func:`run_event` delegates those runs
to :func:`~repro.sim.columnar.run_columnar` wholesale (the ``>= 1x`` at
saturation guarantee, by construction).  Wideband (banded) channels and
non-scannable traffic states (a bursty chain with an ON client) fall
back to the per-slot columnar path — slower, never wrong.

Equivalence contract: ``run_event(sim, n)`` must equal
``run_event_reference(sim, n)`` (a fresh sim either way) field for
field — pinned by ``tests/sim/test_event_equivalence.py`` and the
``engine-pair`` lint rule.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.mac.association import ChannelUpdate
from repro.phy.channel.estimation import ChannelEstimate, frobenius_norms
from repro.sim.columnar import (
    ColumnarFadingNetwork,
    _begin_slot,
    _ColumnarState,
    _finalize,
    _finish_slot,
    run_columnar,
)

__all__ = [
    "EVENT_KINDS",
    "EventQueue",
    "run_event",
    "run_event_reference",
]

# ---------------------------------------------------------------------- #
# Event taxonomy
# ---------------------------------------------------------------------- #

#: Event kinds, smallest-first in the heap's final tiebreak position.
#: Integers (never floats) so heap keys are totally ordered by
#: construction; the names are the taxonomy ARCHITECTURE §1.7 documents.
ARRIVAL = 0      #: first slot a traffic scan found arrivals in
CHURN = 1        #: first slot a churn scan found a join/leave in
MOBILITY = 2     #: first slot a mobility scan found a transition in
SOUNDING = 3     #: next ack-period deadline (barrier when not fast-track)
FAULT = 4        #: leader-crash slot or delayed-frame maturity barrier
BARRIER = 5      #: run end (and any caller-imposed stop)

EVENT_KINDS = {
    ARRIVAL: "arrival",
    CHURN: "churn",
    MOBILITY: "mobility",
    SOUNDING: "sounding",
    FAULT: "fault",
    BARRIER: "barrier",
}

#: Geometric scan-block bounds: start small (an event in the first few
#: slots must not pay for a huge overdraw), double while quiet.
_BLOCK_MIN = 8
_BLOCK_MAX = 4096


class EventQueue:
    """Min-heap of ``(time, seq, kind)`` — deterministic under ties.

    All three key fields are ints.  ``time`` is the absolute slot,
    ``seq`` a monotone push counter, ``kind`` one of
    :data:`EVENT_KINDS`.  Ranking ``seq`` before ``kind`` is safe
    because events are pure wake-up points: the woken slot always runs
    the complete per-slot path, which owns intra-slot ordering.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self):
        self._heap: List[Tuple[int, int, int]] = []
        self._seq = 0

    def push(self, time: int, kind: int) -> None:
        heapq.heappush(self._heap, (int(time), self._seq, int(kind)))
        self._seq += 1

    def pop(self) -> Tuple[int, int, int]:
        return heapq.heappop(self._heap)

    def peek(self) -> Tuple[int, int, int]:
        return self._heap[0]

    def clear(self) -> None:
        # seq keeps counting across spans: uniqueness is the invariant.
        del self._heap[:]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


# ---------------------------------------------------------------------- #
# The kernel
# ---------------------------------------------------------------------- #


class _EventKernel:
    """Per-run skipping machinery around one :class:`_ColumnarState`."""

    __slots__ = (
        "sim", "state", "track", "queue", "can_skip",
        "processed_slots", "skipped_slots", "_dirty", "_dirty_clients",
    )

    def __init__(self, sim, state: _ColumnarState, track: bool):
        self.sim = sim
        self.state = state
        self.track = track
        self.queue = EventQueue()
        # Span skipping needs the stacked flat fading (step_block) —
        # wideband runs take the per-slot path for every slot.
        self.can_skip = (
            isinstance(sim.fading, ColumnarFadingNetwork)
            and not sim._banded
        )
        self.processed_slots = 0
        self.skipped_slots = 0
        #: Tracker-dict writes deferred by in-span sounding; flushed
        #: once at run end.  Safe because on the fast-track path (no
        #: injector, so no crash and no lossy hub) nothing reads a
        #: subordinate tracker's estimate mid-run except the T-invalid
        #: resync, which only touches freshly (re-)joined clients —
        #: and those are evicted from the pending set at their churn
        #: slot (see :func:`run_event`).
        self._dirty = False
        self._dirty_clients: set = set()

    # ------------------------------ spans ----------------------------- #

    def skip_idle(self, end_slot: int) -> None:
        """Jump ``sim._slot`` to the next wake-up point, if any gap exists.

        A no-op unless the current slot is skippable: empty queue,
        scannable traffic state, stacked flat fading.  On return the
        simulation's RNG streams, fading stack, hub clock, tracker state
        and stats are exactly as if the scalar loop had executed every
        skipped slot (each of which it would have found idle).
        """
        sim = self.sim
        if not self.can_skip or len(sim.queue):
            return
        active = sorted(sim._active)
        if not sim.traffic.can_scan(active):
            return
        t = sim._slot
        q = self.queue
        q.clear()
        q.push(end_slot, BARRIER)
        if sim.injector is not None:
            crash = sim.injector.plan.leader_crash_slot
            if crash is not None and t <= crash and len(sim.ap_ids) > 1:
                q.push(crash, FAULT)
            if sim.hub is not None:
                due = sim.hub.next_due()
                if due is not None:
                    # The tick at slot due-1 delivers the frame: barrier.
                    q.push(due - 1, FAULT)
        fast_track = self.state.fast_track
        if self.track and not fast_track:
            # Faulted ack slots draw fault RNG on the scalar path; make
            # each one a wake-up point instead of tracking in-span.
            period = sim.config.ack_period
            next_ack = t + (-t) % period
            q.push(next_ack, SOUNDING)
        bound = q.peek()[0]
        if bound <= t:
            return
        # Scan the stochastic streams across [t, bound) in doubling
        # blocks; the first eventful slot found becomes a wake-up point
        # and caps the jump.
        inactive = [c for c in sim.client_ids if c not in sim._active]
        cursor = t
        block = _BLOCK_MIN
        while cursor < bound:
            n = min(block, bound - cursor)
            hit = self._scan_block(n, active, inactive)
            if hit is not None:
                off, kinds = hit
                for kind in kinds:
                    q.push(cursor + off, kind)
                break
            cursor += n
            block = min(block * 2, _BLOCK_MAX)
        wake = q.pop()[0]
        if wake > t:
            self._skip(t, wake, active)

    def _scan_block(
        self, n: int, active: List[int], inactive: List[int],
    ) -> Optional[Tuple[int, List[int]]]:
        """Scan every stochastic stream ``n`` slots ahead.

        Returns ``None`` when all streams are quiet for the whole block
        (each consumed exactly ``n`` slots' worth), else
        ``(j, kinds)``: the offset of the earliest event and the kinds
        that fire there — with every stream checkpoint-restored and
        replayed to sit exactly at slot ``start + j``.

        Traffic scans first and short-circuits: an arrival at offset 0
        (the common case under load) returns before the churn/mobility
        streams are touched at all.
        """
        sim = self.sim
        scanned = []  # (rng, checkpoint, model, args, width_scanned, off)
        j = n

        def scan(rng, model_scan, model_replay, args, kind):
            nonlocal j
            width = j  # never scan past the current minimum
            if not width:
                return
            ck = rng.bit_generator.state
            off = model_scan(width, *args, rng)
            scanned.append((rng, ck, model_replay, args, width, off, kind))
            if off < j:
                j = off

        scan(sim._traffic_rng, sim.traffic.scan_quiet, sim.traffic.replay,
             (active,), ARRIVAL)
        if j and sim.churn is not None:
            scan(sim._churn_rng, sim.churn.scan_quiet, sim.churn.replay,
                 (active, inactive), CHURN)
        if j and sim.mobility is not None:
            scan(sim._mobility_rng, sim.mobility.scan_quiet,
                 sim.mobility.replay, (active,), MOBILITY)
        if j == n:
            return None
        kinds = []
        for rng, ck, replay, args, width, off, kind in scanned:
            if width != j:
                # Overdrawn: unwind, then re-consume exactly j quiet
                # slots' worth in one blocked call.
                rng.bit_generator.state = ck
                replay(j, *args, rng)
            if off == j:
                kinds.append(kind)
        return j, kinds

    def _skip(self, t: int, wake: int, active: List[int]) -> None:
        """Execute the jump: ``[t, wake)`` verified all-idle, all-quiet."""
        sim = self.sim
        state = self.state
        j = wake - t
        acks: List[int] = []
        if self.track and state.fast_track:
            period = sim.config.ack_period
            first = t + (-t) % period
            if first < wake:
                acks = list(range(first - t, j, period))
        if acks and active:
            rows = [state.row[c] for c in active]
            flat_rows = state.row_ca[rows].reshape(-1)
            m = state.T.shape[-1]
            ack_h = np.empty(
                (len(acks), len(flat_rows), m, m), dtype=state.T.dtype
            )
            sim.fading.step_block(
                j, keep=acks, keep_rows=flat_rows, snap_out=ack_h
            )
            self._track_span(ack_h, active, rows)
        else:
            sim.fading.step_block(j, keep=[])
            if acks:
                # No active clients: the scalar ack path still
                # refreshes update_bytes every ack slot (same value
                # each time — nothing can change it in between).
                sim.stats.update_bytes = (
                    sim._update_bytes_base + sim.leader.update_bytes
                )
        sim.stats.idle_slots += j
        # queue_depth_total accrues zero per empty slot; max unchanged.
        if sim.hub is not None:
            sim.hub.advance(j)
        sim._slot = wake
        self.skipped_slots += j

    # ---------------------------- sounding ---------------------------- #

    def _track_span(self, ack_h: np.ndarray, active: List[int],
                    rows: List[int]) -> None:
        """In-span ack tracking: ``_track_fast`` batched over K ack slots.

        ``ack_h`` is a ``(K, P, M, M)`` buffer holding the tracked
        (client, AP) fading rows at each of the span's K ack slots,
        gathered by ``step_block`` (it is consumed in place here).
        The exponential-smoothing recurrence is inherently sequential
        across ack slots, but everything around it is not: the
        smoothing trajectory lands in one preallocated ``(K+1, P, M,
        M)`` buffer (slot k's priors are slot k-1's smoothed rows — as
        views, not copies), all K drift decisions go through one
        pinned-order :func:`frobenius_norms` call for the numerators
        and one for the denominators, and only drifted pairs walk the
        scalar report path, in exact (ack, client-major, AP) order.
        Tracker-dict stores are deferred (each ack's store overwrites
        the last; only the final smoothed estimate is observable) and
        written by :meth:`_flush` at run end.
        """
        sim = self.sim
        state = self.state
        ap_ids = sim.ap_ids
        if not state.T_valid[rows].all():
            for c, r in zip(active, rows):
                if not state.T_valid[r].all():
                    for jj, a in enumerate(ap_ids):
                        state.T[r, jj] = sim.subordinates[a].channel_to(c)
                    state.T_valid[r] = True
        m = state.T.shape[-1]
        alpha = state.alpha
        beta = 1.0 - alpha
        # One in-place scale covers all K ack slots (``alpha`` is a
        # scalar, so pre-scaling is elementwise-identical to scaling
        # inside the loop); only the sequential half of the smoothing
        # recurrence stays per-ack — two ``out=`` ufunc calls each,
        # same rounding.
        alpha_h = np.multiply(alpha, ack_h, out=ack_h)
        K, P = alpha_h.shape[:2]
        S = np.empty((K + 1, P, m, m), dtype=alpha_h.dtype)
        S[0] = state.T[rows].reshape(P, m, m)
        mul, add = np.multiply, np.add
        cur = S[0]
        for k in range(K):
            nxt = S[k + 1]
            mul(beta, cur, out=nxt)
            add(alpha_h[k], nxt, out=nxt)
            cur = nxt
        num = frobenius_norms(S[1:] - S[:-1], batch_ndim=2)
        den = frobenius_norms(S[:-1], batch_ndim=2)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(den == 0, np.inf, num / den)
        drifted = ratio > state.drift_threshold
        if drifted.any():
            handle_update = sim.leader.handle_update
            n_aps = len(ap_ids)
            n_reports = 0
            for k in np.nonzero(drifted.any(axis=1))[0]:
                for p in np.nonzero(drifted[k])[0]:
                    handle_update(ChannelUpdate(
                        ap_id=ap_ids[p % n_aps],
                        client_id=active[p // n_aps],
                        h=S[k + 1, p],
                    ))
                    n_reports += 1
            sim.stats.drift_reports += n_reports
        state.T[rows] = cur.reshape(len(rows), len(ap_ids), m, m)
        self._dirty = True
        self._dirty_clients.update(active)
        # The scalar ack path refreshes update_bytes every ack slot;
        # only the value after the span's last ack is observable.
        sim.stats.update_bytes = (
            sim._update_bytes_base + sim.leader.update_bytes
        )

    def _flush(self) -> None:
        """Write deferred tracker estimates back at run end.

        The stored arrays are *copies* of the mirror rows: ``state.T``
        is scattered into in place at later ack slots, and the scalar
        contract is that earlier estimates stay frozen for whoever
        holds them.  Clients that churned since their last in-span ack
        were evicted from the pending set (their dict entries were
        removed or re-associated fresh — exactly what the scalar loop
        leaves behind).
        """
        if not self._dirty:
            return
        sim = self.sim
        state = self.state
        estimate_maps = [
            sim.subordinates[a]._tracker._estimates for a in sim.ap_ids
        ]
        for c in sorted(self._dirty_clients):
            r = state.row[c]
            for jj in range(len(sim.ap_ids)):
                estimate_maps[jj][c] = ChannelEstimate(
                    h=state.T[r, jj].copy()
                )
        self._dirty = False
        self._dirty_clients.clear()


# ---------------------------------------------------------------------- #
# Entry points
# ---------------------------------------------------------------------- #


def run_event(sim, n_slots: int, track: bool = True):
    """Event-driven execution of ``sim.run(n_slots, track)``.

    Same trajectory, same RNG stream consumption, bit-identical
    :class:`~repro.sim.wlan.WLANStats`; ``WLANSimulation.run``
    dispatches here under ``engine="event"``.  Saturated traffic (which
    never idles) delegates to :func:`run_columnar` outright.  The
    processed/skipped slot split of the last run is left on
    ``sim.last_event_summary`` for the benchmark harness.
    """
    if sim.traffic.saturated:
        stats = run_columnar(sim, n_slots, track=track)
        sim.last_event_summary = {
            "processed_slots": n_slots, "skipped_slots": 0,
        }
        return stats
    state = _ColumnarState(sim)
    kernel = _EventKernel(sim, state, track)
    # Deferred tracker flush vs churn: a client that leaves must not be
    # resurrected (the scalar loop forgot its estimate), and one that
    # re-joins was re-sounded fresh by ``_associate`` — either way its
    # pending in-span estimate is stale, so evict it at the churn slot.
    # A later in-span ack re-adds it with a fresh resync.
    watch_churn = (
        track and state.fast_track and sim.churn is not None
    )
    events = sim.stats.events
    end_slot = sim._slot + n_slots
    while sim._slot < end_slot:
        kernel.skip_idle(end_slot)
        if sim._slot >= end_slot:
            break
        n_ev = len(events)
        pending = _begin_slot(sim, state, track, False)
        if pending is not None:
            _finish_slot(sim, state, pending, False)
        if watch_churn:
            for i in range(n_ev, len(events)):
                if events[i].kind in ("join", "leave"):
                    kernel._dirty_clients.discard(events[i].client)
        kernel.processed_slots += 1
    kernel._flush()
    sim.last_event_summary = {
        "processed_slots": kernel.processed_slots,
        "skipped_slots": kernel.skipped_slots,
    }
    return _finalize(sim, state, n_slots)


def run_event_reference(sim, n_slots: int, track: bool = True):
    """The scalar reference loop (the engine-pair bit-identity oracle)."""
    return sim._run_scalar(n_slots, track)
