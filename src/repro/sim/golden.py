"""Golden-digest corpus: pinned end-to-end simulation trajectories.

``tests/baselines/digests.json`` commits the ``WLANStats.digest()`` /
``MultiCellStats.digest()`` of a dozen (seed, scenario) pairs spanning
every execution engine, the dynamic workloads, fault injection and the
multi-cell layer.  The corpus turns "the simulation still computes the
same numbers" into a one-file diff:

* an *intentional* numerical change (a new solver, a reordered
  accumulation) shows up as a reviewed update to the JSON, regenerated
  with ``python -m repro digest --update``;
* an *accidental* one (a refactor that reorders a reduction, an engine
  fast path that drifts by one ulp) fails ``repro digest`` and the
  corpus test in CI.

Scalar-engine entries pin the paper-faithful reference trajectory; the
``batched``/``columnar`` pairs additionally pin the cross-engine
bit-identity contract (their committed digests are equal by
construction, and :mod:`tests.baselines.test_digests` asserts it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping

#: The committed corpus, relative to the repository root.
DEFAULT_BASELINE = (
    Path(__file__).resolve().parents[3] / "tests" / "baselines" / "digests.json"
)

#: Single-cell cases: ``WLANConfig`` kwargs + slot count.  Keep entries
#: cheap — the whole corpus recomputes inside the tier-1 suite.
GOLDEN_WLAN: Dict[str, Dict[str, Any]] = {
    "wlan_scalar_saturated": {
        "config": {"n_clients": 8, "seed": 11, "engine": "scalar"},
        "n_slots": 30,
    },
    "wlan_scalar_poisson": {
        "config": {
            "n_clients": 8,
            "seed": 17,
            "engine": "scalar",
            "traffic": "poisson",
            "traffic_params": {"rate_per_client": 0.6},
        },
        "n_slots": 30,
    },
    "wlan_scalar_faulted": {
        "config": {
            "n_clients": 8,
            "seed": 23,
            "engine": "scalar",
            "fault_params": {"backplane_loss_rate": 0.5},
        },
        "n_slots": 30,
    },
    "wlan_batched_saturated": {
        "config": {"n_clients": 8, "seed": 11, "engine": "batched"},
        "n_slots": 40,
    },
    "wlan_columnar_saturated": {
        "config": {"n_clients": 8, "seed": 11, "engine": "columnar"},
        "n_slots": 40,
    },
    "wlan_columnar_big12": {
        "config": {"n_clients": 12, "rho": 0.99, "seed": 7, "engine": "columnar"},
        "n_slots": 40,
    },
    "wlan_columnar_churn": {
        "config": {
            "n_clients": 8,
            "seed": 11,
            "engine": "columnar",
            "churn_params": {"p_leave": 0.05, "p_join": 0.1},
        },
        "n_slots": 40,
    },
    "wlan_columnar_mobility": {
        "config": {
            "n_clients": 8,
            "seed": 11,
            "engine": "columnar",
            "mobility_params": {"p_start": 0.2, "p_stop": 0.3, "rho_moving": 0.9},
        },
        "n_slots": 40,
    },
    "wlan_columnar_wideband": {
        "config": {
            "n_clients": 8,
            "seed": 11,
            "engine": "columnar",
            "channel": "wideband",
            "n_bins": 2,
        },
        "n_slots": 40,
    },
    "wlan_event_sparse_poisson": {
        "config": {
            "n_clients": 8,
            "seed": 11,
            "engine": "event",
            "traffic": "poisson",
            "traffic_params": {"rate_per_client": 0.05},
        },
        "n_slots": 40,
    },
    "wlan_event_sparse_ack1": {
        "config": {
            "n_clients": 8,
            "seed": 11,
            "engine": "event",
            "ack_period": 1,
            "traffic": "poisson",
            "traffic_params": {"rate_per_client": 0.02},
        },
        "n_slots": 40,
    },
    "wlan_event_churn_mobility": {
        "config": {
            "n_clients": 8,
            "seed": 11,
            "engine": "event",
            "traffic": "poisson",
            "traffic_params": {"rate_per_client": 0.05},
            "churn_params": {"p_leave": 0.05, "p_join": 0.1},
            "mobility_params": {"p_start": 0.2, "p_stop": 0.3, "rho_moving": 0.9},
        },
        "n_slots": 40,
    },
    "wlan_event_full_cocktail": {
        "config": {
            "n_aps": 4,
            "n_clients": 8,
            "seed": 11,
            "engine": "event",
            "traffic": "poisson",
            "traffic_params": {"rate_per_client": 0.1},
            "fault_params": {
                "backplane_loss_rate": 0.1,
                "burst_enter": 0.05,
                "burst_exit": 0.3,
                "backplane_delay_rate": 0.1,
                "backplane_delay_max": 2,
                "csi_corrupt_rate": 0.1,
                "csi_stale_rate": 0.1,
                "leader_crash_slot": 20,
            },
        },
        "n_slots": 40,
    },
    "wlan_columnar_full_cocktail": {
        "config": {
            "n_aps": 4,
            "n_clients": 8,
            "seed": 11,
            "engine": "columnar",
            "fault_params": {
                "backplane_loss_rate": 0.1,
                "burst_enter": 0.05,
                "burst_exit": 0.3,
                "backplane_delay_rate": 0.1,
                "backplane_delay_max": 2,
                "csi_corrupt_rate": 0.1,
                "csi_stale_rate": 0.1,
                "leader_crash_slot": 20,
            },
        },
        "n_slots": 40,
    },
}

#: Multi-cell cases: ``MultiCellConfig`` kwargs + slot count (one worker
#: — worker-count invariance is pinned by ``tests/sim/test_multicell.py``).
GOLDEN_MULTICELL: Dict[str, Dict[str, Any]] = {
    "multicell_small": {
        "config": {
            "n_cells": 4,
            "aps_per_cell": 3,
            "clients_per_cell": 6,
            "barrier_slots": 10,
            "seed": 7,
        },
        "n_slots": 20,
    },
    "multicell_faulted": {
        "config": {
            "n_cells": 4,
            "aps_per_cell": 4,
            "clients_per_cell": 6,
            "barrier_slots": 10,
            "seed": 7,
            "fault_params": {
                "backplane_loss_rate": 0.1,
                "csi_corrupt_rate": 0.05,
                "leader_crash_slot": 10,
            },
        },
        "n_slots": 20,
    },
}


def golden_case_names() -> List[str]:
    """Every corpus entry id, sorted (the JSON's key set)."""
    return sorted(list(GOLDEN_WLAN) + list(GOLDEN_MULTICELL))


def compute_digest(name: str) -> str:
    """Run one corpus case from scratch and return its digest."""
    # Deferred imports: the corpus definition stays importable without
    # pulling the whole simulation stack.
    if name in GOLDEN_WLAN:
        from repro.sim.wlan import WLANConfig, WLANSimulation

        spec = GOLDEN_WLAN[name]
        sim = WLANSimulation(WLANConfig(**spec["config"]))
        return sim.run(spec["n_slots"]).digest()
    if name in GOLDEN_MULTICELL:
        from repro.sim.multicell import MultiCellConfig, MultiCellSimulation

        spec = GOLDEN_MULTICELL[name]
        sim = MultiCellSimulation(MultiCellConfig(**spec["config"]))
        return sim.run(spec["n_slots"], workers=1).digest()
    raise KeyError(f"unknown golden case {name!r}")


def compute_digests() -> Dict[str, str]:
    """The whole corpus, recomputed from scratch in name order."""
    return {name: compute_digest(name) for name in golden_case_names()}


def load_baseline(path: "Path | str" = DEFAULT_BASELINE) -> Dict[str, str]:
    """The committed corpus; ``FileNotFoundError`` if never generated."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return {str(k): str(v) for k, v in doc.items()}


def write_baseline(
    digests: Mapping[str, str], path: "Path | str" = DEFAULT_BASELINE
) -> None:
    """Write the corpus as deterministic, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(dict(digests), indent=2, sort_keys=True) + "\n")


def compare(
    computed: Mapping[str, str], baseline: Mapping[str, str]
) -> List[str]:
    """Human-readable mismatch list (empty = corpus intact).

    Reports changed digests, cases missing from the committed file, and
    stale committed entries whose case no longer exists.
    """
    problems: List[str] = []
    for name in sorted(computed):
        if name not in baseline:
            problems.append(f"{name}: not in baseline (run --update)")
        elif computed[name] != baseline[name]:
            problems.append(
                f"{name}: digest changed "
                f"(baseline {baseline[name][:12]}..., "
                f"computed {computed[name][:12]}...)"
            )
    for name in sorted(baseline):
        if name not in computed:
            problems.append(f"{name}: stale baseline entry (case removed)")
    return problems
