"""Per-figure experiment runners (paper §10).

Each function reproduces one evaluation experiment at the rate level (the
paper's metric is the achievable rate computed from measured SNRs, Eq. 9;
our rate-level decoder computes the same quantity from the post-projection
SINRs).  The sample-accurate pipeline is no longer too slow for sweeps:
since it was vectorized (block phase tracking, batched Viterbi — see
``BENCH_signal.json``) the registered ``fig12_signal``/``fig13b_signal``
scenarios (:mod:`repro.experiments.signal_scenarios`) run thousand-trial
scatter experiments at the signal level; the rate-level runners here
remain the cheap analytic path the signal level is validated against.

Runners:

* :func:`uplink_2x2_trial` -- Fig. 12 (2 clients, 2 APs, 3 packets).
* :func:`uplink_3x3_trial` -- Fig. 13a (3 clients, 3 APs, 4 packets).
* :func:`downlink_3x3_trial` -- Fig. 13b (3 clients, 3 APs, 3 packets).
* :func:`diversity_trial` -- Fig. 14 (1 client, 2 APs).
* :func:`run_scatter` -- repeat a trial over random node subsets.
* :func:`large_network_experiment` -- Fig. 15 (17 clients, 3 APs,
  concurrency algorithms, per-client gain CDFs).
* :func:`reciprocity_experiment` -- Fig. 16 (calibrated reciprocity error).
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.baselines.dot11_mimo import best_ap_link, per_client_rates
from repro.core.alignment import (
    solve_downlink_three_packets,
    solve_uplink_four_packets,
    solve_uplink_three_packets,
)
from repro.core.decoder import decode_rate_level
from repro.core.plans import AlignmentSolution, ChannelSet, DecodeStage, PacketSpec
from repro.mac.concurrency import make_selector
from repro.mac.queueing import QueuedPacket, TransmissionQueue
from repro.phy.channel.estimation import estimate_channel
from repro.phy.channel.model import rayleigh_channel
from repro.phy.channel.reciprocity import (
    ReciprocityCalibrator,
    fractional_error,
    observed_downlink,
    observed_uplink,
)
from repro.phy.mimo.eigenmode import eigenmode_link
from repro.sim.metrics import GainCDF, RatePair, ScatterResult
from repro.sim.testbed import Testbed
from repro.utils.rng import default_rng, spawn_rngs

# --------------------------------------------------------------------- #
# Scatter trials (Figs. 12-14)
# --------------------------------------------------------------------- #


def uplink_2x2_trial(testbed: Testbed, clients: Sequence[int], aps: Sequence[int], rng) -> RatePair:
    """One Fig.-12 point: 2 clients upload to 2 APs.

    802.11-MIMO: clients alternate on the medium, each at its best AP with
    two eigenmode streams.  IAC: three concurrent packets, alternating
    which client uploads two (§10.1); the reported rates average the two
    configurations.
    """
    rng = default_rng(rng)
    noise = testbed.noise_power
    channels = testbed.channel_set(clients, aps)

    dot11 = float(
        np.mean(
            [best_ap_link(channels, c, aps, noise, direction="uplink").rate for c in clients]
        )
    )

    iac_rates = []
    for first in range(2):
        ordered = (clients[first], clients[1 - first])
        solution = solve_uplink_three_packets(channels, clients=ordered, aps=tuple(aps), rng=rng)
        iac_rates.append(decode_rate_level(solution, channels, noise).total_rate)
    return RatePair(dot11=dot11, iac=float(np.mean(iac_rates)))


def uplink_3x3_trial(testbed: Testbed, clients: Sequence[int], aps: Sequence[int], rng) -> RatePair:
    """One Fig.-13a point: 3 clients upload 4 concurrent packets to 3 APs.

    "We choose the client that transmits the two packets in each timeslot
    in a round robin manner" -- the IAC rate averages the three rotations.
    """
    rng = default_rng(rng)
    noise = testbed.noise_power
    channels = testbed.channel_set(clients, aps)

    dot11 = float(
        np.mean(
            [best_ap_link(channels, c, aps, noise, direction="uplink").rate for c in clients]
        )
    )

    iac_rates = []
    for rotation in range(3):
        ordered = tuple(clients[(rotation + i) % 3] for i in range(3))
        solution = solve_uplink_four_packets(channels, clients=ordered, aps=tuple(aps), rng=rng)
        iac_rates.append(decode_rate_level(solution, channels, noise).total_rate)
    return RatePair(dot11=dot11, iac=float(np.mean(iac_rates)))


def downlink_3x3_trial(
    testbed: Testbed, clients: Sequence[int], aps: Sequence[int], rng
) -> RatePair:
    """One Fig.-13b point: 3 APs deliver 3 concurrent downlink packets.

    The AP-to-client assignment is fixed (AP i serves client i), matching
    the paper's §10.1 experiment where the concurrency algorithm is not in
    play -- assignment optimisation is studied separately in Fig. 15.
    """
    rng = default_rng(rng)
    noise = testbed.noise_power
    channels = testbed.channel_set(aps, clients)

    dot11 = float(
        np.mean(
            [best_ap_link(channels, c, aps, noise, direction="downlink").rate for c in clients]
        )
    )

    solution = solve_downlink_three_packets(
        channels, aps=tuple(aps), clients=tuple(clients), rng=rng
    )
    iac = decode_rate_level(solution, channels, noise).total_rate
    return RatePair(dot11=dot11, iac=iac)


def _split_downlink_solution(
    channels: ChannelSet, client: int, aps: Sequence[int]
) -> AlignmentSolution:
    """One packet from each of two APs to the same client (Fig.-14 option).

    Encoding vectors are each AP's dominant eigenmode toward the client;
    the 2-antenna client separates the two streams with its MMSE receiver.
    """
    a0, a1 = aps
    packets = [PacketSpec(0, a0, client), PacketSpec(1, a1, client)]
    encoding = {}
    for pid, ap in ((0, a0), (1, a1)):
        h = channels.h(ap, client)
        _, _, vh = np.linalg.svd(h)
        encoding[pid] = np.conj(vh[0])
    return AlignmentSolution(
        packets=packets,
        encoding=encoding,
        schedule=[DecodeStage(rx=client, packet_ids=(0, 1))],
        cooperative=False,
    )


def diversity_trial(
    testbed: Testbed, clients: Sequence[int], aps: Sequence[int], rng
) -> RatePair:
    """One Fig.-14 point: a single client downloads from 2 cooperating APs.

    802.11-MIMO picks the better AP (selection diversity).  IAC's leader
    additionally considers transmitting one packet from each AP and picks
    whichever option estimates best (§10.2): diversity across the four
    antennas of the two APs.

    ``clients`` holds the single active client, keeping the signature
    identical to the other scatter trials.
    """
    (client,) = clients
    rng = default_rng(rng)
    noise = testbed.noise_power
    channels = testbed.channel_set(aps, [client])

    per_ap = [
        eigenmode_link(channels.h(ap, client), noise, total_power=1.0).rate() for ap in aps
    ]
    dot11 = max(per_ap)

    split = _split_downlink_solution(channels, client, aps)
    split_rate = decode_rate_level(split, channels, noise).total_rate
    iac = max(max(per_ap), split_rate)
    return RatePair(dot11=dot11, iac=iac)


def run_scatter(
    trial: Callable[..., RatePair],
    testbed: Testbed,
    n_trials: int,
    n_clients: int,
    n_aps: int,
    seed=0,
    label: str = "",
) -> ScatterResult:
    """Repeat a trial over random disjoint client/AP subsets (§10(e)).

    Every trial callable takes ``(testbed, clients, aps, rng)`` — single-
    client trials receive a one-element ``clients`` sequence.
    """
    result = ScatterResult(label=label)
    for trial_rng in spawn_rngs(seed, n_trials):
        nodes = testbed.pick_nodes(n_clients + n_aps, trial_rng)
        clients, aps = nodes[:n_clients], nodes[n_clients:]
        result.points.append(trial(testbed, clients, aps, trial_rng))
    return result


# --------------------------------------------------------------------- #
# Large-network concurrency experiment (Fig. 15)
# --------------------------------------------------------------------- #


class GroupRateCache:
    """Memoised group evaluation: ordered client tuple -> rates.

    The channels are static for a testbed, so each ordered group needs to
    be solved only once; this is what makes the brute-force selector
    tractable in simulation.
    """

    def __init__(
        self,
        testbed: Testbed,
        aps: Sequence[int],
        direction: str,
        rng,
    ):
        if direction not in ("uplink", "downlink"):
            raise ValueError("direction must be 'uplink' or 'downlink'")
        self.testbed = testbed
        self.aps = tuple(aps)
        self.direction = direction
        self.rng = default_rng(rng)
        self._cache: Dict[Tuple[int, ...], Tuple[float, Dict[int, float]]] = {}

    def total_rate(self, group: Tuple[int, ...]) -> float:
        return self.evaluate(group)[0]

    def evaluate(self, group: Tuple[int, ...]) -> Tuple[float, Dict[int, float]]:
        """Return (total rate, per-client rate) for an ordered group."""
        group = tuple(group)
        if group in self._cache:
            return self._cache[group]
        noise = self.testbed.noise_power
        if len(group) < 3:
            # Degenerate group: single client served point-to-point.
            channels = (
                self.testbed.channel_set(group, self.aps)
                if self.direction == "uplink"
                else self.testbed.channel_set(self.aps, group)
            )
            rate = best_ap_link(
                channels, group[0], self.aps, noise, direction=self.direction
            ).rate
            out = (rate, {group[0]: rate})
            self._cache[group] = out
            return out

        if self.direction == "downlink":
            channels = self.testbed.channel_set(self.aps, group)
            solution = solve_downlink_three_packets(
                channels, aps=self.aps, clients=group, rng=self.rng
            )
            report = decode_rate_level(solution, channels, noise)
            per_client = {
                solution.packet(r.packet_id).rx: r.rate for r in report.results
            }
        else:
            channels = self.testbed.channel_set(group, self.aps)
            solution = solve_uplink_four_packets(
                channels, clients=group, aps=self.aps, rng=self.rng
            )
            report = decode_rate_level(solution, channels, noise)
            per_client: Dict[int, float] = {}
            for r in report.results:
                tx = solution.packet(r.packet_id).tx
                per_client[tx] = per_client.get(tx, 0.0) + r.rate
        out = (report.total_rate, per_client)
        self._cache[group] = out
        return out


def large_network_experiment(
    testbed: Testbed,
    algorithm: str,
    direction: str,
    n_slots: int = 1000,
    n_clients: int = 17,
    n_aps: int = 3,
    seed=0,
    group_size: int = 3,
) -> GainCDF:
    """Fig. 15: per-client gains of an IAC concurrency algorithm.

    Every client has infinite demand.  802.11-MIMO serves one client per
    slot round-robin at its best-AP eigenmode rate; IAC serves a
    transmission group per slot, chosen by ``algorithm`` ("brute", "fifo"
    or "best2").  The gain of a client is the ratio of its IAC average
    rate to its 802.11-MIMO average rate.
    """
    rng = default_rng(seed)
    nodes = testbed.pick_nodes(n_clients + n_aps, rng)
    aps, clients = nodes[:n_aps], nodes[n_aps:]

    channels = (
        testbed.channel_set(clients, aps)
        if direction == "uplink"
        else testbed.channel_set(aps, clients)
    )
    dot11 = per_client_rates(
        channels, clients, aps, testbed.noise_power, direction=direction
    )
    dot11_per_slot = {c: dot11[c] / n_clients for c in clients}

    cache = GroupRateCache(testbed, aps, direction, rng)
    selector = make_selector(algorithm, group_size=group_size, rng=rng)

    # Initial queue: one packet per client in random arrival order.
    order = list(rng.permutation(clients))
    queue = TransmissionQueue(
        QueuedPacket(client_id=c, seq=i) for i, c in enumerate(order)
    )
    seq = len(order)

    iac_totals = {c: 0.0 for c in clients}
    for _slot in range(n_slots):
        group = selector.select(queue, cache.total_rate)
        _, per_client = cache.evaluate(group)
        for cid in group:
            iac_totals[cid] += per_client.get(cid, 0.0)
            queue.pop_client(cid)
            seq += 1
            queue.push(QueuedPacket(client_id=cid, seq=seq))  # infinite demand

    gains = {
        c: (iac_totals[c] / n_slots) / dot11_per_slot[c] for c in clients
    }
    return GainCDF(gains=gains, label=f"{algorithm}/{direction}")


# --------------------------------------------------------------------- #
# Reciprocity experiment (Fig. 16)
# --------------------------------------------------------------------- #


def reciprocity_pair_trial(
    testbed: Testbed,
    client_node: int,
    ap_node: int,
    n_moves: int = 5,
    estimate_snr_db: float = 25.0,
    rng=None,
) -> float:
    """Fig.-16 measurement for one client-AP pair.

    Measure uplink and downlink channels once (with estimation noise),
    solve the calibration matrices (Eq. 8), then *move the client*
    (redraw the over-the-air channel) ``n_moves`` times; after each move
    the AP estimates the downlink channel from a fresh noisy uplink
    measurement.  Returns the pair's average fractional error against the
    true downlink channel.
    """
    rng = default_rng(rng)
    m = testbed.config.n_antennas
    estimate_noise = 10 ** (-estimate_snr_db / 20.0)

    def measure(h: np.ndarray) -> np.ndarray:
        """A noisy channel measurement at the configured estimation SNR."""
        scale = estimate_noise * np.sqrt(np.mean(np.abs(h) ** 2) / 2.0)
        return h + scale * (rng.standard_normal(h.shape) + 1j * rng.standard_normal(h.shape))

    client_hw = testbed.hardware[client_node]
    ap_hw = testbed.hardware[ap_node]

    h_air = testbed.channel(client_node, ap_node)
    calibrator = ReciprocityCalibrator()
    calibrator.calibrate(
        measure(observed_uplink(h_air, client_hw, ap_hw)),
        measure(observed_downlink(h_air, client_hw, ap_hw)),
    )

    pair_errors = []
    for _move in range(n_moves):
        # The client moved: fresh propagation, same hardware chains.
        h_air_new = rayleigh_channel(m, m, rng, gain=np.mean(np.abs(h_air) ** 2))
        h_up_measured = measure(observed_uplink(h_air_new, client_hw, ap_hw))
        h_down_true = observed_downlink(h_air_new, client_hw, ap_hw)
        h_down_predicted = calibrator.downlink_from_uplink(h_up_measured)
        pair_errors.append(fractional_error(h_down_true, h_down_predicted))
    return float(np.mean(pair_errors))


def sample_distinct_pairs(n_nodes: int, n_pairs: int, rng) -> List[Tuple[int, int]]:
    """Draw ``n_pairs`` distinct ordered node pairs without replacement."""
    total = n_nodes * (n_nodes - 1)
    if n_pairs > total:
        raise ValueError(f"only {total} ordered pairs exist among {n_nodes} nodes")
    rng = default_rng(rng)
    pairs = []
    for flat in rng.choice(total, size=n_pairs, replace=False):
        a, off = divmod(int(flat), n_nodes - 1)
        pairs.append((a, off + 1 if off >= a else off))
    return pairs


def reciprocity_experiment(
    testbed: Testbed,
    n_pairs: int = 17,
    n_moves: int = 5,
    estimate_snr_db: float = 25.0,
    seed=0,
) -> List[float]:
    """Fig. 16: fractional error of reciprocity-based downlink estimates.

    Runs :func:`reciprocity_pair_trial` for ``n_pairs`` *distinct*
    client-AP pairs sampled without replacement (node reuse across pairs
    is fine — the paper's 17 pairs come from a 20-node testbed — but no
    (client, AP) combination is measured twice).  ``n_pairs`` beyond the
    number of ordered pairs is capped with a warning.  Returns the
    per-pair average errors.
    """
    rng = default_rng(seed)
    total = testbed.n_nodes * (testbed.n_nodes - 1)
    if n_pairs > total:
        warnings.warn(
            f"n_pairs={n_pairs} exceeds the {total} distinct ordered pairs "
            f"of a {testbed.n_nodes}-node testbed; capping",
            stacklevel=2,
        )
        n_pairs = total
    return [
        reciprocity_pair_trial(
            testbed, client_node, ap_node, n_moves, estimate_snr_db, rng
        )
        for client_node, ap_node in sample_distinct_pairs(testbed.n_nodes, n_pairs, rng)
    ]
