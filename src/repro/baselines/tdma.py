"""The simplified TDMA MAC used for the paper's measurements (§10e).

"We use a simplified TDMA MAC for both IAC and 802.11-MIMO.  The MAC
assigns the same number of transmission timeslots to the two schemes."
This module implements that comparison discipline: a scheme is a function
from a slot index to a per-slot sum rate, and the harness runs both schemes
for the same number of slots and reports the average rates and their ratio
(the *gain*, Eq. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

#: A scheme under TDMA: slot index -> achieved sum rate in that slot.
SlotRateFn = Callable[[int], float]


@dataclass(frozen=True)
class TDMAComparison:
    """Average rates of two schemes over an equal slot budget."""

    rate_iac: float
    rate_dot11: float
    n_slots: int

    @property
    def gain(self) -> float:
        """Eq. 10: the ratio of average transfer rates."""
        if self.rate_dot11 <= 0:
            raise ZeroDivisionError("baseline rate is zero")
        return self.rate_iac / self.rate_dot11


def compare_schemes(
    iac_slot_rate: SlotRateFn,
    dot11_slot_rate: SlotRateFn,
    n_slots: int,
) -> TDMAComparison:
    """Run both schemes for ``n_slots`` each and average their rates."""
    if n_slots < 1:
        raise ValueError("need at least one slot")
    iac = float(np.mean([iac_slot_rate(t) for t in range(n_slots)]))
    dot11 = float(np.mean([dot11_slot_rate(t) for t in range(n_slots)]))
    return TDMAComparison(rate_iac=iac, rate_dot11=dot11, n_slots=n_slots)


def alternate(rates: List[float]) -> SlotRateFn:
    """A scheme that cycles through fixed per-configuration rates.

    Models round-robin disciplines: e.g. 802.11-MIMO alternating between
    clients, or IAC rotating which client uploads two packets (§10.1).
    """
    if not rates:
        raise ValueError("need at least one rate")
    return lambda slot: rates[slot % len(rates)]
