"""Baselines the paper compares IAC against."""

from repro.baselines.dot11_mimo import (
    Dot11Link,
    best_ap_link,
    per_client_rates,
    round_robin_rate,
)
from repro.baselines.tdma import TDMAComparison, alternate, compare_schemes

__all__ = [
    "Dot11Link",
    "TDMAComparison",
    "alternate",
    "best_ap_link",
    "compare_schemes",
    "per_client_rates",
    "round_robin_rate",
]
