"""The 802.11-MIMO baseline of the paper's evaluation (§10d).

Point-to-point MIMO with full channel information at both ends:
QUALCOMM-style eigenmode enforcing (SVD beamforming) with waterfilling,
"proven optimal for point-to-point MIMO".  Only one transmitter accesses
the medium at a time; extra APs are used for *selection diversity* ("each
802.11-MIMO client communicates with the AP to which it has the best
SNR"), never for concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plans import ChannelSet
from repro.phy.mimo.eigenmode import Eigenmodes, eigenmode_link


@dataclass(frozen=True)
class Dot11Link:
    """A client's chosen AP and the resulting eigenmode decomposition."""

    client: int
    ap: int
    modes: Eigenmodes

    @property
    def rate(self) -> float:
        return self.modes.rate()


def best_ap_link(
    channels: ChannelSet,
    client: int,
    aps: Sequence[int],
    noise_power: float,
    total_power: float = 1.0,
    max_streams: Optional[int] = None,
    direction: str = "uplink",
) -> Dot11Link:
    """Pick the AP maximising the client's eigenmode rate.

    ``direction`` selects which channel matrix orientation to use from the
    channel set: ``(client, ap)`` on the uplink, ``(ap, client)`` on the
    downlink.
    """
    if not aps:
        raise ValueError("need at least one AP")
    best: Optional[Dot11Link] = None
    for ap in aps:
        h = channels.h(client, ap) if direction == "uplink" else channels.h(ap, client)
        modes = eigenmode_link(h, noise_power, total_power, max_streams)
        link = Dot11Link(client=client, ap=ap, modes=modes)
        if best is None or link.rate > best.rate:
            best = link
    assert best is not None
    return best


def round_robin_rate(
    channels: ChannelSet,
    clients: Sequence[int],
    aps: Sequence[int],
    noise_power: float,
    total_power: float = 1.0,
    max_streams: Optional[int] = None,
    direction: str = "uplink",
) -> float:
    """Average per-slot sum rate when clients alternate on the medium.

    This is the paper's comparison discipline (§10e): each client gets the
    same number of timeslots, transmitting alone at its best-AP eigenmode
    rate.  The average per-slot rate is the mean of the per-client rates.
    """
    if not clients:
        raise ValueError("need at least one client")
    rates = [
        best_ap_link(
            channels, c, aps, noise_power, total_power, max_streams, direction
        ).rate
        for c in clients
    ]
    return float(np.mean(rates))


def per_client_rates(
    channels: ChannelSet,
    clients: Sequence[int],
    aps: Sequence[int],
    noise_power: float,
    direction: str = "uplink",
    total_power: float = 1.0,
) -> Dict[int, float]:
    """Best-AP eigenmode rate of every client (before time sharing)."""
    return {
        c: best_ap_link(channels, c, aps, noise_power, total_power, direction=direction).rate
        for c in clients
    }
