"""The seeded fault runtime: per-fault-class RNG streams.

A :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into per-event decisions.  Each fault class (backplane loss, backplane
delay, CSI corruption, CSI staleness) draws from its own stream spawned
from one :class:`numpy.random.SeedSequence` — the repo's per-stream
seeding discipline — so

* enabling or re-parameterising one fault class never shifts another
  class's draws, and
* the simulation's own streams (fading, selector, traffic, churn,
  mobility) are never touched: a faulted run and its fault-free twin
  consume identical draws from the simulation streams.

The leader crash is RNG-free (a fixed slot in the plan), so it is
trivially deterministic.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.faults.plan import FaultPlan


class FaultInjector:
    """Stateful, deterministic fault decisions for one simulation.

    ``seed_sequence`` must be dedicated to this injector (spawn it from
    the simulation seed alongside the traffic/churn/mobility streams).
    """

    def __init__(self, plan: FaultPlan, seed_sequence: np.random.SeedSequence):
        self.plan = plan
        loss_seq, delay_seq, corrupt_seq, stale_seq = seed_sequence.spawn(4)
        self._loss_rng = np.random.default_rng(loss_seq)
        self._delay_rng = np.random.default_rng(delay_seq)
        self._corrupt_rng = np.random.default_rng(corrupt_seq)
        self._stale_rng = np.random.default_rng(stale_seq)
        #: Gilbert–Elliott chain state: False = good, True = bad (burst).
        self._burst = False

    # ---------------------------- backplane --------------------------- #

    def frame_fate(self) -> Tuple[bool, int]:
        """Fate of one backplane frame: ``(lost, delay_slots)``.

        Draw order is fixed (chain transition, loss, then delay) and the
        loss and delay draws come from separate streams, so toggling the
        delay knobs never shifts the loss sequence (and vice versa).
        """
        plan = self.plan
        if self._burst:
            if self._loss_rng.random() < plan.burst_exit:
                self._burst = False
        elif plan.burst_enter > 0.0:
            if self._loss_rng.random() < plan.burst_enter:
                self._burst = True
        loss_rate = plan.burst_loss_rate if self._burst else plan.backplane_loss_rate
        lost = bool(self._loss_rng.random() < loss_rate)
        if lost:
            return True, 0
        delay = 0
        if plan.delays_frames and self._delay_rng.random() < plan.backplane_delay_rate:
            delay = int(self._delay_rng.integers(1, plan.backplane_delay_max + 1))
        return False, delay

    # ------------------------------- CSI ------------------------------ #

    def corrupt_report(self, h: np.ndarray) -> np.ndarray:
        """The estimate as it arrives on the wire — possibly garbage.

        Corruption adds complex Gaussian noise scaled to
        ``csi_corrupt_sigma`` times the estimate's RMS magnitude, i.e.
        far beyond honest channel drift — what a truncated or bit-flipped
        annotation frame decodes to, not a slightly stale estimate.  The
        caller keeps its own (clean) copy; only the receiver sees this.
        """
        plan = self.plan
        h = np.asarray(h)
        if plan.csi_corrupt_rate <= 0.0:
            return h
        if self._corrupt_rng.random() >= plan.csi_corrupt_rate:
            return h
        rms = float(np.sqrt(np.mean(np.abs(h) ** 2))) or 1.0
        noise = self._corrupt_rng.normal(
            size=h.shape
        ) + 1j * self._corrupt_rng.normal(size=h.shape)
        return h + plan.csi_corrupt_sigma * rms * noise

    def ack_missed(self) -> bool:
        """Whether one AP misses one client ack (that sounding is skipped)."""
        plan = self.plan
        if plan.csi_stale_rate <= 0.0:
            return False
        return bool(self._stale_rng.random() < plan.csi_stale_rate)

    # ------------------------------ crash ----------------------------- #

    def crash_due(self, slot: int) -> bool:
        """Whether the leader AP crashes at the start of ``slot``."""
        return (
            self.plan.leader_crash_slot is not None
            and int(slot) == int(self.plan.leader_crash_slot)
        )
