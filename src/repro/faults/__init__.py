"""Deterministic fault injection for the IAC stack.

The paper's design leans on two assumptions that fail in deployments: a
lossless Ethernet backplane over which APs exchange decoded packets and
CSI annotations (§7.1), and fresh sounding feedback from clients.  This
package makes both failure modes — plus the leader AP itself dying —
injectable, *deterministically*:

* :class:`~repro.faults.plan.FaultPlan` — a frozen, JSON-scalar
  description of what goes wrong: Bernoulli and Gilbert–Elliott burst
  loss plus bounded delay on backplane frames, CSI corruption and
  forced staleness on sounding reports, and a leader-crash slot.
* :class:`~repro.faults.injector.FaultInjector` — the seeded runtime.
  Every fault class draws from its own spawned RNG stream (the repo's
  per-stream seeding contract), so enabling one fault never perturbs
  another — and never touches the simulation's own streams.  Same
  ``(seed, FaultPlan)`` ⇒ the same faults, bit for bit, at any worker
  count.

Consumed by :mod:`repro.sim.wlan` (graceful degradation to
point-to-point service instead of crashes; see docs/ARCHITECTURE.md
§"Fault model & degradation contract") and surfaced as the
``fault_resilience`` / ``backplane_loss_sweep`` scenarios and
``repro bench --faults``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector", "FaultPlan"]
