"""The declarative fault plan: what goes wrong, as flat JSON scalars.

Every knob is a plain scalar so a plan can ride inside
``WLANConfig.fault_params`` / ``MultiCellConfig.fault_params`` dicts,
cross a sweep-cell identity hash, and serialise into benchmark
documents without custom encoders.  The plan carries no state and no
RNG — :class:`~repro.faults.injector.FaultInjector` owns both.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic description of injected faults.

    Backplane loss follows a two-state Gilbert–Elliott chain: in the
    *good* state frames drop with ``backplane_loss_rate`` (the plain
    Bernoulli model when ``burst_enter`` is 0), in the *bad* (burst)
    state with ``burst_loss_rate``; per-frame transition probabilities
    are ``burst_enter`` / ``burst_exit``.  Delivered frames may instead
    be delayed by a bounded whole number of slots.  CSI reports can be
    corrupted in transit (the subordinate's own tracker stays clean —
    the wire is what fails) or go stale because an AP misses the ack.
    ``leader_crash_slot`` kills the leader AP at the start of that
    absolute slot, forcing re-election.
    """

    #: P(frame lost) in the good state of the Gilbert–Elliott chain.
    backplane_loss_rate: float = 0.0
    #: P(good → bad) per frame; 0 disables bursts (pure Bernoulli loss).
    burst_enter: float = 0.0
    #: P(bad → good) per frame.
    burst_exit: float = 0.5
    #: P(frame lost) while the chain is in the bad (burst) state.
    burst_loss_rate: float = 1.0
    #: P(a delivered frame is delayed instead of arriving this slot).
    backplane_delay_rate: float = 0.0
    #: Maximum whole-slot delay of a delayed frame (uniform in 1..max).
    backplane_delay_max: int = 0
    #: P(a CSI report is corrupted on the wire).
    csi_corrupt_rate: float = 0.0
    #: Corruption noise scale, relative to the estimate's RMS magnitude.
    csi_corrupt_sigma: float = 8.0
    #: P(an AP misses one client ack — that sounding never happens).
    csi_stale_rate: float = 0.0
    #: Leader rejects a report whose relative Frobenius change exceeds
    #: this (corrupt-CSI guard); the client is quarantined until a
    #: plausible report arrives.
    csi_guard_threshold: float = 4.0
    #: Absolute slot at which the leader AP crashes (None = never).
    leader_crash_slot: Optional[int] = None

    def __post_init__(self):
        for name in (
            "backplane_loss_rate",
            "burst_enter",
            "burst_loss_rate",
            "backplane_delay_rate",
            "csi_corrupt_rate",
            "csi_stale_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= float(value) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if not 0.0 < float(self.burst_exit) <= 1.0:
            raise ValueError(
                f"burst_exit must be in (0, 1], got {self.burst_exit!r} "
                "(a burst the chain can never leave is loss_rate=1.0)"
            )
        if int(self.backplane_delay_max) < 0:
            raise ValueError("backplane_delay_max must be >= 0")
        if float(self.csi_corrupt_sigma) < 0.0:
            raise ValueError("csi_corrupt_sigma must be >= 0")
        if float(self.csi_guard_threshold) <= 0.0:
            raise ValueError("csi_guard_threshold must be > 0")
        if self.leader_crash_slot is not None and int(self.leader_crash_slot) < 0:
            raise ValueError("leader_crash_slot must be >= 0 or None")

    # ------------------------------------------------------------------ #

    @property
    def delays_frames(self) -> bool:
        return self.backplane_delay_rate > 0.0 and self.backplane_delay_max > 0

    def to_params(self) -> Dict[str, Any]:
        """The plan as the flat dict ``from_params`` accepts."""
        return asdict(self)

    @classmethod
    def from_params(cls, params: Optional[Mapping[str, Any]]) -> "FaultPlan":
        """Build a plan from a flat dict, rejecting unknown keys.

        A misspelled knob must fail loudly — silently ignoring it would
        run a *different* fault plan under the requested name.
        """
        params = dict(params or {})
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ValueError(
                f"unknown fault plan parameter(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**params)
