"""Concurrency rule: no unbounded blocking receives in library code.

The crash-safe multicell layer exists because a plain
``Connection.recv()`` on a pipe whose worker was SIGKILLed blocks
forever — the driver hangs with no stack trace naming the dead shard.
The repo's contract is that every cross-process receive either polls
with a timeout first (``conn.poll(interval)`` then ``conn.recv()``) or
passes a timeout (``queue.get(timeout=...)``), so a dead or wedged
worker surfaces as a diagnosable ``RuntimeError`` instead of a hang.

This rule flags the two blocking shapes mechanically:

* ``<expr>.recv()`` with no arguments — ``multiprocessing.Connection``
  has no timeout parameter, so a naked call is only legal directly
  after a successful ``poll(timeout)``; waiver those sites with
  ``# repro-lint: ignore[no-naked-recv]`` stating the poll.
* ``<expr>.get()`` with no positional arguments and no ``timeout=``
  keyword — the zero-arg form is ``queue.Queue.get()``/
  ``SimpleQueue.get()`` blocking forever (``dict.get`` always takes a
  key, so ordinary mapping lookups never match).

AST rules cannot see types, so a zero-arg ``.recv()`` on a class that
implements its own timeout internally (``_ShardHandle.recv``) also
matches — waiver it with a comment naming the wrapper's timeout.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import FileContext, Finding, Rule, register_rule


@register_rule
class NoNakedRecv(Rule):
    """Cross-process receives must bound their wait."""

    rule_id = "no-naked-recv"
    summary = (
        "a .recv() with no arguments or a .get() with no positional "
        "arguments and no timeout= blocks forever on a dead peer; poll "
        "with a timeout first (or pass timeout=) and waiver the "
        "poll-guarded call site"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "recv" and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "naked .recv() blocks forever if the peer dies; guard "
                    "with poll(timeout) and waiver the call site, naming "
                    "the poll",
                )
            elif (
                func.attr == "get"
                and not node.args
                and not any(kw.arg == "timeout" for kw in node.keywords)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "zero-argument .get() blocks forever if the producer "
                    "dies; pass timeout= (or poll first and waiver the "
                    "call site)",
                )
