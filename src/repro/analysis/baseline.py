"""Grandfathered findings: the committed ``LINT_BASELINE.json``.

The gate is strict on new code from day one: findings that predate the
linter live in a committed baseline and do not fail the build, while
anything not in the baseline does.  Entries match on the finding's
*fingerprint* — path, rule and the stripped text of the offending line
— so a file shifting by a few lines keeps matching, but touching the
offending code itself surfaces the finding again.  The intended
trajectory is monotonically down: fix a finding, shrink the file.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.analysis.base import Finding

BASELINE_SCHEMA_VERSION = 1
BASELINE_FILENAME = "LINT_BASELINE.json"


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Iterable[Tuple[str, str, str]] = ()):
        self._counts: Counter = Counter(fingerprints)

    def __len__(self) -> int:
        return sum(self._counts.values())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Baseline":
        version = data.get("schema_version", BASELINE_SCHEMA_VERSION)
        if version > BASELINE_SCHEMA_VERSION:
            raise ValueError(f"unsupported baseline schema version {version}")
        return cls(
            (str(e["path"]), str(e["rule"]), str(e.get("text", "")))
            for e in data.get("findings", [])
        )

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def filter(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], int]:
        """``(new_findings, matched_count)`` — consuming one baseline
        entry per matched finding, so a file cannot grow extra copies of
        a grandfathered violation for free."""
        remaining = Counter(self._counts)
        new: List[Finding] = []
        matched = 0
        for finding in findings:
            if remaining[finding.fingerprint] > 0:
                remaining[finding.fingerprint] -= 1
                matched += 1
            else:
                new.append(finding)
        return new, matched

    @staticmethod
    def document(findings: Iterable[Finding]) -> Dict[str, Any]:
        """The JSON document grandfathering ``findings`` (sorted, stable)."""
        return {
            "schema_version": BASELINE_SCHEMA_VERSION,
            "findings": [
                {"path": f.path, "rule": f.rule, "text": f.text}
                for f in sorted(findings)
            ],
        }

    @staticmethod
    def write(
        findings: Iterable[Finding], path: Union[str, os.PathLike]
    ) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(Baseline.document(findings), fh, indent=2, sort_keys=True)
            fh.write("\n")
