"""AST-based contract linter: the repo's invariants, mechanically enforced.

Every scaling layer in this codebase rests on conventions that used to
be enforced only by review and after-the-fact tests: per-stream
``default_rng`` seeding, fast/``*_reference`` engine pairing, explicit
iteration order in the sharded hot paths, no shared-mutable defaults
(the twice-shipped ``WLANConfig``/``ClusteredConfig`` bug).  This
package encodes each contract as an AST rule and surfaces them as
``python -m repro lint``:

* :mod:`repro.analysis.base` — :class:`Finding`, the :class:`Rule` /
  :class:`ProjectRule` framework, the rule registry, :class:`LintConfig`;
* :mod:`repro.analysis.rules_rng` — ``no-global-rng``,
  ``no-bare-default-rng``;
* :mod:`repro.analysis.rules_purity` — ``no-mutable-default``,
  ``no-wallclock``, ``no-print-in-library``;
* :mod:`repro.analysis.rules_order` — ``no-unordered-iteration`` over
  the sharded hot paths;
* :mod:`repro.analysis.rules_concurrency` — ``no-naked-recv``: every
  cross-process receive bounds its wait (poll-then-recv or
  ``timeout=``), so a dead worker is a diagnosable error, not a hang;
* :mod:`repro.analysis.rules_project` — cross-file ``engine-pair`` and
  ``scenario-registration``;
* :mod:`repro.analysis.suppressions` — ``# repro-lint: ignore[rule-id]``
  waivers, with stale waivers reported as ``unused-suppression``;
* :mod:`repro.analysis.baseline` — the committed ``LINT_BASELINE.json``
  of grandfathered findings (strict on new code from day one);
* :mod:`repro.analysis.runner` — :func:`lint_path` /
  :func:`lint_sources` and the :class:`LintReport` the CLI renders.

Quickstart::

    >>> from repro.analysis import lint_sources
    >>> lint_sources({"repro/x.py": "from numpy.random import default_rng\\n"})
    []

Each rule is documented (invariant, origin PR) in docs/ARCHITECTURE.md
§"Enforced contracts"; ``tests/test_docs.py`` fails when a registered
rule goes undocumented.
"""

from repro.analysis.base import (
    FileContext,
    Finding,
    LintConfig,
    ProjectContext,
    ProjectRule,
    Rule,
    all_rules,
    register_rule,
    rule_ids,
)
from repro.analysis.baseline import BASELINE_FILENAME, Baseline

# Importing the rule modules populates the registry.
from repro.analysis import rules_rng as _rules_rng  # noqa: F401
from repro.analysis import rules_purity as _rules_purity  # noqa: F401
from repro.analysis import rules_order as _rules_order  # noqa: F401
from repro.analysis import rules_concurrency as _rules_concurrency  # noqa: F401
from repro.analysis import rules_project as _rules_project  # noqa: F401
from repro.analysis.suppressions import SUPPRESSION_RULE_ID, Suppressions
from repro.analysis.runner import (
    PARSE_ERROR_RULE_ID,
    LintReport,
    lint_path,
    lint_sources,
)

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintReport",
    "PARSE_ERROR_RULE_ID",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "SUPPRESSION_RULE_ID",
    "Suppressions",
    "all_rules",
    "lint_path",
    "lint_sources",
    "register_rule",
    "rule_ids",
]
