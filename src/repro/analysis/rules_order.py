"""Ordering rule: the sharded hot paths iterate in explicit order.

The multicell layer and the sweep engine are bit-identical across
worker counts *by construction*: every aggregation happens in a fixed,
explicit order.  Iterating a ``set`` or a dict view there reintroduces
producer-insertion (or hash) order — results that drift with shard
assignment without ever crashing, the silent corruption class
Push-and-Track/COTAG-style distributed loops are known for.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.base import FileContext, Finding, Rule, register_rule

#: Wrappers that preserve their argument's iteration order — look through
#: them for the underlying unordered expression.
_TRANSPARENT_CALLS = frozenset({"enumerate", "list", "tuple", "reversed", "iter"})
#: Wrappers that impose a deterministic order — sanctify anything inside.
_ORDERING_CALLS = frozenset({"sorted"})
_DICT_VIEWS = frozenset({"keys", "values", "items"})


def _unordered_reason(node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
    """The unordered sub-expression and why, or None if explicitly ordered."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return node, "iterates a set (hash order)"
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _ORDERING_CALLS:
            return None
        if func.id == "set":
            return node, "iterates set(...) (hash order)"
        if func.id in _TRANSPARENT_CALLS:
            for arg in node.args:
                reason = _unordered_reason(arg)
                if reason is not None:
                    return reason
        return None
    if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS:
        return (
            node,
            f"iterates a dict .{func.attr}() view (producer insertion order)",
        )
    return None


@register_rule
class NoUnorderedIteration(Rule):
    """Sharded hot paths must sort set/dict-view iterations explicitly."""

    rule_id = "no-unordered-iteration"
    summary = (
        "the sharded hot paths (sim/multicell.py, experiments/sweep.py) "
        "may not iterate sets or dict views unsorted; wrap in sorted() or "
        "suppress where the insertion order is itself the contract"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel_path not in ctx.config.ordered_files:
            return
        iters: List[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            reason = _unordered_reason(expr)
            if reason is None:
                continue
            node, why = reason
            yield self.finding(
                ctx,
                node,
                f"{why} in a worker-invariant hot path; wrap in sorted() "
                "or suppress with a comment stating the ordering argument",
            )
