"""Ordering rules: explicit iteration order and total-order event keys.

The multicell layer and the sweep engine are bit-identical across
worker counts *by construction*: every aggregation happens in a fixed,
explicit order.  Iterating a ``set`` or a dict view there reintroduces
producer-insertion (or hash) order — results that drift with shard
assignment without ever crashing, the silent corruption class
Push-and-Track/COTAG-style distributed loops are known for
(``no-unordered-iteration``).

The event kernel adds a second ordering contract: heap pops and
time-sorts decide *which event fires first*, and a raw float key makes
that decision ill-defined the moment two events share a timestamp —
``heapq`` then falls back to comparing the payloads, which is either a
crash (uncomparable types) or an arbitrary order that changes with
payload layout.  ``event-key-total-order`` requires every heap push in
``repro/sim`` to be an explicit ``(time, seq, ...)`` tuple, and every
time-based sort key to carry the same tiebreaker.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.base import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register_rule,
)

#: Wrappers that preserve their argument's iteration order — look through
#: them for the underlying unordered expression.
_TRANSPARENT_CALLS = frozenset({"enumerate", "list", "tuple", "reversed", "iter"})
#: Wrappers that impose a deterministic order — sanctify anything inside.
_ORDERING_CALLS = frozenset({"sorted"})
_DICT_VIEWS = frozenset({"keys", "values", "items"})


def _unordered_reason(node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
    """The unordered sub-expression and why, or None if explicitly ordered."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return node, "iterates a set (hash order)"
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in _ORDERING_CALLS:
            return None
        if func.id == "set":
            return node, "iterates set(...) (hash order)"
        if func.id in _TRANSPARENT_CALLS:
            for arg in node.args:
                reason = _unordered_reason(arg)
                if reason is not None:
                    return reason
        return None
    if isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS:
        return (
            node,
            f"iterates a dict .{func.attr}() view (producer insertion order)",
        )
    return None


@register_rule
class NoUnorderedIteration(Rule):
    """Sharded hot paths must sort set/dict-view iterations explicitly."""

    rule_id = "no-unordered-iteration"
    summary = (
        "the sharded hot paths (sim/multicell.py, experiments/sweep.py) "
        "may not iterate sets or dict views unsorted; wrap in sorted() or "
        "suppress where the insertion order is itself the contract"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel_path not in ctx.config.ordered_files:
            return
        iters: List[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            reason = _unordered_reason(expr)
            if reason is None:
                continue
            node, why = reason
            yield self.finding(
                ctx,
                node,
                f"{why} in a worker-invariant hot path; wrap in sorted() "
                "or suppress with a comment stating the ordering argument",
            )


def _in_event_scope(ctx: FileContext) -> bool:
    return any(
        ctx.rel_path == pkg or ctx.rel_path.startswith(pkg + "/")
        for pkg in ctx.config.event_key_packages
    )


def _is_total_order_key(node: ast.AST) -> bool:
    """An explicit ``(time, seq, ...)`` tuple literal with a tiebreaker."""
    return isinstance(node, ast.Tuple) and len(node.elts) >= 2


def _sort_key(node: ast.Call) -> Optional[ast.AST]:
    """The ``key=`` expression of a ``sorted``/``.sort`` call, if any."""
    name = dotted_name(node.func)
    if name is None or (name != "sorted" and not name.endswith(".sort")):
        return None
    for keyword in node.keywords:
        if keyword.arg == "key":
            return keyword.value
    return None


@register_rule
class EventKeyTotalOrder(Rule):
    """Event-layer heap/sort keys must be ``(time, seq, ...)`` tuples."""

    rule_id = "event-key-total-order"
    summary = (
        "heap pushes in repro/sim must push an explicit (time, seq, ...) "
        "tuple, and time-based sort keys need the same integer "
        "tiebreaker — raw float keys leave pop order undefined under "
        "timestamp ties"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _in_event_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in ("heappush", "heapq.heappush") and len(node.args) >= 2:
                key = node.args[1]
                if not _is_total_order_key(key):
                    yield self.finding(
                        ctx,
                        key,
                        "heap push without an explicit (time, seq, ...) "
                        "tuple key — under a timestamp tie heapq compares "
                        "whatever comes next, which is a crash or an "
                        "arbitrary pop order",
                    )
                continue
            key = _sort_key(node)
            if key is None:
                continue
            body = key.body if isinstance(key, ast.Lambda) else key
            if _is_total_order_key(body):
                continue
            if "time" in ast.unparse(body).lower():
                yield self.finding(
                    ctx,
                    key,
                    "sort keyed on a raw timestamp — add a (time, seq, "
                    "...) tiebreaker so order is total under ties",
                )
