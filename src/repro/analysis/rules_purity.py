"""Purity rules: no shared-mutable defaults, wall clocks or stray I/O.

*Mutable defaults* are the repo's twice-shipped bug (``WLANConfig`` in
PR 2, ``ClusteredConfig`` in PR 6): a default argument or dataclass
field constructed at definition time is one shared object across every
call and instance.  *Wall clocks* outside the benchmark harness make
results depend on when (or how fast) a run happened.  *Prints and bare
excepts* in library code either corrupt the CLI's machine-readable
stdout or swallow the very mismatch CI exists to catch.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.base import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register_rule,
)

#: Builtin constructors whose result is mutable.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
     "OrderedDict"}
)
#: Call defaults that are fine: immutable builtins and dataclass field().
_SAFE_CALLS = frozenset({"tuple", "frozenset", "field"})


def _mutable_default(node: ast.AST) -> Optional[str]:
    """Why ``node`` is unsafe as a default value, or None if it is safe."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        kind = type(node).__name__.lower()
        return f"mutable {kind} literal shared across every call"
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return "mutable comprehension result shared across every call"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        last = name.split(".")[-1] if name else ""
        if last in _SAFE_CALLS:
            return None
        if last in _MUTABLE_CALLS:
            return f"mutable {last}() shared across every call"
        return (
            f"{last or 'constructor'}() evaluated once at definition time "
            "— one shared instance; use a None sentinel (the WLANConfig/"
            "ClusteredConfig bug)"
        )
    return None


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


@register_rule
class NoMutableDefault(Rule):
    """Function-argument and dataclass-field defaults must be immutable."""

    rule_id = "no-mutable-default"
    summary = (
        "no mutable or constructor-call defaults on function arguments or "
        "dataclass fields; use None sentinels or field(default_factory=...)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    reason = _mutable_default(default)
                    if reason is not None:
                        yield self.finding(
                            ctx,
                            default,
                            f"default of an argument of {node.name}(): {reason}",
                        )
            elif isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node):
                yield from self._check_dataclass(ctx, node)

    def _check_dataclass(
        self, ctx: FileContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in node.body:
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if value is None:
                continue
            reason = _mutable_default(value)
            if reason is not None:
                yield self.finding(
                    ctx,
                    value,
                    f"field default in dataclass {node.name}: {reason}",
                )


#: ``time`` module clocks (monotonic ones included: they still leak
#: hardware speed into results).
_TIME_CLOCKS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time", "process_time_ns"}
)
#: ``datetime``/``date`` wall-clock constructors.
_DATETIME_CLOCKS = frozenset({"now", "utcnow", "today"})


def _time_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


def _datetime_roots(tree: ast.Module) -> Set[str]:
    """Names that may be the ``datetime`` module or its classes."""
    roots: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "datetime":
                    roots.add(alias.asname or "datetime")
        elif isinstance(node, ast.ImportFrom) and node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    roots.add(alias.asname or alias.name)
    return roots


@register_rule
class NoWallclock(Rule):
    """Results may not depend on when or how fast the run happened."""

    rule_id = "no-wallclock"
    summary = (
        "wall clocks (time.time/perf_counter/datetime.now/...) are allowed "
        "only in the benchmark harness; simulated time is slot counts"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel_path in ctx.config.wallclock_allowed:
            return
        time_names = _time_aliases(ctx.tree)
        dt_roots = _datetime_roots(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_CLOCKS:
                            yield self.finding(
                                ctx,
                                node,
                                f"time.{alias.name} read outside the "
                                "benchmark harness",
                            )
                continue
            if not isinstance(node, ast.Attribute):
                continue
            dotted = dotted_name(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                len(parts) == 2
                and parts[0] in time_names
                and parts[1] in _TIME_CLOCKS
            ):
                yield self.finding(
                    ctx, node, f"{dotted} read outside the benchmark harness"
                )
            elif (
                parts[-1] in _DATETIME_CLOCKS
                and parts[0] in dt_roots
                and len(parts) <= 3
            ):
                yield self.finding(
                    ctx, node, f"{dotted} read outside the benchmark harness"
                )


@register_rule
class NoPrintInLibrary(Rule):
    """Library code neither prints nor blanket-swallows exceptions."""

    rule_id = "no-print-in-library"
    summary = (
        "print() and bare except belong to the CLI surface only; library "
        "code returns strings and lets specific exceptions propagate"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel_path in ctx.config.print_allowed:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "print() in library code corrupts the CLI's "
                    "machine-readable stdout; return the text instead",
                )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except swallows every failure including the "
                    "mismatches CI exists to catch; name the exceptions",
                )
