"""Inline waivers: ``# repro-lint: ignore[rule-id]``.

A suppression silences findings of the named rule **on its own line**
only — waivers stay next to the code they excuse.  Every suppression
must earn its keep: one that matches no finding (stale, or naming an
unknown rule) is itself an error (``unused-suppression``), so waivers
cannot rot when the code they excused is fixed or deleted.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterable, List, Sequence, Set, Tuple

from repro.analysis.base import FileContext, Finding, Rule, register_rule

SUPPRESSION_RULE_ID = "unused-suppression"

_PATTERN = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]*)\]")


@register_rule
class UnusedSuppression(Rule):
    """Synthetic rule id under which stale waivers are reported.

    It has no ``check`` of its own — the lint runner emits its findings
    after matching suppressions against the real rules' output.
    """

    rule_id = SUPPRESSION_RULE_ID
    summary = (
        "a # repro-lint: ignore[...] comment must match a live finding on "
        "its line; stale or unknown-rule waivers are errors"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()


class Suppressions:
    """The ``ignore[...]`` comments of one file, by line."""

    def __init__(self, entries: Sequence[Tuple[int, str]]):
        #: ``(line, rule_id)`` pairs, in source order.
        self.entries = list(entries)

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        entries: List[Tuple[int, str]] = []
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return cls([])
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            for rule_id in match.group(1).split(","):
                rule_id = rule_id.strip()
                if rule_id:
                    entries.append((line, rule_id))
        return cls(entries)

    def apply(
        self, ctx: FileContext, findings: Iterable[Finding], known_ids: Set[str]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (kept, errors-for-stale-waivers).

        A finding is dropped when a same-line suppression names its rule.
        Suppressions that drop nothing — including ones naming a rule id
        that does not exist — come back as ``unused-suppression``
        findings, which cannot themselves be suppressed.
        """
        used = [False] * len(self.entries)
        kept: List[Finding] = []
        for finding in findings:
            suppressed = False
            for i, (line, rule_id) in enumerate(self.entries):
                if line == finding.line and rule_id == finding.rule:
                    used[i] = True
                    suppressed = True
            if not suppressed:
                kept.append(finding)
        errors: List[Finding] = []
        for (line, rule_id), was_used in zip(self.entries, used):
            if was_used:
                continue
            if rule_id not in known_ids:
                message = (
                    f"suppression names unknown rule {rule_id!r}; known "
                    "rules: see 'repro lint --help' or docs/ARCHITECTURE.md"
                )
            else:
                message = (
                    f"suppression for {rule_id!r} matches no finding on "
                    "this line — remove the stale waiver"
                )
            errors.append(ctx.finding(SUPPRESSION_RULE_ID, line, message))
        return kept, errors
