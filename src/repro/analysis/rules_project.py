"""Cross-file rules: engine pairing and scenario registration.

These invariants live between modules, so they run once over the whole
file set (:class:`~repro.analysis.base.ProjectRule`):

* **engine-pair** — every ``*_reference`` callable is the slow bit-exact
  twin of a fast engine (PRs 2-3's discipline).  A reference without a
  fast counterpart is dead weight; one never named in a test is an
  equivalence check that silently stopped existing.  The columnar
  extension inverts the direction for ``LintConfig.columnar_modules``:
  there every *public ``run_*`` entry point* must carry a
  ``{name}_reference`` oracle in the same module, itself named in a
  test — a columnar driver without a pinned scalar twin is an
  unverifiable fast path.
* **scenario-registration** — ``@register_scenario`` only registers a
  scenario when its module is imported; a module not reachable from
  ``repro/experiments/__init__.py`` ships scenarios the CLI can never
  see.

One advisory file rule rides along: **no-python-slot-loop**, scoped to
the columnar modules, where a per-slot Python loop is the exact cost the
module exists to remove — the top-level drivers waive theirs explicitly.
"""

from __future__ import annotations

import ast
import posixpath
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.base import (
    FileContext,
    Finding,
    ProjectContext,
    ProjectRule,
    Rule,
    dotted_name,
    register_rule,
)


def _top_level_defs(
    tree: ast.Module,
) -> List[Tuple[str, ast.AST]]:
    """Module- and class-level function defs (nested closures excluded).

    Closures are implementation detail, not engine surface; the pairing
    contract applies to callables another module (or a test) can reach.
    """
    defs: List[Tuple[str, ast.AST]] = []
    stack: List[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.append((node.name, node))
        elif isinstance(node, ast.ClassDef):
            stack.extend(node.body)
    return defs


@register_rule
class EnginePair(ProjectRule):
    """``*_reference`` engines must have a fast twin and a test mention."""

    rule_id = "engine-pair"
    summary = (
        "every *_reference callable needs a same-module fast counterpart "
        "and must be named in at least one test (the equivalence contract)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        suffix = project.config.reference_suffix
        for ctx in project.files:
            names = _top_level_defs(ctx.tree)
            defined = {name for name, _ in names}
            for name, node in names:
                if not name.endswith(suffix) or name == suffix:
                    continue
                counterpart = name[: -len(suffix)]
                if counterpart not in defined:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{name} has no fast counterpart {counterpart}() in "
                        "the same module — a reference engine pairs with "
                        "the engine it checks",
                    )
                if not project.name_in_tests(name):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{name} is never named in any test — the "
                        "fast/reference equivalence check does not exist",
                    )
            if ctx.rel_path in project.config.columnar_modules:
                yield from self._check_columnar(project, ctx, names, defined)

    def _check_columnar(
        self,
        project: ProjectContext,
        ctx: FileContext,
        names: List[Tuple[str, ast.AST]],
        defined: Set[str],
    ) -> Iterator[Finding]:
        """Columnar modules: every public ``run_*`` needs a pinned oracle."""
        suffix = project.config.reference_suffix
        for name, node in names:
            if not name.startswith("run_") or name.endswith(suffix):
                continue
            reference = name + suffix
            if reference not in defined:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"columnar entry point {name} has no {reference}() in "
                    "the same module — a fast path without its scalar "
                    "oracle cannot be equivalence-checked",
                )
            elif not project.name_in_tests(reference):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{reference} is never named in any test — the "
                    f"columnar bit-identity check for {name} does not exist",
                )


@register_rule
class NoPythonSlotLoop(Rule):
    """Advisory: per-slot Python loops in columnar modules need a waiver."""

    rule_id = "no-python-slot-loop"
    summary = (
        "columnar modules must not iterate slots in Python — vectorise "
        "the work, or waive the driver loop explicitly with "
        "# repro-lint: ignore[no-python-slot-loop]"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel_path not in ctx.config.columnar_modules:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_slot_range(node.iter):
                yield self.finding(
                    ctx,
                    node,
                    "per-slot Python loop in a columnar module — the cost "
                    "this module exists to amortise; vectorise or waive",
                )


def _is_slot_range(node: ast.AST) -> bool:
    """``range(...)`` whose argument expression mentions a slot count."""
    if not isinstance(node, ast.Call):
        return False
    if dotted_name(node.func) != "range":
        return False
    return any("slot" in ast.unparse(arg).lower() for arg in node.args)


def _uses_register_scenario(tree: ast.Module) -> Optional[ast.AST]:
    """The first ``@register_scenario`` decorator usage, if any."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for decorator in node.decorator_list:
            target = (
                decorator.func if isinstance(decorator, ast.Call) else decorator
            )
            name = dotted_name(target)
            if name is not None and name.split(".")[-1] == "register_scenario":
                return decorator
    return None


def _imported_submodules(init_tree: ast.Module, package: str) -> Set[str]:
    """Module stems the package ``__init__`` imports (registration reach)."""
    dotted_pkg = package.replace("/", ".")
    stems: Set[str] = set()
    for node in ast.walk(init_tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(dotted_pkg + "."):
                    stems.add(alias.name[len(dotted_pkg) + 1 :].split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level > 0:
                # Relative import inside the package __init__.
                stems.update(alias.name for alias in node.names)
                if module:
                    stems.add(module.split(".")[0])
            elif module == dotted_pkg:
                stems.update(alias.name for alias in node.names)
            elif module.startswith(dotted_pkg + "."):
                stems.add(module[len(dotted_pkg) + 1 :].split(".")[0])
    return stems


@register_rule
class ScenarioRegistration(ProjectRule):
    """Every ``@register_scenario`` module is reachable from the registry."""

    rule_id = "scenario-registration"
    summary = (
        "every module using @register_scenario must be imported from "
        "repro/experiments/__init__.py, or its scenarios never register"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        package = project.config.experiments_package
        init_path = posixpath.join(package, "__init__.py")
        by_path: Dict[str, FileContext] = {
            ctx.rel_path: ctx for ctx in project.files
        }
        init_ctx = by_path.get(init_path)
        imported = (
            _imported_submodules(init_ctx.tree, package)
            if init_ctx is not None
            else set()
        )
        for ctx in project.files:
            directory, filename = posixpath.split(ctx.rel_path)
            if directory != package or filename == "__init__.py":
                continue
            usage = _uses_register_scenario(ctx.tree)
            if usage is None:
                continue
            stem = filename[: -len(".py")]
            if init_ctx is None:
                yield ctx.finding(
                    self.rule_id,
                    usage,
                    f"{package}/__init__.py is missing, so the scenarios "
                    f"registered in {stem} are unreachable",
                )
            elif stem not in imported:
                yield ctx.finding(
                    self.rule_id,
                    usage,
                    f"module {stem} registers scenarios but is not imported "
                    f"from {init_path}; they will never appear in the "
                    "registry or the CLI",
                )
