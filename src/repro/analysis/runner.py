"""The lint runner: files in, :class:`LintReport` out.

Pipeline per file: parse, run every file rule, apply same-line
suppressions (stale waivers become findings).  Project rules then run
once over the full file set (plus the test sources, for the
engine-pair test-mention check), their findings subject to the same
suppressions.  Finally the baseline splits findings into grandfathered
and new — only new findings fail the gate.

``lint_sources`` is the pure core (strings in, findings out — what the
fixture tests and the CLI's ``--rule`` filter drive);
:func:`lint_path` wraps it with filesystem walking and the baseline.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.analysis.base import (
    FileContext,
    Finding,
    LintConfig,
    ProjectContext,
    ProjectRule,
    Rule,
    all_rules,
    register_rule,
    rule_ids,
)
from repro.analysis.baseline import Baseline
from repro.analysis.suppressions import Suppressions

PARSE_ERROR_RULE_ID = "parse-error"

LINT_SCHEMA_VERSION = 1


@register_rule
class ParseError(Rule):
    """Synthetic rule id for files the linter cannot parse.

    Emitted by the runner itself — an unparseable file would otherwise
    silently escape every contract.
    """

    rule_id = PARSE_ERROR_RULE_ID
    summary = "file could not be parsed; unparseable code escapes every rule"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()


@dataclass
class LintReport:
    """Everything one lint run learned."""

    root: str
    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    baseline_matched: int = 0
    rules: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": LINT_SCHEMA_VERSION,
            "root": self.root,
            "files_checked": self.files_checked,
            "baseline_matched": self.baseline_matched,
            "rules": list(self.rules),
            "clean": self.ok,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        grandfathered = (
            f" ({self.baseline_matched} grandfathered in the baseline)"
            if self.baseline_matched
            else ""
        )
        lines.append(
            f"{len(self.findings)} finding(s) across "
            f"{self.files_checked} file(s){grandfathered}"
        )
        return "\n".join(lines)


def _select_rules(
    rules: Optional[Sequence[Rule]], selected: Optional[Sequence[str]]
) -> List[Rule]:
    pool = list(rules) if rules is not None else all_rules()
    if selected is None:
        return pool
    unknown = sorted(set(selected) - {rule.rule_id for rule in pool})
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(unknown)}; "
            f"known rules: {', '.join(sorted(r.rule_id for r in pool))}"
        )
    wanted = set(selected)
    return [rule for rule in pool if rule.rule_id in wanted]


def lint_sources(
    sources: Mapping[str, str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    selected: Optional[Sequence[str]] = None,
    test_sources: Optional[Mapping[str, str]] = None,
) -> List[Finding]:
    """Lint in-memory sources (``rel_path -> text``); return findings.

    ``selected`` restricts to the named rule ids.  Stale-waiver checking
    only runs on a full-rule pass: with a partial selection, a waiver
    for an unselected rule is not evidence of rot.
    """
    config = config if config is not None else LintConfig()
    active = _select_rules(rules, selected)
    check_unused = selected is None
    file_rules = [r for r in active if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]
    known_ids = set(rule_ids())

    findings: List[Finding] = []
    contexts: List[FileContext] = []
    suppressions: Dict[str, Suppressions] = {}
    per_file: Dict[str, List[Finding]] = {}
    for rel_path in sorted(sources):
        source = sources[rel_path]
        try:
            tree = ast.parse(source, filename=rel_path)
        except (SyntaxError, ValueError) as exc:
            findings.append(
                Finding(
                    path=rel_path,
                    line=getattr(exc, "lineno", 0) or 0,
                    rule=PARSE_ERROR_RULE_ID,
                    message=f"cannot parse: {exc}",
                )
            )
            continue
        ctx = FileContext(rel_path, source, tree, config)
        contexts.append(ctx)
        suppressions[rel_path] = Suppressions.from_source(source)
        collected: List[Finding] = []
        for rule in file_rules:
            collected.extend(rule.check(ctx))
        per_file[rel_path] = collected

    project = ProjectContext(contexts, config, test_sources)
    for rule in project_rules:
        for finding in rule.check_project(project):
            per_file.setdefault(finding.path, []).append(finding)

    by_path = {ctx.rel_path: ctx for ctx in contexts}
    for rel_path in sorted(per_file):
        ctx = by_path.get(rel_path)
        file_findings = per_file[rel_path]
        if ctx is None:
            findings.extend(file_findings)
            continue
        kept, stale = suppressions[rel_path].apply(
            ctx, file_findings, known_ids
        )
        findings.extend(kept)
        if check_unused:
            findings.extend(stale)
    return sorted(findings)


def iter_source_files(root: Union[str, os.PathLike]) -> List[Path]:
    """Every ``.py`` under ``root``, in deterministic path order."""
    return sorted(Path(root).rglob("*.py"))


def _read_tree(root: Optional[Union[str, os.PathLike]]) -> Dict[str, str]:
    if root is None or not os.path.isdir(root):
        return {}
    base = Path(root)
    out: Dict[str, str] = {}
    for path in iter_source_files(base):
        try:
            out[path.relative_to(base).as_posix()] = path.read_text(
                encoding="utf-8"
            )
        except (OSError, UnicodeDecodeError):
            continue
    return out


def lint_path(
    root: Union[str, os.PathLike],
    tests_root: Optional[Union[str, os.PathLike]] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
    selected: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint every ``.py`` under ``root``; filter through ``baseline``.

    ``tests_root`` (default: the ``tests/`` sibling of ``root``'s
    parent) feeds the engine-pair rule's test-mention check.
    """
    root = Path(root)
    if tests_root is None:
        # Lint root is the directory holding the package (``src/``), so
        # the conventional tests tree is its sibling.
        tests_root = root.parent / "tests"
    sources = _read_tree(root)
    findings = lint_sources(
        sources,
        config=config,
        rules=rules,
        selected=selected,
        test_sources=_read_tree(tests_root),
    )
    matched = 0
    if baseline is not None:
        findings, matched = baseline.filter(findings)
    active = _select_rules(rules, selected)
    return LintReport(
        root=str(root),
        findings=findings,
        files_checked=len(sources),
        baseline_matched=matched,
        rules=[rule.rule_id for rule in active],
    )
