"""Rule framework for the contract linter (:mod:`repro.analysis`).

A *rule* encodes one of the repo's documented invariants as an AST
check.  File rules (:class:`Rule`) see one parsed module at a time;
project rules (:class:`ProjectRule`) see every module plus the test
sources, for invariants that span files (engine pairing, scenario
registration).  Rules register themselves with :func:`register_rule`,
which is how the CLI's ``--rule`` filter, the docs-sync test and the
suppression checker discover them.

Every violation is a :class:`Finding` — path, line, rule id, message,
plus the stripped source text of the offending line.  The text is the
baseline fingerprint: grandfathered findings keep matching when the
file shifts by a few lines, but stop matching (and fail the gate) the
moment the offending code itself changes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Type, Union

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "dotted_name",
    "register_rule",
    "rule_ids",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation: where, which rule, and why."""

    path: str  #: Lint-root-relative posix path (e.g. ``repro/sim/wlan.py``).
    line: int
    rule: str
    message: str
    #: Stripped source of the offending line — the baseline fingerprint.
    text: str = ""

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.path, self.rule, self.text)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "text": self.text,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
            text=str(data.get("text", "")),
        )

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Where each contract applies — the repo's layout, as data.

    Paths are lint-root-relative posix paths.  The defaults encode this
    repository's documented contracts (see docs/ARCHITECTURE.md
    §"Enforced contracts"); tests build ad-hoc configs to lint fixture
    trees.
    """

    #: Files allowed to read wall clocks (timing harnesses only).
    wallclock_allowed: Tuple[str, ...] = ("repro/engine/bench.py",)
    #: Files whose set/dict-view iterations must be explicitly ordered
    #: (the sharded hot paths where ordering is the determinism contract).
    ordered_files: Tuple[str, ...] = (
        "repro/sim/multicell.py",
        "repro/experiments/sweep.py",
    )
    #: Files allowed to ``print`` / use bare ``except`` (the CLI surface).
    print_allowed: Tuple[str, ...] = ("repro/cli.py",)
    #: Package whose ``@register_scenario`` modules must be reachable
    #: from its ``__init__``.
    experiments_package: str = "repro/experiments"
    #: Suffix naming the slow bit-exact twin of a fast engine.
    reference_suffix: str = "_reference"
    #: Columnar fast-path modules: their public ``run_*`` entry points
    #: must carry a ``*_reference`` oracle, and per-slot Python loops
    #: inside them need an explicit waiver (``no-python-slot-loop``).
    columnar_modules: Tuple[str, ...] = (
        "repro/sim/columnar.py",
        "repro/sim/events.py",
    )
    #: Package prefixes where heap pushes and time-based sort keys must
    #: be ``(time, seq, ...)`` tuples (``event-key-total-order``): the
    #: discrete-event layer, where a raw float key makes pop order
    #: ill-defined under ties.
    event_key_packages: Tuple[str, ...] = ("repro/sim",)


class FileContext:
    """One parsed module presented to the rules."""

    def __init__(
        self,
        rel_path: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
    ):
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.config = config
        self._lines = source.splitlines()

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self._lines):
            return self._lines[line - 1].strip()
        return ""

    def finding(
        self, rule: str, where: Union[int, ast.AST], message: str
    ) -> Finding:
        line = where if isinstance(where, int) else getattr(where, "lineno", 0)
        return Finding(
            path=self.rel_path,
            line=int(line),
            rule=rule,
            message=message,
            text=self.line_text(int(line)),
        )


class ProjectContext:
    """Every linted module plus the test sources, for cross-file rules."""

    def __init__(
        self,
        files: List[FileContext],
        config: LintConfig,
        test_sources: Optional[Mapping[str, str]] = None,
    ):
        self.files = files
        self.config = config
        self.test_sources = dict(test_sources or {})

    def name_in_tests(self, name: str) -> bool:
        return any(name in text for text in self.test_sources.values())


class Rule:
    """A single-file AST check.  Subclass, set the ids, yield findings."""

    rule_id: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, where: Union[int, ast.AST], message: str
    ) -> Finding:
        return ctx.finding(self.rule_id, where, message)


class ProjectRule(Rule):
    """A check over the whole file set (runs once, after the file rules)."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    if not cls.summary:
        raise ValueError(f"rule {cls.rule_id!r} has no summary")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    return sorted(_REGISTRY)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a plain name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
