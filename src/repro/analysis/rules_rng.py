"""RNG-stream rules: every random draw comes from an explicit stream.

The repo's determinism contract (docs/ARCHITECTURE.md §2) routes all
randomness through per-component ``numpy.random.Generator`` streams
spawned from seeds — never the process-global state.  Global state is
order-dependent: two trials that share it stop being bit-identical the
moment a worker count, a cache hit or an import order changes.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.base import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
    register_rule,
)

#: The only ``numpy.random`` attributes that build explicit streams.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Names the module binds to the ``numpy`` package itself."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
                elif alias.name.startswith("numpy.") and alias.asname is None:
                    # ``import numpy.random`` binds the top-level ``numpy``.
                    aliases.add("numpy")
    return aliases


def _numpy_random_aliases(tree: ast.Module) -> Set[str]:
    """Names the module binds to the ``numpy.random`` module."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy.random" and alias.asname is not None:
                    aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy" and node.level == 0:
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
    return aliases


@register_rule
class NoGlobalRng(Rule):
    """Ban process-global RNG state in library code."""

    rule_id = "no-global-rng"
    summary = (
        "randomness must flow through explicit numpy Generators "
        "(default_rng / SeedSequence), never np.random.* globals or the "
        "stdlib random module"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        np_names = _numpy_aliases(ctx.tree)
        np_random_names = _numpy_random_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in np_names
                    and parts[1] == "random"
                    and parts[2] not in _ALLOWED_NP_RANDOM
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted} uses the process-global numpy RNG; draw "
                        "from an explicit Generator (default_rng(seed)) "
                        "instead",
                    )
                elif (
                    len(parts) == 2
                    and parts[0] in np_random_names
                    and parts[0] != "random"  # handled as stdlib below
                    and parts[1] not in _ALLOWED_NP_RANDOM
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted} uses the process-global numpy RNG; draw "
                        "from an explicit Generator (default_rng(seed)) "
                        "instead",
                    )

    def _check_import(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self.finding(
                        ctx,
                        node,
                        "the stdlib random module is process-global and "
                        "unseedable per-stream; use "
                        "repro.utils.rng.default_rng instead",
                    )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random" or (
                node.module or ""
            ).startswith("random."):
                yield self.finding(
                    ctx,
                    node,
                    "the stdlib random module is process-global and "
                    "unseedable per-stream; use "
                    "repro.utils.rng.default_rng instead",
                )
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _ALLOWED_NP_RANDOM:
                        yield self.finding(
                            ctx,
                            node,
                            f"numpy.random.{alias.name} uses the "
                            "process-global numpy RNG; draw from an "
                            "explicit Generator (default_rng(seed)) instead",
                        )


@register_rule
class NoBareDefaultRng(Rule):
    """``default_rng()`` with no seed is fresh OS entropy — unreproducible."""

    rule_id = "no-bare-default-rng"
    summary = (
        "default_rng() must be given a seed, SeedSequence or Generator; "
        "a bare call draws OS entropy and the run can never be reproduced"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == "default_rng":
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed draws fresh OS entropy; "
                    "pass the component's seed or an upstream Generator",
                )
