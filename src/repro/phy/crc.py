"""CRC-32 as used by 802.11 frames (reflected, polynomial 0x04C11DB7).

Implemented table-driven and numpy-free in the hot loop; this is the same
algorithm as ``zlib.crc32`` and the two are cross-checked in the test suite,
but we keep our own implementation so the frame format has no hidden
dependency and so intermediate states are inspectable.

The fast path is *slicing-by-8*: eight derived tables fold eight message
bytes into the register per loop iteration, cutting the Python-level
iteration count by 8x on long frames.  :func:`crc32_bytewise` keeps the
classic one-table-per-byte loop as the reference implementation the sliced
path (and the tables themselves) are equivalence-tested against.
"""

from __future__ import annotations

import struct

import numpy as np

_POLY_REFLECTED = 0xEDB88320


def _build_table() -> list:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def _build_sliced_tables() -> list:
    """Slicing-by-8 tables: ``_SLICED[k][b]`` advances byte ``b`` by ``k``
    extra zero bytes, so eight lookups fold eight message bytes at once."""
    tables = [_TABLE]
    for _ in range(7):
        prev = tables[-1]
        tables.append([(v >> 8) ^ _TABLE[v & 0xFF] for v in prev])
    return tables


_SLICED = _build_sliced_tables()


def crc32_bytewise(data: bytes, initial: int = 0) -> int:
    """Reference CRC-32: one table lookup per message byte."""
    crc = initial ^ 0xFFFFFFFF
    for byte in bytes(data):
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc32(data: bytes, initial: int = 0) -> int:
    """Return the CRC-32 of ``data`` (slicing-by-8 fast path).

    ``initial`` lets callers chain CRCs across fragments:
    ``crc32(a + b) == crc32(b, crc32(a))``.
    """
    data = bytes(data)
    crc = initial ^ 0xFFFFFFFF
    t0, t1, t2, t3, t4, t5, t6, t7 = _SLICED
    n8 = len(data) - (len(data) % 8)
    # One C-level unpack turns the body into little-endian 32-bit words, so
    # the loop folds 8 message bytes with two word reads per iteration.
    words = struct.unpack(f"<{n8 // 4}I", data[:n8])
    for k in range(0, len(words), 2):
        crc ^= words[k]
        w = words[k + 1]
        crc = (
            t7[crc & 0xFF]
            ^ t6[(crc >> 8) & 0xFF]
            ^ t5[(crc >> 16) & 0xFF]
            ^ t4[crc >> 24]
            ^ t3[w & 0xFF]
            ^ t2[(w >> 8) & 0xFF]
            ^ t1[(w >> 16) & 0xFF]
            ^ t0[w >> 24]
        )
    for byte in data[n8:]:
        crc = (crc >> 8) ^ t0[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def append_crc(payload: bytes) -> bytes:
    """Return ``payload`` with its 4-byte little-endian CRC appended."""
    return bytes(payload) + crc32(payload).to_bytes(4, "little")


def check_crc(frame: bytes) -> bool:
    """Validate a frame produced by :func:`append_crc`."""
    if len(frame) < 4:
        return False
    payload, trailer = frame[:-4], frame[-4:]
    return crc32(payload) == int.from_bytes(trailer, "little")


def strip_crc(frame: bytes) -> bytes:
    """Return the payload of a CRC-valid frame.

    Raises
    ------
    ValueError
        If the CRC does not verify.
    """
    if not check_crc(frame):
        raise ValueError("CRC check failed")
    return frame[:-4]


def crc_bits(bits: np.ndarray) -> np.ndarray:
    """CRC over a bit array, returned as 32 bits (for bit-domain pipelines)."""
    from repro.phy.bits import bits_to_bytes, bytes_to_bits

    value = crc32(bits_to_bytes(bits))
    return bytes_to_bits(value.to_bytes(4, "little"))
