"""CRC-32 as used by 802.11 frames (reflected, polynomial 0x04C11DB7).

Implemented table-driven and numpy-free in the hot loop per byte; this is the
same algorithm as ``zlib.crc32`` and the two are cross-checked in the test
suite, but we keep our own implementation so the frame format has no hidden
dependency and so intermediate states are inspectable.
"""

from __future__ import annotations

import numpy as np

_POLY_REFLECTED = 0xEDB88320


def _build_table() -> list:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, initial: int = 0) -> int:
    """Return the CRC-32 of ``data``.

    ``initial`` lets callers chain CRCs across fragments:
    ``crc32(a + b) == crc32(b, crc32(a))``.
    """
    crc = initial ^ 0xFFFFFFFF
    for byte in bytes(data):
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def append_crc(payload: bytes) -> bytes:
    """Return ``payload`` with its 4-byte little-endian CRC appended."""
    return bytes(payload) + crc32(payload).to_bytes(4, "little")


def check_crc(frame: bytes) -> bool:
    """Validate a frame produced by :func:`append_crc`."""
    if len(frame) < 4:
        return False
    payload, trailer = frame[:-4], frame[-4:]
    return crc32(payload) == int.from_bytes(trailer, "little")


def strip_crc(frame: bytes) -> bytes:
    """Return the payload of a CRC-valid frame.

    Raises
    ------
    ValueError
        If the CRC does not verify.
    """
    if not check_crc(frame):
        raise ValueError("CRC check failed")
    return frame[:-4]


def crc_bits(bits: np.ndarray) -> np.ndarray:
    """CRC over a bit array, returned as 32 bits (for bit-domain pipelines)."""
    from repro.phy.bits import bits_to_bytes, bytes_to_bits

    value = crc32(bits_to_bytes(bits))
    return bytes_to_bits(value.to_bytes(4, "little"))
