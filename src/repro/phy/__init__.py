"""Physical-layer substrate: everything below interference alignment.

Subpackages
-----------
``modulation``
    BPSK through 64-QAM and OFDM; pluggable into the IAC pipeline.
``fec``
    Convolutional (Viterbi) and Hamming codes plus interleaving.
``channel``
    Flat-fading MIMO channel model, estimation, reciprocity calibration.
``mimo``
    Precoding, projection/ZF/MMSE detection, eigenmode baseline, rates.

Modules
-------
``bits``, ``crc``, ``packet``, ``preamble``
    Bit plumbing, framing, and synchronisation sequences.
"""

from repro.phy.packet import DecodedPacket, Packet

__all__ = ["DecodedPacket", "Packet"]
