"""Frequency-selective (multi-tap) MIMO channels.

The paper's USRP1 channels were narrow enough to be flat ("accurately
modeled with a single complex number", §6c), which is the regime where
alignment needs no synchronisation.  For wider channels the paper
*conjectures* that alignment can be done independently per OFDM
subcarrier.  This module provides the substrate to test that conjecture:

* :class:`MultiTapChannel` -- an FIR MIMO channel ``y[t] = sum_k H_k x[t-k]``
  with a configurable power-delay profile;
* :meth:`MultiTapChannel.frequency_response` -- the per-subcarrier channel
  matrices ``H(f) = sum_k H_k exp(-j 2 pi f k / N)`` an OFDM system sees;
* :func:`exponential_pdp` -- the standard exponentially-decaying
  power-delay profile, parameterised by delay spread.

The §6c experiment itself lives in :mod:`repro.core.ofdm_alignment` and
``benchmarks/bench_ablation_ofdm.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.phy.channel.model import rayleigh_channel
from repro.utils.rng import default_rng


def exponential_pdp(n_taps: int, delay_spread: float) -> np.ndarray:
    """Exponentially-decaying power-delay profile, normalised to unit sum.

    ``delay_spread`` is the RMS delay spread in samples; ``delay_spread=0``
    returns a single-tap (flat) profile.
    """
    if n_taps < 1:
        raise ValueError("need at least one tap")
    if delay_spread < 0:
        raise ValueError("delay spread must be non-negative")
    if delay_spread == 0 or n_taps == 1:
        profile = np.zeros(n_taps)
        profile[0] = 1.0
        return profile
    taps = np.arange(n_taps)
    profile = np.exp(-taps / delay_spread)
    return profile / profile.sum()


@dataclass(frozen=True)
class MultiTapChannel:
    """A time-dispersive MIMO channel: one matrix per delay tap.

    Attributes
    ----------
    taps:
        Tuple of ``(n_rx, n_tx)`` complex matrices, tap 0 first.
    """

    taps: tuple

    def __post_init__(self):
        if not self.taps:
            raise ValueError("need at least one tap")
        shape = self.taps[0].shape
        if any(t.shape != shape for t in self.taps):
            raise ValueError("all taps must share the same antenna shape")

    @property
    def n_rx(self) -> int:
        return self.taps[0].shape[0]

    @property
    def n_tx(self) -> int:
        return self.taps[0].shape[1]

    @property
    def n_taps(self) -> int:
        return len(self.taps)

    @classmethod
    def random(
        cls,
        n_rx: int,
        n_tx: int,
        pdp: Sequence[float],
        rng=None,
        gain: float = 1.0,
    ) -> "MultiTapChannel":
        """Draw independent Rayleigh taps weighted by a power-delay profile."""
        rng = default_rng(rng)
        taps = tuple(
            rayleigh_channel(n_rx, n_tx, rng, gain=gain * float(p)) if p > 0
            else np.zeros((n_rx, n_tx), dtype=complex)
            for p in pdp
        )
        return cls(taps=taps)

    def apply(self, tx: np.ndarray) -> np.ndarray:
        """Convolve an ``(n_tx, n)`` block through the channel.

        Output has ``n + n_taps - 1`` samples (full convolution tail).
        """
        tx = np.atleast_2d(np.asarray(tx, dtype=complex))
        if tx.shape[0] != self.n_tx:
            raise ValueError(f"expected {self.n_tx} antenna rows, got {tx.shape[0]}")
        n = tx.shape[1]
        out = np.zeros((self.n_rx, n + self.n_taps - 1), dtype=complex)
        for k, h in enumerate(self.taps):
            out[:, k : k + n] += h @ tx
        return out

    def frequency_response(self, n_fft: int) -> np.ndarray:
        """Per-bin channel matrices ``H(f)`` for an ``n_fft``-point OFDM system.

        With a cyclic prefix at least ``n_taps - 1`` samples long, each OFDM
        subcarrier ``f`` sees the flat matrix channel ``H(f)`` -- which is
        exactly what makes per-subcarrier alignment possible.

        Returns
        -------
        numpy.ndarray
            ``(n_fft, n_rx, n_tx)`` stacked response, ``response[f]`` the
            flat matrix channel of subcarrier ``f`` (one FFT over the tap
            axis; a single-tap channel yields ``n_fft`` identical copies).
        """
        if n_fft < self.n_taps:
            raise ValueError("FFT shorter than the channel impulse response")
        stacked = np.stack(self.taps, axis=0)  # (n_taps, n_rx, n_tx)
        return np.fft.fft(stacked, n_fft, axis=0)

    def coherence_bandwidth_bins(self, n_fft: int, threshold: float = 0.9) -> int:
        """Bins over which the channel stays correlated above ``threshold``.

        The paper's conjecture leans on "nearby subcarriers typically have
        similar frequency response"; this quantifies 'nearby'.
        """
        flat = self.frequency_response(n_fft).reshape(n_fft, -1)
        flat = flat / np.linalg.norm(flat, axis=1, keepdims=True)
        corr = np.abs(flat[1:] @ np.conj(flat[0]))
        below = np.flatnonzero(corr < threshold)
        return int(below[0]) + 1 if below.size else n_fft
