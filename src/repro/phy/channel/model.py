"""Flat-fading MIMO channel model with carrier frequency offset and noise.

This is the substrate standing in for the paper's USRP/RFX2400 testbed.  It
models exactly the effects the paper's §6 discusses:

* a *flat* (single-complex-tap per antenna pair) MIMO channel ``H``, the
  regime in which the paper shows alignment needs no synchronisation;
* per transmitter-receiver pair carrier frequency offset (CFO), which
  rotates the received signal in the I-Q domain over time but must not
  disturb alignment in the antenna-spatial domain (§6a) -- a property our
  test-suite asserts;
* additive white Gaussian noise at the receiver;
* optional integer sample (timing) offsets per transmitter, modelling the
  absence of symbol synchronisation between concurrent senders (§6c).

Channels between different node pairs are independent Rayleigh draws, as in
a rich-scattering indoor deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.db import db_to_linear
from repro.utils.rng import default_rng


def rayleigh_channel(
    n_rx: int,
    n_tx: int,
    rng: np.random.Generator,
    gain: float = 1.0,
) -> np.ndarray:
    """Draw an i.i.d. Rayleigh ``(n_rx, n_tx)`` channel matrix.

    Entries are CN(0, gain): circularly-symmetric complex Gaussian with
    variance ``gain`` (the average power gain of each antenna path).
    """
    scale = np.sqrt(gain / 2.0)
    return scale * (rng.standard_normal((n_rx, n_tx)) + 1j * rng.standard_normal((n_rx, n_tx)))


def awgn(shape, noise_power: float, rng: np.random.Generator) -> np.ndarray:
    """Complex white Gaussian noise with total variance ``noise_power``."""
    scale = np.sqrt(noise_power / 2.0)
    return scale * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))


def apply_cfo(samples: np.ndarray, cfo_norm: float, start: int = 0) -> np.ndarray:
    """Rotate a sample stream by a normalised carrier frequency offset.

    Parameters
    ----------
    samples:
        ``(n_rx, n_samples)`` or ``(n_samples,)`` complex stream.
    cfo_norm:
        Frequency offset as a fraction of the sample rate
        (``delta_f / f_s``); each successive sample rotates by
        ``2 pi cfo_norm``.
    start:
        Absolute index of the first sample (so that streams subtracted
        later, e.g. during cancellation, rotate coherently).
    """
    samples = np.asarray(samples, dtype=complex)
    n = samples.shape[-1]
    phase = np.exp(2j * np.pi * cfo_norm * (start + np.arange(n)))
    return samples * phase


@dataclass
class Link:
    """One directional radio link: channel matrix plus impairments.

    Attributes
    ----------
    h:
        ``(n_rx, n_tx)`` complex channel matrix.
    cfo:
        Normalised carrier frequency offset for this tx-rx pair.
    sample_offset:
        Integer timing offset of the transmitter relative to the receiver's
        sample clock (no symbol synchronisation, §6c).
    """

    h: np.ndarray
    cfo: float = 0.0
    sample_offset: int = 0

    @property
    def n_rx(self) -> int:
        return self.h.shape[0]

    @property
    def n_tx(self) -> int:
        return self.h.shape[1]


class MIMOChannel:
    """The wireless medium between a set of transmitters and one receiver.

    Combines concurrent transmissions, applies per-link CFO and timing
    offsets, and adds receiver noise -- producing what one AP (or client)
    hears when several nodes transmit at once (paper Fig. 4).
    """

    def __init__(
        self,
        links: Sequence[Link],
        noise_power: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if not links:
            raise ValueError("need at least one link")
        n_rx = links[0].n_rx
        if any(link.n_rx != n_rx for link in links):
            raise ValueError("all links must share the receiver antenna count")
        self.links = list(links)
        self.noise_power = float(noise_power)
        self.rng = default_rng(rng)

    @property
    def n_rx(self) -> int:
        return self.links[0].n_rx

    def receive(self, transmissions: Sequence[Optional[np.ndarray]]) -> np.ndarray:
        """Mix concurrent transmissions into one received sample block.

        Parameters
        ----------
        transmissions:
            One ``(n_tx_i, n_samples_i)`` complex array per link (``None``
            for a silent transmitter).  Streams may have different lengths
            and different ``sample_offset``; the output covers the union.

        Returns
        -------
        numpy.ndarray
            ``(n_rx, total_samples)`` received block including noise.
        """
        if len(transmissions) != len(self.links):
            raise ValueError("one transmission entry required per link")
        total = 0
        for link, tx in zip(self.links, transmissions):
            if tx is None:
                continue
            tx = np.atleast_2d(np.asarray(tx, dtype=complex))
            if tx.shape[0] != link.n_tx:
                raise ValueError(
                    f"transmission has {tx.shape[0]} antenna rows, link expects {link.n_tx}"
                )
            total = max(total, link.sample_offset + tx.shape[1])
        if total == 0:
            return np.zeros((self.n_rx, 0), dtype=complex)

        received = np.zeros((self.n_rx, total), dtype=complex)
        for link, tx in zip(self.links, transmissions):
            if tx is None:
                continue
            tx = np.atleast_2d(np.asarray(tx, dtype=complex))
            n = tx.shape[1]
            faded = link.h @ tx
            faded = apply_cfo(faded, link.cfo, start=link.sample_offset)
            received[:, link.sample_offset : link.sample_offset + n] += faded
        if self.noise_power > 0:
            received += awgn(received.shape, self.noise_power, self.rng)
        return received


def noise_power_for_snr(snr_db: float, signal_power: float = 1.0) -> float:
    """Noise power that yields ``snr_db`` for a given received signal power."""
    return signal_power / db_to_linear(snr_db)
