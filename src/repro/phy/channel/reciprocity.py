"""Channel reciprocity and calibration (paper §8b, Eq. 8; evaluated Fig. 16).

On the downlink the APs infer the client-bound channel from the uplink
channel instead of asking clients to feed estimates back.  Raw reciprocity
says the over-the-air channel from A to B is the transpose of B to A, but
each node's transmit and receive hardware chains add their own per-antenna
gain and phase, so calibration is required:

    (H_down)^T = C_client_rx  H_up  C_ap_tx            (Eq. 8)

where the ``C`` matrices are constant diagonal matrices.  They are estimated
once per client-AP pair and keep working as the client moves, because the
hardware chains do not depend on the propagation environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import default_rng


def random_hardware_chain(
    n_antennas: int,
    rng: np.random.Generator,
    gain_spread_db: float = 3.0,
    phase_spread: float = np.pi,
) -> np.ndarray:
    """Draw a diagonal hardware-chain matrix (per-antenna gain + delay).

    Gains are log-uniform within ``+/- gain_spread_db`` and phases uniform
    within ``+/- phase_spread``, modelling component tolerances in RF
    up/down conversion chains.
    """
    gains_db = rng.uniform(-gain_spread_db, gain_spread_db, size=n_antennas)
    phases = rng.uniform(-phase_spread, phase_spread, size=n_antennas)
    return np.diag(10 ** (gains_db / 20.0) * np.exp(1j * phases))


@dataclass
class RadioHardware:
    """A node's transmit and receive chain distortions.

    The *over-the-air* channel ``H_air`` is reciprocal; what nodes measure is
    ``C_rx H_air C_tx`` for the respective direction's chains.
    """

    c_tx: np.ndarray
    c_rx: np.ndarray

    @classmethod
    def random(cls, n_antennas: int, rng=None) -> "RadioHardware":
        rng = default_rng(rng)
        return cls(
            c_tx=random_hardware_chain(n_antennas, rng),
            c_rx=random_hardware_chain(n_antennas, rng),
        )


def observed_uplink(h_air: np.ndarray, client: RadioHardware, ap: RadioHardware) -> np.ndarray:
    """Measured client->AP channel including both ends' hardware chains."""
    return ap.c_rx @ h_air @ client.c_tx


def observed_downlink(h_air: np.ndarray, client: RadioHardware, ap: RadioHardware) -> np.ndarray:
    """Measured AP->client channel; the over-the-air part is ``h_air^T``."""
    return client.c_rx @ h_air.T @ ap.c_tx


def solve_calibration(
    h_up: np.ndarray,
    h_down: np.ndarray,
    refine_iterations: int = 8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve Eq. 8 for the diagonal calibration matrices.

    Given one simultaneous measurement of the uplink and downlink channels,
    find diagonal ``C_left`` (client-rx side) and ``C_right`` (AP-tx side)
    with ``h_down^T = C_left @ h_up @ C_right``.

    The factorisation has a scalar ambiguity (``C_left * a``, ``C_right / a``
    give the same product); we fix it by normalising ``C_right[0, 0] = 1``.
    The initial guess comes from the element-wise ratio
    ``R[i, j] = h_down^T[i, j] / h_up[i, j] = c_left[i] * c_right[j]``;
    because measurement noise is amplified wherever ``|h_up[i, j]|`` is
    small, the guess is then refined by weighted alternating least squares
    (weights ``|h_up[i, j]|^2``), which keeps the calibration accurate even
    when one channel entry faded during the calibration measurement.
    """
    h_up = np.asarray(h_up, dtype=complex)
    h_down = np.asarray(h_down, dtype=complex)
    target = h_down.T
    if target.shape != h_up.shape:
        raise ValueError("uplink and transposed downlink shapes differ")
    ratio = target / h_up
    # c_left[i] * c_right[j] = ratio[i, j]; with c_right[0] = 1:
    c_left = ratio[:, 0].copy()
    c_right = ratio[0, :] / ratio[0, 0]

    weights = np.abs(h_up) ** 2
    for _ in range(max(0, refine_iterations)):
        # Fix c_right, solve each c_left[i] by weighted LS over its row.
        model = h_up * c_right[None, :]
        c_left = np.sum(weights * np.conj(model) * target, axis=1) / np.sum(
            weights * np.abs(model) ** 2, axis=1
        )
        # Fix c_left, solve each c_right[j] over its column.
        model = c_left[:, None] * h_up
        c_right = np.sum(weights * np.conj(model) * target, axis=0) / np.sum(
            weights * np.abs(model) ** 2, axis=0
        )
    # Re-anchor the scalar ambiguity.
    scale = c_right[0]
    c_right = c_right / scale
    c_left = c_left * scale
    return np.diag(c_left), np.diag(c_right)


def predict_downlink(
    h_up: np.ndarray,
    c_left: np.ndarray,
    c_right: np.ndarray,
) -> np.ndarray:
    """Predict the downlink channel from an uplink measurement (Eq. 8)."""
    return (np.asarray(c_left) @ np.asarray(h_up, dtype=complex) @ np.asarray(c_right)).T


def fractional_error(h_true: np.ndarray, h_estimate: np.ndarray) -> float:
    """The paper's Fig. 16 error metric: ||H_true - H_est|| / ||H_true||."""
    h_true = np.asarray(h_true, dtype=complex)
    denom = np.linalg.norm(h_true)
    if denom == 0:
        raise ValueError("true channel has zero norm")
    return float(np.linalg.norm(h_true - np.asarray(h_estimate, dtype=complex)) / denom)


class ReciprocityCalibrator:
    """Per client-AP pair calibration workflow (paper §8b).

    Usage mirrors the Fig. 16 experiment: :meth:`calibrate` once from a
    paired uplink/downlink measurement, then :meth:`downlink_from_uplink`
    forever after, even as the client moves and the propagation channel
    changes.
    """

    def __init__(self):
        self._c_left: Optional[np.ndarray] = None
        self._c_right: Optional[np.ndarray] = None

    @property
    def calibrated(self) -> bool:
        return self._c_left is not None

    def calibrate(self, h_up: np.ndarray, h_down: np.ndarray) -> None:
        """Compute and store calibration matrices from one paired measurement."""
        self._c_left, self._c_right = solve_calibration(h_up, h_down)

    def downlink_from_uplink(self, h_up: np.ndarray) -> np.ndarray:
        """Infer the downlink channel from a fresh uplink estimate."""
        if not self.calibrated:
            raise RuntimeError("calibrate() must be called before prediction")
        return predict_downlink(h_up, self._c_left, self._c_right)
