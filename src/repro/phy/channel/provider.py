"""The channel-provider contract: flat and wideband fading behind one API.

Every layer above the PHY (association sounding, drift tracking, the
group-evaluation engine, the WLAN simulation) consumes channels through
the :class:`ChannelProvider` interface instead of a concrete fading
model.  The contract is deliberately *banded*: a provider exposes its
channels as a stacked ``(n_bins, n_rx, n_tx)`` ndarray, one flat matrix
per evaluated OFDM subcarrier — and a narrowband channel is simply the
``n_bins == 1`` special case.  That single design move is what lets the
paper's §6c conjecture (align independently per subcarrier on
frequency-selective channels) run through the *entire* stack rather
than only the isolated :mod:`repro.core.ofdm_alignment` ablation.

Two implementations ship:

* :class:`~repro.phy.channel.timevarying.FadingNetwork` — the flat
  Gauss-Markov network the paper's USRP regime corresponds to
  (``n_bins == 1``);
* :class:`WidebandFadingNetwork` (here) — per-link *multi-tap* channels
  whose tap matrices each evolve as independent Gauss-Markov processes
  over an exponential power-delay profile; ``channel_bins`` is the
  per-subcarrier frequency response at a fixed evaluation grid.

RNG-stream determinism (see docs/ARCHITECTURE.md §2): in the flat limit
(one non-zero tap, i.e. ``delay_spread == 0`` or ``n_taps == 1``) the
wideband network draws *exactly* the sequence of normals the flat
:class:`FadingNetwork` draws — same link order, same real-then-imaginary
block per link, same innovation per step — so a single-tap wideband WLAN
run is bit-identical to the flat run, which the test-suite pins.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.phy.channel.selective import exponential_pdp
from repro.utils.rng import default_rng


def evaluation_bins(n_fft: int, n_bins: int) -> np.ndarray:
    """The evenly-spaced subcarrier grid a provider evaluates.

    Matches the grid of :func:`repro.core.ofdm_alignment.conjecture_experiment`
    (``linspace(1, n_fft - 1, n_bins)``, DC bin excluded as 802.11 does);
    ``n_bins == 1`` picks the band centre — the anchor subcarrier of the
    flat-approximation mode.
    """
    if n_fft < 2:
        raise ValueError("need at least a 2-point FFT")
    if not 1 <= n_bins <= n_fft - 1:
        raise ValueError(f"n_bins must be in [1, {n_fft - 1}], got {n_bins}")
    if n_bins == 1:
        return np.array([n_fft // 2], dtype=int)
    return np.linspace(1, n_fft - 1, n_bins, dtype=int)


class ChannelProvider(ABC):
    """What the MAC/engine/simulation layers require of a channel model.

    A provider owns a set of node-pair links that evolve in lock-step
    (:meth:`step`) and honour per-node mobility overrides
    (:meth:`set_node_rho`).  Channels are read either as the stacked
    per-subcarrier band (:meth:`channel_bins`, the native form) or as a
    single flat matrix (:meth:`channel` — the whole channel when
    ``n_bins == 1``, the band-centre anchor otherwise).  Reciprocity
    holds per bin: ``channel_bins(b, a)`` is the per-bin transpose of
    ``channel_bins(a, b)``.
    """

    @property
    @abstractmethod
    def n_bins(self) -> int:
        """Number of evaluated subcarriers (1 = narrowband/flat)."""

    @abstractmethod
    def channel(self, tx: int, rx: int) -> np.ndarray:
        """Flat ``(n_rx, n_tx)`` view: the channel itself when
        ``n_bins == 1``, the band-centre anchor bin otherwise."""

    @abstractmethod
    def channel_bins(self, tx: int, rx: int) -> np.ndarray:
        """Stacked ``(n_bins, n_rx, n_tx)`` per-subcarrier channels."""

    @abstractmethod
    def set_node_rho(self, node: int, rho: float) -> None:
        """Override one terminal's per-slot correlation (mobility)."""

    @abstractmethod
    def node_rho(self, node: int) -> float:
        """The per-slot correlation currently assigned to ``node``."""

    @abstractmethod
    def step(self, n: int = 1) -> None:
        """Advance every link by ``n`` slots."""


class PairedFadingNetwork(ChannelProvider):
    """Shared link management for pairwise Gauss-Markov networks.

    Owns exactly the machinery the flat and wideband networks have in
    common — undirected-pair dedup, the (possibly asymmetric-keyed)
    gains lookup, the per-node mobility overrides with the
    min-of-endpoints rule, and lock-step stepping — so the two engines
    cannot drift apart on it (the single-tap bit-identity contract
    depends on the loops matching draw for draw).  Subclasses provide
    :meth:`_make_link` (a link object with ``set_rho``/``step``) and the
    channel accessors.
    """

    def __init__(
        self,
        pairs,
        n_antennas: int,
        rho: float = 0.995,
        gains: Optional[Dict[Tuple[int, int], float]] = None,
        rng=None,
    ):
        rng = default_rng(rng)
        self._base_rho = rho
        #: Per-node rho overrides (mobility); links take the minimum of
        #: their endpoints' values, so the faster terminal dominates.
        self._node_rho: Dict[int, float] = {}
        self._links: Dict[Tuple[int, int], object] = {}
        seen = set()
        for a, b in pairs:
            key = (min(a, b), max(a, b))
            if key in seen or a == b:
                continue
            seen.add(key)
            gain = 1.0 if gains is None else gains.get(key, gains.get((key[1], key[0]), 1.0))
            self._links[key] = self._make_link(n_antennas, rho, gain, rng)

    def _make_link(self, n_antennas: int, rho: float, gain: float, rng):
        """Construct one undirected link (draws its initial state now)."""
        raise NotImplementedError

    def set_node_rho(self, node: int, rho: float) -> None:
        """Set one terminal's per-slot correlation (mobility hook).

        Every link touching ``node`` is re-tuned to the minimum of its
        two endpoints' rho values (a link decorrelates as fast as its
        fastest-moving end); nodes without an override keep the
        network's base rho.  Used by the WLAN simulation's mobility
        model when a client starts or stops moving.
        """
        if not 0.0 <= rho <= 1.0:
            raise ValueError("rho must be in [0, 1]")
        self._node_rho[node] = rho
        for (a, b), link in self._links.items():
            if node in (a, b):
                link.set_rho(
                    min(
                        self._node_rho.get(a, self._base_rho),
                        self._node_rho.get(b, self._base_rho),
                    )
                )

    def node_rho(self, node: int) -> float:
        """The per-slot correlation currently assigned to ``node``."""
        return self._node_rho.get(node, self._base_rho)

    def step(self, n: int = 1) -> None:
        """Advance every link by ``n`` slots."""
        if n < 0:
            raise ValueError("cannot step backwards")
        for link in self._links.values():
            link.step(n)


class _WidebandLink:
    """One undirected link: a Gauss-Markov process per non-zero tap.

    Tap ``k`` evolves as ``H_k[t+1] = rho H_k[t] + sqrt(1-rho^2) W_k``
    with ``W_k`` i.i.d. CN(0, gain * pdp[k]) — each tap keeps its own
    stationary power, so the power-delay profile (and hence the delay
    spread and coherence bandwidth) is preserved for all t.  Zero-power
    taps never draw from the RNG, which is what makes the single-tap
    flat limit consume exactly the flat network's stream.
    """

    def __init__(
        self,
        n_antennas: int,
        pdp: np.ndarray,
        rho: float,
        gain: float,
        rng: np.random.Generator,
    ):
        self.rho = float(rho)
        self._rng = rng
        active = np.flatnonzero(pdp > 0)
        #: Tap indices with power (delay positions into the FFT phase grid).
        self.active = active
        #: Per-active-tap innovation scale sqrt(gain * pdp[k] / 2).
        self._scales = np.sqrt(gain * pdp[active] / 2.0)[:, None, None]
        self.taps = self._draw(n_antennas)

    def _draw(self, n_antennas: Optional[int] = None) -> np.ndarray:
        """One CN(0, gain*pdp) draw per active tap, flat-stream compatible:
        a real block then an imaginary block, exactly like
        :func:`~repro.phy.channel.model.rayleigh_channel` per matrix."""
        if n_antennas is None:
            n_antennas = self.taps.shape[-1]
        shape = (self.active.size, n_antennas, n_antennas)
        return (
            self._rng.standard_normal(shape) + 1j * self._rng.standard_normal(shape)
        ) * self._scales

    def set_rho(self, rho: float) -> None:
        self.rho = float(rho)

    def step(self, n: int = 1) -> None:
        innovation_scale = np.sqrt(1.0 - self.rho**2)
        for _ in range(n):
            self.taps = self.rho * self.taps + innovation_scale * self._draw()


class WidebandFadingNetwork(PairedFadingNetwork):
    """Frequency-selective Gauss-Markov links keyed by (tx, rx).

    The wideband counterpart of
    :class:`~repro.phy.channel.timevarying.FadingNetwork`: every link is
    a multi-tap FIR channel (exponential power-delay profile of RMS
    ``delay_spread`` samples over ``n_taps`` taps) whose tap matrices
    evolve as independent AR(1) processes, stepped together.
    ``channel_bins`` returns the link's frequency response at the
    provider's fixed evaluation grid (``n_bins`` evenly-spaced
    subcarriers of an ``n_fft``-point OFDM system) — the stacked
    ``(n_bins, n_rx, n_tx)`` band the engine's subcarrier-batched solver
    consumes.  Over-the-air reciprocity holds per bin.

    With ``delay_spread == 0`` (or ``n_taps == 1``) only tap 0 carries
    power and every bin equals that tap: the network is then a flat
    :class:`FadingNetwork` drawing the identical RNG stream.
    """

    def __init__(
        self,
        pairs,
        n_antennas: int,
        rho: float = 0.995,
        gains: Optional[Dict[Tuple[int, int], float]] = None,
        rng=None,
        *,
        n_taps: int = 8,
        delay_spread: float = 0.0,
        n_fft: int = 64,
        n_bins: int = 4,
    ):
        if n_taps > n_fft:
            raise ValueError("FFT shorter than the channel impulse response")
        self.n_fft = int(n_fft)
        self.delay_spread = float(delay_spread)
        self.pdp = exponential_pdp(n_taps, delay_spread)
        self.bins = evaluation_bins(n_fft, n_bins)
        super().__init__(pairs, n_antennas, rho=rho, gains=gains, rng=rng)
        if not self._links:
            raise ValueError("need at least one node pair")
        first = next(iter(self._links.values()))
        # Phase grid: phases[b, k] = exp(-2j pi bins[b] active[k] / n_fft),
        # so H(bin b) = sum_k taps[k] * phases[b, k] in one tensordot.
        self._phases = np.exp(
            -2j * np.pi * np.outer(self.bins, first.active) / self.n_fft
        )

    def _make_link(self, n_antennas: int, rho: float, gain: float, rng) -> _WidebandLink:
        return _WidebandLink(
            n_antennas=n_antennas, pdp=self.pdp, rho=rho, gain=gain, rng=rng
        )

    # ------------------------------------------------------------------ #

    @property
    def n_bins(self) -> int:
        return len(self.bins)

    def _link_bins(self, key: Tuple[int, int]) -> np.ndarray:
        link = self._links[key]
        # (B, K) x (K, M, M) -> (B, M, M); a single active tap at delay 0
        # has phase 1 everywhere, so every bin is exactly that tap matrix.
        return np.tensordot(self._phases, link.taps, axes=(1, 0))

    def channel_bins(self, tx: int, rx: int) -> np.ndarray:
        key = (min(tx, rx), max(tx, rx))
        h = self._link_bins(key)
        return h if (tx, rx) == key else h.transpose(0, 2, 1)

    def channel(self, tx: int, rx: int) -> np.ndarray:
        """The anchor (band-centre) bin — what a flat-approximation
        consumer believes the whole band looks like."""
        return self.channel_bins(tx, rx)[len(self.bins) // 2]

    def taps_of(self, tx: int, rx: int) -> np.ndarray:
        """Current ``(n_active_taps, n_rx, n_tx)`` tap stack (directional)."""
        key = (min(tx, rx), max(tx, rx))
        taps = self._links[key].taps
        return taps if (tx, rx) == key else taps.transpose(0, 2, 1)

