"""Channel estimation from known preambles.

The paper (§8a) estimates uplink channels with "standard MIMO channel
estimation" on packets that are transmitted without concurrency (association
messages, acks, contention-period data).  With the orthogonal per-antenna
preambles of :mod:`repro.phy.preamble`, the least-squares estimate reduces
to a correlation:

    H_hat = Y P^H (P P^H)^{-1}

where ``Y`` is the ``(n_rx, L)`` received preamble block and ``P`` the
``(n_tx, L)`` transmitted preamble matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.linalg import herm


def frobenius_norms(x: np.ndarray, batch_ndim: int = 0) -> np.ndarray:
    """Frobenius norm over all axes past the first ``batch_ndim``.

    The accumulation order is pinned: squared magnitudes are summed
    element-by-element in C order with a single sequential accumulator.
    ``np.linalg.norm`` delegates to BLAS dot products whose summation
    order (and therefore rounding) depends on the kernel and on whether
    the input is a single matrix or a stack — exactly the variability a
    bit-identity contract cannot tolerate.  With this helper, the norm
    of one ``(M, M)`` estimate and slice ``p`` of a stacked
    ``(P, M, M)`` batch perform the *same* float operations in the
    *same* order, so the scalar drift check and the columnar engine's
    vectorised drift check agree to the last ulp.
    """
    x = np.asarray(x)
    flat = x.reshape(x.shape[:batch_ndim] + (-1,))
    if np.iscomplexobj(flat):
        sq = flat.real * flat.real + flat.imag * flat.imag
    else:
        sq = flat * flat
    acc = sq[..., 0]
    for k in range(1, sq.shape[-1]):
        acc = acc + sq[..., k]
    return np.sqrt(acc)


def estimate_channel(received: np.ndarray, preamble: np.ndarray) -> np.ndarray:
    """Least-squares MIMO channel estimate from a preamble burst.

    Parameters
    ----------
    received:
        ``(n_rx, L)`` received samples covering the preamble.
    preamble:
        ``(n_tx, L)`` known transmitted preamble matrix.

    Returns
    -------
    numpy.ndarray
        ``(n_rx, n_tx)`` channel estimate.
    """
    received = np.atleast_2d(np.asarray(received, dtype=complex))
    preamble = np.atleast_2d(np.asarray(preamble, dtype=complex))
    if received.shape[1] != preamble.shape[1]:
        raise ValueError("received block and preamble length differ")
    gram = preamble @ herm(preamble)
    return received @ herm(preamble) @ np.linalg.inv(gram)


def estimate_cfo(received: np.ndarray, transmitted: np.ndarray, block: int = 16) -> float:
    """Estimate the normalised CFO between two repeats of a known sequence.

    After wiping the data (``r[k] * conj(t[k]) ~ h * exp(j 2 pi cfo k)``),
    the rotation phase is measured on block averages (suppressing noise by
    ``1/sqrt(block)``) and the CFO is the least-squares slope of the
    unwrapped block phases.  This is substantially more robust at low SNR
    than per-sample phase increments.  Only the first receive antenna is
    used; CFO is a per-oscillator property so all antennas on one node
    share it.
    """
    rx = np.atleast_2d(np.asarray(received, dtype=complex))[0]
    tx = np.atleast_2d(np.asarray(transmitted, dtype=complex))[0]
    n = min(rx.size, tx.size)
    if n < 2:
        raise ValueError("need at least two samples to estimate CFO")
    rot = rx[:n] * np.conj(tx[:n])
    block = max(2, min(block, n // 2))
    centers = []
    phases = []
    for start in range(0, n - block + 1, block):
        total = complex(np.sum(rot[start : start + block]))
        if abs(total) < 1e-30:
            continue
        centers.append(start + (block - 1) / 2.0)
        phases.append(float(np.angle(total)))
    if len(phases) < 2:
        # Fall back to the two-halves estimator.
        half = n // 2
        first = complex(np.sum(rot[:half]))
        second = complex(np.sum(rot[half : 2 * half]))
        if abs(first) < 1e-30 or abs(second) < 1e-30:
            return 0.0
        return float(np.angle(second * np.conj(first)) / (2 * np.pi * half))
    unwrapped = np.unwrap(np.array(phases))
    slope, _ = np.polyfit(np.array(centers), unwrapped, 1)
    return float(slope / (2 * np.pi))


@dataclass
class ChannelEstimate:
    """A channel estimate with freshness metadata.

    The leader AP must be told when "the channel's estimate has changed
    by more than a threshold value" (paper §7.1(c)); ``age`` and
    :meth:`drift_from` support that logic in the MAC layer.
    """

    h: np.ndarray
    age: int = 0

    def drift_from(self, other: "ChannelEstimate") -> float:
        """Relative Frobenius-norm change against another estimate.

        Uses :func:`frobenius_norms` (sequential accumulation) so the
        columnar engine's stacked drift check reproduces this value
        bit-for-bit.
        """
        denom = float(frobenius_norms(other.h))
        if denom == 0:
            return float("inf")
        return float(frobenius_norms(self.h - other.h)) / denom

    def tick(self) -> None:
        """Advance the freshness clock by one slot."""
        self.age += 1


class ChannelTracker:
    """Tracks per-link channel estimates with exponential smoothing.

    APs re-estimate the channel from every ack a client transmits (§8a);
    smoothing trades estimation noise against tracking speed.
    """

    def __init__(self, alpha: float = 0.7, drift_threshold: float = 0.1):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.drift_threshold = drift_threshold
        self._estimates: dict = {}

    def update(self, key, h_new: np.ndarray) -> bool:
        """Fold in a fresh estimate; returns True when drift is significant.

        A True return is the trigger for a subordinate AP to notify the
        leader AP of a channel change (§7.1(c)).
        """
        h_new = np.asarray(h_new, dtype=complex)
        current = self._estimates.get(key)
        if current is None:
            self._estimates[key] = ChannelEstimate(h=h_new)
            return True
        smoothed = self.alpha * h_new + (1 - self.alpha) * current.h
        candidate = ChannelEstimate(h=smoothed)
        drifted = candidate.drift_from(current) > self.drift_threshold
        self._estimates[key] = candidate
        return drifted

    def forget(self, key) -> None:
        """Drop a link's estimate (the peer disassociated).

        The next :meth:`update` for the key starts from scratch instead
        of smoothing the fresh sounding into pre-departure state.
        """
        self._estimates.pop(key, None)

    def get(self, key) -> np.ndarray:
        """Return the current estimate for a link key."""
        return self._estimates[key].h

    def __contains__(self, key) -> bool:
        return key in self._estimates
