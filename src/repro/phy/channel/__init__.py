"""Wireless channel substrate.

Replaces the paper's USRP testbed with a flat-fading MIMO channel model
(:mod:`~repro.phy.channel.model`), least-squares channel estimation
(:mod:`~repro.phy.channel.estimation`) and reciprocity-based downlink
inference with hardware calibration (:mod:`~repro.phy.channel.reciprocity`).
"""

from repro.phy.channel.estimation import (
    ChannelEstimate,
    ChannelTracker,
    estimate_cfo,
    estimate_channel,
)
from repro.phy.channel.model import (
    Link,
    MIMOChannel,
    apply_cfo,
    awgn,
    noise_power_for_snr,
    rayleigh_channel,
)
from repro.phy.channel.provider import (
    ChannelProvider,
    WidebandFadingNetwork,
    evaluation_bins,
)
from repro.phy.channel.selective import MultiTapChannel, exponential_pdp
from repro.phy.channel.timevarying import FadingNetwork, GaussMarkovFading
from repro.phy.channel.reciprocity import (
    RadioHardware,
    ReciprocityCalibrator,
    fractional_error,
    observed_downlink,
    observed_uplink,
    predict_downlink,
    solve_calibration,
)

__all__ = [
    "ChannelEstimate",
    "ChannelProvider",
    "ChannelTracker",
    "FadingNetwork",
    "GaussMarkovFading",
    "Link",
    "MIMOChannel",
    "MultiTapChannel",
    "RadioHardware",
    "ReciprocityCalibrator",
    "WidebandFadingNetwork",
    "apply_cfo",
    "awgn",
    "estimate_cfo",
    "estimate_channel",
    "evaluation_bins",
    "exponential_pdp",
    "fractional_error",
    "noise_power_for_snr",
    "observed_downlink",
    "observed_uplink",
    "predict_downlink",
    "rayleigh_channel",
    "solve_calibration",
]
