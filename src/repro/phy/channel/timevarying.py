"""Time-varying channels: first-order Gauss-Markov fading evolution.

The paper's environments are "static ... the channel is relatively stable
and can be easily tracked" (§8a) -- but the tracking machinery (estimate
from every ack, report drift to the leader) only earns its keep when the
channel actually moves.  This module provides the standard discrete
Gauss-Markov (AR(1)) fading process used to model slowly-moving terminals:

    H[t+1] = rho * H[t] + sqrt(1 - rho^2) * W[t]

with ``W`` i.i.d. Rayleigh innovation of the same average gain.  ``rho``
maps to terminal speed via the Clarke/Jakes zeroth-order Bessel
autocorrelation, ``rho = J0(2 pi f_D T)`` for Doppler ``f_D`` and slot
duration ``T``; :func:`rho_from_doppler` does the conversion.

The process is stationary: ``E[|H[t]|^2]`` stays at the configured gain
for all t, so long simulations do not drift in SNR.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.phy.channel.model import rayleigh_channel
from repro.phy.channel.provider import PairedFadingNetwork
from repro.utils.rng import default_rng


def rho_from_doppler(doppler_hz: float, slot_seconds: float) -> float:
    """Per-slot correlation from Doppler spread (Clarke's model).

    Uses the J0 Bessel autocorrelation ``rho = J0(2 pi f_D T)``, evaluated
    with numpy's polynomial approximation (scipy-free).
    """
    if doppler_hz < 0 or slot_seconds < 0:
        raise ValueError("Doppler and slot duration must be non-negative")
    x = 2 * np.pi * doppler_hz * slot_seconds
    # Series/asymptotic J0 evaluation good to ~1e-7 (Abramowitz & Stegun).
    if x < 3.0:
        t = (x / 3.0) ** 2
        j0 = (
            1.0
            - 2.2499997 * t
            + 1.2656208 * t**2
            - 0.3163866 * t**3
            + 0.0444479 * t**4
            - 0.0039444 * t**5
            + 0.0002100 * t**6
        )
    else:
        t = 3.0 / x
        f0 = (
            0.79788456
            - 0.00000077 * t
            - 0.00552740 * t**2
            - 0.00009512 * t**3
            + 0.00137237 * t**4
            - 0.00072805 * t**5
            + 0.00014476 * t**6
        )
        theta = (
            x
            - 0.78539816
            - 0.04166397 * t
            - 0.00003954 * t**2
            + 0.00262573 * t**3
            - 0.00054125 * t**4
            - 0.00029333 * t**5
            + 0.00013558 * t**6
        )
        j0 = f0 * np.cos(theta) / np.sqrt(x)
    return float(np.clip(j0, -1.0, 1.0))


@dataclass
class GaussMarkovFading:
    """An evolving MIMO channel matrix with AR(1) dynamics.

    Parameters
    ----------
    n_rx, n_tx:
        Antenna counts.
    rho:
        Per-step correlation in ``[0, 1]`` (1 = static).
    gain:
        Average per-path power (stationary variance of each entry).
    rng:
        Seed or generator for the initial draw and innovations.
    """

    n_rx: int
    n_tx: int
    rho: float = 0.995
    gain: float = 1.0
    rng: object = None

    def __post_init__(self):
        if not 0.0 <= self.rho <= 1.0:
            raise ValueError("rho must be in [0, 1]")
        if self.gain <= 0:
            raise ValueError("gain must be positive")
        self.rng = default_rng(self.rng)
        self._h = rayleigh_channel(self.n_rx, self.n_tx, self.rng, gain=self.gain)

    @property
    def current(self) -> np.ndarray:
        """The channel matrix at the current time step."""
        return self._h

    def set_rho(self, rho: float) -> None:
        """Change the per-step correlation (the terminal sped up/stopped).

        Takes effect from the next :meth:`step`; the current matrix and
        the stationary gain are untouched, so mobility changes never
        cause an SNR discontinuity.
        """
        if not 0.0 <= rho <= 1.0:
            raise ValueError("rho must be in [0, 1]")
        self.rho = rho

    def step(self, n: int = 1) -> np.ndarray:
        """Advance the process ``n`` slots and return the new matrix."""
        if n < 0:
            raise ValueError("cannot step backwards")
        innovation_scale = np.sqrt(1.0 - self.rho**2)
        for _ in range(n):
            w = rayleigh_channel(self.n_rx, self.n_tx, self.rng, gain=self.gain)
            self._h = self.rho * self._h + innovation_scale * w
        return self._h


class FadingNetwork(PairedFadingNetwork):
    """A set of Gauss-Markov links keyed by (tx, rx), stepped together.

    Keeps over-the-air reciprocity at every instant: the (b, a) channel is
    the transpose of (a, b).

    This is the narrowband :class:`~repro.phy.channel.provider.ChannelProvider`:
    ``n_bins == 1`` and :meth:`channel_bins` stacks the flat matrix as a
    one-bin band, so every consumer of the banded contract handles the
    paper's flat regime as the ``n_bins = 1`` special case.  The wideband
    counterpart is
    :class:`~repro.phy.channel.provider.WidebandFadingNetwork`; both
    share the pair/gains/mobility machinery of
    :class:`~repro.phy.channel.provider.PairedFadingNetwork`.
    """

    def _make_link(self, n_antennas: int, rho: float, gain: float, rng) -> GaussMarkovFading:
        return GaussMarkovFading(
            n_rx=n_antennas, n_tx=n_antennas, rho=rho, gain=gain, rng=rng
        )

    @property
    def n_bins(self) -> int:
        return 1

    def channel(self, tx: int, rx: int) -> np.ndarray:
        key = (min(tx, rx), max(tx, rx))
        h = self._links[key].current
        return h if (tx, rx) == key else h.T

    def channel_bins(self, tx: int, rx: int) -> np.ndarray:
        """The flat channel as a one-bin ``(1, n_rx, n_tx)`` band."""
        return self.channel(tx, rx)[None]
