"""Bit-level plumbing: packing, unpacking and scrambling.

The PHY pipeline works on ``uint8`` arrays of 0/1 "bits".  Payload bytes are
expanded MSB-first, matching how 802.11 frames are usually drawn in the
standard and making test vectors easy to read.
"""

from __future__ import annotations

import numpy as np


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Expand bytes into an MSB-first bit array of dtype uint8."""
    if len(data) == 0:
        return np.zeros(0, dtype=np.uint8)
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(arr)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack an MSB-first bit array back into bytes.

    Raises
    ------
    ValueError
        If the number of bits is not a multiple of 8.
    """
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    if bits.size % 8 != 0:
        raise ValueError(f"bit count {bits.size} is not a whole number of bytes")
    return np.packbits(bits).tobytes()


def random_bits(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` uniform random bits."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def bit_errors(a: np.ndarray, b: np.ndarray) -> int:
    """Count positions where two equal-length bit arrays differ."""
    a = np.asarray(a, dtype=np.uint8).ravel()
    b = np.asarray(b, dtype=np.uint8).ravel()
    if a.size != b.size:
        raise ValueError(f"length mismatch: {a.size} vs {b.size}")
    return int(np.count_nonzero(a != b))


def bit_error_rate(a: np.ndarray, b: np.ndarray) -> float:
    """Return the fraction of differing bits (0 for two empty arrays)."""
    a = np.asarray(a).ravel()
    if a.size == 0:
        return 0.0
    return bit_errors(a, b) / a.size


class Scrambler:
    """Self-synchronising 7-bit LFSR scrambler (802.11 polynomial x^7+x^4+1).

    Scrambling whitens long runs of identical payload bits so the modulated
    waveform has no DC bias; descrambling with the same seed restores the
    original bits.  The operation is an involution for a fixed seed:
    ``descramble(scramble(b)) == b``.
    """

    #: Default non-zero initial LFSR state.
    DEFAULT_SEED = 0b1011101

    #: seed -> one full keystream period (the polynomial is maximal-length,
    #: so every non-zero seed orbits through all 127 states and the stream
    #: repeats with period 127).  Shared across instances: the period only
    #: depends on the seed.
    _PERIOD_CACHE: dict = {}

    def __init__(self, seed: int = DEFAULT_SEED):
        if not 1 <= seed <= 0x7F:
            raise ValueError("seed must be a non-zero 7-bit value")
        self.seed = seed

    def _keystream_reference(self, n: int) -> np.ndarray:
        """Reference keystream: step the LFSR one bit at a time."""
        state = self.seed
        out = np.empty(n, dtype=np.uint8)
        for i in range(n):
            bit = ((state >> 6) ^ (state >> 3)) & 1
            out[i] = bit
            state = ((state << 1) | bit) & 0x7F
        return out

    def _period(self) -> np.ndarray:
        period = self._PERIOD_CACHE.get(self.seed)
        if period is None:
            state = self.seed
            bits = []
            while True:
                bit = ((state >> 6) ^ (state >> 3)) & 1
                bits.append(bit)
                state = ((state << 1) | bit) & 0x7F
                if state == self.seed:
                    break
            period = np.array(bits, dtype=np.uint8)
            self._PERIOD_CACHE[self.seed] = period
        return period

    def _keystream(self, n: int) -> np.ndarray:
        """Vectorised keystream: tile one cached LFSR period.

        Bit-identical to :meth:`_keystream_reference` (the LFSR is free-
        running, so its output is purely periodic in the seed).
        """
        if n == 0:
            return np.zeros(0, dtype=np.uint8)
        period = self._period()
        reps = -(-n // period.size)
        return np.tile(period, reps)[:n]

    def scramble(self, bits: np.ndarray) -> np.ndarray:
        """XOR ``bits`` with the LFSR keystream."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        return bits ^ self._keystream(bits.size)

    # XOR with the same keystream undoes itself.
    descramble = scramble
