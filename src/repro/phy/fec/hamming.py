"""Hamming(7,4) block code with single-error correction.

A lightweight alternative to the convolutional code, used in tests and
examples to demonstrate IAC's FEC transparency (paper §1: "IAC works with
various modulations and FEC codes").
"""

from __future__ import annotations

import numpy as np

# Generator in systematic form [I | P]; data bits first.
_P = np.array(
    [
        [1, 1, 0],
        [1, 0, 1],
        [0, 1, 1],
        [1, 1, 1],
    ],
    dtype=np.uint8,
)
_G = np.concatenate([np.eye(4, dtype=np.uint8), _P], axis=1)  # (4, 7)
_H = np.concatenate([_P.T, np.eye(3, dtype=np.uint8)], axis=1)  # (3, 7)

# Map each of the 8 syndromes to the single-bit error position (or -1).
_SYNDROME_TO_POS = np.full(8, -1, dtype=np.int64)
for _pos in range(7):
    _e = np.zeros(7, dtype=np.uint8)
    _e[_pos] = 1
    _s = (_H @ _e) % 2
    _SYNDROME_TO_POS[int(_s[0]) * 4 + int(_s[1]) * 2 + int(_s[2])] = _pos


class Hamming74:
    """Systematic Hamming(7,4): corrects any single bit error per block."""

    k = 4
    n = 7

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode bits (zero-padded to a multiple of 4) into 7-bit blocks."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        pad = (-bits.size) % self.k
        if pad:
            bits = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
        blocks = bits.reshape(-1, self.k)
        return ((blocks @ _G) % 2).astype(np.uint8).ravel()

    def encoded_length(self, n_bits: int) -> int:
        return (-(-n_bits // self.k)) * self.n

    def decode(self, coded: np.ndarray) -> np.ndarray:
        """Decode 7-bit blocks, correcting up to one error per block."""
        coded = np.asarray(coded, dtype=np.uint8).ravel()
        if coded.size % self.n != 0:
            raise ValueError("coded length is not a multiple of 7")
        blocks = coded.reshape(-1, self.n).copy()
        syndromes = (blocks @ _H.T) % 2
        syndrome_index = syndromes[:, 0] * 4 + syndromes[:, 1] * 2 + syndromes[:, 2]
        error_pos = _SYNDROME_TO_POS[syndrome_index]
        rows = np.nonzero(error_pos >= 0)[0]
        blocks[rows, error_pos[rows]] ^= 1
        return blocks[:, : self.k].ravel()
