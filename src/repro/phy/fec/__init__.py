"""Forward error correction.

IAC subtracts interference *before* the signal reaches modulation/FEC, so
any code drops in unchanged (paper §1).  Provided codes:

* :class:`~repro.phy.fec.convolutional.ConvolutionalCode` -- 802.11-style
  rate-1/2 K=7 with Viterbi decoding.
* :class:`~repro.phy.fec.hamming.Hamming74` -- light single-error-correcting
  block code.
* :class:`~repro.phy.fec.interleaver.BlockInterleaver` -- burst spreading.
"""

from repro.phy.fec.convolutional import ConvolutionalCode
from repro.phy.fec.hamming import Hamming74
from repro.phy.fec.interleaver import BlockInterleaver

__all__ = ["ConvolutionalCode", "Hamming74", "BlockInterleaver"]
