"""Rate-1/n convolutional codes with Viterbi decoding.

The default generators (133, 171 octal, constraint length 7) are the 802.11
industry-standard rate-1/2 pair.  IAC is transparent to FEC (paper §1, §4):
the code runs above the alignment machinery, so the IAC pipeline accepts any
:class:`ConvolutionalCode` (or none).

The encoder is zero-terminated: ``K - 1`` tail bits flush the shift register
so the decoder's final state is known, which measurably improves the last
few bits' reliability.

Two implementations coexist for the hot paths:

* the **fast** paths — a table-driven block encoder that steps the shift
  register one *byte* at a time (:meth:`ConvolutionalCode.encode`, and the
  batched :meth:`~ConvolutionalCode.encode_many`), and batched Viterbi
  decoders (:meth:`~ConvolutionalCode.decode_many` /
  :meth:`~ConvolutionalCode.decode_soft_many`) that stack same-length coded
  packets along a leading batch axis so the per-time-step numpy work
  amortises across the packets of an IAC session;
* the **reference** paths — the original per-bit encoder
  (:meth:`~ConvolutionalCode.encode_reference`) and the per-packet decoders
  (:meth:`~ConvolutionalCode.decode` / :meth:`~ConvolutionalCode.decode_soft`),
  kept as the readable specification the fast paths are equivalence-tested
  against.  The hard-decision paths are bit-identical by construction (pure
  integer arithmetic); the soft paths agree to floating-point noise.
"""

from __future__ import annotations

import numpy as np


def _octal(value: int) -> int:
    """Interpret a decimal-written literal as octal (e.g. 133 -> 0o133)."""
    return int(str(value), 8)


class ConvolutionalCode:
    """Binary convolutional encoder + hard-decision Viterbi decoder.

    Parameters
    ----------
    generators:
        Generator polynomials written in octal-as-decimal (802.11 default
        ``(133, 171)``).
    constraint_length:
        Encoder memory + 1 (default 7).

    Notes
    -----
    State convention: the state is the newest ``K-1`` input bits with the
    *newest* bit in the most-significant position, i.e. on input ``b`` the
    register becomes ``(b << (K-1)) | state`` and the next state is that
    register shifted right by one.  Under this convention each trellis state
    has exactly two predecessors and the input bit that led to a state is the
    state's own most significant bit, which makes the Viterbi recursion fully
    vectorisable over states (and, in the ``*_many`` variants, over a batch
    of packets at once).
    """

    def __init__(self, generators=(133, 171), constraint_length: int = 7):
        if constraint_length < 2:
            raise ValueError("constraint_length must be >= 2")
        self.constraint_length = constraint_length
        self.generators = tuple(_octal(g) for g in generators)
        self.rate_inverse = len(self.generators)
        if self.rate_inverse < 2:
            raise ValueError("need at least two generator polynomials")
        self.n_states = 1 << (constraint_length - 1)
        for g in self.generators:
            if g >= (1 << constraint_length):
                raise ValueError("generator polynomial wider than constraint length")
        self._build_trellis()

    def _build_trellis(self):
        """Precompute next-state and packed-output tables for (state, bit)."""
        k = self.constraint_length
        n_states = self.n_states
        r = self.rate_inverse
        self._next_state = np.zeros((n_states, 2), dtype=np.int64)
        # Outputs packed as an integer, generator 0 in the MSB.
        self._out_packed = np.zeros((n_states, 2), dtype=np.int64)
        self._out_bits = np.zeros((n_states, 2, r), dtype=np.uint8)
        for state in range(n_states):
            for bit in (0, 1):
                register = (bit << (k - 1)) | state
                self._next_state[state, bit] = register >> 1
                packed = 0
                for gi, g in enumerate(self.generators):
                    out = bin(register & g).count("1") & 1
                    self._out_bits[state, bit, gi] = out
                    packed = (packed << 1) | out
                self._out_packed[state, bit] = packed
        # Predecessor structure: destination d was reached with input bit
        # d >> (K-2); its two predecessors differ in their oldest bit.
        states = np.arange(n_states, dtype=np.int64)
        self._bit_of_dest = states >> (k - 2)
        low = states & ((1 << (k - 2)) - 1) if k > 2 else np.zeros_like(states)
        self._pred = np.stack([low << 1, (low << 1) | 1], axis=1)  # (n_states, 2)
        self._pred_out = np.stack(
            [
                self._out_packed[self._pred[:, 0], self._bit_of_dest],
                self._out_packed[self._pred[:, 1], self._bit_of_dest],
            ],
            axis=1,
        )
        # Popcount table for branch metrics over packed outputs.
        self._popcount = np.array(
            [bin(x).count("1") for x in range(1 << r)], dtype=np.int64
        )
        # Expected output bits per (destination, predecessor-choice) as
        # +/-1 signs for the soft branch metric (bit 1 -> +1, bit 0 -> -1).
        # Shape (n_states, 2, r); precomputed once instead of on every
        # decode_soft call.
        self._signs = np.empty((n_states, 2, r), dtype=float)
        for choice in (0, 1):
            bits = self._out_bits[self._pred[:, choice], self._bit_of_dest]
            self._signs[:, choice, :] = 2.0 * bits - 1.0
        # Radix-4 tables for the batched hard decoder: two trellis steps at
        # once.  Candidate ``j = c2 * 2 + c1`` reaches destination ``d`` via
        # the intermediate ``p = pred[d, c2]`` from ``q = pred2[d, j] =
        # pred[p, c1]``, emitting the earlier output at (p, c1) and the later
        # at (d, c2), packed into one ``2r``-bit word.  Candidate order is
        # lexicographic in (c2, c1), so a first-minimum argmin reproduces the
        # scalar decoder's tie-breaking (strict ``<`` at each of the two
        # steps) exactly.
        c1 = np.array([0, 1, 0, 1])[None, :]
        mid = self._pred[:, [0, 0, 1, 1]]  # (n_states, 4): p for each j
        self._pred2 = self._pred[mid, c1]
        self._pout2 = (self._pred_out[mid, c1] << r) | self._pred_out[:, [0, 0, 1, 1]]
        self._popcount2 = np.array(
            [bin(x).count("1") for x in range(1 << (2 * r))], dtype=np.int32
        )
        # Byte-stepped encoder tables: feeding byte ``b`` (MSB first) from
        # ``state`` lands in ``_byte_next[state, b]`` and emits the ``8 * r``
        # bits ``_byte_out[state, b]``.  Built by running all (state, byte)
        # pairs through the per-bit tables eight vectorised steps at a time.
        byte_vals = np.arange(256, dtype=np.int64)[None, :]
        state_grid = np.broadcast_to(
            states[:, None], (n_states, 256)
        ).copy()
        self._byte_out = np.empty((n_states, 256, 8 * r), dtype=np.uint8)
        for j in range(8):
            bit = np.broadcast_to((byte_vals >> (7 - j)) & 1, state_grid.shape)
            self._byte_out[:, :, j * r : (j + 1) * r] = self._out_bits[state_grid, bit]
            state_grid = self._next_state[state_grid, bit]
        self._byte_next = state_grid

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    def _terminated_stream(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        tail = np.zeros(self.constraint_length - 1, dtype=np.uint8)
        return np.concatenate([bits, tail])

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode ``bits`` (zero-terminated) into coded bits.

        Table-driven block encoder: the zero-terminated stream is packed
        into bytes and the shift register steps eight input bits per table
        lookup; the sub-byte remainder uses the per-bit tables.  Output is
        bit-identical to :meth:`encode_reference`.
        """
        stream = self._terminated_stream(bits)
        r = self.rate_inverse
        n = stream.size
        n_bytes = n // 8
        out = np.empty(n * r, dtype=np.uint8)
        state = 0
        if n_bytes:
            byte_vals = np.packbits(stream[: n_bytes * 8])
            states = np.empty(n_bytes, dtype=np.int64)
            byte_next = self._byte_next
            for i, byte in enumerate(byte_vals.tolist()):
                states[i] = state
                state = byte_next[state, byte]
            out[: n_bytes * 8 * r] = self._byte_out[states, byte_vals].ravel()
        pos = n_bytes * 8 * r
        for bit in stream[n_bytes * 8 :].tolist():
            out[pos : pos + r] = self._out_bits[state, bit]
            state = self._next_state[state, bit]
            pos += r
        return out

    def encode_reference(self, bits: np.ndarray) -> np.ndarray:
        """Per-bit reference encoder (the original scalar implementation)."""
        stream = self._terminated_stream(bits)
        out = np.empty((stream.size, self.rate_inverse), dtype=np.uint8)
        state = 0
        for i, bit in enumerate(stream):
            out[i] = self._out_bits[state, bit]
            state = self._next_state[state, bit]
        return out.ravel()

    def encode_many(self, bits_batch: np.ndarray) -> np.ndarray:
        """Encode a ``(B, n)`` batch of equal-length payloads at once.

        Steps the byte tables once per byte position with the whole batch's
        shift registers advancing together, so the per-step Python overhead
        amortises across the batch.  Row ``b`` equals ``encode(bits[b])``.
        """
        batch = np.asarray(bits_batch, dtype=np.uint8)
        if batch.ndim != 2:
            raise ValueError("encode_many expects a (batch, bits) array")
        n_packets = batch.shape[0]
        tail = np.zeros((n_packets, self.constraint_length - 1), dtype=np.uint8)
        stream = np.concatenate([batch, tail], axis=1)
        r = self.rate_inverse
        n = stream.shape[1]
        n_bytes = n // 8
        out = np.empty((n_packets, n * r), dtype=np.uint8)
        state = np.zeros(n_packets, dtype=np.int64)
        if n_bytes:
            byte_vals = np.packbits(stream[:, : n_bytes * 8], axis=1)
            for j in range(n_bytes):
                col = byte_vals[:, j]
                out[:, j * 8 * r : (j + 1) * 8 * r] = self._byte_out[state, col]
                state = self._byte_next[state, col]
        pos = n_bytes * 8 * r
        for j in range(n_bytes * 8, n):
            col = stream[:, j]
            out[:, pos : pos + r] = self._out_bits[state, col]
            state = self._next_state[state, col]
            pos += r
        return out

    def encoded_length(self, n_bits: int) -> int:
        """Coded bits produced for ``n_bits`` of payload."""
        return (n_bits + self.constraint_length - 1) * self.rate_inverse

    # ------------------------------------------------------------------ #
    # Viterbi decoding
    # ------------------------------------------------------------------ #

    def _check_steps(self, size: int, what: str) -> int:
        r = self.rate_inverse
        if size % r != 0:
            raise ValueError(f"{what} length is not a multiple of the inverse rate")
        n_steps = size // r
        if n_steps < self.constraint_length - 1:
            raise ValueError(f"{what} stream shorter than the termination tail")
        return n_steps

    def _traceback(self, survivors: np.ndarray) -> np.ndarray:
        """Walk one survivor table (n_steps, n_states) back from state 0.

        Zero termination guarantees the trellis ends in state 0; the
        returned array still includes the flush tail (callers drop it).
        """
        n_steps = survivors.shape[0]
        state = 0
        decoded = np.empty(n_steps, dtype=np.uint8)
        bit_of_dest = self._bit_of_dest
        pred = self._pred
        for t in range(n_steps - 1, -1, -1):
            decoded[t] = bit_of_dest[state]
            state = pred[state, survivors[t, state]]
        return decoded

    def _traceback_many(self, survivors: np.ndarray) -> np.ndarray:
        """Batched traceback over a (n_steps, B, n_states) survivor table.

        The walk is a sequential chain of single-element lookups, so plain
        Python ints over a flat bytes view beat per-step numpy dispatch by
        an order of magnitude.
        """
        n_steps, n_packets, n_states = survivors.shape
        flat = np.ascontiguousarray(survivors).tobytes()
        bit_of_dest = self._bit_of_dest.tolist()
        pred = self._pred.tolist()
        decoded = np.empty((n_packets, n_steps), dtype=np.uint8)
        for b in range(n_packets):
            state = 0
            out = [0] * n_steps
            base = b * n_states
            stride = n_packets * n_states
            for t in range(n_steps - 1, -1, -1):
                out[t] = bit_of_dest[state]
                state = pred[state][flat[t * stride + base + state]]
            decoded[b] = out
        return decoded

    def _pack_observations(self, coded: np.ndarray) -> np.ndarray:
        """Pack r-bit observations into integers along the last axis."""
        r = self.rate_inverse
        weights = (1 << np.arange(r - 1, -1, -1)).astype(np.int32)
        shaped = coded.reshape(coded.shape[:-1] + (coded.shape[-1] // r, r))
        return shaped.astype(np.int32) @ weights

    def decode(self, coded: np.ndarray) -> np.ndarray:
        """Hard-decision Viterbi decode; returns the original payload bits.

        The trellis starts and ends in state 0 (zero termination).  This is
        the per-packet reference path; :meth:`decode_many` is the batched
        equivalent (bit-identical, integer arithmetic throughout).
        """
        coded = np.asarray(coded, dtype=np.uint8).ravel()
        n_steps = self._check_steps(coded.size, "coded")
        observed = self._pack_observations(coded)

        n_states = self.n_states
        inf = np.iinfo(np.int64).max // 4
        metric = np.full(n_states, inf, dtype=np.int64)
        metric[0] = 0
        # survivors[t, d] = which of the two predecessors won at step t.
        survivors = np.empty((n_steps, n_states), dtype=np.uint8)

        for t in range(n_steps):
            branch0 = self._popcount[self._pred_out[:, 0] ^ observed[t]]
            branch1 = self._popcount[self._pred_out[:, 1] ^ observed[t]]
            cand0 = metric[self._pred[:, 0]] + branch0
            cand1 = metric[self._pred[:, 1]] + branch1
            choose1 = cand1 < cand0
            survivors[t] = choose1
            metric = np.where(choose1, cand1, cand0)

        decoded = self._traceback(survivors)
        # Drop the flush tail.
        return decoded[: n_steps - (self.constraint_length - 1)]

    def decode_many(self, coded_batch: np.ndarray) -> np.ndarray:
        """Hard-decision Viterbi decode of a ``(B, L)`` batch at once.

        All packets must share the coded length ``L``.  The add-compare-
        select recursion runs radix-4 (two trellis steps per iteration) over
        a ``(B, n_states, 4)`` candidate array, so both the number of
        sequential steps and the per-step numpy dispatch overhead amortise
        across the batch (the 3-4 packets of an IAC session, or stacked
        trials).  Row ``b`` of the result is bit-identical to
        ``decode(coded_batch[b])`` — integer arithmetic throughout, and the
        radix-4 candidate order reproduces the scalar tie-breaking.
        """
        coded = np.asarray(coded_batch, dtype=np.uint8)
        if coded.ndim != 2:
            raise ValueError("decode_many expects a (batch, coded bits) array")
        n_packets = coded.shape[0]
        n_steps = self._check_steps(coded.shape[1], "coded")
        observed = self._pack_observations(coded)  # (B, n_steps)

        n_states = self.n_states
        # int32 metrics: paths accumulate at most 2r per step, far from
        # overflow, and the smaller dtype roughly halves per-step traffic.
        metric = np.full(
            (n_packets, n_states), np.iinfo(np.int32).max // 4, dtype=np.int32
        )
        metric[:, 0] = 0

        # A single leading radix-2 step when the step count is odd.
        lead = n_steps % 2
        if lead:
            cand = metric[:, self._pred] + self._popcount[
                self._pred_out[None, :, :] ^ observed[:, 0, None, None]
            ]
            lead_choose = cand[:, :, 1] < cand[:, :, 0]
            metric = np.where(lead_choose, cand[:, :, 1], cand[:, :, 0]).astype(
                np.int32
            )

        # Pack step pairs into 2r-bit observations; all branch metrics are
        # computed up front in (step, batch, 4 * n_states) contiguous layout
        # — only the ACS recursion is sequential.
        n_pairs = (n_steps - lead) // 2
        r = self.rate_inverse
        obs_pairs = (observed[:, lead::2] << r) | observed[:, lead + 1 :: 2]
        branches = self._popcount2[
            self._pout2.ravel()[None, None, :] ^ obs_pairs.T[:, :, None]
        ]  # (n_pairs, B, n_states * 4), int32
        pred2_flat = self._pred2.ravel()
        survivors = np.empty((n_pairs, n_packets, n_states), dtype=np.uint8)

        for t in range(n_pairs):
            cand = metric.take(pred2_flat, axis=1)
            cand += branches[t]
            cand = cand.reshape(n_packets, n_states, 4)
            survivors[t] = cand.argmin(axis=2)
            metric = cand.min(axis=2)

        # Traceback from state 0, two decoded bits per radix-4 step; plain
        # Python ints over a flat bytes view (the chain of single-element
        # lookups is sequential, so numpy dispatch per step only adds cost).
        flat = survivors.tobytes()
        bit_of_dest = self._bit_of_dest.tolist()
        pred = self._pred.tolist()
        decoded = np.empty((n_packets, n_steps), dtype=np.uint8)
        stride = n_packets * n_states
        for b in range(n_packets):
            state = 0
            out = [0] * n_steps
            base = b * n_states
            for t in range(n_pairs - 1, -1, -1):
                j = flat[t * stride + base + state]
                out[lead + 2 * t + 1] = bit_of_dest[state]
                p = pred[state][j >> 1]
                out[lead + 2 * t] = bit_of_dest[p]
                state = pred[p][j & 1]
            if lead:
                out[0] = bit_of_dest[state]
            decoded[b] = out
        return decoded[:, : n_steps - (self.constraint_length - 1)]

    def decode_soft(self, llrs: np.ndarray) -> np.ndarray:
        """Soft-decision Viterbi decode from per-coded-bit LLRs.

        ``llrs[i] = log P(coded bit i = 0) / P(coded bit i = 1)`` (the
        convention of the modulators' ``soft_bits``).  Soft decisions are
        worth roughly 2 dB over hard decisions on an AWGN channel.
        """
        llrs = np.asarray(llrs, dtype=float).ravel()
        r = self.rate_inverse
        n_steps = self._check_steps(llrs.size, "LLR")
        observations = llrs.reshape(n_steps, r)

        n_states = self.n_states
        signs = self._signs  # (n_states, 2, r), precomputed in _build_trellis
        metric = np.full(n_states, np.inf)
        metric[0] = 0.0
        survivors = np.empty((n_steps, n_states), dtype=np.uint8)
        for t in range(n_steps):
            # Branch cost: sum_g (2 b - 1) * llr_g -- negative when the
            # expected bits agree with the evidence.
            branch = signs @ observations[t]  # (n_states, 2)
            cand0 = metric[self._pred[:, 0]] + branch[:, 0]
            cand1 = metric[self._pred[:, 1]] + branch[:, 1]
            choose1 = cand1 < cand0
            survivors[t] = choose1
            metric = np.where(choose1, cand1, cand0)

        decoded = self._traceback(survivors)
        return decoded[: n_steps - (self.constraint_length - 1)]

    def decode_soft_many(self, llrs_batch: np.ndarray) -> np.ndarray:
        """Soft-decision Viterbi decode of a ``(B, L)`` LLR batch at once.

        The batched counterpart of :meth:`decode_soft`; agrees with the
        per-packet path to floating-point associativity (exactly, when the
        LLR values make the branch sums exact, e.g. small integers).
        """
        llrs = np.asarray(llrs_batch, dtype=float)
        if llrs.ndim != 2:
            raise ValueError("decode_soft_many expects a (batch, LLRs) array")
        n_packets = llrs.shape[0]
        r = self.rate_inverse
        n_steps = self._check_steps(llrs.shape[1], "LLR")
        observations = llrs.reshape(n_packets, n_steps, r)

        n_states = self.n_states
        signs_mat = self._signs.reshape(n_states * 2, r)
        metric = np.full((n_packets, n_states), np.inf)
        metric[:, 0] = 0.0
        survivors = np.empty((n_steps, n_packets, n_states), dtype=np.uint8)
        # One matmul computes every branch metric: (B, T, r) @ (r, 2S).
        branches = (observations @ signs_mat.T).reshape(
            n_packets, n_steps, n_states, 2
        )
        pred = self._pred

        for t in range(n_steps):
            cand = metric[:, pred] + branches[:, t]  # (B, n_states, 2)
            choose1 = cand[:, :, 1] < cand[:, :, 0]
            survivors[t] = choose1
            metric = np.where(choose1, cand[:, :, 1], cand[:, :, 0])

        decoded = self._traceback_many(survivors)
        return decoded[:, : n_steps - (self.constraint_length - 1)]
