"""Rate-1/n convolutional codes with Viterbi decoding.

The default generators (133, 171 octal, constraint length 7) are the 802.11
industry-standard rate-1/2 pair.  IAC is transparent to FEC (paper §1, §4):
the code runs above the alignment machinery, so the IAC pipeline accepts any
:class:`ConvolutionalCode` (or none).

The encoder is zero-terminated: ``K - 1`` tail bits flush the shift register
so the decoder's final state is known, which measurably improves the last
few bits' reliability.
"""

from __future__ import annotations

import numpy as np


def _octal(value: int) -> int:
    """Interpret a decimal-written literal as octal (e.g. 133 -> 0o133)."""
    return int(str(value), 8)


class ConvolutionalCode:
    """Binary convolutional encoder + hard-decision Viterbi decoder.

    Parameters
    ----------
    generators:
        Generator polynomials written in octal-as-decimal (802.11 default
        ``(133, 171)``).
    constraint_length:
        Encoder memory + 1 (default 7).

    Notes
    -----
    State convention: the state is the newest ``K-1`` input bits with the
    *newest* bit in the most-significant position, i.e. on input ``b`` the
    register becomes ``(b << (K-1)) | state`` and the next state is that
    register shifted right by one.  Under this convention each trellis state
    has exactly two predecessors and the input bit that led to a state is the
    state's own most significant bit, which makes the Viterbi recursion fully
    vectorisable over states.
    """

    def __init__(self, generators=(133, 171), constraint_length: int = 7):
        if constraint_length < 2:
            raise ValueError("constraint_length must be >= 2")
        self.constraint_length = constraint_length
        self.generators = tuple(_octal(g) for g in generators)
        self.rate_inverse = len(self.generators)
        if self.rate_inverse < 2:
            raise ValueError("need at least two generator polynomials")
        self.n_states = 1 << (constraint_length - 1)
        for g in self.generators:
            if g >= (1 << constraint_length):
                raise ValueError("generator polynomial wider than constraint length")
        self._build_trellis()

    def _build_trellis(self):
        """Precompute next-state and packed-output tables for (state, bit)."""
        k = self.constraint_length
        n_states = self.n_states
        self._next_state = np.zeros((n_states, 2), dtype=np.int64)
        # Outputs packed as an integer, generator 0 in the MSB.
        self._out_packed = np.zeros((n_states, 2), dtype=np.int64)
        self._out_bits = np.zeros((n_states, 2, self.rate_inverse), dtype=np.uint8)
        for state in range(n_states):
            for bit in (0, 1):
                register = (bit << (k - 1)) | state
                self._next_state[state, bit] = register >> 1
                packed = 0
                for gi, g in enumerate(self.generators):
                    out = bin(register & g).count("1") & 1
                    self._out_bits[state, bit, gi] = out
                    packed = (packed << 1) | out
                self._out_packed[state, bit] = packed
        # Predecessor structure: destination d was reached with input bit
        # d >> (K-2); its two predecessors differ in their oldest bit.
        states = np.arange(n_states, dtype=np.int64)
        self._bit_of_dest = states >> (k - 2)
        low = states & ((1 << (k - 2)) - 1) if k > 2 else np.zeros_like(states)
        self._pred = np.stack([low << 1, (low << 1) | 1], axis=1)  # (n_states, 2)
        self._pred_out = np.stack(
            [
                self._out_packed[self._pred[:, 0], self._bit_of_dest],
                self._out_packed[self._pred[:, 1], self._bit_of_dest],
            ],
            axis=1,
        )
        # Popcount table for branch metrics over packed outputs.
        self._popcount = np.array(
            [bin(x).count("1") for x in range(1 << self.rate_inverse)], dtype=np.int64
        )

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode ``bits`` (zero-terminated) into coded bits."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        tail = np.zeros(self.constraint_length - 1, dtype=np.uint8)
        stream = np.concatenate([bits, tail])
        out = np.empty((stream.size, self.rate_inverse), dtype=np.uint8)
        state = 0
        for i, bit in enumerate(stream):
            out[i] = self._out_bits[state, bit]
            state = self._next_state[state, bit]
        return out.ravel()

    def encoded_length(self, n_bits: int) -> int:
        """Coded bits produced for ``n_bits`` of payload."""
        return (n_bits + self.constraint_length - 1) * self.rate_inverse

    # ------------------------------------------------------------------ #
    # Viterbi decoding
    # ------------------------------------------------------------------ #

    def decode(self, coded: np.ndarray) -> np.ndarray:
        """Hard-decision Viterbi decode; returns the original payload bits.

        The trellis starts and ends in state 0 (zero termination).
        """
        coded = np.asarray(coded, dtype=np.uint8).ravel()
        r = self.rate_inverse
        if coded.size % r != 0:
            raise ValueError("coded length is not a multiple of the inverse rate")
        n_steps = coded.size // r
        if n_steps < self.constraint_length - 1:
            raise ValueError("coded stream shorter than the termination tail")
        # Pack each r-bit observation into an integer for table lookups.
        weights = 1 << np.arange(r - 1, -1, -1)
        observed = (coded.reshape(n_steps, r).astype(np.int64) @ weights).astype(np.int64)

        n_states = self.n_states
        inf = np.iinfo(np.int64).max // 4
        metric = np.full(n_states, inf, dtype=np.int64)
        metric[0] = 0
        # survivors[t, d] = which of the two predecessors won at step t.
        survivors = np.empty((n_steps, n_states), dtype=np.uint8)

        for t in range(n_steps):
            branch0 = self._popcount[self._pred_out[:, 0] ^ observed[t]]
            branch1 = self._popcount[self._pred_out[:, 1] ^ observed[t]]
            cand0 = metric[self._pred[:, 0]] + branch0
            cand1 = metric[self._pred[:, 1]] + branch1
            choose1 = cand1 < cand0
            survivors[t] = choose1
            metric = np.where(choose1, cand1, cand0)

        # Traceback from the zero state (termination guarantees it).
        state = 0
        decoded = np.empty(n_steps, dtype=np.uint8)
        for t in range(n_steps - 1, -1, -1):
            decoded[t] = self._bit_of_dest[state]
            state = self._pred[state, survivors[t, state]]
        # Drop the flush tail.
        return decoded[: n_steps - (self.constraint_length - 1)]

    def decode_soft(self, llrs: np.ndarray) -> np.ndarray:
        """Soft-decision Viterbi decode from per-coded-bit LLRs.

        ``llrs[i] = log P(coded bit i = 0) / P(coded bit i = 1)`` (the
        convention of the modulators' ``soft_bits``).  Soft decisions are
        worth roughly 2 dB over hard decisions on an AWGN channel.
        """
        llrs = np.asarray(llrs, dtype=float).ravel()
        r = self.rate_inverse
        if llrs.size % r != 0:
            raise ValueError("LLR count is not a multiple of the inverse rate")
        n_steps = llrs.size // r
        if n_steps < self.constraint_length - 1:
            raise ValueError("LLR stream shorter than the termination tail")
        observations = llrs.reshape(n_steps, r)

        n_states = self.n_states
        # Expected output bits per (destination, predecessor-choice):
        # shape (n_states, 2, r), as +/-1 signs for the metric.
        signs = np.empty((n_states, 2, r), dtype=float)
        for choice in (0, 1):
            bits = self._out_bits[self._pred[:, choice], self._bit_of_dest]
            signs[:, choice, :] = 2.0 * bits - 1.0  # bit 1 -> +1, bit 0 -> -1

        inf = np.inf
        metric = np.full(n_states, inf)
        metric[0] = 0.0
        survivors = np.empty((n_steps, n_states), dtype=np.uint8)
        for t in range(n_steps):
            # Branch cost: sum_g (2 b - 1) * llr_g -- negative when the
            # expected bits agree with the evidence.
            branch = signs @ observations[t]  # (n_states, 2)
            cand0 = metric[self._pred[:, 0]] + branch[:, 0]
            cand1 = metric[self._pred[:, 1]] + branch[:, 1]
            choose1 = cand1 < cand0
            survivors[t] = choose1
            metric = np.where(choose1, cand1, cand0)

        state = 0
        decoded = np.empty(n_steps, dtype=np.uint8)
        for t in range(n_steps - 1, -1, -1):
            decoded[t] = self._bit_of_dest[state]
            state = self._pred[state, survivors[t, state]]
        return decoded[: n_steps - (self.constraint_length - 1)]
