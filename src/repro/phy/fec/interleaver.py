"""Block interleaver.

Convolutional codes fail on bursty errors; interleaving spreads a burst
across the codeword so the Viterbi decoder sees quasi-independent errors.
Bursts arise in IAC when interference cancellation briefly degrades (e.g.
a stale channel estimate), so the full pipeline interleaves after FEC.
"""

from __future__ import annotations

import numpy as np


class BlockInterleaver:
    """Row-in/column-out block interleaver with implicit zero padding.

    Writing fills an ``(n_rows, n_cols)`` matrix row-major; reading walks it
    column-major.  ``deinterleave`` inverts exactly, including the padding.
    """

    def __init__(self, n_rows: int = 16, n_cols: int = 24):
        if n_rows < 1 or n_cols < 1:
            raise ValueError("interleaver dimensions must be positive")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.block = n_rows * n_cols

    def _permutation(self) -> np.ndarray:
        idx = np.arange(self.block).reshape(self.n_rows, self.n_cols)
        return idx.T.ravel()

    def interleave(self, bits: np.ndarray) -> np.ndarray:
        """Permute bits blockwise; output is padded to whole blocks."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        pad = (-bits.size) % self.block
        if pad:
            bits = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
        perm = self._permutation()
        return bits.reshape(-1, self.block)[:, perm].ravel()

    def deinterleave(self, bits: np.ndarray, original_length: int | None = None) -> np.ndarray:
        """Invert :meth:`interleave`; optionally trim to the original length."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        if bits.size % self.block != 0:
            raise ValueError("input is not a whole number of interleaver blocks")
        perm = self._permutation()
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(self.block)
        out = bits.reshape(-1, self.block)[:, inverse].ravel()
        if original_length is not None:
            out = out[:original_length]
        return out
