"""Rate and capacity metrics (paper Eq. 9 and §1.1).

The evaluation metric is the *achievable rate*: the rate optimal rate
adaptation would extract from the measured post-detection SNRs,

    Rate = sum_i log2(1 + SNR_i)   [bit/s/Hz]            (Eq. 9)

summed over concurrent packets.  The capacity characterisation
``C(SNR) = d log(SNR) + o(log SNR)`` ties the multiplexing gain ``d``
to the high-SNR slope; :func:`multiplexing_slope` estimates ``d`` from
rate measurements at increasing SNR, which is how the DoF benchmarks verify
Lemmas 5.1/5.2 numerically.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def rate_from_snrs(snrs: Iterable[float]) -> float:
    """Achievable sum rate (Eq. 9) from linear per-packet SNRs."""
    total = 0.0
    for snr in snrs:
        if snr < 0:
            raise ValueError("SNR must be non-negative")
        total += float(np.log2(1.0 + snr))
    return total


def rate_from_snrs_db(snrs_db: Iterable[float]) -> float:
    """Achievable sum rate (Eq. 9) from per-packet SNRs in dB."""
    return rate_from_snrs(10.0 ** (np.asarray(list(snrs_db), dtype=float) / 10.0))


def estimated_group_rate(effective_gains: Iterable[complex], noise_power: float = 0.0) -> float:
    """Throughput estimate the leader AP uses to rank transmission groups.

    The paper's concurrency algorithm scores a group as
    ``sum_i log(1 + |v_i^T H_i w_i|^2)`` (§7.2) -- the effective gains after
    encoding and decoding vectors are applied.  ``noise_power`` generalises
    the expression to noise-limited regimes; the paper's form is the
    ``noise_power = 1`` case folded into the gain normalisation.
    """
    total = 0.0
    n0 = noise_power if noise_power > 0 else 1.0
    for g in effective_gains:
        total += float(np.log2(1.0 + (abs(g) ** 2) / n0))
    return total


def multiplexing_slope(snrs_db: Sequence[float], rates: Sequence[float]) -> float:
    """Estimate the multiplexing gain ``d`` from a rate-vs-SNR sweep.

    Fits ``rate ~ d * log2(SNR) + c`` by least squares over the provided
    (high-)SNR points; ``d`` is the number of concurrent streams the system
    sustains (paper §1.1).
    """
    snrs_db = np.asarray(snrs_db, dtype=float)
    rates = np.asarray(rates, dtype=float)
    if snrs_db.size != rates.size or snrs_db.size < 2:
        raise ValueError("need at least two matching (snr, rate) points")
    log_snr = snrs_db / 10.0 * np.log2(10.0)  # log2 of the linear SNR
    slope, _ = np.polyfit(log_snr, rates, 1)
    return float(slope)


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index in ``(0, 1]``; 1 means perfectly equal.

    Used to compare the concurrency algorithms' fairness (Fig. 15).
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("need at least one value")
    denom = v.size * float(np.sum(v**2))
    if denom == 0:
        return 1.0
    return float(np.sum(v)) ** 2 / denom
