"""Eigenmode (SVD) beamforming with waterfilling power allocation.

This is the 802.11-MIMO baseline of the paper's evaluation: "QUALCOMM's
eigenmode enforcing [2] ... an approach that is proven optimal for
point-to-point MIMO [29]" (§10d).  With full channel knowledge at both ends,
the channel ``H = U S V^H`` is diagonalised by transmitting along the right
singular vectors and receiving along the left ones; power is waterfilled
over the resulting parallel subchannels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class Eigenmodes:
    """A point-to-point MIMO link decomposed into parallel subchannels.

    Attributes
    ----------
    tx_vectors:
        Columns of ``V``: per-stream transmit (encoding) vectors.
    rx_vectors:
        Columns of ``U``: per-stream receive (decoding) vectors.
    gains:
        Singular values ``s_i`` (amplitude gains of each subchannel).
    powers:
        Waterfilled power allocation per stream (sums to the power budget).
    noise_power:
        Noise power the allocation was computed for.
    """

    tx_vectors: np.ndarray
    rx_vectors: np.ndarray
    gains: np.ndarray
    powers: np.ndarray
    noise_power: float

    @property
    def n_streams(self) -> int:
        return int(np.count_nonzero(self.powers > 0))

    def stream_snrs(self) -> np.ndarray:
        """Post-detection SNR of each active stream."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.powers * self.gains**2 / self.noise_power

    def rate(self) -> float:
        """Achievable sum rate in bit/s/Hz (Eq. 9 over the eigenmodes)."""
        return float(np.sum(np.log2(1.0 + self.stream_snrs())))


def waterfill(gains: np.ndarray, noise_power: float, total_power: float) -> np.ndarray:
    """Waterfilling over parallel channels with amplitude gains ``gains``.

    Maximises ``sum log2(1 + p_i g_i^2 / N0)`` subject to ``sum p_i <= P``.
    Uses the exact iterative removal of channels whose level falls below
    their inverse gain.
    """
    gains = np.asarray(gains, dtype=float).ravel()
    if total_power < 0 or noise_power <= 0:
        raise ValueError("total_power must be >= 0 and noise_power > 0")
    powers = np.zeros_like(gains)
    active = gains > 1e-15
    inv = np.zeros_like(gains)
    inv[active] = noise_power / gains[active] ** 2
    while np.any(active):
        level = (total_power + np.sum(inv[active])) / np.count_nonzero(active)
        alloc = level - inv
        if np.all(alloc[active] >= -1e-15):
            powers[active] = np.maximum(alloc[active], 0.0)
            break
        # Drop the worst channel and re-solve.
        worst = np.argmin(np.where(active, alloc, np.inf))
        active[worst] = False
    return powers


def eigenmode_link(
    h: np.ndarray,
    noise_power: float,
    total_power: float = 1.0,
    max_streams: int | None = None,
) -> Eigenmodes:
    """Decompose a channel into waterfilled eigenmodes.

    Parameters
    ----------
    h:
        ``(n_rx, n_tx)`` channel matrix.
    noise_power:
        Receiver noise power per antenna.
    total_power:
        Transmit power budget shared by all streams.
    max_streams:
        Optionally cap the number of spatial streams (e.g. to compare
        against an IAC configuration with a fixed packet count).
    """
    h = np.asarray(h, dtype=complex)
    u, s, vh = np.linalg.svd(h)
    k = min(h.shape)
    if max_streams is not None:
        k = min(k, max_streams)
    gains = s[:k]
    powers = waterfill(gains, noise_power, total_power)
    return Eigenmodes(
        tx_vectors=vh.conj().T[:, :k],
        rx_vectors=u[:, :k],
        gains=gains,
        powers=powers,
        noise_power=noise_power,
    )


def best_ap_rate(
    channels: List[np.ndarray],
    noise_power: float,
    total_power: float = 1.0,
    max_streams: int | None = None,
) -> float:
    """Rate of a client that picks its best AP (802.11-MIMO diversity).

    "If there are three APs, each 802.11-MIMO client communicates with the
    AP to which it has the best SNR" (§10e): the baseline may not use extra
    APs for concurrency but does use them for selection diversity.
    """
    if not channels:
        raise ValueError("need at least one candidate channel")
    return max(
        eigenmode_link(h, noise_power, total_power, max_streams).rate() for h in channels
    )
