"""Transmit-side precoding: encoding vectors and power normalisation.

"Instead of transmitting each packet on a single antenna, we multiply packet
``p_i`` by a vector ``v_i`` and transmit the two elements of the resulting
vector, one on each antenna" (paper §4b).  This module turns per-packet
sample streams plus encoding vectors into per-antenna sample blocks, under a
total transmit power constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.linalg import normalize


@dataclass(frozen=True)
class EncodedStream:
    """A packet's samples bound to its encoding vector."""

    samples: np.ndarray  # (n_samples,) complex
    encoding: np.ndarray  # (n_tx,) complex, unit norm after precode()


def precode(
    streams: Sequence[EncodedStream],
    n_tx: int,
    total_power: float = 1.0,
) -> np.ndarray:
    """Superimpose encoded packet streams onto transmit antennas.

    Each stream's encoding vector is normalised to unit norm and the set is
    scaled so the node's *total* average transmit power is ``total_power``
    (power is split equally across the node's concurrent packets, matching
    the paper's power-constraint footnote in §4b).

    Returns
    -------
    numpy.ndarray
        ``(n_tx, n_samples)`` antenna block, where ``n_samples`` is the
        longest stream (shorter streams are zero-padded at the tail).
    """
    if not streams:
        return np.zeros((n_tx, 0), dtype=complex)
    n_samples = max(s.samples.size for s in streams)
    out = np.zeros((n_tx, n_samples), dtype=complex)
    per_packet_power = total_power / len(streams)
    for stream in streams:
        v = normalize(np.asarray(stream.encoding, dtype=complex).ravel())
        if v.size != n_tx:
            raise ValueError(f"encoding vector has {v.size} entries, node has {n_tx} antennas")
        scaled = np.sqrt(per_packet_power) * v
        out[:, : stream.samples.size] += np.outer(scaled, stream.samples)
    return out


def normalize_encodings(vectors: np.ndarray) -> np.ndarray:
    """Unit-power normalisation of a batch of encoding vectors.

    The batched counterpart of :func:`repro.utils.linalg.normalize` for the
    group-evaluation engine: ``vectors`` holds encoding vectors along the
    last axis, every leading axis is a batch axis (group, eigenvector
    candidate, packet, ...).  Each vector is scaled to unit Euclidean norm so
    every packet of every candidate group is transmitted with unit power
    (paper, footnote 2).

    Raises
    ------
    ValueError
        If any vector in the batch is (numerically) zero.
    """
    vectors = np.asarray(vectors, dtype=complex)
    # Inlined ``np.linalg.norm(vectors, axis=-1, keepdims=True)`` (same
    # ufunc sequence as numpy's ord=None vector branch, minus wrapper
    # overhead — this runs several times per simulated slot).
    norms = np.sqrt(
        np.add.reduce((np.conj(vectors) * vectors).real, axis=-1, keepdims=True)
    )
    if np.any(norms < 1e-9):
        raise ValueError("cannot normalize a zero encoding vector")
    return vectors / norms


def antenna_selection_vectors(n_tx: int, packets: int) -> list:
    """Per-antenna encoding vectors (packet i on antenna i).

    This reproduces classic spatial multiplexing -- what a node does when it
    is not aligning (paper Fig. 3): packet ``i``'s encoding vector is the
    standard basis vector ``e_i``.
    """
    if packets > n_tx:
        raise ValueError("cannot send more unaligned packets than antennas")
    vectors = []
    for i in range(packets):
        e = np.zeros(n_tx, dtype=complex)
        e[i] = 1.0
        vectors.append(e)
    return vectors
