"""Modulation-and-coding-scheme (MCS) selection: rate adaptation.

The paper measures achievable rates (Eq. 9) precisely because "GNU-Radios
do not yet support rate adaptation" (§10(f)) -- a real product would map
each packet's SNR to the densest modulation/coding that still decodes.
This module supplies that missing piece so the signal-level pipeline can
be driven like an actual 802.11 device:

* an 802.11a/g-flavoured MCS table (BPSK 1/2 through 64-QAM 3/4), with
  each entry's spectral efficiency and minimum operating SNR;
* :func:`select_mcs` -- highest-throughput entry whose SNR requirement is
  met (with a configurable margin);
* :func:`effective_throughput` -- what a rate-adapting link extracts from
  a measured SNR, the discrete counterpart of Eq. 9's ``log2(1 + SNR)``.

The SNR thresholds are the standard AWGN operating points for ~10% packet
error rate at 1500-byte frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class MCS:
    """One modulation-and-coding scheme.

    Attributes
    ----------
    index:
        Table position (denser schemes have higher indices).
    modulation:
        Name understood by :func:`repro.phy.modulation.get_modulator`.
    code_rate:
        FEC code rate (1.0 = uncoded).
    bits_per_symbol:
        Raw modulation bits per complex symbol.
    min_snr_db:
        Minimum post-detection SNR for reliable operation.
    """

    index: int
    modulation: str
    code_rate: float
    bits_per_symbol: int
    min_snr_db: float

    @property
    def efficiency(self) -> float:
        """Spectral efficiency in bit/s/Hz (coded bits per symbol)."""
        return self.bits_per_symbol * self.code_rate


#: 802.11a/g-style table (modulation, code rate, min SNR for ~10% PER).
DEFAULT_TABLE: List[MCS] = [
    MCS(0, "bpsk", 0.5, 1, 4.0),
    MCS(1, "bpsk", 0.75, 1, 5.5),
    MCS(2, "qpsk", 0.5, 2, 7.0),
    MCS(3, "qpsk", 0.75, 2, 9.0),
    MCS(4, "qam16", 0.5, 4, 12.5),
    MCS(5, "qam16", 0.75, 4, 16.0),
    MCS(6, "qam64", 0.67, 6, 20.0),
    MCS(7, "qam64", 0.75, 6, 22.0),
]


def select_mcs(
    snr_db: float,
    table: Optional[List[MCS]] = None,
    margin_db: float = 0.0,
) -> Optional[MCS]:
    """Highest-efficiency scheme whose SNR requirement is met.

    Returns ``None`` when even the most robust entry cannot operate
    (the packet would be deferred or sent at a management rate).
    ``margin_db`` backs off the thresholds, trading throughput for
    robustness against SNR estimation error.
    """
    table = DEFAULT_TABLE if table is None else table
    best: Optional[MCS] = None
    for mcs in table:
        if snr_db >= mcs.min_snr_db + margin_db:
            if best is None or mcs.efficiency > best.efficiency:
                best = mcs
    return best


def effective_throughput(
    snr_db: float,
    table: Optional[List[MCS]] = None,
    margin_db: float = 0.0,
) -> float:
    """Spectral efficiency a rate-adapting link achieves at ``snr_db``.

    The staircase counterpart of ``log2(1 + SNR)``: zero below the first
    threshold, then jumps at each MCS switch point.
    """
    mcs = select_mcs(snr_db, table, margin_db)
    return 0.0 if mcs is None else mcs.efficiency


def shannon_gap_db(snr_db: float, table: Optional[List[MCS]] = None) -> float:
    """How far the staircase sits from capacity at a given SNR.

    Returns the extra SNR (dB) Shannon capacity would need to match the
    selected MCS's efficiency -- a standard link-adaptation diagnostic.
    """
    eff = effective_throughput(snr_db, table)
    if eff <= 0:
        return float("inf")
    needed_snr = 2.0**eff - 1.0
    return float(snr_db - 10 * np.log10(needed_snr))


def adapt_rates(snrs_db, table: Optional[List[MCS]] = None, margin_db: float = 0.0):
    """Vectorised :func:`effective_throughput` over per-packet SNRs."""
    return np.array(
        [effective_throughput(float(s), table, margin_db) for s in np.atleast_1d(snrs_db)]
    )
