"""MIMO signal processing: precoding, detection, eigenmode baseline, rates."""

from repro.phy.mimo.capacity import (
    estimated_group_rate,
    jain_fairness,
    multiplexing_slope,
    rate_from_snrs,
    rate_from_snrs_db,
)
from repro.phy.mimo.detection import (
    decoding_vector,
    equalize,
    mmse_matrix,
    post_projection_sinr,
    project,
    zero_forcing_matrix,
)
from repro.phy.mimo.eigenmode import Eigenmodes, best_ap_rate, eigenmode_link, waterfill
from repro.phy.mimo.mcs import (
    DEFAULT_TABLE,
    MCS,
    adapt_rates,
    effective_throughput,
    select_mcs,
    shannon_gap_db,
)
from repro.phy.mimo.precoding import EncodedStream, antenna_selection_vectors, precode

__all__ = [
    "DEFAULT_TABLE",
    "MCS",
    "EncodedStream",
    "Eigenmodes",
    "antenna_selection_vectors",
    "adapt_rates",
    "best_ap_rate",
    "decoding_vector",
    "effective_throughput",
    "eigenmode_link",
    "equalize",
    "estimated_group_rate",
    "jain_fairness",
    "mmse_matrix",
    "multiplexing_slope",
    "post_projection_sinr",
    "precode",
    "project",
    "rate_from_snrs",
    "rate_from_snrs_db",
    "select_mcs",
    "shannon_gap_db",
    "waterfill",
    "zero_forcing_matrix",
]
