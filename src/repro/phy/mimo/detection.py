"""Receive-side detection: projection, zero-forcing and MMSE.

The IAC receiver's primitive is *orthogonal projection*: pick a decoding
vector orthogonal to the (aligned) interference and project the received
signal on it (paper §4a).  Zero-forcing generalises this to several free
packets at once, and MMSE trades interference suppression against noise
enhancement when the system is noise-limited.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.linalg import herm, normalize, orthogonal_complement, stacked_solve

#: ``noise_power * I_M`` terms reused across the per-slot hot path; keyed
#: by ``(M, noise_power)`` and kept read-only so no caller can mutate one.
_SCALED_EYE_CACHE: dict = {}


def _scaled_eye(m: int, noise_power: float) -> np.ndarray:
    key = (m, float(noise_power))
    eye = _SCALED_EYE_CACHE.get(key)
    if eye is None:
        eye = noise_power * np.eye(m, dtype=complex)
        eye.flags.writeable = False
        _SCALED_EYE_CACHE[key] = eye
    return eye


def decoding_vector(
    desired: np.ndarray,
    interference: Optional[np.ndarray],
) -> np.ndarray:
    """Return the unit decoding vector for one packet.

    Chooses, within the orthogonal complement of the interference subspace,
    the direction that maximises the desired packet's captured energy (the
    projection of ``desired`` onto that complement).

    Parameters
    ----------
    desired:
        ``(M,)`` received direction ``H v`` of the packet to decode.
    interference:
        ``(M, k)`` columns spanning the interference, or ``None``/empty when
        the packet is interference-free.

    Raises
    ------
    ValueError
        If the interference spans the whole space (nothing to project on)
        or the desired direction lies inside the interference subspace.
    """
    desired = np.asarray(desired, dtype=complex).ravel()
    m = desired.size
    if interference is None or np.size(interference) == 0:
        return normalize(desired)
    comp = orthogonal_complement(interference, dim=m)
    if comp.shape[1] == 0:
        raise ValueError("interference spans the full receive space; cannot decode")
    projected = comp @ (herm(comp) @ desired)
    norm = np.linalg.norm(projected)
    if norm < 1e-12:
        raise ValueError("desired direction lies inside the interference subspace")
    return projected / norm


def project(received: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Project a received ``(M, n)`` block onto decoding vector ``w``.

    Returns the scalar sample stream ``w^H y`` of length ``n``.
    """
    received = np.atleast_2d(np.asarray(received, dtype=complex))
    w = np.asarray(w, dtype=complex).ravel()
    return np.conj(w) @ received


def equalize(projected: np.ndarray, effective_gain: complex) -> np.ndarray:
    """Remove the complex scalar channel ``w^H H v`` from projected samples."""
    if abs(effective_gain) < 1e-15:
        raise ValueError("effective channel gain is zero")
    return np.asarray(projected, dtype=complex) / effective_gain


def zero_forcing_matrix(directions: Sequence[np.ndarray]) -> np.ndarray:
    """Zero-forcing receive filter for several free packets.

    ``directions`` are the columns ``H_i v_i`` of the (tall) effective
    channel; the pseudo-inverse separates all of them simultaneously.
    Row ``i`` of the result is the decoding row for packet ``i``.
    """
    a = np.stack([np.asarray(d, dtype=complex).ravel() for d in directions], axis=1)
    m, k = a.shape
    if k > m:
        raise ValueError(f"cannot zero-force {k} packets with {m} antennas")
    return np.linalg.pinv(a)


def mmse_matrix(
    directions: Sequence[np.ndarray],
    noise_power: float,
) -> np.ndarray:
    """Linear MMSE receive filter for the same setting as zero-forcing.

    ``W = A^H (A A^H + sigma^2 I)^{-1}``; rows estimate each packet with the
    optimal bias-variance tradeoff at the given noise level.
    """
    a = np.stack([np.asarray(d, dtype=complex).ravel() for d in directions], axis=1)
    m = a.shape[0]
    cov = a @ herm(a) + noise_power * np.eye(m)
    return herm(a) @ np.linalg.inv(cov)


def max_sinr_vectors(
    desired: np.ndarray,
    interference: np.ndarray,
    noise_power: float,
) -> np.ndarray:
    """Batched MMSE receive vectors ``w = (R + n0 I)^-1 d``, unit-normalised.

    The vectorised counterpart of :func:`repro.core.decoder.max_sinr_vector`
    used by the batched group-evaluation engine: all leading axes are batch
    axes, so one call computes the receive filters of every candidate group
    at once via a single stacked ``np.linalg.solve``.

    Parameters
    ----------
    desired:
        ``(..., M)`` desired received directions.
    interference:
        ``(..., K, M)`` stacked interference directions (``K`` per receiver).
    noise_power:
        Receiver noise power per antenna.
    """
    desired = np.asarray(desired, dtype=complex)
    interference = np.asarray(interference, dtype=complex)
    m = desired.shape[-1]
    # R = n0 I + sum_k d_k d_k^H over the interference axis.
    r = np.einsum("...ki,...kj->...ij", interference, np.conj(interference))
    r = r + _scaled_eye(m, noise_power)
    w = stacked_solve(r, desired[..., None])[..., 0]
    # Inlined ``np.linalg.norm(w, axis=-1, keepdims=True)`` (same ufunc
    # sequence as numpy's ord=None vector branch, minus wrapper overhead).
    norms = np.sqrt(np.add.reduce((np.conj(w) * w).real, axis=-1, keepdims=True))
    return w / norms


def post_projection_sinr_batch(
    w: np.ndarray,
    desired: np.ndarray,
    interference: np.ndarray,
    noise_power: float,
    signal_power: float = 1.0,
) -> np.ndarray:
    """Batched :func:`post_projection_sinr` over arbitrary leading axes.

    Parameters
    ----------
    w:
        ``(..., M)`` decoding vectors (need not be unit norm).
    desired:
        ``(..., M)`` desired received directions.
    interference:
        ``(..., K, M)`` interference directions per receiver.
    noise_power, signal_power:
        As in the scalar version.

    Returns
    -------
    numpy.ndarray
        SINRs with the leading (batch) shape of the inputs.
    """
    w = np.asarray(w, dtype=complex)
    desired = np.asarray(desired, dtype=complex)
    interference = np.asarray(interference, dtype=complex)
    wc = np.conj(w)
    sig = signal_power * np.abs(np.einsum("...m,...m->...", wc, desired)) ** 2
    cross = np.einsum("...m,...km->...k", wc, interference)
    interf = signal_power * np.add.reduce(np.abs(cross) ** 2, axis=-1)
    noise = noise_power * np.add.reduce(np.abs(w) ** 2, axis=-1)
    return sig / (interf + noise)


def post_projection_sinr(
    w: np.ndarray,
    desired: np.ndarray,
    interference: Sequence[np.ndarray],
    noise_power: float,
    signal_power: float = 1.0,
) -> float:
    """SINR of one packet after projecting on decoding vector ``w``.

    This is the quantity the paper's evaluation measures per packet and
    feeds into the achievable-rate formula (Eq. 9).

    Parameters
    ----------
    w:
        Decoding vector (need not be unit norm; the ratio is invariant).
    desired:
        Received direction of the packet of interest, ``H v`` (scaled by the
        transmit amplitude).
    interference:
        Received directions of all concurrent packets not yet cancelled.
    noise_power:
        Receiver noise power per antenna.
    signal_power:
        Transmit power allocated to each packet.
    """
    w = np.asarray(w, dtype=complex).ravel()
    wn = np.linalg.norm(w)
    if wn == 0:
        raise ValueError("decoding vector must be non-zero")
    sig = signal_power * abs(np.vdot(w, np.asarray(desired, dtype=complex))) ** 2
    interf = 0.0
    for d in interference:
        interf += signal_power * abs(np.vdot(w, np.asarray(d, dtype=complex))) ** 2
    noise = noise_power * wn**2
    return float(sig / (interf + noise))
