"""Phase-shift keying modulators: BPSK, QPSK, 8-PSK.

BPSK is the scheme the paper's GNU-Radio prototype uses ("the modulation
scheme that 802.11 uses at low rates", §10b); QPSK and 8-PSK exist to
demonstrate IAC's modulation transparency (§6b).
"""

from __future__ import annotations

import numpy as np

from repro.phy.modulation.base import Modulator, check_bits


class BPSK(Modulator):
    """Binary PSK: bit 0 -> +1, bit 1 -> -1."""

    bits_per_symbol = 1
    name = "bpsk"

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        bits = check_bits(bits)
        return (1.0 - 2.0 * bits.astype(float)).astype(complex)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=complex).ravel()
        return (symbols.real < 0).astype(np.uint8)

    def soft_bits(self, symbols: np.ndarray, noise_power: float) -> np.ndarray:
        """Exact per-bit LLRs, log P(bit=0)/P(bit=1), for AWGN."""
        symbols = np.asarray(symbols, dtype=complex).ravel()
        if noise_power <= 0:
            raise ValueError("noise_power must be positive")
        return 4.0 * symbols.real / noise_power


class QPSK(Modulator):
    """Gray-coded QPSK with unit average power.

    Bit pair (b0, b1) maps to ((1-2*b0) + 1j*(1-2*b1)) / sqrt(2), so each
    quadrature axis independently carries one bit and a single symbol error
    to an adjacent decision region flips exactly one bit.
    """

    bits_per_symbol = 2
    name = "qpsk"

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        bits = self.pad_bits(check_bits(bits)).astype(float)
        pairs = bits.reshape(-1, 2)
        i = 1.0 - 2.0 * pairs[:, 0]
        q = 1.0 - 2.0 * pairs[:, 1]
        return (i + 1j * q) / np.sqrt(2.0)

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=complex).ravel()
        out = np.empty(symbols.size * 2, dtype=np.uint8)
        out[0::2] = symbols.real < 0
        out[1::2] = symbols.imag < 0
        return out

    def soft_bits(self, symbols: np.ndarray, noise_power: float) -> np.ndarray:
        """Exact per-bit LLRs for AWGN (axes are independent BPSK at
        amplitude 1/sqrt(2))."""
        symbols = np.asarray(symbols, dtype=complex).ravel()
        if noise_power <= 0:
            raise ValueError("noise_power must be positive")
        out = np.empty(symbols.size * 2, dtype=float)
        scale = 4.0 / np.sqrt(2.0) / noise_power
        out[0::2] = scale * symbols.real
        out[1::2] = scale * symbols.imag
        return out


class PSK8(Modulator):
    """Gray-coded 8-PSK.

    Symbols lie on the unit circle at angles ``(2k+1) * pi/8``; the Gray map
    ensures adjacent constellation points differ in one bit.
    """

    bits_per_symbol = 3
    name = "8psk"

    _GRAY = np.array([0, 1, 3, 2, 6, 7, 5, 4])

    def __init__(self):
        angles = (2 * np.arange(8) + 1) * np.pi / 8
        points = np.exp(1j * angles)
        # _constellation[gray_label] = point at that label's position.
        self._constellation = np.empty(8, dtype=complex)
        self._constellation[self._GRAY] = points

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        bits = self.pad_bits(check_bits(bits))
        triples = bits.reshape(-1, 3)
        labels = triples[:, 0] * 4 + triples[:, 1] * 2 + triples[:, 2]
        return self._constellation[labels]

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=complex).ravel()
        # Nearest constellation point by phase.
        dists = np.abs(symbols[:, None] - self._constellation[None, :])
        labels = np.argmin(dists, axis=1)
        out = np.empty(symbols.size * 3, dtype=np.uint8)
        out[0::3] = (labels >> 2) & 1
        out[1::3] = (labels >> 1) & 1
        out[2::3] = labels & 1
        return out
