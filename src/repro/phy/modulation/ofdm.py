"""OFDM wrapper around any single-carrier modulator.

The paper conjectures (§6c) that on moderately frequency-selective channels
one can run interference alignment independently per OFDM subcarrier.  The
USRP1 channel was too narrow to test this; our simulated channel is not, so
we provide a standard CP-OFDM layer and an experiment that validates the
conjecture (see ``benchmarks/bench_ablation_ofdm.py``).

The wrapper maps constellation symbols onto ``n_subcarriers`` data bins of
an ``n_fft`` IFFT, adds a cyclic prefix, and inverts the process on receive.
Time-domain output is normalised so average sample power equals the
underlying constellation's average symbol power (unity).
"""

from __future__ import annotations

import numpy as np

from repro.phy.modulation.base import Modulator, check_bits


class OFDM(Modulator):
    """Cyclic-prefix OFDM over an inner constellation mapper.

    Parameters
    ----------
    inner:
        Constellation mapper for each data subcarrier.
    n_fft:
        FFT size.
    n_subcarriers:
        Number of data subcarriers (centred, DC excluded).
    cp_len:
        Cyclic-prefix length in samples.
    """

    def __init__(self, inner: Modulator, n_fft: int = 64, n_subcarriers: int = 48, cp_len: int = 16):
        if n_subcarriers >= n_fft:
            raise ValueError("n_subcarriers must be smaller than n_fft")
        if cp_len < 0 or cp_len >= n_fft:
            raise ValueError("cp_len must be in [0, n_fft)")
        self.inner = inner
        self.n_fft = n_fft
        self.n_subcarriers = n_subcarriers
        self.cp_len = cp_len
        self.name = f"ofdm-{inner.name}"
        self.bits_per_symbol = inner.bits_per_symbol  # per data subcarrier
        # Data bins: centred around DC, skipping bin 0 itself.
        half = n_subcarriers // 2
        negative = np.arange(n_fft - half, n_fft)
        positive = np.arange(1, n_subcarriers - half + 1)
        self._bins = np.concatenate([positive, negative])

    @property
    def samples_per_ofdm_symbol(self) -> int:
        return self.n_fft + self.cp_len

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        bits = check_bits(bits)
        constellation = self.inner.modulate(self.inner.pad_bits(bits))
        # Pad constellation symbols to a whole number of OFDM symbols.
        per_symbol = self.n_subcarriers
        n_ofdm = -(-constellation.size // per_symbol)
        padded = np.zeros(n_ofdm * per_symbol, dtype=complex)
        padded[: constellation.size] = constellation
        grid = padded.reshape(n_ofdm, per_symbol)

        freq = np.zeros((n_ofdm, self.n_fft), dtype=complex)
        freq[:, self._bins] = grid
        # Scale so average time-domain sample power ~ average bin power.
        time = np.fft.ifft(freq, axis=1) * np.sqrt(self.n_fft**2 / self.n_subcarriers)
        with_cp = np.concatenate([time[:, -self.cp_len :], time], axis=1) if self.cp_len else time
        return with_cp.ravel()

    def demodulate(self, samples: np.ndarray) -> np.ndarray:
        grid = self.demodulate_to_symbols(samples)
        return self.inner.demodulate(grid.ravel())

    def demodulate_to_symbols(self, samples: np.ndarray) -> np.ndarray:
        """Return the per-subcarrier constellation symbols (n_ofdm, n_sc)."""
        samples = np.asarray(samples, dtype=complex).ravel()
        sym_len = self.samples_per_ofdm_symbol
        n_ofdm = samples.size // sym_len
        if n_ofdm * sym_len != samples.size:
            raise ValueError("sample stream is not a whole number of OFDM symbols")
        blocks = samples.reshape(n_ofdm, sym_len)[:, self.cp_len :]
        freq = np.fft.fft(blocks, axis=1) / np.sqrt(self.n_fft**2 / self.n_subcarriers)
        return freq[:, self._bins]
