"""Modulation schemes.

IAC treats modulation as a black box (paper §4, §6b); every scheme here
implements :class:`~repro.phy.modulation.base.Modulator` and can be plugged
into the IAC pipeline unchanged.  :func:`get_modulator` resolves schemes by
name for configuration-driven experiments.
"""

from __future__ import annotations

from repro.phy.modulation.base import Modulator
from repro.phy.modulation.ofdm import OFDM
from repro.phy.modulation.psk import BPSK, PSK8, QPSK
from repro.phy.modulation.qam import QAM16, QAM64

_REGISTRY = {
    "bpsk": BPSK,
    "qpsk": QPSK,
    "8psk": PSK8,
    "qam16": QAM16,
    "qam64": QAM64,
}


def get_modulator(name: str) -> Modulator:
    """Instantiate a modulator by name.

    Names: ``bpsk``, ``qpsk``, ``8psk``, ``qam16``, ``qam64``, and
    ``ofdm-<inner>`` for an OFDM wrapper with default parameters.
    """
    key = name.lower()
    if key.startswith("ofdm-"):
        inner = get_modulator(key[len("ofdm-") :])
        return OFDM(inner)
    try:
        return _REGISTRY[key]()
    except KeyError:
        raise ValueError(f"unknown modulation scheme {name!r}; known: {sorted(_REGISTRY)} or ofdm-<inner>") from None


__all__ = ["BPSK", "QPSK", "PSK8", "QAM16", "QAM64", "OFDM", "Modulator", "get_modulator"]
