"""Square QAM modulators with Gray mapping (16-QAM, 64-QAM).

Constellations are normalised to unit average power so SNR accounting is
identical across schemes.  The per-axis Gray code means demodulation is a
pair of independent PAM slicers.
"""

from __future__ import annotations

import numpy as np

from repro.phy.modulation.base import Modulator, check_bits


def _gray_to_binary(g: np.ndarray) -> np.ndarray:
    """Invert a Gray code (vectorised, values up to 8 bits)."""
    b = g.copy()
    shift = 1
    while shift < 8:
        b ^= b >> shift
        shift *= 2
    return b


def _binary_to_gray(b: np.ndarray) -> np.ndarray:
    return b ^ (b >> 1)


class _SquareQAM(Modulator):
    """Shared implementation for square 2^(2k)-QAM."""

    def __init__(self, bits_per_axis: int):
        self._k = bits_per_axis
        self.bits_per_symbol = 2 * bits_per_axis
        self._levels = 1 << bits_per_axis
        # PAM amplitudes -L+1, -L+3, ..., L-1 scaled to unit average power
        # of the full 2-D constellation: E = 2 * (L^2 - 1) / 3 per symbol.
        amplitudes = np.arange(-(self._levels - 1), self._levels, 2, dtype=float)
        self._scale = np.sqrt(2.0 * (self._levels**2 - 1) / 3.0)
        self._amplitudes = amplitudes / self._scale

    def _bits_to_axis(self, bits: np.ndarray) -> np.ndarray:
        """Map per-axis bit groups (MSB first) to PAM amplitudes via Gray."""
        weights = 1 << np.arange(self._k - 1, -1, -1)
        gray = bits.astype(np.int64) @ weights
        index = _gray_to_binary(gray)
        return self._amplitudes[index]

    def _axis_to_bits(self, values: np.ndarray) -> np.ndarray:
        """Slice PAM amplitudes back to per-axis Gray-coded bits."""
        # Quantise to the nearest level index.
        raw = (values * self._scale + (self._levels - 1)) / 2.0
        index = np.clip(np.rint(raw).astype(np.int64), 0, self._levels - 1)
        gray = _binary_to_gray(index)
        out = np.empty((values.size, self._k), dtype=np.uint8)
        for j in range(self._k):
            out[:, j] = (gray >> (self._k - 1 - j)) & 1
        return out

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        bits = self.pad_bits(check_bits(bits))
        groups = bits.reshape(-1, self.bits_per_symbol)
        i = self._bits_to_axis(groups[:, : self._k])
        q = self._bits_to_axis(groups[:, self._k :])
        return i + 1j * q

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        symbols = np.asarray(symbols, dtype=complex).ravel()
        i_bits = self._axis_to_bits(symbols.real)
        q_bits = self._axis_to_bits(symbols.imag)
        return np.concatenate([i_bits, q_bits], axis=1).ravel()


class QAM16(_SquareQAM):
    """Gray-coded 16-QAM, unit average power."""

    name = "qam16"

    def __init__(self):
        super().__init__(bits_per_axis=2)


class QAM64(_SquareQAM):
    """Gray-coded 64-QAM, unit average power."""

    name = "qam64"

    def __init__(self):
        super().__init__(bits_per_axis=3)
