"""Modulator interface.

IAC "operates below existing modulation and coding and is transparent to
both" (paper §4): the alignment/cancellation machinery treats the modulated
sample stream as opaque complex numbers.  To demonstrate that transparency
(and test it -- see §6b), every modulation scheme implements this small
interface and the IAC pipeline is parameterised over it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Modulator(ABC):
    """Maps bit arrays to complex baseband symbols and back."""

    #: Bits carried per complex symbol.
    bits_per_symbol: int

    #: Human-readable scheme name ("bpsk", "qam16", ...).
    name: str

    @abstractmethod
    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map bits (uint8 0/1) to unit-average-power complex symbols."""

    @abstractmethod
    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        """Hard-decision demap complex symbols back to bits."""

    def symbols_for_bits(self, n_bits: int) -> int:
        """Number of symbols needed to carry ``n_bits`` (with padding)."""
        return -(-n_bits // self.bits_per_symbol)

    def pad_bits(self, bits: np.ndarray) -> np.ndarray:
        """Zero-pad bits to a whole number of symbols."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        remainder = bits.size % self.bits_per_symbol
        if remainder == 0:
            return bits
        pad = self.bits_per_symbol - remainder
        return np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


def check_bits(bits: np.ndarray) -> np.ndarray:
    """Validate and canonicalise a bit array."""
    bits = np.asarray(bits).ravel()
    if bits.size and not np.all((bits == 0) | (bits == 1)):
        raise ValueError("bit array must contain only 0s and 1s")
    return bits.astype(np.uint8)
