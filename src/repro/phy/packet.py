"""Packets and PHY frames.

A :class:`Packet` is the unit the MAC hands to the PHY: an opaque payload
plus addressing metadata.  The PHY wraps it into a bit-level frame::

    +--------+-----------------+------------------+---------+
    | header | payload length  |     payload      |  CRC32  |
    +--------+-----------------+------------------+---------+

The header carries source/destination/flow identifiers so integration tests
can verify end-to-end delivery through the full IAC pipeline, not just
bit-exactness of the payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.phy.bits import bits_to_bytes, bytes_to_bits
from repro.phy.crc import append_crc, check_crc

#: Fixed header layout: src (2B) | dst (2B) | seq (2B) | flags (1B) | len (2B)
HEADER_BYTES = 9

#: Payload size used throughout the paper's evaluation (1500-byte payload).
DEFAULT_PAYLOAD_BYTES = 1500


@dataclass(frozen=True)
class Packet:
    """An immutable MAC-level packet.

    Attributes
    ----------
    payload:
        Opaque payload bytes.
    src / dst:
        16-bit node identifiers (assigned at association, §7.1).
    seq:
        16-bit sequence number used for ack bookkeeping.
    flags:
        8-bit flag field (bit 0: uplink request piggyback, §7.1(b.2)).
    """

    payload: bytes
    src: int = 0
    dst: int = 0
    seq: int = 0
    flags: int = 0

    def __post_init__(self):
        for name, value, width in (
            ("src", self.src, 16),
            ("dst", self.dst, 16),
            ("seq", self.seq, 16),
            ("flags", self.flags, 8),
        ):
            if not 0 <= value < (1 << width):
                raise ValueError(f"{name}={value} does not fit in {width} bits")
            # Accept numpy integer inputs (node ids often come from arrays).
            object.__setattr__(self, name, int(value))
        if len(self.payload) >= (1 << 16):
            raise ValueError("payload too large for 16-bit length field")

    @property
    def nbytes(self) -> int:
        """Total frame size in bytes including header and CRC."""
        return HEADER_BYTES + len(self.payload) + 4

    def header_bytes(self) -> bytes:
        return (
            self.src.to_bytes(2, "big")
            + self.dst.to_bytes(2, "big")
            + self.seq.to_bytes(2, "big")
            + self.flags.to_bytes(1, "big")
            + len(self.payload).to_bytes(2, "big")
        )

    def to_frame(self) -> bytes:
        """Serialise to a CRC-protected byte frame."""
        return append_crc(self.header_bytes() + self.payload)

    def to_bits(self) -> np.ndarray:
        """Serialise to an MSB-first bit array (what the modulator consumes)."""
        return bytes_to_bits(self.to_frame())

    @classmethod
    def from_frame(cls, frame: bytes) -> "Packet":
        """Parse a byte frame; raises ``ValueError`` on CRC failure."""
        if not check_crc(frame):
            raise ValueError("CRC check failed")
        body = frame[:-4]
        if len(body) < HEADER_BYTES:
            raise ValueError("frame shorter than header")
        src = int.from_bytes(body[0:2], "big")
        dst = int.from_bytes(body[2:4], "big")
        seq = int.from_bytes(body[4:6], "big")
        flags = body[6]
        length = int.from_bytes(body[7:9], "big")
        payload = body[HEADER_BYTES:]
        if len(payload) != length:
            raise ValueError(f"length field {length} != payload size {len(payload)}")
        return cls(payload=payload, src=src, dst=dst, seq=seq, flags=flags)

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "Packet":
        """Parse from a bit array; raises ``ValueError`` on CRC failure."""
        return cls.from_frame(bits_to_bytes(bits))

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        **meta,
    ) -> "Packet":
        """Generate a packet with uniform random payload."""
        payload = rng.integers(0, 256, size=payload_bytes, dtype=np.uint8).tobytes()
        return cls(payload=payload, **meta)


@dataclass
class DecodedPacket:
    """A packet recovered by a receiver, with reception metadata.

    The measured SNR is what the paper's evaluation metric (Eq. 9) consumes;
    ``decoder`` records which AP decoded it and ``cancelled`` how many
    already-decoded packets were subtracted first.
    """

    packet: Optional[Packet]
    snr_db: float
    decoder: int = 0
    cancelled: int = 0
    crc_ok: bool = True
    extra: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.crc_ok and self.packet is not None
