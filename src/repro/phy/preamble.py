"""Preambles: known symbol sequences for detection and channel estimation.

Each transmit antenna gets an orthogonal preamble so the receiver can
estimate the full MIMO channel matrix from a single preamble burst (the
standard technique the paper cites for channel estimation, §8a).  We use
rows of a Hadamard-like construction over QPSK alphabet extended with a
pseudo-noise overlay, which keeps the per-antenna sequences exactly
orthogonal while looking noise-like on air.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import default_rng

#: Default preamble length in samples (the GNU-Radio prototype used a 32-bit
#: preamble; we default to 64 samples for better estimation SNR and keep the
#: length configurable everywhere).
DEFAULT_LENGTH = 64


def pn_sequence(length: int, seed: int = 0x5EED) -> np.ndarray:
    """Deterministic unit-magnitude pseudo-noise sequence (QPSK alphabet)."""
    rng = default_rng(seed)
    phases = rng.integers(0, 4, size=length)
    return np.exp(1j * np.pi / 2 * phases)


def _hadamard(n: int) -> np.ndarray:
    """Sylvester Hadamard matrix of size n (n must be a power of two)."""
    if n < 1 or n & (n - 1):
        raise ValueError("Hadamard size must be a power of two")
    h = np.ones((1, 1))
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    return h


def preamble_matrix(n_antennas: int, length: int = DEFAULT_LENGTH, seed: int = 0x5EED) -> np.ndarray:
    """Return an ``(n_antennas, length)`` matrix of orthogonal preambles.

    Rows satisfy ``P P^H = length * I`` exactly, so least-squares channel
    estimation reduces to a correlation.
    """
    if n_antennas < 1:
        raise ValueError("need at least one antenna")
    # Smallest power of two >= n_antennas gives us enough orthogonal rows.
    n_rows = 1
    while n_rows < n_antennas:
        n_rows *= 2
    if length % n_rows != 0:
        raise ValueError(f"preamble length {length} must be a multiple of {n_rows}")
    walsh = _hadamard(n_rows)[:n_antennas]  # (n_antennas, n_rows), +/-1
    reps = length // n_rows
    spread = np.tile(walsh, reps)  # (n_antennas, length)
    overlay = pn_sequence(length, seed=seed)
    return spread * overlay[None, :]


def detect_preamble(
    samples: np.ndarray,
    preamble: np.ndarray,
    threshold: float = 0.5,
) -> int:
    """Locate a preamble in a sample stream by normalised correlation.

    Parameters
    ----------
    samples:
        1-D complex stream from one receive antenna.
    preamble:
        1-D known sequence (any single antenna's row).
    threshold:
        Minimum normalised correlation magnitude in ``[0, 1]`` to declare a
        detection.

    Returns
    -------
    int
        Sample index of the preamble start, or ``-1`` if not found.
    """
    samples = np.asarray(samples, dtype=complex).ravel()
    preamble = np.asarray(preamble, dtype=complex).ravel()
    n, m = samples.size, preamble.size
    if m == 0 or n < m:
        return -1
    # Sliding correlation, normalised by local energy so the detector is
    # gain-invariant (the channel scales everything by an unknown h).
    kernel = np.conj(preamble[::-1])
    corr = np.convolve(samples, kernel, mode="valid")
    window_energy = np.convolve(np.abs(samples) ** 2, np.ones(m), mode="valid")
    pre_energy = float(np.sum(np.abs(preamble) ** 2))
    with np.errstate(invalid="ignore", divide="ignore"):
        metric = np.abs(corr) / np.sqrt(window_energy * pre_energy + 1e-30)
    best = int(np.argmax(metric))
    if metric[best] < threshold:
        return -1
    return best
