"""Preambles: known symbol sequences for detection and channel estimation.

Each transmit antenna gets an orthogonal preamble so the receiver can
estimate the full MIMO channel matrix from a single preamble burst (the
standard technique the paper cites for channel estimation, §8a).  We use
rows of a Hadamard-like construction over QPSK alphabet extended with a
pseudo-noise overlay, which keeps the per-antenna sequences exactly
orthogonal while looking noise-like on air.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import default_rng

#: Default preamble length in samples (the GNU-Radio prototype used a 32-bit
#: preamble; we default to 64 samples for better estimation SNR and keep the
#: length configurable everywhere).
DEFAULT_LENGTH = 64


def pn_sequence(length: int, seed: int = 0x5EED) -> np.ndarray:
    """Deterministic unit-magnitude pseudo-noise sequence (QPSK alphabet)."""
    rng = default_rng(seed)
    phases = rng.integers(0, 4, size=length)
    return np.exp(1j * np.pi / 2 * phases)


def _hadamard(n: int) -> np.ndarray:
    """Sylvester Hadamard matrix of size n (n must be a power of two)."""
    if n < 1 or n & (n - 1):
        raise ValueError("Hadamard size must be a power of two")
    h = np.ones((1, 1))
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    return h


def preamble_matrix(n_antennas: int, length: int = DEFAULT_LENGTH, seed: int = 0x5EED) -> np.ndarray:
    """Return an ``(n_antennas, length)`` matrix of orthogonal preambles.

    Rows satisfy ``P P^H = length * I`` exactly, so least-squares channel
    estimation reduces to a correlation.
    """
    if n_antennas < 1:
        raise ValueError("need at least one antenna")
    # Smallest power of two >= n_antennas gives us enough orthogonal rows.
    n_rows = 1
    while n_rows < n_antennas:
        n_rows *= 2
    if length % n_rows != 0:
        raise ValueError(f"preamble length {length} must be a multiple of {n_rows}")
    walsh = _hadamard(n_rows)[:n_antennas]  # (n_antennas, n_rows), +/-1
    reps = length // n_rows
    spread = np.tile(walsh, reps)  # (n_antennas, length)
    overlay = pn_sequence(length, seed=seed)
    return spread * overlay[None, :]


#: Above this ``n * m`` product the FFT overlap-save correlation path is
#: used (measured crossover on this numpy: ~2-4e6); the direct path stays
#: the default for the short streams the session pipeline usually sees.
FFT_THRESHOLD = 1 << 22


def _fft_valid_correlation(samples: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """``np.convolve(samples, kernel, mode="valid")`` via overlap-save FFTs.

    The stream is processed in blocks of a power-of-two FFT size chosen from
    the kernel length (at least ``16 m``, capped at one block for short
    streams), each block overlapping the next by ``m - 1`` samples; the
    kernel spectrum is computed once.
    """
    n, m = samples.size, kernel.size
    # At least 16m for block efficiency, capped at one block for short
    # streams; since n >= m the cap is a power of two > n + m - 1 >= 2m - 1,
    # so n_fft >= 2m and every block fits the kernel.
    n_fft = 1 << max(16 * m, 1024).bit_length()
    n_fft = min(n_fft, 1 << (n + m - 1).bit_length())
    hop = n_fft - m + 1  # valid outputs per block
    kernel_f = np.fft.fft(kernel, n_fft)
    n_valid = n - m + 1
    out = np.empty(n_valid, dtype=complex)
    for start in range(0, n_valid, hop):
        segment = samples[start : start + n_fft]
        block = np.fft.ifft(np.fft.fft(segment, n_fft) * kernel_f)
        take = min(hop, n_valid - start, segment.size - m + 1)
        out[start : start + take] = block[m - 1 : m - 1 + take]
    return out


def _sliding_energy(power: np.ndarray, m: int) -> np.ndarray:
    """Sum of ``power`` over every length-``m`` window (cumulative sums)."""
    csum = np.concatenate([[0.0], np.cumsum(power)])
    return csum[m:] - csum[: power.size - m + 1]


def detect_preamble(
    samples: np.ndarray,
    preamble: np.ndarray,
    threshold: float = 0.5,
    method: str = "auto",
) -> int:
    """Locate a preamble in a sample stream by normalised correlation.

    Parameters
    ----------
    samples:
        1-D complex stream from one receive antenna.
    preamble:
        1-D known sequence (any single antenna's row).
    threshold:
        Minimum normalised correlation magnitude in ``[0, 1]`` to declare a
        detection.
    method:
        ``"direct"`` slides the kernel with ``np.convolve`` (O(n m));
        ``"fft"`` correlates through a zero-padded FFT and computes window
        energies from cumulative sums (O(n log n) — the long-stream path);
        ``"auto"`` (default) picks FFT above :data:`FFT_THRESHOLD` on the
        ``n * m`` product.  Both paths compute the same metric to floating-
        point noise and are equivalence-tested against each other.

    Returns
    -------
    int
        Sample index of the preamble start, or ``-1`` if not found.
    """
    samples = np.asarray(samples, dtype=complex).ravel()
    preamble = np.asarray(preamble, dtype=complex).ravel()
    n, m = samples.size, preamble.size
    if m == 0 or n < m:
        return -1
    if method not in ("auto", "direct", "fft"):
        raise ValueError(f"unknown method {method!r}; use 'auto', 'direct' or 'fft'")
    use_fft = method == "fft" or (method == "auto" and n * m > FFT_THRESHOLD)
    # Sliding correlation, normalised by local energy so the detector is
    # gain-invariant (the channel scales everything by an unknown h).
    kernel = np.conj(preamble[::-1])
    if use_fft:
        corr = _fft_valid_correlation(samples, kernel)
        window_energy = _sliding_energy(np.abs(samples) ** 2, m)
    else:
        corr = np.convolve(samples, kernel, mode="valid")
        window_energy = np.convolve(np.abs(samples) ** 2, np.ones(m), mode="valid")
    pre_energy = float(np.sum(np.abs(preamble) ** 2))
    with np.errstate(invalid="ignore", divide="ignore"):
        metric = np.abs(corr) / np.sqrt(window_energy * pre_energy + 1e-30)
    best = int(np.argmax(metric))
    if metric[best] < threshold:
        return -1
    return best
