"""Client association and channel-state signalling (paper §7.1, §8).

Covers the control-plane pieces around the data path:

* **Association**: "the first time a client broadcasts an association
  message, all APs estimate the channel from that client to themselves"
  (§8a).  The leader assigns the client id used in DATA+Poll frames.
* **Channel updates**: "the subordinate APs need to tell the leader AP
  whenever ... channel coefficients to a client change by more than a
  threshold value" (§7.1(c)); updates ride as annotations on Ethernet
  frames (byte-accounted here).
* **Leader election**: deterministic lowest-id rule; "only the leader AP
  makes decisions, while other APs are dumb transmitters/receivers".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.phy.channel.estimation import ChannelTracker
from repro.phy.channel.model import rayleigh_channel


def elect_leader(ap_ids: Sequence[int]) -> int:
    """Deterministic leader election: the lowest AP id wins."""
    if not ap_ids:
        raise ValueError("no APs to elect from")
    return min(ap_ids)


@dataclass
class AssociationRecord:
    """State the leader keeps per associated client."""

    client_id: int
    association_id: int
    #: Last known channel estimate per AP: ``ap_id -> (M, M)`` matrix in
    #: a narrowband deployment, ``ap_id -> (n_bins, M, M)`` per-subcarrier
    #: stack when sounding covers a wideband (OFDM) channel.
    channels: Dict[int, np.ndarray] = field(default_factory=dict)


class AssociationTable:
    """The leader AP's registry of associated clients.

    Association ids are small dense integers reused after disassociation,
    since they index the DATA+Poll metadata entries (Fig. 10).
    """

    def __init__(self):
        self._records: Dict[int, AssociationRecord] = {}
        self._free_ids: List[int] = []
        self._next_id = 0

    def associate(self, client_id: int) -> AssociationRecord:
        """Register a client; idempotent for already-associated clients."""
        if client_id in self._records:
            return self._records[client_id]
        if self._free_ids:
            assoc_id = self._free_ids.pop(0)
        else:
            assoc_id = self._next_id
            self._next_id += 1
        record = AssociationRecord(client_id=client_id, association_id=assoc_id)
        self._records[client_id] = record
        return record

    def disassociate(self, client_id: int) -> None:
        record = self._records.pop(client_id, None)
        if record is None:
            raise KeyError(f"client {client_id} is not associated")
        self._free_ids.append(record.association_id)
        self._free_ids.sort()

    def record(self, client_id: int) -> AssociationRecord:
        return self._records[client_id]

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def clients(self) -> List[int]:
        return sorted(self._records)


@dataclass
class ChannelUpdate:
    """A subordinate AP's channel-change report to the leader.

    ``h`` is the tracked estimate: a flat ``(M, M)`` matrix, or the full
    ``(n_bins, M, M)`` per-subcarrier stack in a wideband deployment —
    the annotation then carries every bin, so the §6c operating mode
    pays ``n_bins`` times the flat report on the Ethernet (accounted by
    :meth:`nbytes`, asserted in the WLAN overhead stats).
    """

    ap_id: int
    client_id: int
    h: np.ndarray

    def nbytes(self) -> int:
        """Annotation size: ids plus 8 bytes per complex entry."""
        return 4 + 8 * int(np.asarray(self.h).size)


class SubordinateAP:
    """A non-leader AP: tracks channels, reports significant drift.

    Wraps a :class:`~repro.phy.channel.estimation.ChannelTracker`; every
    overheard ack/data frame refreshes the estimate and a report is
    emitted only when the smoothed estimate moved by more than the
    threshold -- keeping the Ethernet annotation traffic small.

    Estimates may be flat matrices or per-subcarrier ``(n_bins, M, M)``
    stacks (wideband sounding): smoothing is elementwise and the drift
    norm spans the whole band, so one report refreshes every bin at
    once — per-bin staleness ages together, exactly like the flat case.
    """

    def __init__(self, ap_id: int, drift_threshold: float = 0.1):
        self.ap_id = ap_id
        self._tracker = ChannelTracker(drift_threshold=drift_threshold)

    def observe(self, client_id: int, h_estimate: np.ndarray) -> Optional[ChannelUpdate]:
        """Fold in a fresh estimate; return a report if drift is large."""
        drifted = self._tracker.update(client_id, h_estimate)
        if not drifted:
            return None
        return ChannelUpdate(
            ap_id=self.ap_id, client_id=client_id, h=self._tracker.get(client_id)
        )

    def channel_to(self, client_id: int) -> np.ndarray:
        return self._tracker.get(client_id)

    def forget(self, client_id: int) -> None:
        """Drop the client's tracked estimate (it disassociated), so a
        later re-association starts from the fresh sounding rather than
        blending it with pre-departure state."""
        self._tracker.forget(client_id)


class LeaderAP:
    """The leader: association registry plus the global channel map.

    The concurrency algorithm reads :meth:`channel_map` to build the
    :class:`~repro.core.plans.ChannelSet` for each candidate group.
    """

    def __init__(
        self,
        ap_id: int,
        ap_ids: Sequence[int],
        csi_guard: Optional[float] = None,
    ):
        if ap_id != elect_leader(ap_ids):
            raise ValueError(f"AP {ap_id} is not the elected leader of {sorted(ap_ids)}")
        self.ap_id = ap_id
        self.ap_ids = sorted(ap_ids)
        self.table = AssociationTable()
        self.update_bytes = 0
        #: Corrupt-CSI guard: reject a drift report whose relative
        #: Frobenius change versus the believed estimate exceeds this
        #: (or that carries non-finite entries), and quarantine the
        #: client until a plausible report arrives.  ``None`` (default)
        #: trusts every report — the pre-fault behaviour, bit for bit.
        self.csi_guard = csi_guard
        #: Per-client channel-map version, bumped on association and on
        #: every applied drift report.  The group-evaluation engine
        #: (:mod:`repro.engine`) keys its memoised solutions on these.
        self._channel_versions: Dict[int, int] = {}
        #: Bumped alongside *every* per-client version bump.  The engine's
        #: evaluators check this one counter to revalidate memoised group
        #: solutions without polling every member's version each probe —
        #: epoch unchanged implies no version changed, so the hit/miss
        #: decisions (and therefore the simulated trajectory) are
        #: identical to comparing version tuples.
        self.version_epoch = 0
        self._quarantined: set = set()

    def handle_association(
        self,
        client_id: int,
        estimates: Dict[int, np.ndarray],
    ) -> AssociationRecord:
        """Process an association broadcast heard by all APs (§8a)."""
        record = self.table.associate(client_id)
        missing = set(self.ap_ids) - set(estimates)
        if missing:
            raise ValueError(f"association must carry estimates from all APs; missing {sorted(missing)}")
        record.channels.update({ap: np.asarray(h, dtype=complex) for ap, h in estimates.items()})
        # A fresh association is a full re-sounding (§8a): any CSI
        # quarantine from a previous life of this client id is moot.
        self._quarantined.discard(client_id)
        self._channel_versions[client_id] = self._channel_versions.get(client_id, 0) + 1
        self.version_epoch += 1
        return record

    def handle_disassociation(self, client_id: int) -> None:
        """Deregister a departing client (churn).

        The association id returns to the free pool and the client's
        channel-map version is bumped, so any group solution memoised by
        the engine for a group containing this client is invalidated —
        a later re-association re-sounds the channels (§8a) rather than
        resurrecting stale state.
        """
        self.table.disassociate(client_id)
        self._quarantined.discard(client_id)
        self._channel_versions[client_id] = (
            self._channel_versions.get(client_id, 0) + 1
        )
        self.version_epoch += 1

    def _plausible(self, update: ChannelUpdate) -> bool:
        """Whether a report passes the corrupt-CSI guard.

        Non-finite entries are always implausible.  Otherwise the report
        must not move the believed estimate by more than ``csi_guard``
        times its Frobenius norm — honest Gauss-Markov drift between two
        acks is a small fraction of the channel magnitude, while wire
        corruption (``csi_corrupt_sigma`` ≫ 1) lands far outside it.  A
        first report (no prior estimate from this AP) is trusted.
        """
        h = np.asarray(update.h)
        if not np.all(np.isfinite(h)):
            return False
        prev = self.table.record(update.client_id).channels.get(update.ap_id)
        if prev is None:
            return True
        prev = np.asarray(prev)
        reference = float(np.linalg.norm(prev))
        if reference == 0.0:
            return True
        return float(np.linalg.norm(h - prev)) <= self.csi_guard * reference

    def handle_update(self, update: ChannelUpdate) -> bool:
        """Apply a subordinate's drift report; account its bytes.

        Returns whether the report was accepted.  With ``csi_guard``
        set, an implausible report is *rejected*: the believed channel
        map and its version stay untouched (the engine keeps using the
        last good estimate) and the client is quarantined — the WLAN
        layer keeps it out of aligned groups until a plausible report
        clears it.  Bytes are accounted either way: the wire carried the
        annotation whether or not the leader believes it.
        """
        if update.client_id not in self.table:
            raise KeyError(f"update for unassociated client {update.client_id}")
        self.update_bytes += update.nbytes()
        if self.csi_guard is not None and not self._plausible(update):
            self._quarantined.add(update.client_id)
            return False
        self.table.record(update.client_id).channels[update.ap_id] = update.h
        self._quarantined.discard(update.client_id)
        self._channel_versions[update.client_id] = (
            self._channel_versions.get(update.client_id, 0) + 1
        )
        self.version_epoch += 1
        return True

    def is_quarantined(self, client_id: int) -> bool:
        """Whether the client's CSI is currently distrusted."""
        return client_id in self._quarantined

    def quarantined_clients(self) -> List[int]:
        """Clients under CSI quarantine, in id order."""
        return sorted(self._quarantined)

    def channel_map(self, client_id: int) -> Dict[int, np.ndarray]:
        return dict(self.table.record(client_id).channels)

    def channel_version(self, client_id: int) -> int:
        """Version counter of the client's believed channel map.

        Changes exactly when :meth:`handle_association` or
        :meth:`handle_update` touches the client's channels, which makes it
        the engine's memoisation key (see :mod:`repro.engine`).
        """
        return self._channel_versions.get(client_id, 0)
