"""Per-direction FIFO transmission queues (paper §7.2).

The leader AP "maintains a FIFO queue for traffic pending for the downlink
and a similar queue for uplink requests learned from DATA+Poll frames".
Queue entries are client-tagged packets; the concurrency algorithm always
takes the head-of-queue packet and chooses companions for it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional


@dataclass(frozen=True)
class QueuedPacket:
    """A pending packet: owning client plus bookkeeping.

    ``enqueued_slot`` records when the packet entered the queue so the
    simulation can account per-packet queueing latency (service slot
    minus arrival slot); packets created outside a simulation default to
    slot 0.
    """

    client_id: int
    seq: int
    size_bytes: int = 1500
    retries: int = 0
    enqueued_slot: int = 0


class TransmissionQueue:
    """FIFO of pending packets with client-aware helpers.

    Supports the operations the concurrency algorithms need: peeking the
    head, listing the distinct clients with queued packets in arrival
    order, and removing the first packet of a given client (when that
    client is chosen into a transmission group).
    """

    def __init__(self, packets: Iterable[QueuedPacket] = ()):
        self._queue: Deque[QueuedPacket] = deque(packets)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def push(self, packet: QueuedPacket) -> None:
        self._queue.append(packet)

    def push_front(self, packet: QueuedPacket) -> None:
        """Requeue at the head (retransmissions keep their priority)."""
        self._queue.appendleft(packet)

    def head(self) -> QueuedPacket:
        if not self._queue:
            raise IndexError("queue is empty")
        return self._queue[0]

    def clients_in_order(self) -> List[int]:
        """Distinct clients with queued packets, in arrival order."""
        seen = set()
        out = []
        for p in self._queue:
            if p.client_id not in seen:
                seen.add(p.client_id)
                out.append(p.client_id)
        return out

    def pop_client(self, client_id: int) -> Optional[QueuedPacket]:
        """Remove and return the first packet of ``client_id`` (or None)."""
        for i, p in enumerate(self._queue):
            if p.client_id == client_id:
                del self._queue[i]
                return p
        return None

    def packets_of(self, client_id: int) -> List[QueuedPacket]:
        return [p for p in self._queue if p.client_id == client_id]

    def depth_of(self, client_id: int) -> int:
        """Number of queued packets owned by ``client_id``."""
        return len(self.packets_of(client_id))

    def remove_client(self, client_id: int) -> int:
        """Drop every packet of ``client_id`` (client departed); count them."""
        before = len(self._queue)
        self._queue = deque(p for p in self._queue if p.client_id != client_id)
        return before - len(self._queue)
