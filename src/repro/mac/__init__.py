"""MAC layer: PCF extension, frames, queues and concurrency algorithms."""

from repro.mac.association import (
    AssociationTable,
    ChannelUpdate,
    LeaderAP,
    SubordinateAP,
    elect_leader,
)
from repro.mac.concurrency import (
    BestOfTwo,
    BruteForce,
    ConcurrencySelector,
    FifoGrouping,
    make_selector,
    score_groups,
)
from repro.mac.frames import (
    Ack,
    Beacon,
    CFEnd,
    DataPollMetadata,
    Grant,
    GroupEntry,
    make_group_entries,
)
from repro.mac.pcf import PCFConfig, PCFCoordinator, PCFStats
from repro.mac.queueing import QueuedPacket, TransmissionQueue

__all__ = [
    "Ack",
    "AssociationTable",
    "Beacon",
    "BestOfTwo",
    "BruteForce",
    "CFEnd",
    "ChannelUpdate",
    "ConcurrencySelector",
    "DataPollMetadata",
    "FifoGrouping",
    "Grant",
    "GroupEntry",
    "LeaderAP",
    "PCFConfig",
    "PCFCoordinator",
    "PCFStats",
    "QueuedPacket",
    "SubordinateAP",
    "TransmissionQueue",
    "elect_leader",
    "make_group_entries",
    "make_selector",
    "score_groups",
]
