"""IAC's extension of the 802.11 PCF mode (paper §7.1, Fig. 9).

Time is divided into contention-free periods (CFPs), during which the
leader AP walks through downlink and uplink transmission groups, and fixed
length contention periods (CPs), during which nodes fall back to standard
point-to-point MIMO.  This module is a slot-level protocol simulation with
exact frame-byte accounting:

* the CFP starts with a :class:`~repro.mac.frames.Beacon` carrying the ack
  bitmap for the previous CFP's uplink receptions;
* each downlink group is preceded by the leader's
  :class:`~repro.mac.frames.DataPollMetadata` broadcast (Fig. 10) and
  followed by synchronous client acks;
* each uplink group is granted by a :class:`~repro.mac.frames.Grant`; APs
  cannot ack synchronously (successive cancellation), so receptions are
  reported in the next beacon's bitmap;
* lost packets are re-queued: uplink clients re-request on the next poll,
  downlink APs schedule a retransmission (§7.1(a));
* "when congestion is low and queues are empty, the CFP naturally shrinks".

Physical outcomes are delegated to a caller-supplied ``transmit`` callback
so the protocol layer is independent of the PHY model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.mac.concurrency import ConcurrencySelector
from repro.mac.frames import Ack, Beacon, CFEnd, DataPollMetadata, Grant, GroupEntry
from repro.mac.queueing import QueuedPacket, TransmissionQueue

#: Physical transmission callback: (direction, ordered client ids) ->
#: per-client measured SINR in dB.  Direction is "downlink" or "uplink".
TransmitFn = Callable[[str, Tuple[int, ...]], Dict[int, float]]


@dataclass
class PCFConfig:
    """Protocol parameters."""

    group_size: int = 3
    payload_bytes: int = 1440
    n_antennas: int = 2
    n_aps: int = 3
    #: Packets whose measured SINR falls below this threshold are lost.
    loss_snr_threshold_db: float = 3.0
    #: Upper bound on groups per CFP per direction (a CFP serves each
    #: pending client once, §7.1(a); this caps pathological backlogs).
    max_groups_per_cfp: int = 32
    #: Fixed contention-period length in slots.
    cp_slots: int = 4


@dataclass
class PCFStats:
    """Counters for throughput/overhead analysis."""

    slots: int = 0
    cfp_slots: int = 0
    cp_slots: int = 0
    metadata_bytes: int = 0
    ack_bytes: int = 0
    beacon_bytes: int = 0
    payload_bytes_delivered: int = 0
    packets_delivered: int = 0
    packets_lost: int = 0
    retransmissions: int = 0
    per_client_delivered: Dict[int, int] = field(default_factory=dict)

    def overhead_fraction(self) -> float:
        """Control bytes relative to delivered payload bytes."""
        control = self.metadata_bytes + self.ack_bytes + self.beacon_bytes
        if self.payload_bytes_delivered == 0:
            return float("inf")
        return control / self.payload_bytes_delivered


class PCFCoordinator:
    """The leader AP's medium-arbitration logic.

    Parameters
    ----------
    downlink / uplink:
        Transmission queues for the two directions.
    selector:
        Concurrency algorithm (shared across directions, as in §7.2).
    evaluate:
        Group throughput estimator handed to the selector.
    transmit:
        Physical transmission callback returning per-client SINRs (dB).
    config:
        Protocol parameters.
    """

    def __init__(
        self,
        downlink: TransmissionQueue,
        uplink: TransmissionQueue,
        selector: ConcurrencySelector,
        evaluate,
        transmit: TransmitFn,
        config: Optional[PCFConfig] = None,
    ):
        self.downlink = downlink
        self.uplink = uplink
        self.selector = selector
        self.evaluate = evaluate
        self.transmit = transmit
        self.config = config or PCFConfig()
        self.stats = PCFStats()
        self._frame_id = 0
        self._pending_uplink_acks: List[int] = []
        self._seq = 0

    # ------------------------------------------------------------------ #
    # Frame helpers
    # ------------------------------------------------------------------ #

    def _next_frame_id(self) -> int:
        self._frame_id = (self._frame_id + 1) & 0xFFFF
        return self._frame_id

    def _metadata_for(self, group: Tuple[int, ...], cls) -> DataPollMetadata:
        entries = tuple(
            GroupEntry(
                client_id=cid,
                ap_id=i % self.config.n_aps,
                encoding=(0j,) * self.config.n_antennas,
                decoding=(0j,) * self.config.n_antennas,
            )
            for i, cid in enumerate(group)
        )
        return cls(frame_id=self._next_frame_id(), n_aps=self.config.n_aps, entries=entries)

    # ------------------------------------------------------------------ #
    # CFP / CP machinery
    # ------------------------------------------------------------------ #

    def _serve_group(self, direction: str, queue: TransmissionQueue) -> None:
        group = self.selector.select(queue, self.evaluate)
        packets = {cid: queue.pop_client(cid) for cid in group}
        meta_cls = DataPollMetadata if direction == "downlink" else Grant
        metadata = self._metadata_for(group, meta_cls)
        self.stats.metadata_bytes += metadata.nbytes()

        sinrs = self.transmit(direction, group)
        for cid in group:
            packet = packets[cid]
            if packet is None:
                continue
            delivered = sinrs.get(cid, float("-inf")) >= self.config.loss_snr_threshold_db
            if delivered:
                self.stats.packets_delivered += 1
                self.stats.payload_bytes_delivered += packet.size_bytes
                self.stats.per_client_delivered[cid] = (
                    self.stats.per_client_delivered.get(cid, 0) + 1
                )
                if direction == "downlink":
                    self.stats.ack_bytes += Ack(client_id=cid, seq=packet.seq).nbytes()
                else:
                    self._pending_uplink_acks.append(cid)
            else:
                self.stats.packets_lost += 1
                self.stats.retransmissions += 1
                # Retransmissions keep priority at the head of the queue.
                queue.push_front(
                    QueuedPacket(
                        client_id=cid,
                        seq=packet.seq,
                        size_bytes=packet.size_bytes,
                        retries=packet.retries + 1,
                    )
                )
        self.stats.cfp_slots += 1
        self.stats.slots += 1

    def run_cfp(self) -> None:
        """Run one contention-free period: beacon, groups, CF-End."""
        beacon = Beacon(
            cfp_duration_slots=len(self.downlink) + len(self.uplink),
            ack_bitmap=tuple(self._pending_uplink_acks),
        )
        self.stats.beacon_bytes += beacon.nbytes()
        self._pending_uplink_acks = []

        # A CFP serves each client pending *at its start* once (§7.1(a));
        # packets lost during this CFP are retransmitted in the next one.
        for direction, queue in (("downlink", self.downlink), ("uplink", self.uplink)):
            budget = -(-len(queue) // self.config.group_size)
            budget = min(budget, self.config.max_groups_per_cfp)
            served = 0
            while queue and served < budget:
                self._serve_group(direction, queue)
                served += 1
        self.stats.beacon_bytes += CFEnd().nbytes()

    def run_cp(self) -> None:
        """Contention period: fixed length, standard MIMO (no IAC groups)."""
        self.stats.cp_slots += self.config.cp_slots
        self.stats.slots += self.config.cp_slots

    def run_round(self) -> None:
        """One beacon interval: a CFP followed by a CP."""
        self.run_cfp()
        self.run_cp()

    def enqueue_downlink(self, client_id: int, size_bytes: Optional[int] = None) -> None:
        self._seq += 1
        self.downlink.push(
            QueuedPacket(
                client_id=client_id,
                seq=self._seq,
                size_bytes=size_bytes or self.config.payload_bytes,
            )
        )

    def enqueue_uplink(self, client_id: int, size_bytes: Optional[int] = None) -> None:
        self._seq += 1
        self.uplink.push(
            QueuedPacket(
                client_id=client_id,
                seq=self._seq,
                size_bytes=size_bytes or self.config.payload_bytes,
            )
        )
