"""MAC frame formats (paper §7.1, Fig. 9 and Fig. 10).

Frames are modelled as dataclasses with exact byte accounting so the MAC
overhead claims can be measured: "the overhead of the metadata amounts to
1-2%" for 1440-byte packets (§7.1(e)).

Sizes follow 802.11 conventions where the paper does not specify:
2-byte frame control, 2-byte duration, 6-byte addresses, 4-byte FCS.
IAC-specific metadata uses the paper's own description: per client-AP pair
"a few bytes" carrying the client id and its encoding and decoding vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: 802.11 MAC framing constants (bytes).
FRAME_CONTROL = 2
DURATION = 2
ADDRESS = 6
FCS = 4
MAC_HEADER = FRAME_CONTROL + DURATION + 3 * ADDRESS + 2  # + seq control

#: Bytes to quantise one complex vector entry (8-bit I + 8-bit Q is enough
#: for beamforming weights in practice; 2 bytes/entry).
VECTOR_ENTRY_BYTES = 2


def vector_bytes(n_antennas: int) -> int:
    """Serialised size of one encoding/decoding vector."""
    return VECTOR_ENTRY_BYTES * n_antennas


@dataclass(frozen=True)
class GroupEntry:
    """One client-AP pair inside a transmission group announcement.

    Mirrors Fig. 10: client id plus its encoding and decoding vectors.
    """

    client_id: int
    ap_id: int
    encoding: Tuple[complex, ...]
    decoding: Tuple[complex, ...]

    def nbytes(self) -> int:
        n_ant = len(self.encoding)
        # 1 byte client id + 1 byte AP id + two vectors.
        return 2 + 2 * vector_bytes(n_ant)


@dataclass(frozen=True)
class Beacon:
    """CFP start announcement with the uplink ack bitmap (§7.1(b.2)).

    The leader AP combines the subordinate APs' uplink reception reports
    and broadcasts them as a bitmap at the start of the next CFP.
    """

    cfp_duration_slots: int
    ack_bitmap: Tuple[int, ...] = ()

    def nbytes(self) -> int:
        bitmap_bytes = -(-len(self.ack_bitmap) // 8) if self.ack_bitmap else 0
        return MAC_HEADER + 2 + bitmap_bytes + FCS


@dataclass(frozen=True)
class DataPollMetadata:
    """The leader AP's broadcast preceding a downlink group (Fig. 10).

    Contains the frame id, the AP count, per-pair entries, and a checksum;
    "the transmissions still work fine if any of the APs or the clients
    failed to hear the leader AP" -- the checksum lets each node validate
    its copy.
    """

    frame_id: int
    n_aps: int
    entries: Tuple[GroupEntry, ...]

    def nbytes(self) -> int:
        crc = 4
        return MAC_HEADER + 2 + 1 + sum(e.nbytes() for e in self.entries) + crc + FCS

    def metadata_overhead(self, payload_bytes: int) -> float:
        """Metadata bytes relative to the group's payload bytes (§7.1(e))."""
        total_payload = payload_bytes * len(self.entries)
        if total_payload <= 0:
            raise ValueError("payload must be positive")
        return self.nbytes() / total_payload


@dataclass(frozen=True)
class Grant(DataPollMetadata):
    """Uplink grant: same metadata layout, no downlink data follows.

    "802.11 calls the Grant frame CF-Poll, i.e., it is a poll without
    downlink data" (footnote 8).
    """


@dataclass(frozen=True)
class CFEnd:
    """End of the contention-free period."""

    def nbytes(self) -> int:
        return MAC_HEADER + FCS


@dataclass(frozen=True)
class Ack:
    """Synchronous per-packet client ack (downlink case)."""

    client_id: int
    seq: int

    def nbytes(self) -> int:
        return FRAME_CONTROL + DURATION + ADDRESS + FCS  # 802.11-style short ack


def make_group_entries(
    client_ids: Sequence[int],
    ap_ids: Sequence[int],
    encodings: Dict[int, np.ndarray],
    decodings: Dict[int, np.ndarray],
) -> Tuple[GroupEntry, ...]:
    """Build Fig.-10 entries from solver outputs (keyed by client id)."""
    if len(client_ids) != len(ap_ids):
        raise ValueError("client and AP lists must pair up")
    entries = []
    for cid, aid in zip(client_ids, ap_ids):
        entries.append(
            GroupEntry(
                client_id=cid,
                ap_id=aid,
                encoding=tuple(complex(x) for x in np.asarray(encodings[cid]).ravel()),
                decoding=tuple(complex(x) for x in np.asarray(decodings[cid]).ravel()),
            )
        )
    return tuple(entries)
