"""Transmission-group selection: brute force, FIFO, best-of-two (§7.2).

Given the FIFO queue and a way to score candidate groups (the throughput
estimator of §7.2, ``sum_i log(1 + |v_i^T H_i w_i|^2)``), the concurrency
algorithm picks which clients transmit together.  All three variants share
two rules from the paper:

* the head-of-queue client is always in the group (no starvation at the
  head, bounded delay);
* groups contain distinct clients.

They differ in how the companions are chosen:

* :class:`BruteForce` -- best over *all* combinations of queued clients
  (combinatorial; maximum throughput, poor fairness);
* :class:`FifoGrouping` -- strictly by arrival order (fair, throughput
  oblivious);
* :class:`BestOfTwo` -- two random candidates per remaining position, pick
  the best-scoring combination, plus credit counters that force chronically
  unlucky clients into a group (IAC's choice).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.mac.queueing import TransmissionQueue
from repro.utils.rng import default_rng

#: A group scorer: maps an ordered client tuple to estimated throughput.
#: Any callable qualifies; the richer :class:`repro.engine.GroupEvaluator`
#: objects additionally expose ``evaluate_many`` for batched scoring.
GroupEvaluator = Callable[[Tuple[int, ...]], float]


def score_groups(
    evaluate: GroupEvaluator, groups: Sequence[Tuple[int, ...]]
) -> List[float]:
    """Score candidate groups, in one batched call when supported.

    Selectors enumerate their candidates up front and hand the whole probe
    to the evaluator: an engine evaluator (anything with ``evaluate_many``)
    solves all not-yet-cached candidates in a single ndarray batch, while a
    plain callable is applied per group exactly as the scalar loop did.
    """
    many = getattr(evaluate, "evaluate_many", None)
    if many is not None:
        return [float(rate) for rate in many(groups)]
    return [float(evaluate(group)) for group in groups]


def _best_group(
    evaluate: GroupEvaluator, groups: Sequence[Tuple[int, ...]]
) -> Tuple[int, ...]:
    """The first highest-scoring group (matching strict ``>`` scanning)."""
    scores = score_groups(evaluate, groups)
    return groups[max(range(len(groups)), key=scores.__getitem__)]


@dataclass(frozen=True)
class GroupProposal:
    """A selector decision with the RNG consumed but the scoring deferred.

    :meth:`ConcurrencySelector.propose` front-loads every random draw and
    returns the candidate groups; :meth:`ConcurrencySelector.resolve`
    scores them and applies any bookkeeping (fairness credits).
    ``resolve(propose(queue), evaluate)`` is exactly ``select(queue,
    evaluate)`` — the split exists so the columnar engine's stacked
    driver can solve many simulations' candidate groups in one batched
    ``np.linalg`` call *between* the two halves.
    """

    #: Decided without scoring (degenerate backlog); resolve returns it.
    immediate: Optional[Tuple[int, ...]] = None
    #: Candidate groups to score (resolve picks the first-best).
    groups: Tuple[Tuple[int, ...], ...] = ()
    #: Used when ``groups`` is empty (all random combos collided).
    fallback: Optional[Tuple[int, ...]] = None
    #: Clients considered for membership (BestOfTwo credit accounting).
    considered: FrozenSet[int] = frozenset()
    #: Set by the base-class fallback for selectors without a native
    #: split: resolve re-runs ``select`` on this queue (draws happen at
    #: resolve time, which is still in-slot and per-selector-RNG safe).
    deferred: Optional[TransmissionQueue] = None


class ConcurrencySelector(ABC):
    """Strategy interface for picking one transmission group."""

    #: Number of clients per group (3 for the 2-antenna testbed scenarios).
    group_size: int

    @abstractmethod
    def select(self, queue: TransmissionQueue, evaluate: GroupEvaluator) -> Tuple[int, ...]:
        """Return the ordered client ids of the next transmission group.

        Fewer than ``group_size`` clients are returned when the queue holds
        fewer distinct clients.
        """

    def propose(self, queue: TransmissionQueue) -> GroupProposal:
        """Draw-complete half of :meth:`select` (see :class:`GroupProposal`).

        Subclasses override this to expose their candidate groups; the
        base implementation defers the whole decision to resolve time,
        which is always correct (nothing touches the queue or this
        selector's RNG between the two halves of a slot) but shares no
        solves.
        """
        return GroupProposal(deferred=queue)

    def resolve(
        self, proposal: GroupProposal, evaluate: GroupEvaluator
    ) -> Tuple[int, ...]:
        """Scoring half of :meth:`select`: pick, account, return."""
        if proposal.deferred is not None:
            return self.select(proposal.deferred, evaluate)
        if proposal.immediate is not None:
            return proposal.immediate
        if proposal.groups:
            return _best_group(evaluate, list(proposal.groups))
        assert proposal.fallback is not None
        return proposal.fallback


def _head_and_others(queue: TransmissionQueue) -> Tuple[int, List[int]]:
    clients = queue.clients_in_order()
    if not clients:
        raise ValueError("cannot form a group from an empty queue")
    return clients[0], clients[1:]


@dataclass
class FifoGrouping(ConcurrencySelector):
    """Combine packets strictly by arrival order.

    "This approach is simple and gives each client a fair access to the
    medium, but is oblivious to the throughput of a particular grouping."
    """

    group_size: int = 3

    def select(self, queue: TransmissionQueue, evaluate: GroupEvaluator) -> Tuple[int, ...]:
        return self.resolve(self.propose(queue), evaluate)

    def propose(self, queue: TransmissionQueue) -> GroupProposal:
        head, others = _head_and_others(queue)
        return GroupProposal(
            immediate=tuple([head] + others[: self.group_size - 1])
        )


@dataclass
class BruteForce(ConcurrencySelector):
    """Exhaustive search over companion combinations.

    "The brute force approach considers all combinations of clients with
    queued packets ... and estimates the throughput of each combination."
    The head packet stays in the group; companions and their order (the
    order encodes the AP assignment) are optimised exhaustively.
    """

    group_size: int = 3

    def select(self, queue: TransmissionQueue, evaluate: GroupEvaluator) -> Tuple[int, ...]:
        return self.resolve(self.propose(queue), evaluate)

    def propose(self, queue: TransmissionQueue) -> GroupProposal:
        head, others = _head_and_others(queue)
        k = min(self.group_size - 1, len(others))
        if k == 0:
            return GroupProposal(immediate=(head,))
        return GroupProposal(
            groups=tuple(
                (head,) + combo for combo in itertools.permutations(others, k)
            )
        )


@dataclass
class BestOfTwo(ConcurrencySelector):
    """The power-of-two-choices selector with fairness credits (IAC's).

    For each companion position, two random candidate clients are drawn;
    all combinations of the candidates (4 groups for a 3-client group) are
    scored and the best is used.  Every candidate that was considered but
    not picked gains a credit; a client whose credits cross ``threshold``
    is forced into the next group regardless of throughput, then reset.
    """

    group_size: int = 3
    threshold: int = 8
    rng: object = None
    credits: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        self.rng = default_rng(self.rng)

    def select(self, queue: TransmissionQueue, evaluate: GroupEvaluator) -> Tuple[int, ...]:
        return self.resolve(self.propose(queue), evaluate)

    def propose(self, queue: TransmissionQueue) -> GroupProposal:
        head, others = _head_and_others(queue)
        n_companions = min(self.group_size - 1, len(others))
        if n_companions == 0:
            # Degenerate backlog: decided now, and crucially *without*
            # the credit accounting below (the head keeps its credits).
            return GroupProposal(immediate=(head,))

        # Clients owed service come first, regardless of throughput.
        forced = [c for c in others if self.credits.get(c, 0) >= self.threshold]
        forced = forced[:n_companions]
        free_positions = n_companions - len(forced)
        pool = [c for c in others if c not in forced]

        position_candidates: List[List[int]] = []
        considered = set()
        for _ in range(free_positions):
            if not pool:
                break
            k = min(2, len(pool))
            picks = [pool[i] for i in self.rng.choice(len(pool), size=k, replace=False)]
            position_candidates.append(picks)
            considered.update(picks)

        combos = itertools.product(*position_candidates) if position_candidates else [()]
        groups = tuple(
            (head,) + tuple(forced) + tuple(combo)
            for combo in combos
            if len(set(combo)) == len(combo)  # no client fills two positions
        )
        # All combos collided (tiny pools): fall back to arrival order.
        fallback = (head,) + tuple(forced) + tuple(pool[:free_positions])
        return GroupProposal(
            groups=groups, fallback=fallback, considered=frozenset(considered)
        )

    def resolve(
        self, proposal: GroupProposal, evaluate: GroupEvaluator
    ) -> Tuple[int, ...]:
        if proposal.immediate is not None:
            return proposal.immediate
        if proposal.groups:
            best_group = _best_group(evaluate, list(proposal.groups))
        else:
            assert proposal.fallback is not None
            best_group = proposal.fallback

        # Credit accounting: picked -> reset, considered-but-ignored -> +1.
        for client in best_group:
            self.credits[client] = 0
        for client in set(proposal.considered) - set(best_group):
            self.credits[client] = self.credits.get(client, 0) + 1
        return best_group


def make_selector(name: str, group_size: int = 3, rng=None) -> ConcurrencySelector:
    """Factory used by experiments: ``"fifo"``, ``"brute"`` or ``"best2"``."""
    key = name.lower()
    if key in ("fifo",):
        return FifoGrouping(group_size=group_size)
    if key in ("brute", "brute-force", "bruteforce"):
        return BruteForce(group_size=group_size)
    if key in ("best2", "best-of-two", "bestoftwo"):
        return BestOfTwo(group_size=group_size, rng=rng)
    raise ValueError(f"unknown selector {name!r}")
