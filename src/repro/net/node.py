"""Nodes of an IAC network: access points and clients.

Nodes are thin identity + capability records; the signal processing lives
in :mod:`repro.core` and :mod:`repro.phy`.  APs carry a role flag (one AP
is the *leader* that runs the concurrency algorithm and arbitrates the
medium, §7) and an Ethernet port; clients carry association state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.phy.channel.reciprocity import RadioHardware


@dataclass
class Node:
    """A radio node: identity plus antenna count and hardware chains."""

    node_id: int
    n_antennas: int = 2
    hardware: Optional[RadioHardware] = None

    def __post_init__(self):
        if self.n_antennas < 1:
            raise ValueError("nodes need at least one antenna")


@dataclass
class AccessPoint(Node):
    """An AP: wired to the backplane, possibly the leader.

    "Only the leader AP makes decisions, while other APs are dumb
    transmitters/receivers" (§7.1(b)).
    """

    is_leader: bool = False
    ethernet_port: Optional[int] = None

    def __post_init__(self):
        super().__post_init__()
        if self.ethernet_port is None:
            self.ethernet_port = self.node_id


@dataclass
class Client(Node):
    """A client: associates with the AP set, gets an id for polling."""

    associated: bool = False
    #: Client id assigned at association, used in DATA+Poll frames (§7.1).
    association_id: Optional[int] = None

    def associate(self, association_id: int) -> None:
        self.associated = True
        self.association_id = association_id
