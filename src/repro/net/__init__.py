"""Wired-network substrate: nodes and the Ethernet hub backplane."""

from repro.net.ethernet import EthernetHub, HubFrame, virtual_mimo_sample_bytes
from repro.net.node import AccessPoint, Client, Node

__all__ = [
    "AccessPoint",
    "Client",
    "EthernetHub",
    "HubFrame",
    "Node",
    "virtual_mimo_sample_bytes",
]
