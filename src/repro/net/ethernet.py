"""The wired backplane connecting IAC access points.

The paper connects the APs with a hub: "every decoded packet is broadcast
only once to all APs and to the switch that forwards the packet to its
wired/final destination" (§7.1(d)).  This module models that hub with byte
accounting, so the benchmarks can verify two claims:

* IAC's Ethernet traffic is comparable to the wireless throughput (each
  decoded packet crosses the wire once);
* virtual MIMO's raw-sample sharing would be orders of magnitude larger
  (§2(a): ~8-bit samples at twice the bandwidth per antenna).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass
class HubFrame:
    """One frame on the hub: payload bytes plus annotation bytes.

    ``data`` is an optional structured payload object (e.g. a
    :class:`~repro.mac.association.ChannelUpdate` riding as an
    annotation) handed to delivery callbacks; it never enters the byte
    accounting — ``payload_bytes``/``annotation_bytes`` stay the wire
    cost.
    """

    src_port: int
    payload_bytes: int
    annotation_bytes: int = 0
    kind: str = "decoded-packet"
    data: Any = None

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.annotation_bytes


class EthernetHub:
    """Broadcast hub with per-port delivery callbacks and byte accounting.

    Ports are registered with :meth:`attach`; a frame sent by one port is
    delivered to every *other* port (hub semantics) and counted once
    against the shared medium (a hub carries each frame once regardless of
    the number of listeners).

    An optional fault hook (any object exposing ``frame_fate() ->
    (lost, delay_slots)``, e.g. a
    :class:`~repro.faults.injector.FaultInjector`) makes the wire lossy:
    lost frames are counted but never delivered; delayed frames are
    queued and delivered — in deterministic (due-slot, send-order) order
    — by a later :meth:`tick`.  Lost and delayed frames still count
    against ``total_bytes``: the sender spent the wire either way.
    """

    def __init__(self, faults: Optional[Any] = None):
        self._listeners: Dict[int, Callable[[HubFrame], None]] = {}
        self.frames: List[HubFrame] = []
        self.faults = faults
        self.frames_lost = 0
        self.frames_delayed = 0
        self._clock = 0
        self._sent = 0
        #: Delayed frames awaiting delivery: (due clock, send seq, frame).
        self._pending: List[Tuple[int, int, HubFrame]] = []

    def attach(self, port: int, on_frame: Optional[Callable[[HubFrame], None]] = None) -> None:
        """Register a port; ``on_frame`` is invoked for frames from others."""
        if port in self._listeners:
            raise ValueError(f"port {port} already attached")
        self._listeners[port] = on_frame if on_frame is not None else (lambda _f: None)

    def _deliver(self, frame: HubFrame) -> None:
        for port, callback in self._listeners.items():
            if port != frame.src_port:
                callback(frame)

    def broadcast(self, frame: HubFrame) -> bool:
        """Send a frame from ``frame.src_port`` to all other ports.

        Returns whether the frame was delivered *now*: ``False`` means
        the fault hook lost it, or queued it for a later :meth:`tick`.
        A fault-free hub always returns ``True``.
        """
        if frame.src_port not in self._listeners:
            raise KeyError(f"port {frame.src_port} is not attached")
        self.frames.append(frame)
        if self.faults is not None:
            lost, delay = self.faults.frame_fate()
            if lost:
                self.frames_lost += 1
                return False
            if delay > 0:
                self.frames_delayed += 1
                self._pending.append((self._clock + delay, self._sent, frame))
                self._sent += 1
                return False
        self._deliver(frame)
        return True

    def next_due(self) -> Optional[int]:
        """Clock value at which the earliest pending frame matures.

        ``None`` when nothing is queued.  The event kernel turns this
        into a slot barrier: the slot whose :meth:`tick` reaches the due
        clock must run on the per-slot path so the delivery callback
        (which mutates leader state) fires at exactly the scalar time.
        """
        if not self._pending:
            return None
        return min(entry[0] for entry in self._pending)

    def advance(self, n: int) -> None:
        """Jump the clock ``n`` slots at once — ``n`` ticks, no delivery.

        Only legal when no pending frame matures inside the jump (frames
        enter the hub solely at ack/service slots, so an idle span's
        pending set is fixed and the caller can bound the jump with
        :meth:`next_due`).  Raises rather than silently skipping a
        matured frame, because that would desynchronise the trajectory.
        """
        if n < 0:
            raise ValueError("cannot advance backwards")
        target = self._clock + n
        due = self.next_due()
        if due is not None and due <= target:
            raise RuntimeError(
                f"advance({n}) would skip a frame due at clock {due} "
                f"(clock {self._clock})"
            )
        self._clock = target

    def tick(self) -> int:
        """Advance one slot; deliver matured delayed frames.  Returns the
        number delivered.  A no-op (but still a clock step) without
        faults or pending frames."""
        self._clock += 1
        if not self._pending:
            return 0
        due = sorted(
            entry for entry in self._pending if entry[0] <= self._clock
        )
        if not due:
            return 0
        self._pending = [e for e in self._pending if e[0] > self._clock]
        for _, _, frame in due:
            self._deliver(frame)
        return len(due)

    @property
    def total_bytes(self) -> int:
        """Bytes carried by the shared medium."""
        return sum(f.total_bytes for f in self.frames)

    def bytes_of_kind(self, kind: str) -> int:
        return sum(f.total_bytes for f in self.frames if f.kind == kind)

    def reset(self) -> None:
        self.frames.clear()


def virtual_mimo_sample_bytes(
    n_aps: int,
    n_antennas: int,
    n_samples: int,
    bits_per_sample: int = 8,
) -> int:
    """Ethernet bytes virtual MIMO would need to share raw signal samples.

    "To capture a signal without loss of information one needs to sample it
    at twice its bandwidth at each antenna, with each sample about 8-bit
    long" (§2(a)) -- and each of the complex sample's two components
    (I and Q) needs its own ``bits_per_sample`` quantisation.  All but one
    AP must ship their samples for joint decoding.
    """
    if min(n_aps, n_antennas, n_samples) < 0:
        raise ValueError("arguments must be non-negative")
    senders = max(0, n_aps - 1)
    bits = senders * n_antennas * n_samples * 2 * bits_per_sample
    return bits // 8
