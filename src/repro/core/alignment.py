"""Closed-form interference alignment solvers for the paper's constructions.

Each function returns an :class:`~repro.core.plans.AlignmentSolution` whose
encoding vectors satisfy the paper's alignment equations exactly:

* :func:`solve_uplink_two_packets` -- classic 2-packet point-to-point MIMO
  (Fig. 3; no alignment needed, included for completeness and baselines).
* :func:`solve_uplink_three_packets` -- 2 clients, 2 APs, 3 packets (Eq. 2).
* :func:`solve_uplink_four_packets` -- 3 clients, 3 APs, 4 packets
  (Eqs. 3-4; eigenvector solution of footnote 4).
* :func:`solve_downlink_three_packets` -- 3 APs, 3 clients (Eqs. 5-7).
* :func:`solve_downlink_two_clients` -- the general 2M-2 downlink
  construction behind Lemma 5.1 (Fig. 7): M-1 APs, 2 clients, each AP sends
  one packet to each client, and at every client the undesired packets are
  aligned onto a single direction.

Node index convention: channels are ``ChannelSet.h(tx, rx)``.  On the uplink
``tx`` indexes clients and ``rx`` indexes APs; on the downlink the reverse.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.plans import AlignmentSolution, ChannelSet, DecodeStage, PacketSpec
from repro.utils.linalg import align_error, normalize, random_unit_vector
from repro.utils.rng import default_rng

#: Alignment equations are solved exactly; this is the residual tolerance
#: used by the internal sanity checks.
_CHECK_ATOL = 1e-8


def _invert(h: np.ndarray, what: str) -> np.ndarray:
    """Invert a channel matrix, with a domain-specific error message.

    Channel matrices are "typically invertible because the antennas are
    chosen to be more than half a wavelength apart" (paper footnote 3);
    a singular matrix means the input is not really a MIMO channel.
    """
    try:
        return np.linalg.inv(h)
    except np.linalg.LinAlgError as exc:
        raise ValueError(f"channel matrix {what} is singular; not a MIMO channel") from exc


def _pick_eigvec(a: np.ndarray, rng: np.random.Generator, index: Optional[int] = None) -> np.ndarray:
    """Return a unit eigenvector of ``a``.

    ``index`` selects deterministically (sorted by |eigenvalue| descending);
    otherwise a uniformly random eigenvector is taken -- any eigenvector
    satisfies the alignment equations, and randomising avoids systematically
    favouring well- or ill-conditioned alignments across experiments.
    """
    values, vectors = np.linalg.eig(a)
    order = np.argsort(-np.abs(values))
    if index is None:
        index = int(rng.integers(0, values.size))
    return normalize(vectors[:, order[index % values.size]])


def solve_uplink_two_packets(channels: ChannelSet, client: int = 0, ap: int = 0) -> AlignmentSolution:
    """Standard MIMO: one client sends two packets to one AP (Fig. 3).

    No alignment is required; packets are transmitted one per antenna and
    the AP zero-forces.  Exists so the IAC machinery covers the degenerate
    single-pair case uniformly.
    """
    h = channels.h(client, ap)
    m = h.shape[1]
    if m < 2:
        raise ValueError("two concurrent packets need at least two antennas")
    packets = [PacketSpec(0, client, ap), PacketSpec(1, client, ap)]
    e0 = np.zeros(m, dtype=complex)
    e0[0] = 1.0
    e1 = np.zeros(m, dtype=complex)
    e1[1] = 1.0
    return AlignmentSolution(
        packets=packets,
        encoding={0: e0, 1: e1},
        schedule=[DecodeStage(rx=ap, packet_ids=(0, 1))],
        cooperative=True,
    )


def _best_free_vector(h: np.ndarray, interference_direction: np.ndarray) -> np.ndarray:
    """Encoding vector maximising received energy clear of the interference.

    The alignment equations leave some encoding vectors free (e.g. ``v1`` in
    Eq. 2).  A random choice is valid but can land the desired packet close
    to the aligned interference, wasting SNR; the energy-optimal choice is
    the dominant right singular vector of ``(I - d d^H) H`` where ``d`` is
    the aligned interference direction at the decoding AP.
    """
    d = normalize(np.asarray(interference_direction, dtype=complex).ravel())
    m = d.size
    projector = np.eye(m, dtype=complex) - np.outer(d, np.conj(d))
    _, _, vh = np.linalg.svd(projector @ np.asarray(h, dtype=complex))
    return normalize(np.conj(vh[0]))


def _score(solution: AlignmentSolution, channels: ChannelSet, noise_power: float) -> float:
    """Estimated group throughput (the leader AP's ranking metric, §7.2)."""
    from repro.core.decoder import decode_rate_level  # deferred: avoids import cycle

    return decode_rate_level(solution, channels, noise_power).total_rate


def solve_uplink_three_packets(
    channels: ChannelSet,
    clients: Sequence[int] = (0, 1),
    aps: Sequence[int] = (0, 1),
    rng=None,
    optimize_free: bool = True,
    n_candidates: int = 8,
    noise_power: float = 1.0,
) -> AlignmentSolution:
    """Three concurrent uplink packets over 2 clients and 2 APs (§4b).

    Client ``clients[0]`` transmits packets 0 and 1; client ``clients[1]``
    transmits packet 2.  Encoding vectors satisfy Eq. 2,

        H(c0, a0) v1 = H(c1, a0) v2,

    so packets 1 and 2 arrive aligned at the first AP.  The first AP decodes
    packet 0 by projecting orthogonally to the aligned interference, ships
    it over the Ethernet, and the second AP cancels it and zero-forces
    packets 1 and 2.

    ``v1`` is a free choice; any value satisfies the alignment equation but
    different values leave the packets different post-projection SINRs.  As
    the leader AP would, we draw ``n_candidates`` random values and keep the
    solution whose estimated throughput (at ``noise_power``) is highest.
    Set ``n_candidates=1`` for the paper's bare random choice.
    """
    rng = default_rng(rng)
    c0, c1 = clients
    a0, a1 = aps
    h_c0_a0 = channels.h(c0, a0)
    h_c1_a0 = channels.h(c1, a0)
    m = h_c0_a0.shape[1]
    if m < 2:
        raise ValueError("IAC needs at least 2 antennas per node")

    best: Optional[AlignmentSolution] = None
    best_rate = float("-inf")
    packets = [PacketSpec(0, c0, a0), PacketSpec(1, c0, a1), PacketSpec(2, c1, a1)]
    schedule = [
        DecodeStage(rx=a0, packet_ids=(0,)),
        DecodeStage(rx=a1, packet_ids=(1, 2)),
    ]
    for _candidate in range(max(1, n_candidates)):
        v1 = random_unit_vector(m, rng)
        # Eq. 2: v2 = H(c1,a0)^-1 H(c0,a0) v1 aligns packets 1 and 2 at a0.
        v2 = normalize(_invert(h_c1_a0, f"H({c1},{a0})") @ (h_c0_a0 @ v1))
        # v0 is unconstrained: random, or energy-optimal against the
        # aligned interference at the AP that decodes packet 0.
        if optimize_free:
            v0 = _best_free_vector(h_c0_a0, h_c0_a0 @ v1)
        else:
            v0 = random_unit_vector(m, rng)
        assert align_error(h_c0_a0 @ v1, h_c1_a0 @ v2) < _CHECK_ATOL
        candidate = AlignmentSolution(
            packets=packets,
            encoding={0: v0, 1: v1, 2: v2},
            schedule=schedule,
            cooperative=True,
        )
        if n_candidates <= 1:
            return candidate
        rate = _score(candidate, channels, noise_power)
        if rate > best_rate:
            best, best_rate = candidate, rate
    assert best is not None
    return best


def solve_uplink_four_packets(
    channels: ChannelSet,
    clients: Sequence[int] = (0, 1, 2),
    aps: Sequence[int] = (0, 1, 2),
    rng=None,
    eig_index: Optional[int] = None,
    optimize_free: bool = True,
    noise_power: float = 1.0,
) -> AlignmentSolution:
    """Four concurrent uplink packets over 3 clients and 3 APs (§4c, Fig. 5).

    Client 0 transmits packets 0 and 1, client 1 packet 2, client 2 packet 3.
    The encoding vectors solve Eqs. 3-4:

        H(c0,a0) v1 = H(c1,a0) v2 = H(c2,a0) v3     (3 aligned at AP 0)
        H(c1,a1) v2 = H(c2,a1) v3                   (2 aligned at AP 1)

    via the eigenvector solution of footnote 4:
    ``v3 = eig(H(c2,a1)^-1 H(c1,a1) H(c1,a0)^-1 H(c2,a0))``.

    Decode order: AP 0 takes packet 0 (three interferers aligned on one
    line), AP 1 cancels packet 0 and takes packet 1 (two interferers
    aligned), AP 2 cancels packets 0-1 and zero-forces packets 2 and 3.

    Any eigenvector of the loop matrix satisfies the alignment equations;
    with ``eig_index=None`` every eigenvector is tried and the solution
    with the best estimated throughput (at ``noise_power``) is returned,
    as the leader AP's estimator would choose.
    """
    rng = default_rng(rng)
    c0, c1, c2 = clients
    a0, a1, a2 = aps
    h = channels.h

    a_mat = (
        _invert(h(c2, a1), f"H({c2},{a1})")
        @ h(c1, a1)
        @ _invert(h(c1, a0), f"H({c1},{a0})")
        @ h(c2, a0)
    )
    m = a_mat.shape[0]
    packets = [
        PacketSpec(0, c0, a0),
        PacketSpec(1, c0, a1),
        PacketSpec(2, c1, a2),
        PacketSpec(3, c2, a2),
    ]
    schedule = [
        DecodeStage(rx=a0, packet_ids=(0,)),
        DecodeStage(rx=a1, packet_ids=(1,)),
        DecodeStage(rx=a2, packet_ids=(2, 3)),
    ]
    indices = range(m) if eig_index is None else [eig_index]
    best: Optional[AlignmentSolution] = None
    best_rate = float("-inf")
    for index in indices:
        v3 = _pick_eigvec(a_mat, rng, index=index)
        shared = h(c2, a0) @ v3  # the common aligned direction at AP 0
        v1 = normalize(_invert(h(c0, a0), f"H({c0},{a0})") @ shared)
        v2 = normalize(_invert(h(c1, a0), f"H({c1},{a0})") @ shared)
        # v0 is unconstrained: random, or energy-optimal against the
        # aligned interference line at AP 0.
        if optimize_free:
            v0 = _best_free_vector(h(c0, a0), shared)
        else:
            v0 = random_unit_vector(h(c0, a0).shape[1], rng)

        assert align_error(h(c0, a0) @ v1, h(c1, a0) @ v2) < _CHECK_ATOL
        assert align_error(h(c1, a0) @ v2, h(c2, a0) @ v3) < _CHECK_ATOL
        assert align_error(h(c1, a1) @ v2, h(c2, a1) @ v3) < _CHECK_ATOL

        candidate = AlignmentSolution(
            packets=packets,
            encoding={0: v0, 1: v1, 2: v2, 3: v3},
            schedule=schedule,
            cooperative=True,
        )
        if len(indices) == 1:
            return candidate
        rate = _score(candidate, channels, noise_power)
        if rate > best_rate:
            best, best_rate = candidate, rate
    assert best is not None
    return best


def solve_downlink_three_packets(
    channels: ChannelSet,
    aps: Sequence[int] = (0, 1, 2),
    clients: Sequence[int] = (0, 1, 2),
    rng=None,
    eig_index: Optional[int] = None,
    noise_power: float = 1.0,
) -> AlignmentSolution:
    """Three concurrent downlink packets over 3 APs and 3 clients (§4d).

    AP ``i`` transmits packet ``i`` to client ``i``.  Encoding vectors solve
    Eqs. 5-7 so each client sees its two undesired packets aligned:

        H(a1,k0) v1 = H(a2,k0) v2
        H(a0,k1) v0 = H(a2,k1) v2
        H(a0,k2) v0 = H(a1,k2) v1

    Clients decode independently (no wired cooperation): every stage is a
    separate receiver projecting orthogonally to its aligned interference.
    """
    rng = default_rng(rng)
    a0, a1, a2 = aps
    k0, k1, k2 = clients
    h = channels.h

    # Express v1, v2 in terms of v0, then close the loop at client 0:
    #   v1 = H(a1,k2)^-1 H(a0,k2) v0          (Eq. 7)
    #   v2 = H(a2,k1)^-1 H(a0,k1) v0          (Eq. 6)
    #   H(a1,k0) v1 = H(a2,k0) v2             (Eq. 5)
    # => [H(a2,k0) H(a2,k1)^-1 H(a0,k1)]^-1 H(a1,k0) H(a1,k2)^-1 H(a0,k2) v0 = v0
    left = h(a2, k0) @ _invert(h(a2, k1), f"H({a2},{k1})") @ h(a0, k1)
    right = h(a1, k0) @ _invert(h(a1, k2), f"H({a1},{k2})") @ h(a0, k2)
    loop = _invert(left, "downlink loop") @ right
    m = loop.shape[0]
    packets = [
        PacketSpec(0, a0, k0),
        PacketSpec(1, a1, k1),
        PacketSpec(2, a2, k2),
    ]
    schedule = [
        DecodeStage(rx=k0, packet_ids=(0,)),
        DecodeStage(rx=k1, packet_ids=(1,)),
        DecodeStage(rx=k2, packet_ids=(2,)),
    ]
    # Any eigenvector of the loop matrix works; score them all and keep the
    # best estimated throughput (the leader AP computes the vectors and can
    # rank the options for free, §7.2).
    indices = range(m) if eig_index is None else [eig_index]
    best: Optional[AlignmentSolution] = None
    best_rate = float("-inf")
    for index in indices:
        v0 = _pick_eigvec(loop, rng, index=index)
        v1 = normalize(_invert(h(a1, k2), f"H({a1},{k2})") @ h(a0, k2) @ v0)
        v2 = normalize(_invert(h(a2, k1), f"H({a2},{k1})") @ h(a0, k1) @ v0)

        assert align_error(h(a1, k0) @ v1, h(a2, k0) @ v2) < _CHECK_ATOL
        assert align_error(h(a0, k1) @ v0, h(a2, k1) @ v2) < _CHECK_ATOL
        assert align_error(h(a0, k2) @ v0, h(a1, k2) @ v1) < _CHECK_ATOL

        candidate = AlignmentSolution(
            packets=packets,
            encoding={0: v0, 1: v1, 2: v2},
            schedule=schedule,
            cooperative=False,
        )
        if len(indices) == 1:
            return candidate
        rate = _score(candidate, channels, noise_power)
        if rate > best_rate:
            best, best_rate = candidate, rate
    assert best is not None
    return best


def solve_downlink_two_clients(
    channels: ChannelSet,
    aps: Sequence[int],
    clients: Sequence[int] = (0, 1),
    rng=None,
) -> AlignmentSolution:
    """General 2(M-1)-packet downlink: M-1 APs, 2 clients (Lemma 5.1, Fig. 7).

    Every AP transmits one packet to each of the two clients.  At client 0
    all packets destined to client 1 are aligned onto one direction (and
    vice versa), so each client sees M-1 desired packets plus one aligned
    interference line inside its M-dimensional receive space.

    Packet numbering: packet ``2*i`` is AP ``aps[i]``'s packet for client 0,
    packet ``2*i + 1`` its packet for client 1.
    """
    rng = default_rng(rng)
    if len(clients) != 2:
        raise ValueError("this construction uses exactly two clients")
    k0, k1 = clients
    n_aps = len(aps)
    if n_aps < 1:
        raise ValueError("need at least one AP")
    h = channels.h
    m = h(aps[0], k0).shape[0]
    if n_aps > 1 and m < 2:
        raise ValueError("alignment needs at least 2 antennas")

    encoding = {}
    packets = []
    # Packets for client 1 must align at client 0; anchor on the first AP.
    anchor1 = random_unit_vector(h(aps[0], k0).shape[1], rng)
    shared_at_k0 = h(aps[0], k0) @ anchor1
    # Packets for client 0 must align at client 1.
    anchor0 = random_unit_vector(h(aps[0], k1).shape[1], rng)
    shared_at_k1 = h(aps[0], k1) @ anchor0

    for i, ap in enumerate(aps):
        pid0, pid1 = 2 * i, 2 * i + 1
        packets.append(PacketSpec(pid0, ap, k0))
        packets.append(PacketSpec(pid1, ap, k1))
        if i == 0:
            encoding[pid0] = anchor0
            encoding[pid1] = anchor1
        else:
            # Align this AP's client-1 packet with the anchor at client 0,
            # and its client-0 packet with the anchor at client 1.
            encoding[pid1] = normalize(_invert(h(ap, k0), f"H({ap},{k0})") @ shared_at_k0)
            encoding[pid0] = normalize(_invert(h(ap, k1), f"H({ap},{k1})") @ shared_at_k1)

    for i, ap in enumerate(aps[1:], start=1):
        assert align_error(h(ap, k0) @ encoding[2 * i + 1], shared_at_k0) < _CHECK_ATOL
        assert align_error(h(ap, k1) @ encoding[2 * i], shared_at_k1) < _CHECK_ATOL

    schedule = [
        DecodeStage(rx=k0, packet_ids=tuple(2 * i for i in range(n_aps))),
        DecodeStage(rx=k1, packet_ids=tuple(2 * i + 1 for i in range(n_aps))),
    ]
    return AlignmentSolution(
        packets=packets,
        encoding=encoding,
        schedule=schedule,
        cooperative=False,
    )
