"""General M-antenna interference alignment (Lemmas 5.1 and 5.2).

The paper's 2-antenna constructions have closed forms (see
:mod:`repro.core.alignment`); beyond that, alignment requirements become
coupled subspace constraints ("every alignment imposes new constraints on
the encoding vectors", §5).  This module provides:

* :class:`SubspaceConstraint` / :class:`GeneralAlignmentProblem` -- a
  declarative description of an alignment pattern ("these packets' received
  directions at this receiver must lie in a ``dim``-dimensional subspace")
  plus an alternating-minimisation solver that drives the total interference
  *leakage* outside the constraint subspaces to zero.  The approach is the
  classic minimum-leakage interference alignment iteration: given encoding
  vectors, the best subspace for each constraint is the span of the top
  singular vectors of the received directions; given subspaces, the best
  encoding vector for each packet is the bottom eigenvector of its summed
  leakage quadratic form.
* :func:`solve_uplink_general` -- the Lemma 5.2 construction: 2M concurrent
  uplink packets with M antennas, M clients (two packets each) and 3 APs,
  generalising Fig. 8.
* :func:`solve_downlink_general` -- the Lemma 5.1 construction: the best of
  the 2M-2 two-client scheme (closed form, M-1 APs) and the ⌊3M/2⌋-style
  scheme (for M = 2 this is the 3-packet eigenvector solution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.alignment import (
    solve_downlink_three_packets,
    solve_downlink_two_clients,
)
from repro.core.plans import AlignmentSolution, ChannelSet, DecodeStage, PacketSpec
from repro.utils.linalg import herm, normalize
from repro.utils.rng import default_rng


@dataclass(frozen=True)
class SubspaceConstraint:
    """Received directions of ``packet_ids`` at ``rx`` must fit in ``dim`` dims."""

    rx: int
    packet_ids: Tuple[int, ...]
    dim: int

    def __post_init__(self):
        if self.dim < 1:
            raise ValueError("constraint dimension must be >= 1")
        if len(self.packet_ids) <= self.dim:
            raise ValueError(
                "constraint is vacuous: fewer packets than subspace dimensions"
            )


@dataclass
class SolverDiagnostics:
    """Convergence record of the alternating-minimisation solver."""

    iterations: int
    leakage: float
    converged: bool
    history: List[float] = field(default_factory=list)


class GeneralAlignmentProblem:
    """Minimum-leakage solver for a set of subspace alignment constraints.

    Parameters
    ----------
    packets:
        The concurrent packets (transmitters must appear in ``channels``).
    channels:
        Channel matrices from each packet's transmitter to each constrained
        receiver.
    constraints:
        The alignment pattern to enforce.
    """

    def __init__(
        self,
        packets: Sequence[PacketSpec],
        channels: ChannelSet,
        constraints: Sequence[SubspaceConstraint],
    ):
        self.packets = list(packets)
        self.channels = channels
        self.constraints = list(constraints)
        self._tx_of = {p.packet_id: p.tx for p in self.packets}
        known = set(self._tx_of)
        for c in self.constraints:
            unknown = set(c.packet_ids) - known
            if unknown:
                raise ValueError(f"constraint references unknown packets {sorted(unknown)}")

    def _subspace(self, constraint: SubspaceConstraint, encoding: Dict[int, np.ndarray]) -> np.ndarray:
        """Best-fit subspace (orthonormal basis) for one constraint.

        The span of the top ``dim`` left singular vectors of the matrix of
        unit received directions -- the subspace minimising the summed
        squared sine of the angles to it.
        """
        cols = []
        for pid in constraint.packet_ids:
            h = self.channels.h(self._tx_of[pid], constraint.rx)
            d = h @ encoding[pid]
            n = np.linalg.norm(d)
            cols.append(d / n if n > 1e-15 else d)
        mat = np.stack(cols, axis=1)
        u, _, _ = np.linalg.svd(mat, full_matrices=False)
        return u[:, : constraint.dim]

    def leakage(self, encoding: Dict[int, np.ndarray]) -> float:
        """Total normalised leakage: worst-case fraction of any constrained
        packet's received power outside its constraint subspace."""
        worst = 0.0
        for c in self.constraints:
            u = self._subspace(c, encoding)
            p_out = np.eye(u.shape[0]) - u @ herm(u)
            for pid in c.packet_ids:
                h = self.channels.h(self._tx_of[pid], c.rx)
                d = h @ encoding[pid]
                power = float(np.real(np.vdot(d, d)))
                if power < 1e-30:
                    worst = max(worst, 1.0)
                    continue
                out = float(np.real(np.vdot(d, p_out @ d)))
                worst = max(worst, out / power)
        return worst

    def solve(
        self,
        rng=None,
        max_iterations: int = 400,
        tolerance: float = 1e-10,
        restarts: int = 4,
        initial: Optional[Dict[int, np.ndarray]] = None,
    ) -> Tuple[Dict[int, np.ndarray], SolverDiagnostics]:
        """Run alternating minimisation, with random restarts.

        Returns the best encoding found and its diagnostics.  ``initial``
        seeds the first attempt (used to warm-start from a closed form).
        """
        rng = default_rng(rng)
        best_encoding: Optional[Dict[int, np.ndarray]] = None
        best_diag: Optional[SolverDiagnostics] = None
        for attempt in range(max(1, restarts)):
            if attempt == 0 and initial is not None:
                encoding = {pid: normalize(v) for pid, v in initial.items()}
            else:
                encoding = {
                    p.packet_id: normalize(
                        rng.standard_normal(self.channels.tx_antennas(p.tx))
                        + 1j * rng.standard_normal(self.channels.tx_antennas(p.tx))
                    )
                    for p in self.packets
                }
            diag = self._solve_once(encoding, max_iterations, tolerance)
            if best_diag is None or diag.leakage < best_diag.leakage:
                best_encoding = dict(encoding)
                best_diag = diag
            if best_diag.converged:
                break
        assert best_encoding is not None and best_diag is not None
        return best_encoding, best_diag

    def _solve_once(
        self,
        encoding: Dict[int, np.ndarray],
        max_iterations: int,
        tolerance: float,
    ) -> SolverDiagnostics:
        """One alternating-minimisation run; mutates ``encoding`` in place."""
        history: List[float] = []
        # Which constraints touch each packet (unconstrained packets keep
        # their initial random vectors -- they only need generic positions).
        touching: Dict[int, List[SubspaceConstraint]] = {}
        for c in self.constraints:
            for pid in c.packet_ids:
                touching.setdefault(pid, []).append(c)

        leak = self.leakage(encoding)
        history.append(leak)
        for iteration in range(max_iterations):
            if leak < tolerance:
                return SolverDiagnostics(iteration, leak, True, history)
            subspaces = {id(c): self._subspace(c, encoding) for c in self.constraints}
            for pid, cons in touching.items():
                q = None
                for c in cons:
                    h = self.channels.h(self._tx_of[pid], c.rx)
                    u = subspaces[id(c)]
                    p_out = np.eye(u.shape[0]) - u @ herm(u)
                    term = herm(h) @ p_out @ h
                    q = term if q is None else q + term
                # Leakage-minimising unit vector: bottom eigenvector of q.
                values, vectors = np.linalg.eigh(q)
                encoding[pid] = normalize(vectors[:, 0])
            leak = self.leakage(encoding)
            history.append(leak)
        return SolverDiagnostics(max_iterations, leak, leak < tolerance, history)


def solve_uplink_general(
    channels: ChannelSet,
    clients: Sequence[int],
    aps: Sequence[int],
    rng=None,
    max_iterations: int = 400,
    tolerance: float = 1e-9,
) -> AlignmentSolution:
    """Lemma 5.2 construction: 2M uplink packets, M clients, 3 APs.

    Each of the M clients transmits two packets (generalising Fig. 8):
    packet ``2*i`` ("first") and ``2*i + 1`` ("second") for client
    ``clients[i]``.  The alignment pattern is:

    * at AP 0 every packet except packet 0 lies in an (M-1)-dim subspace,
      freeing packet 0;
    * at AP 1 all "second" packets are aligned on a single line, freeing
      the remaining M-1 "first" packets (after cancelling packet 0);
    * AP 2 cancels all "first" packets and zero-forces the M "seconds".

    The aligned-on-a-line set contains one packet per client, because two
    same-client packets aligned anywhere would force identical encoding
    vectors (the channel to the AP is invertible) and the packets would be
    inseparable everywhere.  The same argument rules out the two-packets-
    per-client layout for M = 2 (the all-but-one constraint at AP 0 is then
    itself a line); that case is the paper's Fig. 5 construction with three
    clients, handled by :func:`~repro.core.alignment.solve_uplink_four_packets`.
    """
    rng = default_rng(rng)
    if len(aps) < 3:
        raise ValueError("Lemma 5.2 needs three APs")
    m = channels.rx_antennas(aps[0])
    if m == 2:
        if len(clients) < 3:
            raise ValueError("M=2 uplink (4 packets) needs three clients (Fig. 5)")
        from repro.core.alignment import solve_uplink_four_packets

        return solve_uplink_four_packets(
            channels, clients=clients[:3], aps=aps[:3], rng=rng
        )
    if len(clients) != m:
        raise ValueError(
            f"this construction uses one client per antenna (M={m}); "
            f"got {len(clients)} clients"
        )
    a0, a1, a2 = aps[0], aps[1], aps[2]

    packets = []
    for i, c in enumerate(clients):
        packets.append(PacketSpec(2 * i, c, a0 if i == 0 else a1))
        packets.append(PacketSpec(2 * i + 1, c, a2))
    all_ids = [p.packet_id for p in packets]
    seconds = tuple(2 * i + 1 for i in range(m))

    constraints = [
        SubspaceConstraint(rx=a0, packet_ids=tuple(pid for pid in all_ids if pid != 0), dim=m - 1),
        SubspaceConstraint(rx=a1, packet_ids=seconds, dim=1),
    ]
    problem = GeneralAlignmentProblem(packets, channels, constraints)

    schedule = [
        DecodeStage(rx=a0, packet_ids=(0,)),
        DecodeStage(rx=a1, packet_ids=tuple(2 * i for i in range(1, m))),
        DecodeStage(rx=a2, packet_ids=seconds),
    ]

    # Leakage minimisation can converge to degenerate minima (e.g. a
    # client's two vectors collapsing parallel satisfies every subspace
    # constraint but makes the packets inseparable).  Accept a solution only
    # if every packet is actually decodable at near-zero noise; otherwise
    # retry from a fresh random initialisation.
    from repro.core.decoder import decode_rate_level  # deferred: avoids import cycle

    best: Optional[AlignmentSolution] = None
    best_sinr = -1.0
    for _attempt in range(6):
        encoding, diag = problem.solve(
            rng=rng, max_iterations=max_iterations, tolerance=tolerance, restarts=1
        )
        candidate = AlignmentSolution(
            packets=packets,
            encoding=encoding,
            schedule=schedule,
            cooperative=True,
            meta={
                "leakage": diag.leakage,
                "iterations": diag.iterations,
                "converged": diag.converged,
            },
        )
        min_sinr = decode_rate_level(candidate, channels, noise_power=1e-9).min_sinr
        if diag.converged and min_sinr > 1e3:
            return candidate
        if min_sinr > best_sinr:
            best, best_sinr = candidate, min_sinr
    assert best is not None
    return best


def solve_downlink_general(
    channels: ChannelSet,
    aps: Sequence[int],
    clients: Sequence[int],
    rng=None,
) -> AlignmentSolution:
    """Lemma 5.1 construction: max(2M-2, ⌊3M/2⌋) downlink packets.

    For M = 2 antennas the ⌊3M/2⌋ = 3-packet three-AP eigenvector solution
    wins; for M >= 3 the two-client 2M-2 scheme with M-1 APs wins (they tie
    at M = 3).  This dispatcher picks the better construction for the
    antenna count and available nodes.
    """
    rng = default_rng(rng)
    m = channels.rx_antennas(clients[0])
    if m == 2:
        if len(aps) < 3 or len(clients) < 3:
            raise ValueError("M=2 downlink needs 3 APs and 3 clients")
        return solve_downlink_three_packets(channels, aps=aps[:3], clients=clients[:3], rng=rng)
    if len(aps) < m - 1 or len(clients) < 2:
        raise ValueError(f"M={m} downlink needs {m - 1} APs and 2 clients")
    return solve_downlink_two_clients(channels, aps=aps[: m - 1], clients=clients[:2], rng=rng)
