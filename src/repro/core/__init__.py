"""IAC core: the paper's primary contribution.

* :mod:`~repro.core.plans` -- packets, channels, solutions, schedules.
* :mod:`~repro.core.alignment` -- closed-form alignment solvers for the
  paper's 2-antenna constructions (Eqs. 2-7).
* :mod:`~repro.core.general` -- general-M alignment via minimum-leakage
  alternating minimisation (Lemmas 5.1/5.2 constructions).
* :mod:`~repro.core.cancellation` -- reconstruct-and-subtract interference
  cancellation.
* :mod:`~repro.core.decoder` -- fast rate-level decoding (per-packet SINR,
  Eq. 9 rates).
* :mod:`~repro.core.session` -- sample-accurate signal-level pipeline.
* :mod:`~repro.core.dof` -- multiplexing-gain lemmas and feasibility counts.
"""

from repro.core.alignment import (
    solve_downlink_three_packets,
    solve_downlink_two_clients,
    solve_uplink_four_packets,
    solve_uplink_three_packets,
    solve_uplink_two_packets,
)
from repro.core.decoder import DecodeReport, PacketResult, decode_rate_level, effective_gains
from repro.core.dof import (
    downlink_aps_needed,
    downlink_max_packets,
    uplink_aps_needed,
    uplink_max_packets,
)
from repro.core.general import (
    GeneralAlignmentProblem,
    SubspaceConstraint,
    solve_downlink_general,
    solve_uplink_general,
)
from repro.core.plans import (
    AlignmentSolution,
    BandedChannelSet,
    ChannelSet,
    DecodeStage,
    PacketSpec,
)
from repro.core.session import SessionReport, SignalConfig, run_session

__all__ = [
    "AlignmentSolution",
    "BandedChannelSet",
    "ChannelSet",
    "DecodeReport",
    "DecodeStage",
    "GeneralAlignmentProblem",
    "PacketResult",
    "PacketSpec",
    "SessionReport",
    "SignalConfig",
    "SubspaceConstraint",
    "decode_rate_level",
    "downlink_aps_needed",
    "downlink_max_packets",
    "effective_gains",
    "run_session",
    "solve_downlink_general",
    "solve_downlink_three_packets",
    "solve_downlink_two_clients",
    "solve_uplink_four_packets",
    "solve_uplink_general",
    "solve_uplink_three_packets",
    "solve_uplink_two_packets",
    "uplink_aps_needed",
    "uplink_max_packets",
]
