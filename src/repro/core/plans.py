"""Data model for IAC transmissions: packets, channels, solutions, schedules.

An IAC round is described by three pieces (paper §4):

* a set of :class:`PacketSpec` -- who transmits each packet and which node
  is responsible for decoding it;
* a :class:`ChannelSet` -- the channel matrix between every transmitter and
  every receiver involved;
* an :class:`AlignmentSolution` -- the per-packet encoding vectors plus the
  ordered :class:`DecodeStage` schedule stating which receiver decodes which
  packets at each step (earlier stages' packets are cancelled before later
  stages decode).

The same types describe uplink (clients transmit, APs decode successively
over the Ethernet) and downlink (APs transmit, every client decodes alone --
all stages are then independent, see :attr:`AlignmentSolution.cooperative`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.utils.linalg import normalize


@dataclass(frozen=True)
class PacketSpec:
    """One concurrent packet: its transmitter and its responsible decoder.

    ``tx`` and ``rx`` are opaque node identifiers (ints by convention:
    client index on the uplink, AP index on the downlink).
    """

    packet_id: int
    tx: int
    rx: int


class ChannelSet:
    """Channel matrices between transmitter and receiver node identifiers.

    Stores ``H[tx, rx]`` as an ``(n_rx_antennas, n_tx_antennas)`` complex
    matrix.  The same structure serves uplink (tx=client, rx=AP) and
    downlink (tx=AP, rx=client).
    """

    def __init__(self, channels: Mapping[Tuple[int, int], np.ndarray]):
        if not channels:
            raise ValueError("channel set cannot be empty")
        self._channels: Dict[Tuple[int, int], np.ndarray] = {}
        for key, h in channels.items():
            h = np.asarray(h, dtype=complex)
            if h.ndim != 2:
                raise ValueError(f"channel {key} is not a matrix")
            self._channels[key] = h

    def h(self, tx: int, rx: int) -> np.ndarray:
        """Channel matrix from node ``tx`` to node ``rx``."""
        try:
            return self._channels[(tx, rx)]
        except KeyError:
            raise KeyError(f"no channel from node {tx} to node {rx}") from None

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._channels

    def pairs(self) -> List[Tuple[int, int]]:
        return list(self._channels)

    def tx_antennas(self, tx: int) -> int:
        """Antenna count of transmitter ``tx`` (from any stored channel)."""
        for (t, _), h in self._channels.items():
            if t == tx:
                return h.shape[1]
        raise KeyError(f"node {tx} does not appear as a transmitter")

    def rx_antennas(self, rx: int) -> int:
        """Antenna count of receiver ``rx`` (from any stored channel)."""
        for (_, r), h in self._channels.items():
            if r == rx:
                return h.shape[0]
        raise KeyError(f"node {rx} does not appear as a receiver")

    def perturbed(self, relative_error: float, rng: np.random.Generator) -> "ChannelSet":
        """Return a copy with i.i.d. complex Gaussian estimation error.

        ``relative_error`` is the per-entry error standard deviation relative
        to the RMS entry magnitude of each matrix; used to study IAC's
        sensitivity to channel-estimate inaccuracy (paper §8a: "slight
        inaccuracy ... only means that the interference is not fully
        eliminated").
        """
        out = {}
        for key, h in self._channels.items():
            rms = np.sqrt(np.mean(np.abs(h) ** 2))
            noise = (rng.standard_normal(h.shape) + 1j * rng.standard_normal(h.shape)) / np.sqrt(2)
            out[key] = h + relative_error * rms * noise
        return ChannelSet(out)


class BandedChannelSet:
    """Per-subcarrier channel stacks between node identifiers.

    The wideband (banded) form of :class:`ChannelSet`: ``H[tx, rx]`` is an
    ``(n_bins, n_rx_antennas, n_tx_antennas)`` complex stack, one flat
    matrix per evaluated OFDM subcarrier.  Every pair must carry the same
    number of bins; a flat :class:`ChannelSet` is exactly the
    ``n_bins == 1`` case (:meth:`from_flat` / :meth:`at_bin` convert).

    Built from a :class:`~repro.phy.channel.provider.ChannelProvider`'s
    ``channel_bins`` output; consumed by the subcarrier-batched solver in
    :mod:`repro.engine.batched` and by the per-bin reference loop (which
    calls :meth:`at_bin` and runs the flat scalar path on each bin).
    """

    def __init__(self, channels: Mapping[Tuple[int, int], np.ndarray]):
        if not channels:
            raise ValueError("channel set cannot be empty")
        self._channels: Dict[Tuple[int, int], np.ndarray] = {}
        n_bins = None
        for key, h in channels.items():
            h = np.asarray(h, dtype=complex)
            if h.ndim == 2:
                h = h[None]
            if h.ndim != 3:
                raise ValueError(f"channel {key} is not a (n_bins, n_rx, n_tx) stack")
            if n_bins is None:
                n_bins = h.shape[0]
            elif h.shape[0] != n_bins:
                raise ValueError(
                    f"channel {key} has {h.shape[0]} bins, expected {n_bins}"
                )
            self._channels[key] = h
        self.n_bins = int(n_bins)

    def h_bins(self, tx: int, rx: int) -> np.ndarray:
        """``(n_bins, n_rx, n_tx)`` stack from node ``tx`` to node ``rx``."""
        try:
            return self._channels[(tx, rx)]
        except KeyError:
            raise KeyError(f"no channel from node {tx} to node {rx}") from None

    def h(self, tx: int, rx: int, f: int = 0) -> np.ndarray:
        """The flat matrix of one subcarrier (bin index ``f``)."""
        return self.h_bins(tx, rx)[f]

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._channels

    def pairs(self) -> List[Tuple[int, int]]:
        return list(self._channels)

    def at_bin(self, f: int) -> ChannelSet:
        """The flat :class:`ChannelSet` all links present to bin ``f``."""
        return ChannelSet({key: h[f] for key, h in self._channels.items()})

    @classmethod
    def from_flat(cls, channels: ChannelSet) -> "BandedChannelSet":
        """Lift a flat set into its one-bin banded form."""
        return cls({key: channels.h(*key) for key in channels.pairs()})


@dataclass(frozen=True)
class DecodeStage:
    """One step of the successive decoding schedule.

    ``rx`` decodes every packet in ``packet_ids`` after subtracting all
    packets decoded in earlier stages (which arrive over the Ethernet on the
    uplink).  On the downlink every stage stands alone -- clients cannot
    cancel for each other (paper §4d).
    """

    rx: int
    packet_ids: Tuple[int, ...]

    def __post_init__(self):
        if not self.packet_ids:
            raise ValueError("a decode stage must decode at least one packet")


@dataclass
class AlignmentSolution:
    """Encoding vectors plus decode schedule for one IAC transmission group.

    Attributes
    ----------
    packets:
        The concurrent packets this solution covers.
    encoding:
        ``packet_id ->`` unit-norm encoding vector at its transmitter.
    schedule:
        Ordered decode stages.  With ``cooperative=True`` (uplink) each
        stage may cancel all packets decoded by earlier stages; with
        ``cooperative=False`` (downlink) stages are independent receivers.
    cooperative:
        Whether decoded packets propagate between stages (wired backplane).
    meta:
        Free-form solver diagnostics (residuals, iterations, ...).
    """

    packets: Sequence[PacketSpec]
    encoding: Dict[int, np.ndarray]
    schedule: List[DecodeStage]
    cooperative: bool = True
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        ids = [p.packet_id for p in self.packets]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate packet ids")
        missing = set(ids) - set(self.encoding)
        if missing:
            raise ValueError(f"missing encoding vectors for packets {sorted(missing)}")
        scheduled = [pid for stage in self.schedule for pid in stage.packet_ids]
        if sorted(scheduled) != sorted(ids):
            raise ValueError("schedule must decode every packet exactly once")
        self.encoding = {pid: normalize(v) for pid, v in self.encoding.items()}

    def packet(self, packet_id: int) -> PacketSpec:
        for p in self.packets:
            if p.packet_id == packet_id:
                return p
        raise KeyError(f"unknown packet id {packet_id}")

    def tx_of(self, packet_id: int) -> int:
        return self.packet(packet_id).tx

    def packets_of_tx(self, tx: int) -> List[int]:
        """Packet ids transmitted by node ``tx`` (for power splitting)."""
        return [p.packet_id for p in self.packets if p.tx == tx]

    def received_direction(self, channels: ChannelSet, packet_id: int, rx: int) -> np.ndarray:
        """Direction ``H v`` along which ``rx`` receives this packet."""
        spec = self.packet(packet_id)
        return channels.h(spec.tx, rx) @ self.encoding[packet_id]

    def tx_amplitude(self, packet_id: int, total_power: float = 1.0) -> float:
        """Per-packet transmit amplitude under an equal split of the
        transmitter's power budget across its concurrent packets."""
        n = len(self.packets_of_tx(self.tx_of(packet_id)))
        return float(np.sqrt(total_power / n))
