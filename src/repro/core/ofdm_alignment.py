"""Per-subcarrier interference alignment (the paper's §6c conjecture).

"We conjecture that even if the channel is not quite flat, one can still do
the alignment separately in each OFDM subcarrier without trying to
synchronize the transmitters. ... We cannot check this conjecture on USRP1
since their channel is fairly narrow."  This module checks it.

Given frequency-selective channels between every transmitter and receiver
(as :class:`~repro.phy.channel.selective.MultiTapChannel`), we evaluate two
strategies over an OFDM grid:

* **per-subcarrier alignment** -- run the closed-form solver independently
  on each subcarrier's flat matrix channel ``H(f)``;
* **flat-approximation alignment** -- the paper's baseline worry: solve
  once at the band centre and reuse the vectors on every subcarrier, so
  alignment degrades as the channel decorrelates across the band.

The benchmark (``benchmarks/bench_ablation_ofdm.py``) sweeps delay spread
and shows per-subcarrier alignment holds the rate while the flat
approximation decays -- and that for *moderate* delay spreads the flat
approximation stays acceptable, exactly as §6c conjectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.core.decoder import decode_rate_level
from repro.core.plans import AlignmentSolution, ChannelSet
from repro.phy.channel.selective import MultiTapChannel

#: A solver taking a (flat) ChannelSet and returning an AlignmentSolution,
#: e.g. functools.partial(solve_uplink_three_packets, rng=rng).
FlatSolver = Callable[[ChannelSet], AlignmentSolution]


@dataclass
class SubcarrierReport:
    """Per-subcarrier outcome of an OFDM-wide alignment strategy."""

    rates: np.ndarray  # (n_bins,) sum rate per subcarrier
    min_sinrs: np.ndarray  # (n_bins,) worst packet SINR per subcarrier

    @property
    def total_rate(self) -> float:
        """Band sum rate (bit/s/Hz summed over evaluated bins, averaged)."""
        return float(np.mean(self.rates))

    @property
    def worst_bin_rate(self) -> float:
        return float(np.min(self.rates))


def channel_set_at_bin(
    selective: Mapping[Tuple[int, int], MultiTapChannel],
    n_fft: int,
    f: int,
) -> ChannelSet:
    """The flat ChannelSet all links present to OFDM subcarrier ``f``."""
    return ChannelSet(
        {pair: ch.frequency_response(n_fft)[f] for pair, ch in selective.items()}
    )


def _responses(
    selective: Mapping[Tuple[int, int], MultiTapChannel],
    n_fft: int,
) -> Dict[Tuple[int, int], np.ndarray]:
    """One ``(n_fft, n_rx, n_tx)`` stacked response per link."""
    return {pair: ch.frequency_response(n_fft) for pair, ch in selective.items()}


def per_subcarrier_alignment(
    selective: Mapping[Tuple[int, int], MultiTapChannel],
    solver: FlatSolver,
    n_fft: int,
    bins: Sequence[int],
    noise_power: float,
) -> SubcarrierReport:
    """Solve and evaluate alignment independently on each subcarrier."""
    responses = _responses(selective, n_fft)
    rates = []
    min_sinrs = []
    for f in bins:
        chans = ChannelSet({pair: responses[pair][f] for pair in responses})
        solution = solver(chans)
        report = decode_rate_level(solution, chans, noise_power)
        rates.append(report.total_rate)
        min_sinrs.append(report.min_sinr)
    return SubcarrierReport(rates=np.array(rates), min_sinrs=np.array(min_sinrs))


def flat_approximation_alignment(
    selective: Mapping[Tuple[int, int], MultiTapChannel],
    solver: FlatSolver,
    n_fft: int,
    bins: Sequence[int],
    noise_power: float,
    anchor_bin: int | None = None,
) -> SubcarrierReport:
    """Solve once at ``anchor_bin`` and reuse the vectors band-wide.

    The encoding vectors are computed from the anchor subcarrier's channel
    but each subcarrier is *decoded* against its own true channel: receivers
    always estimate per-subcarrier channels from OFDM preambles, so only the
    transmit-side alignment is stale.  The alignment error at bin ``f``
    therefore grows with the channel decorrelation between ``f`` and the
    anchor.
    """
    bins = list(bins)
    if anchor_bin is None:
        anchor_bin = bins[len(bins) // 2]
    responses = _responses(selective, n_fft)
    anchor = ChannelSet({pair: responses[pair][anchor_bin] for pair in responses})
    solution = solver(anchor)

    rates = []
    min_sinrs = []
    for f in bins:
        chans = ChannelSet({pair: responses[pair][f] for pair in responses})
        stale = AlignmentSolution(
            packets=solution.packets,
            encoding=dict(solution.encoding),
            schedule=solution.schedule,
            cooperative=solution.cooperative,
        )
        report = decode_rate_level(stale, chans, noise_power)
        rates.append(report.total_rate)
        min_sinrs.append(report.min_sinr)
    return SubcarrierReport(rates=np.array(rates), min_sinrs=np.array(min_sinrs))


def conjecture_experiment(
    selective: Mapping[Tuple[int, int], MultiTapChannel],
    solver: FlatSolver,
    n_fft: int = 64,
    n_bins: int = 16,
    noise_power: float = 1e-3,
) -> Dict[str, SubcarrierReport]:
    """Run both strategies over an evenly-spaced subset of subcarriers."""
    bins = list(np.linspace(1, n_fft - 1, n_bins, dtype=int))
    return {
        "per_subcarrier": per_subcarrier_alignment(
            selective, solver, n_fft, bins, noise_power
        ),
        "flat_approximation": flat_approximation_alignment(
            selective, solver, n_fft, bins, noise_power
        ),
    }
