"""Rate-level IAC decoding: SINRs and achievable rates for a solution.

The paper's evaluation metric is the per-packet post-projection SNR plugged
into ``Rate = sum log2(1 + SNR)`` (Eq. 9).  This module walks an
:class:`~repro.core.plans.AlignmentSolution`'s decode schedule against a
:class:`~repro.core.plans.ChannelSet` and computes exactly that, without
simulating samples -- the fast path used by the large Fig. 15 sweeps.  The
sample-accurate path lives in :mod:`repro.core.session`; the test suite
asserts the two agree.

Decoding-vector choice: by default the *max-SINR* (MMSE) direction, which
equals the paper's orthogonal projection when interference is perfectly
aligned and degrades gracefully when alignment is imperfect (noisy channel
estimates).  A strict ``projection`` mode implements the paper's description
literally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.plans import AlignmentSolution, ChannelSet
from repro.phy.mimo.capacity import rate_from_snrs
from repro.phy.mimo.detection import post_projection_sinr
from repro.utils.linalg import herm, normalize


@dataclass
class PacketResult:
    """Per-packet decode outcome at rate level."""

    packet_id: int
    rx: int
    sinr: float
    decoding_vector: np.ndarray
    cancelled: int

    @property
    def rate(self) -> float:
        return float(np.log2(1.0 + self.sinr))


@dataclass
class DecodeReport:
    """Outcome of decoding one full transmission group."""

    results: List[PacketResult] = field(default_factory=list)

    @property
    def sinrs(self) -> Dict[int, float]:
        return {r.packet_id: r.sinr for r in self.results}

    @property
    def total_rate(self) -> float:
        """Achievable sum rate in bit/s/Hz (Eq. 9)."""
        return rate_from_snrs(r.sinr for r in self.results)

    @property
    def min_sinr(self) -> float:
        return min(r.sinr for r in self.results)

    def rate_of(self, packet_id: int) -> float:
        for r in self.results:
            if r.packet_id == packet_id:
                return r.rate
        raise KeyError(f"packet {packet_id} not in report")


def max_sinr_vector(
    desired: np.ndarray,
    interference: List[np.ndarray],
    noise_power: float,
) -> np.ndarray:
    """MMSE receive vector ``w = (R + n0 I)^-1 d`` (unit-normalised).

    Maximises SINR for one desired direction against a set of interference
    directions; coincides with orthogonal projection as interference power
    grows or noise vanishes.
    """
    desired = np.asarray(desired, dtype=complex).ravel()
    m = desired.size
    r = noise_power * np.eye(m, dtype=complex)
    for d in interference:
        d = np.asarray(d, dtype=complex).ravel()
        r = r + np.outer(d, np.conj(d))
    w = np.linalg.solve(r, desired)
    return normalize(w)


def projection_vector(desired: np.ndarray, interference: List[np.ndarray]) -> np.ndarray:
    """The paper's orthogonal-projection receiver, made estimation-robust.

    Projects orthogonally to the *dominant* interference subspace of
    dimension at most ``M - 1`` (an M-antenna receiver must keep one
    dimension for the desired packet).  With perfect alignment the
    interference is rank-deficient and this equals nulling it exactly;
    with imperfect channel estimates the strongest interference directions
    are nulled and the residual leaks -- the graceful degradation of §8a.
    """
    desired = np.asarray(desired, dtype=complex).ravel()
    m = desired.size
    if not interference:
        return normalize(desired)
    mat = np.stack([np.asarray(d, dtype=complex).ravel() for d in interference], axis=1)
    u, s, _ = np.linalg.svd(mat, full_matrices=True)
    # Null the strongest directions, but never the whole space: keep the
    # weakest interference directions un-nulled when there are >= M.
    k = min(mat.shape[1], m - 1)
    # Treat numerically-zero singular values as no interference at all.
    tol = 1e-9 * (s[0] if s.size else 1.0)
    k = min(k, int(np.sum(s > tol)))
    null_basis = u[:, k:]
    w = null_basis @ (herm(null_basis) @ desired)
    norm = np.linalg.norm(w)
    if norm < 1e-12:
        # Desired direction sits inside the nulled subspace; fall back to
        # the matched filter (the packet is lost to interference anyway).
        return normalize(desired)
    return w / norm


def decode_rate_level(
    solution: AlignmentSolution,
    channels: ChannelSet,
    noise_power: float,
    total_power_per_tx: float = 1.0,
    receiver: str = "max_sinr",
    cancellation_residual: float = 0.0,
    estimated_channels: Optional[ChannelSet] = None,
) -> DecodeReport:
    """Compute per-packet SINRs for an IAC transmission group.

    Parameters
    ----------
    solution:
        Encoding vectors and decode schedule.
    channels:
        True channels (determine actual received directions).
    noise_power:
        Receiver noise power per antenna.
    total_power_per_tx:
        Power budget per transmitting node, split equally over its packets.
    receiver:
        ``"max_sinr"`` (default, MMSE) or ``"projection"`` (the paper's
        literal orthogonal projection against the interference span).
    cancellation_residual:
        Fraction of a cancelled packet's *amplitude* that survives
        subtraction (0 = perfect cancellation).  Models stale channel
        estimates; see :func:`repro.core.cancellation.residual_power_fraction`.
    estimated_channels:
        Channels the receivers *believe* (used to compute decoding vectors);
        defaults to the true channels.  Passing a perturbed set models
        estimation error end to end.
    """
    if receiver not in ("max_sinr", "projection"):
        raise ValueError("receiver must be 'max_sinr' or 'projection'")
    believed = estimated_channels if estimated_channels is not None else channels

    # Received direction of every packet at every relevant receiver, scaled
    # by the per-packet transmit amplitude.
    def direction(packet_id: int, rx: int, chans: ChannelSet) -> np.ndarray:
        amp = solution.tx_amplitude(packet_id, total_power_per_tx)
        return amp * solution.received_direction(chans, packet_id, rx)

    report = DecodeReport()
    all_ids = [p.packet_id for p in solution.packets]
    decoded: List[int] = []
    for stage in solution.schedule:
        rx = stage.rx
        # On the uplink (cooperative) earlier-stage packets are cancelled;
        # on the downlink every receiver faces all other packets.
        cancelled = set(decoded) if solution.cooperative else set()

        for pid in stage.packet_ids:
            # True interference: live packets at full power, cancelled ones
            # at the residual amplitude left by imperfect subtraction.
            interferers = []
            for other in all_ids:
                if other == pid:
                    continue
                d = direction(other, rx, channels)
                if other in cancelled:
                    if cancellation_residual > 0.0:
                        interferers.append(cancellation_residual * d)
                else:
                    interferers.append(d)
            desired_true = direction(pid, rx, channels)
            # The receiver designs its filter from what it believes:
            # cancelled packets are gone, live ones sit at the believed
            # (possibly mis-estimated) directions.
            desired_believed = direction(pid, rx, believed)
            believed_interf = [
                direction(other, rx, believed)
                for other in all_ids
                if other != pid and other not in cancelled
            ]
            if receiver == "max_sinr":
                w = max_sinr_vector(desired_believed, believed_interf, noise_power)
            else:
                w = projection_vector(desired_believed, believed_interf)
            sinr = post_projection_sinr(
                w,
                desired_true,
                interferers,
                noise_power,
                signal_power=1.0,  # amplitudes already folded into directions
            )
            report.results.append(
                PacketResult(
                    packet_id=pid,
                    rx=rx,
                    sinr=sinr,
                    decoding_vector=w,
                    cancelled=len(cancelled),
                )
            )
        decoded.extend(stage.packet_ids)
    return report


def effective_gains(
    solution: AlignmentSolution,
    channels: ChannelSet,
    noise_power: float,
    total_power_per_tx: float = 1.0,
) -> Dict[int, complex]:
    """Per-packet effective scalar channels ``w^H H v`` after decoding.

    This is what the concurrency algorithm's throughput estimator consumes
    ("the throughput of a transmission group can be estimated without any
    transmissions as sum_i log(1 + |v_i^T H_i w_i|^2)", §7.2).
    """
    report = decode_rate_level(solution, channels, noise_power, total_power_per_tx)
    gains: Dict[int, complex] = {}
    for result in report.results:
        spec = solution.packet(result.packet_id)
        amp = solution.tx_amplitude(result.packet_id, total_power_per_tx)
        h = channels.h(spec.tx, result.rx)
        gains[result.packet_id] = complex(
            np.vdot(result.decoding_vector, amp * h @ solution.encoding[result.packet_id])
        )
    return gains
