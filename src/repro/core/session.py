"""Signal-level IAC sessions: the sample-accurate pipeline.

This module is the reproduction of the paper's GNU-Radio prototype.  It
runs an :class:`~repro.core.plans.AlignmentSolution` end to end at the
sample level:

1. each packet's bits are FEC-encoded, modulated, and prefixed with a
   packet-specific pseudo-noise preamble;
2. each transmitter superimposes its packets' streams through their
   encoding vectors (power split across its packets);
3. the channel mixes all transmitters at each receiver, applying per-pair
   carrier frequency offsets, optional per-transmitter timing offsets
   (no symbol synchronisation, §6c), and AWGN;
4. receivers follow the decode schedule: project onto the decoding vector,
   locate the preamble, estimate and remove residual CFO and gain, track
   phase, demodulate, FEC-decode and CRC-check;
5. decoded packets travel over the (simulated) Ethernet to later stages,
   which reconstruct and subtract them before decoding their own packets.

Every measured quantity the paper reports -- per-packet SNR, achievable
rate, Ethernet bytes -- is collected in the returned
:class:`SessionReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.cancellation import Reconstruction, subtract, subtract_refined
from repro.core.decoder import max_sinr_vector
from repro.core.plans import AlignmentSolution, ChannelSet
from repro.phy.bits import Scrambler
from repro.phy.channel.estimation import estimate_cfo, estimate_channel
from repro.phy.channel.model import Link, MIMOChannel, apply_cfo
from repro.phy.fec import ConvolutionalCode, Hamming74
from repro.phy.modulation import Modulator, get_modulator
from repro.phy.modulation.ofdm import OFDM
from repro.phy.packet import Packet
from repro.phy.preamble import detect_preamble, pn_sequence, preamble_matrix
from repro.utils.rng import default_rng


@dataclass
class SignalConfig:
    """Knobs of the sample-level pipeline.

    Attributes
    ----------
    modulation:
        Scheme name (see :func:`repro.phy.modulation.get_modulator`).
    fec:
        ``None`` (uncoded), ``"conv"`` (802.11 rate-1/2 Viterbi) or
        ``"hamming"``.
    preamble_length:
        Per-packet synchronisation preamble length in samples.
    noise_power:
        Receiver AWGN power per antenna.
    cfo_spread:
        Per-node oscillator offset drawn uniformly in ``+/- cfo_spread``
        (normalised to the sample rate).  Pair CFO is the difference of the
        two nodes' offsets.
    max_timing_offset:
        Per-transmitter start-time offset in samples, drawn uniformly in
        ``[0, max_timing_offset]`` -- transmitters are *not* symbol
        synchronised (§6c).
    estimate_channels:
        When True, receivers work from noisy least-squares channel estimates
        obtained in a training phase (each transmitter sounds the channel
        alone); when False they use genie channel knowledge.
    phase_tracking:
        Decision-directed phase tracking on the demodulated stream
        (first-order PLL), needed for long payloads under residual CFO.
    training_preamble_length:
        Preamble length used in the training phase for channel estimation.
    """

    modulation: str = "bpsk"
    fec: Optional[str] = None
    preamble_length: int = 64
    noise_power: float = 1e-3
    cfo_spread: float = 0.0
    max_timing_offset: int = 0
    estimate_channels: bool = False
    phase_tracking: bool = True
    training_preamble_length: int = 128
    refine_cancellation: bool = True

    def modulator(self) -> Modulator:
        return get_modulator(self.modulation)

    def make_fec(self):
        if self.fec is None:
            return None
        if self.fec == "conv":
            return ConvolutionalCode()
        if self.fec == "hamming":
            return Hamming74()
        raise ValueError(f"unknown fec {self.fec!r}; use None, 'conv' or 'hamming'")


@dataclass
class PacketOutcome:
    """Result of decoding one packet at signal level."""

    packet_id: int
    rx: int
    delivered: bool
    snr_db: float
    bit_errors_precrc: int = 0
    cancelled: int = 0


@dataclass
class SessionReport:
    """Aggregate outcome of one signal-level IAC round."""

    outcomes: List[PacketOutcome] = field(default_factory=list)
    ethernet_bytes: int = 0
    decoded: Dict[int, Packet] = field(default_factory=dict)

    @property
    def all_delivered(self) -> bool:
        return all(o.delivered for o in self.outcomes)

    @property
    def delivery_count(self) -> int:
        return sum(1 for o in self.outcomes if o.delivered)

    def snr_db_of(self, packet_id: int) -> float:
        for o in self.outcomes:
            if o.packet_id == packet_id:
                return o.snr_db
        raise KeyError(f"packet {packet_id} not in report")

    @property
    def total_rate(self) -> float:
        """Achievable rate (Eq. 9) from the measured per-packet SNRs."""
        snrs = [10 ** (o.snr_db / 10.0) for o in self.outcomes if o.delivered]
        return float(np.sum(np.log2(1.0 + np.asarray(snrs)))) if snrs else 0.0


def _packet_preamble(packet_id: int, length: int) -> np.ndarray:
    """Per-packet PN preamble (distinct seeds keep cross-correlation low)."""
    return pn_sequence(length, seed=0xACED + 0x9E37 * (packet_id + 1))


class _PhaseTracker:
    """Second-order decision-directed PLL over constellation symbols.

    Tracks both phase and residual frequency so that imperfect preamble CFO
    estimates (inevitable for weak packets) do not accumulate into phase
    run-away over long payloads.
    """

    def __init__(self, modulator: Modulator, bandwidth: float = 0.06, freq_gain: float = 0.002):
        self._mod = modulator
        self._alpha = bandwidth
        self._beta = freq_gain
        self._phase = 0.0
        self._freq = 0.0

    def track(self, symbols: np.ndarray) -> np.ndarray:
        out = np.empty_like(symbols)
        for i, raw in enumerate(symbols):
            corrected = raw * np.exp(-1j * self._phase)
            decision_bits = self._mod.demodulate(np.array([corrected]))
            decision = self._mod.modulate(decision_bits)[0]
            if abs(decision) > 1e-12 and abs(corrected) > 1e-12:
                error = float(np.angle(corrected * np.conj(decision)))
                self._phase += self._alpha * error
                self._freq += self._beta * error
            self._phase += self._freq
            out[i] = corrected
        return out


def _packet_scrambler(packet_id: int) -> "Scrambler":
    """Per-packet scrambler seed (as 802.11 randomises per frame).

    Scrambling decorrelates concurrent packets' on-air bit streams --
    frame headers and padding would otherwise correlate same-length
    packets, which biases the cancellation refit and leaves residual
    interference.
    """
    seed = ((0x5B * (packet_id + 1)) & 0x7F) or 0x1F
    return Scrambler(seed=seed)


def _encode_bits(packet: Packet, fec, packet_id: int) -> np.ndarray:
    bits = packet.to_bits()
    coded = bits if fec is None else fec.encode(bits)
    return _packet_scrambler(packet_id).scramble(coded)


def _decode_bits(bits: np.ndarray, fec, n_frame_bits: int, packet_id: int) -> np.ndarray:
    if fec is None:
        descrambled = _packet_scrambler(packet_id).descramble(bits[:n_frame_bits])
        return descrambled
    n_coded = fec.encoded_length(n_frame_bits)
    descrambled = _packet_scrambler(packet_id).descramble(bits[:n_coded])
    return fec.decode(descrambled)[:n_frame_bits]


def run_session(
    solution: AlignmentSolution,
    channels: ChannelSet,
    payloads: Dict[int, Packet],
    config: SignalConfig,
    rng=None,
) -> SessionReport:
    """Run one IAC transmission group through the sample-level pipeline.

    Parameters
    ----------
    solution:
        Encoding vectors and decode schedule (uplink or downlink).
    channels:
        True channels between every transmitter and receiver involved.
    payloads:
        ``packet_id -> Packet`` for every packet in the solution.
    config:
        Pipeline knobs (modulation, FEC, noise, CFO, offsets, ...).
    rng:
        Seed or generator for noise/CFO/offset draws.
    """
    rng = default_rng(rng)
    modulator = config.modulator()
    fec = config.make_fec()

    missing = {p.packet_id for p in solution.packets} - set(payloads)
    if missing:
        raise ValueError(f"missing payloads for packets {sorted(missing)}")

    tx_nodes = sorted({p.tx for p in solution.packets})
    rx_nodes = sorted({stage.rx for stage in solution.schedule})

    # Per-node oscillator offsets; pair CFO is the difference (so that one
    # transmitter has a *consistent* offset to every receiver, which the
    # cancellation step relies on).
    osc: Dict[int, float] = {}
    for node in set(tx_nodes) | set(rx_nodes):
        osc[node] = float(rng.uniform(-config.cfo_spread, config.cfo_spread)) if config.cfo_spread else 0.0
    timing: Dict[int, int] = {
        tx: int(rng.integers(0, config.max_timing_offset + 1)) if config.max_timing_offset else 0
        for tx in tx_nodes
    }

    # ------------------------------------------------------------------ #
    # Build per-packet sample streams and per-transmitter antenna blocks.
    # ------------------------------------------------------------------ #
    frame_bits: Dict[int, np.ndarray] = {}
    packet_samples: Dict[int, np.ndarray] = {}
    payload_symbol_start: Dict[int, int] = {}
    for p in solution.packets:
        pkt = payloads[p.packet_id]
        bits = _encode_bits(pkt, fec, p.packet_id)
        frame_bits[p.packet_id] = pkt.to_bits()
        symbols = modulator.modulate(bits)
        preamble = _packet_preamble(p.packet_id, config.preamble_length)
        packet_samples[p.packet_id] = np.concatenate([preamble, symbols])
        payload_symbol_start[p.packet_id] = config.preamble_length

    n_longest = max(s.size for s in packet_samples.values())
    tx_blocks: Dict[int, np.ndarray] = {}
    amplitudes: Dict[int, float] = {}
    for tx in tx_nodes:
        n_ant = channels.tx_antennas(tx)
        block = np.zeros((n_ant, n_longest), dtype=complex)
        for pid in solution.packets_of_tx(tx):
            amp = solution.tx_amplitude(pid)
            amplitudes[pid] = amp
            v = solution.encoding[pid]
            s = packet_samples[pid]
            block[:, : s.size] += amp * np.outer(v, s)
        tx_blocks[tx] = block

    # ------------------------------------------------------------------ #
    # Channel: every receiver hears every transmitter.
    # ------------------------------------------------------------------ #
    received: Dict[int, np.ndarray] = {}
    for rx in rx_nodes:
        links = [
            Link(h=channels.h(tx, rx), cfo=osc[tx] - osc[rx], sample_offset=timing[tx])
            for tx in tx_nodes
        ]
        medium = MIMOChannel(links, noise_power=config.noise_power, rng=rng)
        received[rx] = medium.receive([tx_blocks[tx] for tx in tx_nodes])

    # ------------------------------------------------------------------ #
    # Training phase: each transmitter sounds the channel alone so each
    # receiver can estimate H and the pair CFO (paper §8a).
    # ------------------------------------------------------------------ #
    believed: Dict[tuple, np.ndarray] = {}
    cfo_est: Dict[tuple, float] = {}
    for tx in tx_nodes:
        n_ant = channels.tx_antennas(tx)
        training = preamble_matrix(n_ant, config.training_preamble_length, seed=0xBEEF + tx)
        for rx in rx_nodes:
            if config.estimate_channels:
                link = Link(h=channels.h(tx, rx), cfo=osc[tx] - osc[rx])
                medium = MIMOChannel([link], noise_power=config.noise_power, rng=rng)
                heard = medium.receive([training])
                believed[(tx, rx)] = estimate_channel(heard, training)
                # CFO from the first antenna's known sequence.
                cfo_est[(tx, rx)] = estimate_cfo(heard[0:1], (channels.h(tx, rx) @ training)[0:1])
            else:
                believed[(tx, rx)] = channels.h(tx, rx)
                cfo_est[(tx, rx)] = osc[tx] - osc[rx]

    # ------------------------------------------------------------------ #
    # Decode following the schedule.
    # ------------------------------------------------------------------ #
    report = SessionReport()
    all_ids = [p.packet_id for p in solution.packets]
    decoded_sofar: List[int] = []

    for stage in solution.schedule:
        rx = stage.rx
        window = received[rx].copy()
        window_len = window.shape[1]
        cancelled_here: List[int] = []
        if solution.cooperative:
            # Reconstruct and subtract every packet decoded at earlier
            # stages (shipped over the Ethernet as decoded bits).
            for pid in decoded_sofar:
                pkt = report.decoded.get(pid)
                if pkt is None:
                    continue  # earlier stage failed; nothing to cancel
                tx = solution.tx_of(pid)
                recon = Reconstruction(
                    samples=packet_samples[pid],
                    encoding=solution.encoding[pid],
                    amplitude=amplitudes[pid],
                    channel=believed[(tx, rx)],
                    cfo=cfo_est[(tx, rx)],
                    sample_offset=timing[tx],
                )
                if config.refine_cancellation:
                    window = subtract_refined(window, recon)
                else:
                    window = subtract(window, recon)
                report.ethernet_bytes += pkt.nbytes
                cancelled_here.append(pid)

        live = [pid for pid in all_ids if pid not in cancelled_here] if solution.cooperative else list(all_ids)

        for pid in stage.packet_ids:
            tx = solution.tx_of(pid)
            desired = amplitudes[pid] * believed[(tx, rx)] @ solution.encoding[pid]
            interference = [
                amplitudes[o] * believed[(solution.tx_of(o), rx)] @ solution.encoding[o]
                for o in live
                if o != pid
            ]
            w = max_sinr_vector(desired, interference, config.noise_power)
            projected = np.conj(w) @ window

            outcome = _decode_stream(
                projected=projected,
                pid=pid,
                rx=rx,
                tx_timing=timing[tx],
                packet_samples=packet_samples[pid],
                frame_bits=frame_bits[pid],
                modulator=modulator,
                fec=fec,
                config=config,
                cancelled=len(cancelled_here),
            )
            report.outcomes.append(outcome)
            if outcome.delivered:
                report.decoded[pid] = payloads[pid]
        decoded_sofar.extend(stage.packet_ids)
    return report


def _decode_stream(
    projected: np.ndarray,
    pid: int,
    rx: int,
    tx_timing: int,
    packet_samples: np.ndarray,
    frame_bits: np.ndarray,
    modulator: Modulator,
    fec,
    config: SignalConfig,
    cancelled: int,
) -> PacketOutcome:
    """Synchronise, equalise, demodulate and CRC-check one projected stream."""
    preamble = _packet_preamble(pid, config.preamble_length)
    n_total = packet_samples.size

    # Locate the packet (transmitters are not time synchronised).
    if config.max_timing_offset > 0:
        start = detect_preamble(projected, preamble, threshold=0.35)
        if start < 0:
            return PacketOutcome(pid, rx, False, snr_db=float("-inf"), cancelled=cancelled)
    else:
        start = tx_timing
    segment = projected[start : start + n_total]
    if segment.size < n_total:
        return PacketOutcome(pid, rx, False, snr_db=float("-inf"), cancelled=cancelled)

    # Residual CFO and complex gain from the known preamble.
    rx_preamble = segment[: config.preamble_length]
    cfo = estimate_cfo(rx_preamble[None, :], preamble[None, :])
    derotated = apply_cfo(segment, -cfo, start=0)
    gain = np.vdot(preamble, derotated[: config.preamble_length]) / float(
        np.vdot(preamble, preamble).real
    )
    if abs(gain) < 1e-12:
        return PacketOutcome(pid, rx, False, snr_db=float("-inf"), cancelled=cancelled)
    equalized = derotated / gain

    symbols = equalized[config.preamble_length :]
    # The decision-directed PLL assumes memoryless constellation symbols;
    # OFDM samples are time-domain mixtures, so tracking is skipped there
    # (per-subcarrier equalisation handles phase for OFDM instead).
    if config.phase_tracking and not isinstance(modulator, OFDM):
        symbols = _PhaseTracker(modulator).track(symbols)

    # Measured SNR: error-vector magnitude against the known transmitted
    # symbols (the experiment harness has ground truth, as in the paper's
    # testbed measurements).
    reference = packet_samples[config.preamble_length :]
    err = symbols - reference
    sig_power = float(np.mean(np.abs(reference) ** 2))
    err_power = float(np.mean(np.abs(err) ** 2))
    snr_db = 10 * np.log10(sig_power / err_power) if err_power > 0 else np.inf

    bits = modulator.demodulate(symbols)
    try:
        decoded_bits = _decode_bits(bits, fec, frame_bits.size, pid)
        pre_crc_errors = int(np.count_nonzero(decoded_bits != frame_bits))
        Packet.from_bits(decoded_bits)
        delivered = pre_crc_errors == 0
    except (ValueError, IndexError):
        decoded_bits = None
        pre_crc_errors = -1
        delivered = False
    return PacketOutcome(
        packet_id=pid,
        rx=rx,
        delivered=delivered,
        snr_db=float(snr_db),
        bit_errors_precrc=pre_crc_errors,
        cancelled=cancelled,
    )
