"""Signal-level IAC sessions: the sample-accurate pipeline.

This module is the reproduction of the paper's GNU-Radio prototype.  It
runs an :class:`~repro.core.plans.AlignmentSolution` end to end at the
sample level:

1. each packet's bits are FEC-encoded, modulated, and prefixed with a
   packet-specific pseudo-noise preamble;
2. each transmitter superimposes its packets' streams through their
   encoding vectors (power split across its packets);
3. the channel mixes all transmitters at each receiver, applying per-pair
   carrier frequency offsets, optional per-transmitter timing offsets
   (no symbol synchronisation, §6c), and AWGN;
4. receivers follow the decode schedule: project onto the decoding vector,
   locate the preamble, estimate and remove residual CFO and gain, track
   phase, demodulate, FEC-decode and CRC-check;
5. decoded packets travel over the (simulated) Ethernet to later stages,
   which reconstruct and subtract them before decoding their own packets.

Every measured quantity the paper reports -- per-packet SNR, achievable
rate, Ethernet bytes -- is collected in the returned
:class:`SessionReport`.

The pipeline has two engines, selected by :attr:`SignalConfig.engine`:

* ``"fast"`` (default) -- the vectorized signal path: block phase tracking
  (:class:`_BlockPhaseTracker`), batched Viterbi across a decode stage's
  same-length packets (:meth:`ConvolutionalCode.decode_many`), the
  table-driven byte-stepped FEC encoder and the tiled scrambler keystream;
* ``"reference"`` -- the original scalar path (per-symbol PLL, per-packet
  Viterbi, per-bit encoder, stepped LFSR), kept as the readable
  specification the fast engine is equivalence-tested and benchmarked
  against (``repro bench`` writes the speedup to ``BENCH_signal.json``).

Both engines produce bit-identical decoded payloads; measured SNRs agree
to floating-point noise (the block tracker iterates its chunked recurrence
to the same decision fixed point the scalar PLL walks to).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.cancellation import Reconstruction, subtract, subtract_refined
from repro.core.decoder import max_sinr_vector
from repro.core.plans import AlignmentSolution, ChannelSet
from repro.phy.bits import Scrambler
from repro.phy.channel.estimation import estimate_cfo, estimate_channel
from repro.phy.channel.model import Link, MIMOChannel, apply_cfo
from repro.phy.fec import ConvolutionalCode, Hamming74
from repro.phy.modulation import Modulator, get_modulator
from repro.phy.modulation.ofdm import OFDM
from repro.phy.packet import Packet
from repro.phy.preamble import detect_preamble, pn_sequence, preamble_matrix
from repro.utils.rng import default_rng


@dataclass
class SignalConfig:
    """Knobs of the sample-level pipeline.

    Attributes
    ----------
    modulation:
        Scheme name (see :func:`repro.phy.modulation.get_modulator`).
    fec:
        ``None`` (uncoded), ``"conv"`` (802.11 rate-1/2 Viterbi) or
        ``"hamming"``.
    preamble_length:
        Per-packet synchronisation preamble length in samples.
    noise_power:
        Receiver AWGN power per antenna.
    cfo_spread:
        Per-node oscillator offset drawn uniformly in ``+/- cfo_spread``
        (normalised to the sample rate).  Pair CFO is the difference of the
        two nodes' offsets.
    max_timing_offset:
        Per-transmitter start-time offset in samples, drawn uniformly in
        ``[0, max_timing_offset]`` -- transmitters are *not* symbol
        synchronised (§6c).
    estimate_channels:
        When True, receivers work from noisy least-squares channel estimates
        obtained in a training phase (each transmitter sounds the channel
        alone); when False they use genie channel knowledge.
    phase_tracking:
        Decision-directed phase tracking on the demodulated stream
        (first-order PLL), needed for long payloads under residual CFO.
    training_preamble_length:
        Preamble length used in the training phase for channel estimation.
    engine:
        ``"fast"`` (default) for the vectorized pipeline (block phase
        tracking, batched Viterbi, table-driven encoder), ``"reference"``
        for the scalar path the fast engine is validated against.
    """

    modulation: str = "bpsk"
    fec: Optional[str] = None
    preamble_length: int = 64
    noise_power: float = 1e-3
    cfo_spread: float = 0.0
    max_timing_offset: int = 0
    estimate_channels: bool = False
    phase_tracking: bool = True
    training_preamble_length: int = 128
    refine_cancellation: bool = True
    engine: str = "fast"

    def modulator(self) -> Modulator:
        return get_modulator(self.modulation)

    def make_fec(self):
        """Return the configured FEC code (shared across sessions).

        Codes are immutable after construction (their trellis/byte tables
        are precomputed once), so instances are cached module-wide instead
        of rebuilt for every session.
        """
        if self.fec is None:
            return None
        fec = _FEC_CACHE.get(self.fec)
        if fec is None:
            if self.fec == "conv":
                fec = ConvolutionalCode()
            elif self.fec == "hamming":
                fec = Hamming74()
            else:
                raise ValueError(
                    f"unknown fec {self.fec!r}; use None, 'conv' or 'hamming'"
                )
            _FEC_CACHE[self.fec] = fec
        return fec


#: fec name -> shared stateless code instance (see SignalConfig.make_fec).
_FEC_CACHE: Dict[str, object] = {}


@dataclass
class PacketOutcome:
    """Result of decoding one packet at signal level."""

    packet_id: int
    rx: int
    delivered: bool
    snr_db: float
    bit_errors_precrc: int = 0
    cancelled: int = 0


@dataclass
class SessionReport:
    """Aggregate outcome of one signal-level IAC round."""

    outcomes: List[PacketOutcome] = field(default_factory=list)
    ethernet_bytes: int = 0
    decoded: Dict[int, Packet] = field(default_factory=dict)

    @property
    def all_delivered(self) -> bool:
        return all(o.delivered for o in self.outcomes)

    @property
    def delivery_count(self) -> int:
        return sum(1 for o in self.outcomes if o.delivered)

    def snr_db_of(self, packet_id: int) -> float:
        for o in self.outcomes:
            if o.packet_id == packet_id:
                return o.snr_db
        raise KeyError(f"packet {packet_id} not in report")

    @property
    def total_rate(self) -> float:
        """Achievable rate (Eq. 9) from the measured per-packet SNRs."""
        snrs = [10 ** (o.snr_db / 10.0) for o in self.outcomes if o.delivered]
        return float(np.sum(np.log2(1.0 + np.asarray(snrs)))) if snrs else 0.0


def _packet_preamble(packet_id: int, length: int) -> np.ndarray:
    """Per-packet PN preamble (distinct seeds keep cross-correlation low)."""
    return pn_sequence(length, seed=0xACED + 0x9E37 * (packet_id + 1))


class _PhaseTracker:
    """Second-order decision-directed PLL over constellation symbols.

    Tracks both phase and residual frequency so that imperfect preamble CFO
    estimates (inevitable for weak packets) do not accumulate into phase
    run-away over long payloads.
    """

    def __init__(self, modulator: Modulator, bandwidth: float = 0.06, freq_gain: float = 0.002):
        self._mod = modulator
        self._alpha = bandwidth
        self._beta = freq_gain
        self._phase = 0.0
        self._freq = 0.0

    def track(self, symbols: np.ndarray) -> np.ndarray:
        out = np.empty_like(symbols)
        for i, raw in enumerate(symbols):
            corrected = raw * np.exp(-1j * self._phase)
            decision_bits = self._mod.demodulate(np.array([corrected]))
            decision = self._mod.modulate(decision_bits)[0]
            if abs(decision) > 1e-12 and abs(corrected) > 1e-12:
                error = float(np.angle(corrected * np.conj(decision)))
                self._phase += self._alpha * error
                self._freq += self._beta * error
            self._phase += self._freq
            out[i] = corrected
        return out


class _BlockPhaseTracker:
    """Chunked-recurrence equivalent of :class:`_PhaseTracker`.

    Same second-order decision-directed loop, restructured for speed: a
    whole block of symbols is corrected along the predicted phase
    trajectory, the block's decisions come from two vectorised modulator
    calls (instead of two per symbol), and the scalar PLL recurrence then
    runs over the precomputed decision angles in plain float arithmetic.
    Each block is re-checked at the phases the recurrence produced and
    re-solved until the decisions are a fixed point (almost always the
    second pass), at which point the update sequence is exactly the scalar
    tracker's and the output matches it to floating-point noise.  A block
    whose decisions keep churning (deep in the low-SNR regime where the
    loop is decision-starved anyway) falls back to the exact per-symbol
    walk, so equivalence holds unconditionally.  The scalar tracker stays
    as the reference implementation; the two are equivalence-tested on
    CFO-impaired payloads.
    """

    def __init__(
        self,
        modulator: Modulator,
        bandwidth: float = 0.06,
        freq_gain: float = 0.002,
        block_size: int = 64,
        max_passes: int = 6,
    ):
        self._mod = modulator
        self._alpha = bandwidth
        self._beta = freq_gain
        self._block = block_size
        self._max_passes = max_passes
        self._phase = 0.0
        self._freq = 0.0

    def track(self, symbols: np.ndarray) -> np.ndarray:
        out = np.empty_like(symbols)
        two_pi = 2.0 * np.pi
        pi = np.pi
        alpha, beta = self._alpha, self._beta
        phase, freq = self._phase, self._freq
        mod = self._mod
        for begin in range(0, symbols.size, self._block):
            blk = symbols[begin : begin + self._block]
            n = blk.size
            valid = (np.abs(blk) > 1e-12).tolist()
            pred = phase + freq * np.arange(n)
            ph, fr = phase, freq
            prev_decisions = None
            converged = False
            for _ in range(self._max_passes):
                decisions = mod.modulate(mod.demodulate(blk * np.exp(-1j * pred)))
                if prev_decisions is not None and np.array_equal(
                    decisions, prev_decisions
                ):
                    converged = True  # phases and decisions are consistent
                    break
                prev_decisions = decisions
                psi = np.angle(blk * np.conj(decisions)).tolist()
                dec_ok = (np.abs(decisions) > 1e-12).tolist()
                phases = [0.0] * n
                ph, fr = phase, freq
                for i in range(n):
                    phases[i] = ph
                    if valid[i] and dec_ok[i]:
                        error = (psi[i] - ph + pi) % two_pi - pi
                        ph += alpha * error
                        fr += beta * error
                    ph += fr
                pred = np.asarray(phases)
            if converged:
                out[begin : begin + n] = blk * np.exp(-1j * pred)
            else:
                # Decision churn (low SNR): exact per-symbol walk instead.
                ph, fr = phase, freq
                for i in range(n):
                    corrected = blk[i] * np.exp(-1j * ph)
                    decision = mod.modulate(mod.demodulate(np.array([corrected])))[0]
                    if abs(decision) > 1e-12 and abs(corrected) > 1e-12:
                        error = float(np.angle(corrected * np.conj(decision)))
                        ph += alpha * error
                        fr += beta * error
                    ph += fr
                    out[begin + i] = corrected
            phase, freq = ph, fr
        self._phase, self._freq = phase, freq
        return out


def _make_phase_tracker(modulator: Modulator, engine: str):
    if engine == "reference":
        return _PhaseTracker(modulator)
    return _BlockPhaseTracker(modulator)


def _packet_scrambler(packet_id: int) -> "Scrambler":
    """Per-packet scrambler seed (as 802.11 randomises per frame).

    Scrambling decorrelates concurrent packets' on-air bit streams --
    frame headers and padding would otherwise correlate same-length
    packets, which biases the cancellation refit and leaves residual
    interference.
    """
    seed = ((0x5B * (packet_id + 1)) & 0x7F) or 0x1F
    return Scrambler(seed=seed)


def _apply_scrambler(bits: np.ndarray, packet_id: int, engine: str) -> np.ndarray:
    """(De)scramble with the packet's keystream (an XOR, so its own inverse).

    The reference engine steps the LFSR bit by bit; the fast engine tiles
    the cached keystream period.  Both produce identical bits.
    """
    scrambler = _packet_scrambler(packet_id)
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    if engine == "reference":
        return bits ^ scrambler._keystream_reference(bits.size)
    return bits ^ scrambler._keystream(bits.size)


def _encode_bits(packet: Packet, fec, packet_id: int, engine: str = "fast") -> np.ndarray:
    bits = packet.to_bits()
    if fec is None:
        coded = bits
    elif engine == "reference" and hasattr(fec, "encode_reference"):
        coded = fec.encode_reference(bits)
    else:
        coded = fec.encode(bits)
    return _apply_scrambler(coded, packet_id, engine)


def _fec_decode_stage(
    streams: Dict[int, np.ndarray],
    frame_bits: Dict[int, np.ndarray],
    fec,
    engine: str,
) -> Dict[int, Optional[np.ndarray]]:
    """Descramble and FEC-decode one decode stage's recovered bit streams.

    With the fast engine and a convolutional code, same-length streams are
    stacked and run through one batched Viterbi pass
    (:meth:`ConvolutionalCode.decode_many`, bit-identical to per-packet
    ``decode``); everything else decodes per packet.  A stream too short
    for its frame maps to ``None`` (delivery failure).
    """
    decoded: Dict[int, Optional[np.ndarray]] = {}
    batch: List[tuple] = []  # (pid, descrambled, n_frame_bits)
    for pid, bits in streams.items():
        n_bits = frame_bits[pid].size
        n_coded = n_bits if fec is None else fec.encoded_length(n_bits)
        if bits.size < n_coded:
            decoded[pid] = None
            continue
        descrambled = _apply_scrambler(bits[:n_coded], pid, engine)
        if fec is None:
            decoded[pid] = descrambled
        elif engine == "fast" and isinstance(fec, ConvolutionalCode):
            batch.append((pid, descrambled, n_bits))
        else:
            try:
                decoded[pid] = fec.decode(descrambled)[:n_bits]
            except (ValueError, IndexError):
                decoded[pid] = None
    by_length: Dict[int, List[tuple]] = {}
    for item in batch:
        by_length.setdefault(item[1].size, []).append(item)
    for group in by_length.values():
        rows = fec.decode_many(np.stack([stream for _, stream, _ in group]))
        for (pid, _, n_bits), row in zip(group, rows):
            decoded[pid] = row[:n_bits]
    return decoded


def run_session(
    solution: AlignmentSolution,
    channels: ChannelSet,
    payloads: Dict[int, Packet],
    config: SignalConfig,
    rng=None,
) -> SessionReport:
    """Run one IAC transmission group through the sample-level pipeline.

    Parameters
    ----------
    solution:
        Encoding vectors and decode schedule (uplink or downlink).
    channels:
        True channels between every transmitter and receiver involved.
    payloads:
        ``packet_id -> Packet`` for every packet in the solution.
    config:
        Pipeline knobs (modulation, FEC, noise, CFO, offsets, ...).
    rng:
        Seed or generator for noise/CFO/offset draws.
    """
    rng = default_rng(rng)
    if config.engine not in ("fast", "reference"):
        raise ValueError(
            f"unknown engine {config.engine!r}; use 'fast' or 'reference'"
        )
    modulator = config.modulator()
    fec = config.make_fec()

    missing = {p.packet_id for p in solution.packets} - set(payloads)
    if missing:
        raise ValueError(f"missing payloads for packets {sorted(missing)}")

    tx_nodes = sorted({p.tx for p in solution.packets})
    rx_nodes = sorted({stage.rx for stage in solution.schedule})

    # Per-node oscillator offsets; pair CFO is the difference (so that one
    # transmitter has a *consistent* offset to every receiver, which the
    # cancellation step relies on).
    osc: Dict[int, float] = {}
    for node in set(tx_nodes) | set(rx_nodes):
        osc[node] = float(rng.uniform(-config.cfo_spread, config.cfo_spread)) if config.cfo_spread else 0.0
    timing: Dict[int, int] = {
        tx: int(rng.integers(0, config.max_timing_offset + 1)) if config.max_timing_offset else 0
        for tx in tx_nodes
    }

    # ------------------------------------------------------------------ #
    # Build per-packet sample streams and per-transmitter antenna blocks.
    # ------------------------------------------------------------------ #
    frame_bits: Dict[int, np.ndarray] = {}
    packet_samples: Dict[int, np.ndarray] = {}
    payload_symbol_start: Dict[int, int] = {}
    for p in solution.packets:
        pkt = payloads[p.packet_id]
        bits = _encode_bits(pkt, fec, p.packet_id, config.engine)
        frame_bits[p.packet_id] = pkt.to_bits()
        symbols = modulator.modulate(bits)
        preamble = _packet_preamble(p.packet_id, config.preamble_length)
        packet_samples[p.packet_id] = np.concatenate([preamble, symbols])
        payload_symbol_start[p.packet_id] = config.preamble_length

    n_longest = max(s.size for s in packet_samples.values())
    tx_blocks: Dict[int, np.ndarray] = {}
    amplitudes: Dict[int, float] = {}
    for tx in tx_nodes:
        n_ant = channels.tx_antennas(tx)
        block = np.zeros((n_ant, n_longest), dtype=complex)
        for pid in solution.packets_of_tx(tx):
            amp = solution.tx_amplitude(pid)
            amplitudes[pid] = amp
            v = solution.encoding[pid]
            s = packet_samples[pid]
            block[:, : s.size] += amp * np.outer(v, s)
        tx_blocks[tx] = block

    # ------------------------------------------------------------------ #
    # Channel: every receiver hears every transmitter.
    # ------------------------------------------------------------------ #
    received: Dict[int, np.ndarray] = {}
    for rx in rx_nodes:
        links = [
            Link(h=channels.h(tx, rx), cfo=osc[tx] - osc[rx], sample_offset=timing[tx])
            for tx in tx_nodes
        ]
        medium = MIMOChannel(links, noise_power=config.noise_power, rng=rng)
        received[rx] = medium.receive([tx_blocks[tx] for tx in tx_nodes])

    # ------------------------------------------------------------------ #
    # Training phase: each transmitter sounds the channel alone so each
    # receiver can estimate H and the pair CFO (paper §8a).
    # ------------------------------------------------------------------ #
    believed: Dict[tuple, np.ndarray] = {}
    cfo_est: Dict[tuple, float] = {}
    for tx in tx_nodes:
        n_ant = channels.tx_antennas(tx)
        training = preamble_matrix(n_ant, config.training_preamble_length, seed=0xBEEF + tx)
        for rx in rx_nodes:
            if config.estimate_channels:
                link = Link(h=channels.h(tx, rx), cfo=osc[tx] - osc[rx])
                medium = MIMOChannel([link], noise_power=config.noise_power, rng=rng)
                heard = medium.receive([training])
                believed[(tx, rx)] = estimate_channel(heard, training)
                # CFO from the first antenna's known sequence.
                cfo_est[(tx, rx)] = estimate_cfo(heard[0:1], (channels.h(tx, rx) @ training)[0:1])
            else:
                believed[(tx, rx)] = channels.h(tx, rx)
                cfo_est[(tx, rx)] = osc[tx] - osc[rx]

    # ------------------------------------------------------------------ #
    # Decode following the schedule.
    # ------------------------------------------------------------------ #
    report = SessionReport()
    all_ids = [p.packet_id for p in solution.packets]
    decoded_sofar: List[int] = []

    for stage in solution.schedule:
        rx = stage.rx
        window = received[rx].copy()
        window_len = window.shape[1]
        cancelled_here: List[int] = []
        if solution.cooperative:
            # Reconstruct and subtract every packet decoded at earlier
            # stages (shipped over the Ethernet as decoded bits).
            for pid in decoded_sofar:
                pkt = report.decoded.get(pid)
                if pkt is None:
                    continue  # earlier stage failed; nothing to cancel
                tx = solution.tx_of(pid)
                recon = Reconstruction(
                    samples=packet_samples[pid],
                    encoding=solution.encoding[pid],
                    amplitude=amplitudes[pid],
                    channel=believed[(tx, rx)],
                    cfo=cfo_est[(tx, rx)],
                    sample_offset=timing[tx],
                )
                if config.refine_cancellation:
                    window = subtract_refined(window, recon)
                else:
                    window = subtract(window, recon)
                report.ethernet_bytes += pkt.nbytes
                cancelled_here.append(pid)

        live = [pid for pid in all_ids if pid not in cancelled_here] if solution.cooperative else list(all_ids)

        # Project, synchronise, equalise and demodulate every packet of the
        # stage, then FEC-decode the recovered streams together (the fast
        # engine stacks the stage's same-length packets into one batched
        # Viterbi pass).
        stage_streams: Dict[int, np.ndarray] = {}
        stage_snr: Dict[int, float] = {}
        for pid in stage.packet_ids:
            tx = solution.tx_of(pid)
            desired = amplitudes[pid] * believed[(tx, rx)] @ solution.encoding[pid]
            interference = [
                amplitudes[o] * believed[(solution.tx_of(o), rx)] @ solution.encoding[o]
                for o in live
                if o != pid
            ]
            w = max_sinr_vector(desired, interference, config.noise_power)
            projected = np.conj(w) @ window
            recovered = _recover_stream(
                projected=projected,
                pid=pid,
                tx_timing=timing[tx],
                packet_samples=packet_samples[pid],
                modulator=modulator,
                config=config,
            )
            if recovered is not None:
                stage_streams[pid], stage_snr[pid] = recovered

        decoded_bits = _fec_decode_stage(stage_streams, frame_bits, fec, config.engine)
        for pid in stage.packet_ids:
            if pid not in stage_streams:
                outcome = PacketOutcome(
                    pid, rx, False, snr_db=float("-inf"), cancelled=len(cancelled_here)
                )
            else:
                outcome = _judge_packet(
                    pid=pid,
                    rx=rx,
                    decoded=decoded_bits.get(pid),
                    expected=frame_bits[pid],
                    snr_db=stage_snr[pid],
                    cancelled=len(cancelled_here),
                )
            report.outcomes.append(outcome)
            if outcome.delivered:
                report.decoded[pid] = payloads[pid]
        decoded_sofar.extend(stage.packet_ids)
    return report


def _recover_stream(
    projected: np.ndarray,
    pid: int,
    tx_timing: int,
    packet_samples: np.ndarray,
    modulator: Modulator,
    config: SignalConfig,
) -> Optional[tuple]:
    """Synchronise, equalise, phase-track and demodulate one projected stream.

    Returns ``(hard bits, measured SNR in dB)``, or ``None`` when the packet
    cannot be located or equalised (FEC decoding happens stage-wide
    afterwards, see :func:`_fec_decode_stage`).
    """
    preamble = _packet_preamble(pid, config.preamble_length)
    n_total = packet_samples.size

    # Locate the packet (transmitters are not time synchronised).
    if config.max_timing_offset > 0:
        start = detect_preamble(projected, preamble, threshold=0.35)
        if start < 0:
            return None
    else:
        start = tx_timing
    segment = projected[start : start + n_total]
    if segment.size < n_total:
        return None

    # Residual CFO and complex gain from the known preamble.
    rx_preamble = segment[: config.preamble_length]
    cfo = estimate_cfo(rx_preamble[None, :], preamble[None, :])
    derotated = apply_cfo(segment, -cfo, start=0)
    gain = np.vdot(preamble, derotated[: config.preamble_length]) / float(
        np.vdot(preamble, preamble).real
    )
    if abs(gain) < 1e-12:
        return None
    equalized = derotated / gain

    symbols = equalized[config.preamble_length :]
    # The decision-directed PLL assumes memoryless constellation symbols;
    # OFDM samples are time-domain mixtures, so tracking is skipped there
    # (per-subcarrier equalisation handles phase for OFDM instead).
    if config.phase_tracking and not isinstance(modulator, OFDM):
        symbols = _make_phase_tracker(modulator, config.engine).track(symbols)

    # Measured SNR: error-vector magnitude against the known transmitted
    # symbols (the experiment harness has ground truth, as in the paper's
    # testbed measurements).
    reference = packet_samples[config.preamble_length :]
    err = symbols - reference
    sig_power = float(np.mean(np.abs(reference) ** 2))
    err_power = float(np.mean(np.abs(err) ** 2))
    snr_db = 10 * np.log10(sig_power / err_power) if err_power > 0 else np.inf

    return modulator.demodulate(symbols), float(snr_db)


def _judge_packet(
    pid: int,
    rx: int,
    decoded: Optional[np.ndarray],
    expected: np.ndarray,
    snr_db: float,
    cancelled: int,
) -> PacketOutcome:
    """Frame-validate one decoded bit stream into a PacketOutcome."""
    try:
        if decoded is None:
            raise ValueError("stream could not be decoded")
        pre_crc_errors = int(np.count_nonzero(decoded != expected))
        Packet.from_bits(decoded)
        delivered = pre_crc_errors == 0
    except (ValueError, IndexError):
        pre_crc_errors = -1
        delivered = False
    return PacketOutcome(
        packet_id=pid,
        rx=rx,
        delivered=delivered,
        snr_db=snr_db,
        bit_errors_precrc=pre_crc_errors,
        cancelled=cancelled,
    )
