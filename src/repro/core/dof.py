"""Degrees of freedom / multiplexing gain results (paper §5).

Closed-form statements of Lemmas 5.1 and 5.2 plus the constraint-counting
argument of §5 ("for a feasible solution, the constraints should stay fewer
than the free variables in an encoding vector"), used by the analytical
benchmarks and asserted against the constructive solvers in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


def uplink_max_packets(n_antennas: int) -> int:
    """Lemma 5.2: IAC delivers 2M concurrent uplink packets.

    Requires three or more APs and at least two clients.
    """
    if n_antennas < 1:
        raise ValueError("antenna count must be positive")
    return 2 * n_antennas


def downlink_max_packets(n_antennas: int) -> int:
    """Lemma 5.1: IAC delivers max(2M-2, floor(3M/2)) downlink packets."""
    if n_antennas < 1:
        raise ValueError("antenna count must be positive")
    return max(2 * n_antennas - 2, (3 * n_antennas) // 2)


def downlink_aps_needed(n_antennas: int) -> int:
    """APs required for the Lemma 5.1 downlink rate (M-1 for M > 2)."""
    if n_antennas < 1:
        raise ValueError("antenna count must be positive")
    if n_antennas == 2:
        return 3  # the floor(3M/2) = 3-packet construction uses 3 APs
    return n_antennas - 1


def uplink_aps_needed(n_antennas: int) -> int:
    """APs required for the Lemma 5.2 uplink rate (three, any M)."""
    if n_antennas < 1:
        raise ValueError("antenna count must be positive")
    return 3


def current_mimo_max_packets(n_antennas: int) -> int:
    """The antennas-per-AP limit IAC overcomes: point-to-point MIMO delivers
    at most M concurrent packets (paper §1)."""
    return n_antennas


def multiplexing_gain_ratio(n_antennas: int, direction: str) -> float:
    """IAC's multiplexing gain relative to current MIMO LANs."""
    base = current_mimo_max_packets(n_antennas)
    if direction == "uplink":
        return uplink_max_packets(n_antennas) / base
    if direction == "downlink":
        return downlink_max_packets(n_antennas) / base
    raise ValueError("direction must be 'uplink' or 'downlink'")


@dataclass(frozen=True)
class FeasibilityCount:
    """Constraint-vs-free-variable accounting for an alignment pattern.

    Free variables: each encoding vector contributes ``M - 1`` complex
    parameters (one lost to scale invariance).  A constraint that places
    ``k`` received directions inside a ``d``-dimensional subspace of an
    M-dimensional receive space consumes ``k (M - d)`` scalar conditions,
    minus the ``d (M - d)`` parameters of freely choosing the subspace
    (its Grassmannian dimension).
    """

    free_variables: int
    constraints: int

    @property
    def feasible(self) -> bool:
        return self.constraints <= self.free_variables


def count_feasibility(
    n_antennas: int,
    n_packets: int,
    constraint_specs: List[tuple],
) -> FeasibilityCount:
    """Count constraints vs free variables for an alignment pattern.

    Parameters
    ----------
    n_antennas:
        Antennas per node, M.
    n_packets:
        Number of encoding vectors.
    constraint_specs:
        List of ``(k, d)`` tuples: ``k`` directions confined to a ``d``-dim
        subspace at some receiver.
    """
    if n_packets < 1:
        raise ValueError("need at least one packet")
    m = n_antennas
    free = n_packets * (m - 1)
    used = 0
    for k, d in constraint_specs:
        if not 0 < d < m:
            raise ValueError("subspace dimension must be in (0, M)")
        if k <= d:
            continue  # vacuous: k directions always fit in k dims
        used += k * (m - d) - d * (m - d)
    return FeasibilityCount(free_variables=free, constraints=used)


def uplink_feasibility(n_antennas: int) -> FeasibilityCount:
    """Constraint count for the Lemma 5.2 uplink construction."""
    m = n_antennas
    return count_feasibility(
        m,
        2 * m,
        [
            (2 * m - 1, m - 1),  # all-but-one packed at AP 0
            (m, 1),  # seconds on a line at AP 1
        ],
    )


def downlink_feasibility(n_antennas: int) -> FeasibilityCount:
    """Constraint count for the Lemma 5.1 two-client downlink construction."""
    m = n_antennas
    if m == 2:
        # Three-packet construction: three pairwise alignments of 2 vectors.
        return count_feasibility(m, 3, [(2, 1), (2, 1), (2, 1)])
    return count_feasibility(
        m,
        2 * (m - 1),
        [
            (m - 1, 1),  # client 1's packets aligned at client 0
            (m - 1, 1),  # client 0's packets aligned at client 1
        ],
    )
