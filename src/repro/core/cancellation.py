"""Interference cancellation: reconstructing and subtracting known packets.

IAC uses only the *subtraction* step of interference cancellation (paper
§6): once an AP learns a decoded packet over the Ethernet, it re-modulates
the bits, re-applies the encoding vector, channel estimate and carrier
frequency offset, and subtracts the reconstructed contribution from its
received samples.  "Once the receiver knows the bits and estimates the
channel function from the preamble, it can reconstruct the corresponding
continuous signal ... and subtract it from its received version"
(footnote 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.phy.channel.model import apply_cfo


@dataclass
class Reconstruction:
    """Everything a receiver needs to reconstruct one packet's signal.

    Attributes
    ----------
    samples:
        The packet's baseband sample stream (re-modulated from the decoded
        bits; exact because decoding was CRC-verified).
    encoding:
        The packet's encoding vector (broadcast by the leader AP, §7.1).
    amplitude:
        Transmit amplitude (power split at the transmitter).
    channel:
        ``(n_rx, n_tx)`` channel estimate from the packet's transmitter to
        *this* receiver.
    cfo:
        Estimated normalised carrier frequency offset of the transmitter
        relative to this receiver.
    sample_offset:
        The stream's starting index within the receiver's sample window.
    """

    samples: np.ndarray
    encoding: np.ndarray
    amplitude: float
    channel: np.ndarray
    cfo: float = 0.0
    sample_offset: int = 0

    def received_contribution(self, window_len: int) -> np.ndarray:
        """The packet's contribution to an ``(n_rx, window_len)`` window."""
        tx = self.amplitude * np.outer(
            np.asarray(self.encoding, dtype=complex),
            np.asarray(self.samples, dtype=complex),
        )
        faded = np.asarray(self.channel, dtype=complex) @ tx
        faded = apply_cfo(faded, self.cfo, start=self.sample_offset)
        n_rx = faded.shape[0]
        out = np.zeros((n_rx, window_len), dtype=complex)
        n = min(faded.shape[1], window_len - self.sample_offset)
        if n > 0:
            out[:, self.sample_offset : self.sample_offset + n] = faded[:, :n]
        return out


def subtract(received: np.ndarray, reconstruction: Reconstruction) -> np.ndarray:
    """Subtract a reconstructed packet from a received sample window."""
    received = np.atleast_2d(np.asarray(received, dtype=complex))
    return received - reconstruction.received_contribution(received.shape[1])


def subtract_refined(received: np.ndarray, reconstruction: Reconstruction) -> np.ndarray:
    """Subtract with per-antenna refitting of residual CFO and gain.

    A coarse reconstruction built from training-phase estimates drifts in
    phase over a long packet (the CFO estimate is only finitely accurate).
    The paper's receiver instead re-derives the interferer's waveform from
    the received signal itself at cancellation time (footnote 5).  We model
    that by fitting, per receive antenna over the whole packet, just two
    parameters -- a residual frequency offset and a complex gain -- between
    the coarse reconstruction and the received signal, then subtracting the
    corrected reconstruction.  Restricting the fit to two degrees of freedom
    per antenna keeps the leakage of *other* concurrent packets into the fit
    negligible (their samples decorrelate from this packet's over the full
    window).
    """
    received = np.atleast_2d(np.asarray(received, dtype=complex))
    window_len = received.shape[1]
    recon = reconstruction.received_contribution(window_len)
    out = received.copy()
    for a in range(received.shape[0]):
        ref = recon[a]
        power = np.abs(ref) ** 2
        active = power > 1e-20
        if np.count_nonzero(active) < 2:
            continue
        # The product sequence c(t) = conj(recon) * received isolates the
        # residual rotation: c(t) ~ |recon|^2 * g * exp(j 2 pi df t) plus
        # cross terms from concurrent packets.  Raw per-sample phase
        # increments are swamped by those cross terms, so we average the
        # products over blocks (suppressing interference by 1/sqrt(block))
        # and fit a straight line to the unwrapped block phases.
        product = np.zeros(window_len, dtype=complex)
        product[active] = np.conj(ref[active]) * received[a, active]
        idx = np.flatnonzero(active)
        block = 128
        centers = []
        phases = []
        for start in range(0, idx.size, block):
            chunk = idx[start : start + block]
            if chunk.size < block // 2:
                continue
            total = complex(np.sum(product[chunk]))
            if abs(total) < 1e-20:
                continue
            centers.append(float(np.mean(chunk)))
            phases.append(float(np.angle(total)))
        if len(phases) >= 2:
            unwrapped = np.unwrap(np.array(phases))
            slope, _ = np.polyfit(np.array(centers), unwrapped, 1)
            residual_cfo = float(slope) / (2 * np.pi)
        else:
            residual_cfo = 0.0
        rotation = np.exp(2j * np.pi * residual_cfo * np.arange(window_len))

        # The phase fit can be spurious on waveforms with strongly varying
        # envelope (e.g. OFDM): validate it by the energy it explains, and
        # fall back to the unrotated reconstruction when it explains less.
        def _fit(candidate: np.ndarray):
            denom = float(np.sum(np.abs(candidate[active]) ** 2))
            g = complex(
                np.sum(np.conj(candidate[active]) * received[a, active]) / denom
            )
            explained = (abs(g) ** 2) * denom
            return g, explained

        rotated = ref * rotation
        gain_rot, explained_rot = _fit(rotated)
        gain_raw, explained_raw = _fit(ref)
        if explained_rot >= explained_raw:
            out[a] -= gain_rot * rotated
        else:
            out[a] -= gain_raw * ref
    return out


def residual_power_fraction(
    h_true: np.ndarray,
    h_estimate: np.ndarray,
) -> float:
    """Fraction of a packet's power that survives imperfect cancellation.

    Cancellation with an erroneous channel estimate leaves a residual
    ``(H - H_hat) v s``; for ``v`` isotropic the expected residual power
    relative to the packet's received power is
    ``||H - H_hat||_F^2 / ||H||_F^2``.  The rate-level decoder uses this to
    model stale channel estimates without running the sample pipeline.
    """
    h_true = np.asarray(h_true, dtype=complex)
    denom = float(np.linalg.norm(h_true) ** 2)
    if denom == 0:
        raise ValueError("true channel has zero power")
    return float(np.linalg.norm(h_true - np.asarray(h_estimate, dtype=complex)) ** 2) / denom


@dataclass
class EthernetAnnotation:
    """Metadata shipped with decoded packets on the backplane (§7.1(c)).

    APs exchange decoded packets annotated with loss reports and channel
    updates; this type models the annotation so the Ethernet substrate can
    account for its bytes.
    """

    packet_id: int
    decoder_ap: int
    lost: bool = False
    channel_update: Optional[np.ndarray] = None

    def nbytes(self) -> int:
        """Serialized size: ids/flags plus 8 bytes per complex entry."""
        base = 8
        if self.channel_update is not None:
            base += 8 * int(np.asarray(self.channel_update).size)
        return base
