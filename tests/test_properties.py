"""Property-based tests (hypothesis) on the core IAC invariants.

Each property is quantified over random seeds, which parameterise channel
draws, free encoding vectors and eigenvector choices -- so these tests
sweep a far wider space than the example-based suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alignment import (
    solve_downlink_three_packets,
    solve_uplink_four_packets,
    solve_uplink_three_packets,
)
from repro.core.decoder import decode_rate_level
from repro.core.dof import (
    downlink_feasibility,
    downlink_max_packets,
    uplink_feasibility,
    uplink_max_packets,
)
from repro.core.plans import ChannelSet
from repro.phy.channel.model import rayleigh_channel
from repro.utils.linalg import align_error

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _chanset(seed, txs, rxs, m=2):
    rng = np.random.default_rng(seed)
    return ChannelSet({(t, r): rayleigh_channel(m, m, rng) for t in txs for r in rxs}), rng


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_uplink3_alignment_equation_always_holds(seed):
    """Eq. 2 holds for every channel draw and free-vector choice."""
    chans, rng = _chanset(seed, (0, 1), (0, 1))
    sol = solve_uplink_three_packets(chans, rng=rng, n_candidates=1)
    d1 = sol.received_direction(chans, 1, 0)
    d2 = sol.received_direction(chans, 2, 0)
    assert align_error(d1, d2) < 1e-6


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_uplink3_all_packets_decodable(seed):
    chans, rng = _chanset(seed, (0, 1), (0, 1))
    sol = solve_uplink_three_packets(chans, rng=rng)
    report = decode_rate_level(sol, chans, noise_power=1e-9)
    assert report.min_sinr > 10.0  # strictly decodable at negligible noise


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_uplink4_alignment_equations_always_hold(seed):
    chans, rng = _chanset(seed, (0, 1, 2), (0, 1, 2))
    sol = solve_uplink_four_packets(chans, rng=rng)
    assert align_error(
        sol.received_direction(chans, 1, 0), sol.received_direction(chans, 2, 0)
    ) < 1e-6
    assert align_error(
        sol.received_direction(chans, 2, 0), sol.received_direction(chans, 3, 0)
    ) < 1e-6
    assert align_error(
        sol.received_direction(chans, 2, 1), sol.received_direction(chans, 3, 1)
    ) < 1e-6


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_downlink3_every_client_sees_aligned_interference(seed):
    chans, rng = _chanset(seed, (0, 1, 2), (0, 1, 2))
    sol = solve_downlink_three_packets(chans, rng=rng)
    for client in range(3):
        undesired = [p.packet_id for p in sol.packets if p.rx != client]
        dirs = [sol.received_direction(chans, pid, client) for pid in undesired]
        assert align_error(dirs[0], dirs[1]) < 1e-6


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_encoding_vectors_always_unit_norm(seed):
    chans, rng = _chanset(seed, (0, 1), (0, 1))
    sol = solve_uplink_three_packets(chans, rng=rng)
    for v in sol.encoding.values():
        assert np.isclose(np.linalg.norm(v), 1.0, atol=1e-9)


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_power_split_conserves_budget(seed):
    """Each transmitter's per-packet amplitudes square-sum to its budget."""
    chans, rng = _chanset(seed, (0, 1), (0, 1))
    sol = solve_uplink_three_packets(chans, rng=rng)
    for tx in (0, 1):
        total = sum(sol.tx_amplitude(pid) ** 2 for pid in sol.packets_of_tx(tx))
        assert np.isclose(total, 1.0)


@given(seeds, st.floats(min_value=1e-6, max_value=1.0))
@settings(max_examples=20, deadline=None)
def test_rate_decreases_with_noise(seed, noise):
    chans, rng = _chanset(seed, (0, 1), (0, 1))
    sol = solve_uplink_three_packets(chans, rng=rng)
    low = decode_rate_level(sol, chans, noise_power=noise).total_rate
    high = decode_rate_level(sol, chans, noise_power=noise * 10).total_rate
    assert low >= high


@given(st.integers(min_value=1, max_value=64))
@settings(max_examples=30, deadline=None)
def test_dof_formulas_consistent(m):
    """Uplink DoF >= downlink DoF >= M (for M >= 2), and both feasible."""
    assert uplink_max_packets(m) == 2 * m
    if m >= 2:
        assert m < downlink_max_packets(m) <= uplink_max_packets(m)
        assert uplink_feasibility(m).feasible
        assert downlink_feasibility(m).feasible


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_cancellation_residual_never_helps(seed):
    chans, rng = _chanset(seed, (0, 1), (0, 1))
    sol = solve_uplink_three_packets(chans, rng=rng)
    clean = decode_rate_level(sol, chans, 1e-3).total_rate
    dirty = decode_rate_level(sol, chans, 1e-3, cancellation_residual=0.2).total_rate
    assert dirty <= clean + 1e-9
