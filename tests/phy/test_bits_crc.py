"""Unit tests for bit plumbing, scrambling and CRC framing."""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.bits import (
    Scrambler,
    bit_error_rate,
    bit_errors,
    bits_to_bytes,
    bytes_to_bits,
    random_bits,
)
from repro.phy.crc import append_crc, check_crc, crc32, crc_bits, strip_crc


class TestBits:
    def test_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_msb_first(self):
        assert np.array_equal(bytes_to_bits(b"\x80"), [1, 0, 0, 0, 0, 0, 0, 0])

    def test_empty(self):
        assert bytes_to_bits(b"").size == 0
        assert bits_to_bytes(np.zeros(0, dtype=np.uint8)) == b""

    def test_non_octet_raises(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(5, dtype=np.uint8))

    def test_bit_errors(self):
        a = np.array([0, 1, 1, 0], dtype=np.uint8)
        b = np.array([0, 0, 1, 1], dtype=np.uint8)
        assert bit_errors(a, b) == 2
        assert np.isclose(bit_error_rate(a, b), 0.5)

    def test_bit_errors_length_mismatch(self):
        with pytest.raises(ValueError):
            bit_errors(np.zeros(3), np.zeros(4))

    def test_random_bits(self, rng):
        bits = random_bits(1000, rng)
        assert set(np.unique(bits)) <= {0, 1}
        assert 300 < bits.sum() < 700  # roughly balanced

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestScrambler:
    def test_involution(self, rng):
        bits = random_bits(999, rng)
        s = Scrambler()
        assert np.array_equal(s.descramble(s.scramble(bits)), bits)

    def test_whitens_constant_input(self):
        s = Scrambler()
        out = s.scramble(np.zeros(256, dtype=np.uint8))
        assert 64 < out.sum() < 192  # not all zeros anymore

    def test_seed_matters(self, rng):
        bits = random_bits(64, rng)
        assert not np.array_equal(
            Scrambler(seed=0x55).scramble(bits), Scrambler(seed=0x2A).scramble(bits)
        )

    def test_bad_seed_raises(self):
        with pytest.raises(ValueError):
            Scrambler(seed=0)
        with pytest.raises(ValueError):
            Scrambler(seed=0x100)


class TestCrc:
    def test_matches_zlib(self):
        for data in (b"", b"hello", bytes(range(100))):
            assert crc32(data) == zlib.crc32(data)

    def test_chaining(self):
        a, b = b"abc", b"defgh"
        assert crc32(a + b) == crc32(b, crc32(a))

    def test_append_and_check(self):
        frame = append_crc(b"payload")
        assert check_crc(frame)
        assert strip_crc(frame) == b"payload"

    def test_detects_corruption(self):
        frame = bytearray(append_crc(b"payload"))
        frame[2] ^= 0x40
        assert not check_crc(bytes(frame))
        with pytest.raises(ValueError):
            strip_crc(bytes(frame))

    def test_short_frame_fails(self):
        assert not check_crc(b"ab")

    def test_crc_bits_consistency(self):
        from repro.phy.bits import bytes_to_bits

        bits = bytes_to_bits(b"data!")
        out = crc_bits(bits)
        assert out.size == 32

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0, max_value=511))
    @settings(max_examples=50, deadline=None)
    def test_single_bit_flip_always_detected(self, data, flip):
        frame = bytearray(append_crc(data))
        bit = flip % (len(frame) * 8)
        frame[bit // 8] ^= 1 << (bit % 8)
        assert not check_crc(bytes(frame))


class TestScramblerKeystreamEquivalence:
    """The tiled (periodic) keystream must equal the stepped LFSR's."""

    @pytest.mark.parametrize("seed", [1, 0x1F, 0x5B, 0x7F, Scrambler.DEFAULT_SEED])
    @pytest.mark.parametrize("n", [0, 1, 64, 126, 127, 128, 254, 255, 1000])
    def test_fast_matches_reference(self, seed, n):
        s = Scrambler(seed)
        assert np.array_equal(s._keystream(n), s._keystream_reference(n))

    def test_period_is_maximal(self):
        """x^7 + x^4 + 1 is maximal-length: every seed has period 127."""
        for seed in range(1, 0x80):
            assert Scrambler(seed)._period().size == 127

    @given(st.integers(1, 0x7F), st.integers(0, 600))
    @settings(max_examples=40, deadline=None)
    def test_fast_matches_reference_property(self, seed, n):
        s = Scrambler(seed)
        assert np.array_equal(s._keystream(n), s._keystream_reference(n))


class TestCrcSliced:
    """Slicing-by-8 crc32 vs the bytewise reference (and zlib)."""

    @pytest.mark.parametrize("n", [0, 1, 3, 4, 7, 8, 9, 15, 16, 17, 100, 1500])
    def test_matches_bytewise_and_zlib(self, n):
        from repro.phy.crc import crc32_bytewise

        rng = np.random.default_rng(n)
        data = bytes(rng.integers(0, 256, n, dtype=np.uint8))
        assert crc32(data) == crc32_bytewise(data) == zlib.crc32(data)

    @given(st.binary(max_size=300), st.integers(0, 300))
    @settings(max_examples=60, deadline=None)
    def test_chaining_property(self, data, split):
        from repro.phy.crc import crc32_bytewise

        split = min(split, len(data))
        assert crc32(data) == crc32_bytewise(data)
        assert crc32(data[split:], crc32(data[:split])) == crc32(data)
